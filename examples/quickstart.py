"""Quickstart: run SOFA sparse attention and compare it against dense.

Builds a calibrated synthetic attention workload (BERT-style head), runs the
full cross-stage pipeline (DLZS prediction -> SADS top-k -> SU-FA formal
compute), and reports fidelity plus per-stage operation counts against the
dense reference - then serves the same head through the batched
:class:`~repro.engine.serving.SofaEngine` and reads its counters back
through the public ``engine.stats`` API (the only stable surface: the same
counters a sharded ``repro.cluster`` deployment aggregates per worker).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import AttentionRequest, SofaAttention, SofaConfig, SofaEngine
from repro.attention.metrics import accuracy_loss_proxy
from repro.attention.reference import dense_attention
from repro.attention.topk import topk_recall
from repro.model.workloads import make_workload
from repro.numerics.complexity import matmul_ops, softmax_ops
from repro.utils.tables import format_table


def main() -> None:
    # A BERT-base benchmark head: 64 parallel queries over 512 keys.
    workload = make_workload("bert-b/sst2", n_queries=64, head_dim=64, seq_len=512, seed=1)

    config = SofaConfig(tile_cols=64, top_k=0.15)
    sofa = SofaAttention(workload.wk, workload.wv, config)

    # The workload folds its normalization constant into the K/V scales.
    scale = workload.fold_scale()
    result = sofa(workload.tokens, workload.q, k_scale=scale, v_scale=scale)

    dense = dense_attention(workload.q, workload.k, workload.v)
    k_count = config.resolve_top_k(workload.seq_len)

    print("SOFA quickstart")
    print("=" * 60)
    print(f"queries x keys          : {workload.n_queries} x {workload.seq_len}")
    print(f"top-k per row           : {k_count} ({config.top_k:.0%} of keys)")
    recall = topk_recall(result.selected, workload.scores(), k_count)
    print(f"top-k recall vs exact   : {recall:.3f}")
    print(f"accuracy-loss proxy     : {accuracy_loss_proxy(result.output, dense):.2f}%")
    print(f"max-ensure activations  : {result.assurance_triggers} "
          f"({result.assurance_triggers / result.selected.size:.1%} of steps)")
    print()

    t, s, d = workload.n_queries, workload.seq_len, workload.head_dim
    dense_ops = (
        matmul_ops(t, d, s).normalized()
        + softmax_ops(t, s).normalized()
        + matmul_ops(t, s, d).normalized()
        + 2 * matmul_ops(s, workload.tokens.shape[1], d).normalized()
    )
    rows = [
        (stage.name, stage.ops.normalized(), stage.dram_bytes)
        for stage in result.stages
    ]
    rows.append(("TOTAL (sofa)", result.total_ops.normalized(), result.total_dram_bytes))
    rows.append(("dense reference", dense_ops, float("nan")))
    print(
        format_table(
            ["stage", "normalized complexity", "dram bytes"],
            rows,
            formats=[None, ".3g", ".3g"],
            title="Per-stage cost (normalized complexity units)",
        )
    )
    reduction = 1 - result.total_ops.normalized() / dense_ops
    print(f"\ncomputation reduction vs dense: {reduction:.1%}")

    # The served path: the same head as engine traffic.  Only the public
    # SofaEngine.stats surface is read - no reaching into scheduler or
    # group internals, so this stays stable as the serving tier evolves
    # (a cluster aggregates exactly these counters per worker).
    with SofaEngine(config, max_batch_heads=8) as engine:
        served = engine.run(
            [
                AttentionRequest(
                    tokens=workload.tokens, q=workload.q,
                    wk=workload.wk, wv=workload.wv,
                    k_scale=scale, v_scale=scale,
                )
                for _ in range(8)
            ]
        )
        assert all(r.output.tobytes() == result.output.tobytes() for r in served)
        stats = engine.stats
        print("\nengine-served (public stats API)")
        print(f"requests / batches      : {stats.n_requests} / {stats.n_batches}")
        print(f"mean heads per batch    : {stats.mean_batch_heads:.1f}")
        print(f"decode cache h/m/exp    : {stats.cache_hits}/{stats.cache_misses}"
              f"/{stats.cache_expirations}")


if __name__ == "__main__":
    main()
