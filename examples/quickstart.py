"""Quickstart: run SOFA sparse attention and compare it against dense.

Builds a calibrated synthetic attention workload (BERT-style head), runs the
full cross-stage pipeline (DLZS prediction -> SADS top-k -> SU-FA formal
compute), and reports fidelity plus per-stage operation counts against the
dense reference.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import SofaAttention, SofaConfig
from repro.attention.metrics import accuracy_loss_proxy
from repro.attention.reference import dense_attention
from repro.attention.topk import topk_recall
from repro.model.workloads import make_workload
from repro.numerics.complexity import matmul_ops, softmax_ops
from repro.utils.tables import format_table


def main() -> None:
    # A BERT-base benchmark head: 64 parallel queries over 512 keys.
    workload = make_workload("bert-b/sst2", n_queries=64, head_dim=64, seq_len=512, seed=1)

    config = SofaConfig(tile_cols=64, top_k=0.15)
    sofa = SofaAttention(workload.wk, workload.wv, config)

    # The workload folds its normalization constant into the K/V scales.
    scale = workload.fold_scale()
    result = sofa(workload.tokens, workload.q, k_scale=scale, v_scale=scale)

    dense = dense_attention(workload.q, workload.k, workload.v)
    k_count = config.resolve_top_k(workload.seq_len)

    print("SOFA quickstart")
    print("=" * 60)
    print(f"queries x keys          : {workload.n_queries} x {workload.seq_len}")
    print(f"top-k per row           : {k_count} ({config.top_k:.0%} of keys)")
    recall = topk_recall(result.selected, workload.scores(), k_count)
    print(f"top-k recall vs exact   : {recall:.3f}")
    print(f"accuracy-loss proxy     : {accuracy_loss_proxy(result.output, dense):.2f}%")
    print(f"max-ensure activations  : {result.assurance_triggers} "
          f"({result.assurance_triggers / result.selected.size:.1%} of steps)")
    print()

    t, s, d = workload.n_queries, workload.seq_len, workload.head_dim
    dense_ops = (
        matmul_ops(t, d, s).normalized()
        + softmax_ops(t, s).normalized()
        + matmul_ops(t, s, d).normalized()
        + 2 * matmul_ops(s, workload.tokens.shape[1], d).normalized()
    )
    rows = [
        (stage.name, stage.ops.normalized(), stage.dram_bytes)
        for stage in result.stages
    ]
    rows.append(("TOTAL (sofa)", result.total_ops.normalized(), result.total_dram_bytes))
    rows.append(("dense reference", dense_ops, float("nan")))
    print(
        format_table(
            ["stage", "normalized complexity", "dram bytes"],
            rows,
            formats=[None, ".3g", ".3g"],
            title="Per-stage cost (normalized complexity units)",
        )
    )
    reduction = 1 - result.total_ops.normalized() / dense_ops
    print(f"\ncomputation reduction vs dense: {reduction:.1%}")


if __name__ == "__main__":
    main()
