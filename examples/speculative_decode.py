"""Speculative decoding as a prefill task: SOFA's second LTPP motivation.

The paper's introduction notes that speculative inference turns decode steps
into prefill-style batches: a draft model proposes a block of candidate
tokens, and the target model verifies them *in parallel* - exactly the
large-scale token-parallel processing SOFA targets.

This example simulates verification batches of growing speculation depth
through the SOFA pipeline and reports where the cross-stage tiling pays off:
the per-token verification cost drops as the batch widens, because KV
prediction and on-demand generation amortize across the speculative tokens
(all candidates attend to the same context prefix).

Run:  python examples/speculative_decode.py
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SofaConfig
from repro.core.pipeline import SofaAttention
from repro.hw.accelerator import SofaAccelerator, shape_from_pipeline
from repro.model.workloads import make_workload
from repro.utils.tables import format_table

CONTEXT_LEN = 512


def verify_batch(speculation_depth: int) -> tuple[float, float, float]:
    """Run one verification batch; returns (cycles/token, energy/token, reuse)."""
    workload = make_workload(
        "llama-7b/wikitext2",
        n_queries=speculation_depth,
        head_dim=64,
        seq_len=CONTEXT_LEN,
        seed=23,
    )
    config = SofaConfig(tile_cols=64, top_k=0.12)
    pipeline = SofaAttention(workload.wk, workload.wv, config)
    res = pipeline(workload.tokens, workload.q)

    shape = shape_from_pipeline(
        speculation_depth, CONTEXT_LEN, workload.tokens.shape[1],
        workload.head_dim, res.selected, res.assurance_triggers,
    )
    report = SofaAccelerator(config=config).run(shape)
    # Cross-candidate KV overlap: how much of the selected context is shared.
    unique = np.unique(res.selected).size
    reuse = 1.0 - unique / res.selected.size if res.selected.size else 0.0
    return (
        report.cycles / speculation_depth,
        report.total_energy_j / speculation_depth * 1e9,
        reuse,
    )


def main() -> None:
    print("Speculative-decode verification through SOFA")
    print(f"context length: {CONTEXT_LEN} tokens, top-k 12%")
    print("=" * 64)
    rows = []
    base_cycles = None
    for depth in (1, 2, 4, 8, 16, 32):
        cycles_per_tok, energy_per_tok, reuse = verify_batch(depth)
        if base_cycles is None:
            base_cycles = cycles_per_tok
        rows.append(
            (depth, cycles_per_tok, base_cycles / cycles_per_tok,
             energy_per_tok, reuse)
        )
    print(
        format_table(
            [
                "speculation depth", "cycles/token", "amortization gain",
                "energy/token (nJ)", "KV selection overlap",
            ],
            rows,
            formats=[None, ".0f", ".2f", ".1f", ".1%"],
        )
    )
    print(
        "\nWider speculative batches amortize key prediction and on-demand KV\n"
        "generation across candidates - decode inherits prefill's economics,\n"
        "which is why the paper treats LTPP as the design point."
    )


if __name__ == "__main__":
    main()
