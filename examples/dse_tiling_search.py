"""Design-space exploration: per-layer tiling size and top-k via Bayesian opt.

Reproduces the Sec. III-D flow (Alg. 1) on a small model: the Gaussian-
process search balances output fidelity (L_en) against sorting cost (L_cmp)
and SU-FA exponential cost (L_exp), choosing a per-layer tile count Tc and
the global top-k fraction.  A uniform-grid oracle is evaluated for reference.

Run:  python examples/dse_tiling_search.py
"""

from __future__ import annotations

import numpy as np

from repro.attention.metrics import output_relative_error
from repro.attention.reference import masked_attention
from repro.attention.topk import indices_to_mask
from repro.core.config import SadsConfig
from repro.core.dse import BayesianDse, DsePoint, grid_search
from repro.core.sads import SadsSorter
from repro.model.workloads import make_workload
from repro.utils.tables import format_table

N_LAYERS = 4
SEQ_LEN = 256


def make_loss_fn():
    """L_en: mean output error of SADS-selected attention per layer."""
    workloads = [
        make_workload("bert-b/qnli", n_queries=16, head_dim=32,
                      seq_len=SEQ_LEN, seed=100 + i)
        for i in range(N_LAYERS)
    ]
    dense = [
        masked_attention(w.q, w.k, w.v, np.ones((16, SEQ_LEN), dtype=bool))
        for w in workloads
    ]

    def evaluate(point: DsePoint) -> float:
        k = max(int(point.top_k * SEQ_LEN), 1)
        errs = []
        for layer, wl in enumerate(workloads):
            sorter = SadsSorter(SadsConfig(n_segments=point.tc_per_layer[layer]))
            sel = sorter.select(wl.scores(), k)
            mask = indices_to_mask(sel.indices, SEQ_LEN)
            sparse = masked_attention(wl.q, wl.k, wl.v, mask)
            errs.append(output_relative_error(sparse, dense[layer]))
        return float(np.mean(errs))

    return evaluate


def main() -> None:
    print("SOFA DSE: per-layer tiling (Tc) and top-k search")
    print("=" * 60)
    dse = BayesianDse(
        make_loss_fn(), n_layers=N_LAYERS, seq_len=SEQ_LEN,
        alpha=0.3, beta=0.3, seed=42,
    )
    result = dse.search(n_iterations=30, n_init=8, n_candidates=128)

    best = result.best_point
    print(f"evaluations        : {len(result.history)}")
    print(f"best objective L(R): {result.best_objective:.4f}")
    print(f"chosen top-k       : {best.top_k:.0%}")
    rows = [
        (layer, tc, SEQ_LEN // tc)
        for layer, tc in enumerate(best.tc_per_layer)
    ]
    print(format_table(["layer", "Tc (tiles)", "Bc (tile width)"], rows))

    trace = result.best_so_far
    print("\nconvergence (best objective so far):")
    for i in range(0, len(trace), max(len(trace) // 6, 1)):
        print(f"  iter {i:>3}: {trace[i]:.4f}")

    oracle = grid_search(dse.objective, n_layers=N_LAYERS,
                         tc_choices=(2, 8, 16, 32), topk_choices=(0.1, 0.2, 0.3))
    print(f"\nuniform-grid oracle objective: {oracle.best_objective:.4f} "
          f"(Tc={oracle.best_point.tc_per_layer[0]}, "
          f"top-k={oracle.best_point.top_k:.0%})")


if __name__ == "__main__":
    main()
