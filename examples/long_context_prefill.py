"""Long-context LLM prefill: the LTPP scenario that motivates SOFA.

Sweeps a Llama-7B-style attention head across sequence lengths in the
large-scale token-parallel regime (prefill: all queries processed together),
comparing the SOFA accelerator's cycles, DRAM traffic and energy against the
whole-row dynamic-sparsity baseline on identical hardware resources.

Run:  python examples/long_context_prefill.py
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SofaConfig
from repro.core.pipeline import SofaAttention
from repro.hw.accelerator import SofaAccelerator, shape_from_pipeline
from repro.model.workloads import make_workload
from repro.utils.tables import format_table


def run_point(seq_len: int, n_queries: int) -> tuple:
    workload = make_workload(
        "llama-7b/wikitext2", n_queries=min(n_queries, 64), head_dim=64,
        seq_len=min(seq_len, 512), seed=7,
    )
    config = SofaConfig(tile_cols=64, top_k=0.12)
    pipeline = SofaAttention(workload.wk, workload.wv, config)
    res = pipeline(workload.tokens, workload.q)

    # Scale the measured selection statistics to the full LTPP geometry.
    unique_frac = np.unique(res.selected).size / workload.seq_len
    shape = shape_from_pipeline(
        n_queries, seq_len, workload.tokens.shape[1], workload.head_dim,
        res.selected, res.assurance_triggers,
    )
    shape = type(shape)(
        n_queries=n_queries,
        seq_len=seq_len,
        hidden=shape.hidden,
        head_dim=shape.head_dim,
        selected_per_row=max(int(0.12 * seq_len), 1),
        unique_selected=min(int(unique_frac * seq_len) + 1, seq_len),
        assurance_fraction=shape.assurance_fraction,
    )
    accelerator = SofaAccelerator(config=config)
    sofa = accelerator.run(shape)
    baseline = accelerator.run_whole_row_baseline(shape)
    return seq_len, n_queries, sofa, baseline


def main() -> None:
    print("Long-context prefill (LTPP) on the SOFA accelerator model")
    print("=" * 72)
    rows = []
    for seq_len in (1024, 2048, 4096, 8192):
        n_queries = min(seq_len, 2048)
        s, t, sofa, base = run_point(seq_len, n_queries)
        rows.append(
            (
                s,
                t,
                base.cycles / sofa.cycles,
                1 - sofa.dram_bytes / base.dram_bytes,
                base.total_energy_j / sofa.total_energy_j,
                sofa.pipeline_speedup,
                sofa.latency_s * 1e3,
            )
        )
    print(
        format_table(
            [
                "seq_len", "parallel queries", "speedup vs whole-row",
                "dram reduction", "energy ratio", "pipeline speedup", "latency_ms",
            ],
            rows,
            formats=[None, None, ".2f", ".1%", ".1f", ".2f", ".2f"],
        )
    )
    print(
        "\nWhole-row baselines stall on DRAM as parallelism scales (paper "
        "Fig. 3); the cross-stage tiled pipeline keeps intermediates on chip."
    )


if __name__ == "__main__":
    main()
