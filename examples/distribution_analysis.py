"""Attention-distribution analysis: the Distributed Cluster Effect (Fig. 8).

Classifies attention rows of every model family into the paper's
Type-I/II/III taxonomy and demonstrates why the DCE licenses distributed
sorting: per-segment top-(k/n) recall stays high exactly when Type-I+II
dominate, and collapses on adversarial Type-III rows.

Run:  python examples/distribution_analysis.py
"""

from __future__ import annotations

from repro.attention.topk import topk_recall
from repro.core.config import SadsConfig
from repro.core.sads import SadsSorter
from repro.model.config import MODEL_ZOO
from repro.model.distribution import RowType, classify_rows
from repro.model.workloads import synthetic_scores
from repro.utils.rng import make_rng
from repro.utils.tables import format_table

SEQ_LEN = 512
N_ROWS = 512
K = 64


def main() -> None:
    print("Attention-row taxonomy and the Distributed Cluster Effect")
    print("=" * 70)

    rows = []
    for name in ("bert-base", "vit-base", "gpt2", "llama-7b"):
        family = MODEL_ZOO[name].family
        rng = make_rng(88)
        scores = synthetic_scores(rng, N_ROWS, SEQ_LEN, family)
        shares = classify_rows(scores)
        recall4 = topk_recall(
            SadsSorter(SadsConfig(n_segments=4)).select(scores[:64], K).indices,
            scores[:64], K,
        )
        rows.append(
            (
                name,
                shares[RowType.TYPE_I] * 100,
                shares[RowType.TYPE_II] * 100,
                shares[RowType.TYPE_III] * 100,
                recall4,
            )
        )
    print(
        format_table(
            ["model", "type-I %", "type-II %", "type-III %", "SADS recall (n=4)"],
            rows,
            formats=[None, ".1f", ".1f", ".1f", ".3f"],
        )
    )

    print("\nAdversarial check: a Type-III-only workload (dominants packed")
    print("into one region) vs the adjustive-exchange repair:")
    rng = make_rng(13)
    bad = rng.normal(0, 0.6, size=(32, SEQ_LEN))
    start = 100
    bad[:, start : start + 40] += 7.0
    for rounds in (0, 4, 16):
        sorter = SadsSorter(SadsConfig(n_segments=8, adjust_rounds=rounds))
        recall = topk_recall(sorter.select(bad, 32).indices, bad, 32)
        print(f"  adjust_rounds={rounds:>2}: recall {recall:.3f}")
    print("\nType-I+II dominance (>95%) is what makes per-tile sorting safe;")
    print("the exchange iterations recover the rare concentrated rows.")


if __name__ == "__main__":
    main()
