"""Serving demo: batching, backends, decode caching, and the cluster tier.

Simulates production traffic against :class:`~repro.engine.serving.SofaEngine`
in eight acts:

1. **Continuous batching** - requests arrive in waves *between* scheduling
   rounds; new arrivals join not-yet-executed shape groups, under-full
   groups age out after ``max_wait_batches`` rounds, and a deadline forces
   a lonely shape through without batch-mates (the starvation bound).
2. **Executor backends** - the same stream through ``backend="sync"`` and
   ``backend="threads"``; results are bit-identical, only wall-clock moves.
3. **Decode-step cache** - a growing sequence re-submitted step by step
   with a ``cache_key`` reuses its quantized ``K_hat`` prefix instead of
   re-running DLZS phase 1.1 over the whole context.
4. **Cluster tier** - an asyncio loop drives a 2-worker
   :class:`~repro.cluster.EngineCluster` through the
   :class:`~repro.cluster.AsyncSofaClient`: sharded worker processes,
   cross-request dedup, a mid-stream worker crash survived by re-routing -
   and every awaited result still bit-identical to the sequential operator.
5. **Socket transport + supervision** - the same cluster over
   ``transport="socket"``: standalone worker processes behind TCP
   listeners (the multi-host topology; here spawned on localhost),
   length-prefixed checksummed frames carrying the same codec payloads,
   and a :class:`~repro.cluster.SupervisorConfig`-driven supervisor that
   heartbeats the workers, survives a hard kill mid-stream, auto-respawns
   the dead worker, and serves post-respawn traffic - bit-identical
   throughout.
6. **Paged cache, shared prefixes** - many sessions decoding off one
   system prompt through the paged block-pool store
   (``cache_kind="paged"``, the default): the prompt's blocks are pooled
   once and refcounted across sessions, divergence is copy-on-write, a
   byte budget is held by spilling cold blocks to disk instead of
   dropping entries - and every output stays bit-identical to the
   uncached computation.
7. **Telemetry plane** - the same 2-worker socket cluster with
   ``SOFA_TELEMETRY=1``: every request produces a stitched trace
   (frontend ``cluster.request``/``cluster.rpc`` spans and the worker's
   ``worker.request``/``engine.batch``/``stage.*`` spans share one trace
   id across the process line), exported as Chrome trace-event JSON you
   can open in Perfetto, plus a merged frontend+worker metrics snapshot
   with per-request latency quantiles - all without moving a single
   output bit.
8. **HTTP gateway** - the front door over a 2-worker socket cluster:
   two tenants (a high-priority ``pro`` plan and a tightly rate-limited
   ``free`` plan) flood :class:`~repro.gateway.SofaGateway` with more
   concurrent requests than the pool can absorb.  Admission control
   answers the excess *fast* (429 for the free tenant's exhausted token
   bucket, 503 + Retry-After when the bounded queue fills, deadline
   sheds at dispatch), the admission backlog feeds the cluster's
   autoscaler through :meth:`~repro.cluster.EngineCluster.
   set_queue_depth_hook` so the pool grows mid-burst, every completed
   response is bit-identical to the sequential operator after its JSON
   round trip, and one ``GET /metrics`` scrape reads the whole story
   back in Prometheus text.

Run:  python examples/serving_engine.py
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import tempfile
import time

import numpy as np

import repro.obs as obs
from repro import (
    AsyncSofaClient,
    AttentionRequest,
    EngineCluster,
    SofaAttention,
    SofaConfig,
    SofaEngine,
)
from repro.cluster import AutoscalerConfig, SupervisorConfig
from repro.gateway import GatewayClient, GatewayConfig, SofaGateway, TenantPolicy
from repro.utils.rng import make_rng


def make_wave(rng: np.random.Generator, n_requests: int, tag: str) -> list[AttentionRequest]:
    """A mixed request wave: two sequence-length classes, per-head weights."""
    requests = []
    for i in range(n_requests):
        s = 256 if i % 3 else 128  # two shape classes interleaved
        h, d, t = 32, 32, 8
        requests.append(
            AttentionRequest(
                tokens=rng.integers(-100, 100, size=(s, h)).astype(np.float64),
                q=rng.normal(size=(t, d)),
                wk=rng.normal(size=(h, d)),
                wv=rng.normal(size=(h, d)),
                tag=f"{tag}-{i}",
            )
        )
    return requests


def act_continuous(rng: np.random.Generator) -> None:
    print("\n[1] continuous batching: waves admitted between rounds")
    print("-" * 60)
    engine = SofaEngine(
        SofaConfig(tile_cols=32, top_k=0.15), max_batch_heads=8, max_wait_batches=2
    )
    futures = []
    for wave in range(3):
        wave_reqs = make_wave(rng, 6, f"wave{wave}")
        futures += engine.submit_many(wave_reqs)
        records = engine.step()
        print(
            f"  wave {wave}: +{len(wave_reqs)} requests -> "
            f"{len(records)} batch(es) ready, {engine.pending} pending"
        )
    # a lonely shape with a deadline in the past: executes next round alone
    lonely = AttentionRequest(
        tokens=rng.integers(-100, 100, size=(192, 32)).astype(np.float64),
        q=rng.normal(size=(8, 32)),
        wk=rng.normal(size=(32, 32)),
        wv=rng.normal(size=(32, 32)),
        deadline=time.monotonic() - 1.0,
    )
    futures.append(engine.submit(lonely))
    records = engine.run_until_drained()
    print(f"  drained: {len(records)} more batch(es), {engine.pending} pending")
    for rec in engine.stats.batches:
        print(
            f"    - {rec.n_heads:2d} heads on the (S={rec.seq_len}, "
            f"Bc={rec.tile_cols}) grid after {rec.waited_rounds} round(s) waited"
        )
    assert all(f.done() for f in futures)
    print(f"  mean heads per batch    : {engine.stats.mean_batch_heads:.1f}")


def act_backends(rng: np.random.Generator) -> None:
    print("\n[2] executor backends: sync vs threads, bit-identical")
    print("-" * 60)
    config = SofaConfig(tile_cols=32, top_k=0.15)
    requests = make_wave(rng, 24, "traffic")

    t0 = time.perf_counter()
    sequential = [SofaAttention(r.wk, r.wv, config)(r.tokens, r.q) for r in requests]
    sequential_s = time.perf_counter() - t0

    results, timings = {}, {}
    for backend in ("sync", "threads"):
        with SofaEngine(config, max_batch_heads=16, backend=backend) as engine:
            t0 = time.perf_counter()
            results[backend] = engine.run(requests)
            timings[backend] = time.perf_counter() - t0

    exact = all(
        a.output.tobytes() == b.output.tobytes() == c.output.tobytes()
        and np.array_equal(a.selected, b.selected)
        for a, b, c in zip(sequential, results["sync"], results["threads"])
    )
    print(f"  requests                : {len(requests)}")
    print(f"  bit-identical (3 paths) : {exact}")
    print(f"  sequential loop         : {sequential_s * 1e3:8.1f} ms "
          f"({len(requests) / sequential_s:7.1f} req/s)")
    for backend, spent in timings.items():
        print(f"  engine [{backend:7s}]       : {spent * 1e3:8.1f} ms "
              f"({len(requests) / spent:7.1f} req/s)")


def act_decode_cache(rng: np.random.Generator) -> None:
    print("\n[3] decode-step cache: growing sequence, K_hat prefix reuse")
    print("-" * 60)
    config = SofaConfig(tile_cols=32, top_k=0.25)
    h, d, t = 48, 48, 1
    wk = rng.normal(size=(h, d))
    wv = rng.normal(size=(h, d))
    context = rng.integers(-100, 100, size=(256, h)).astype(np.float64)

    def decode_loop(use_cache: bool) -> tuple[float, SofaEngine]:
        engine = SofaEngine(config, max_batch_heads=4)
        tokens = context
        t0 = time.perf_counter()
        for step in range(24):
            new = rng_steps[step]
            tokens = np.concatenate([tokens, new])
            fut = engine.submit(
                AttentionRequest(
                    tokens=tokens,
                    q=rng_queries[step],
                    wk=wk,
                    wv=wv,
                    cache_key="seq-0" if use_cache else None,
                )
            )
            engine.flush()
            fut.result()
        return time.perf_counter() - t0, engine

    rng_steps = [rng.integers(-100, 100, size=(1, h)).astype(np.float64) for _ in range(24)]
    rng_queries = [rng.normal(size=(t, d)) for _ in range(24)]
    cold_s, _ = decode_loop(use_cache=False)
    warm_s, engine = decode_loop(use_cache=True)
    cache = engine.stats.cache
    print(f"  decode steps            : 24 (context 256 -> {256 + 24})")
    print(f"  uncached loop           : {cold_s * 1e3:8.1f} ms")
    print(f"  cached loop             : {warm_s * 1e3:8.1f} ms "
          f"({cold_s / warm_s:.2f}x)")
    print(f"  cache hits/misses       : {cache.hits}/{cache.misses} "
          f"(invalidations {cache.invalidations})")
    print(f"  prefix rows reused      : {cache.rows_reused} "
          f"(appended {cache.rows_appended})")


def act_cluster(rng: np.random.Generator) -> None:
    print("\n[4] cluster tier: async frontend over 2 sharded worker processes")
    print("-" * 60)
    config = SofaConfig(tile_cols=32, top_k=0.15)
    requests = make_wave(rng, 12, "async")
    # one bit-identical duplicate rides along: dedup shares its execution
    requests.insert(
        1,
        AttentionRequest(
            tokens=requests[0].tokens, q=requests[0].q,
            wk=requests[0].wk, wv=requests[0].wv, tag="duplicate",
        ),
    )
    sequential = [SofaAttention(r.wk, r.wv, config)(r.tokens, r.q) for r in requests]

    async def serve() -> None:
        async with AsyncSofaClient(
            EngineCluster(n_workers=2, config=config, routing="round_robin")
        ) as client:
            cluster = client.backend
            # a burst of concurrent coroutines, one per request
            results = await client.map(requests[:7])
            # a worker dies with work in flight: stall it, queue the crash
            # behind the stall, keep submitting - nothing is dropped
            cluster.stall_worker(0, 0.3)
            cluster.crash_worker(0, hard=False, wait=False)
            results += await client.map(requests[7:])
            stats = cluster.stats
            exact = all(
                a.output.tobytes() == b.output.tobytes()
                and np.array_equal(a.selected, b.selected)
                for a, b in zip(sequential, results)
            )
            print(f"  requests awaited        : {len(results)} "
                  f"(deduped {stats.n_deduped})")
            print(f"  bit-identical vs seq    : {exact}")
            print(f"  worker failures         : {stats.n_worker_failures} "
                  f"(re-routed {stats.n_rerouted}, errors {stats.n_errors})")
            print(f"  served per worker       : "
                  f"{[w.n_requests for w in stats.workers]} "
                  f"(alive {[w.alive for w in stats.workers]})")

    asyncio.run(serve())


def act_socket_supervised(rng: np.random.Generator) -> None:
    print("\n[5] socket transport: supervised standalone workers, kill + respawn")
    print("-" * 60)
    config = SofaConfig(tile_cols=32, top_k=0.15)
    requests = make_wave(rng, 10, "socket")
    sequential = [SofaAttention(r.wk, r.wv, config)(r.tokens, r.q) for r in requests]

    supervisor = SupervisorConfig(
        heartbeat_interval_s=0.05,  # demo pace; production defaults are 1s/10s
        heartbeat_timeout_s=5.0,
        backoff_initial_s=0.02,
    )
    with EngineCluster(
        n_workers=2,
        config=config,
        routing="round_robin",
        transport="socket",  # workers are standalone TCP-framed processes
        supervisor=supervisor,
    ) as cluster:
        first = cluster.run(requests[:5])
        cluster.crash_worker(0, hard=True)  # SIGKILL the worker process
        second = cluster.run(requests[5:])  # survivor absorbs the stream
        deadline = time.monotonic() + 20.0
        while cluster.stats.n_respawns < 1 and time.monotonic() < deadline:
            cluster.poll(0.05)  # supervision respawns the dead slot
        third = cluster.run(requests)  # post-respawn traffic on both workers
        stats = cluster.stats
        exact = all(
            a.output.tobytes() == b.output.tobytes()
            and np.array_equal(a.selected, b.selected)
            for a, b in zip(sequential + sequential, first + second + third)
        )
        print(f"  transport               : {stats.transport} "
              f"(length-prefixed frames, crc32-checked)")
        print(f"  requests served         : {stats.n_completed} "
              f"(errors {stats.n_errors})")
        print(f"  worker failures         : {stats.n_worker_failures} "
              f"(respawns {stats.n_respawns}, "
              f"heartbeat timeouts {stats.n_heartbeat_timeouts})")
        print(f"  workers live            : {stats.live_workers}/2 "
              f"after the kill-and-respawn drill")
        print(f"  bit-identical vs seq    : {exact}")


def act_paged_cache(rng: np.random.Generator) -> None:
    print("\n[6] paged cache: sessions sharing a system prompt, spill under budget")
    print("-" * 60)
    config = SofaConfig(tile_cols=32, top_k=0.25)
    h, d, n_sessions, steps = 48, 48, 6, 4
    wk = rng.normal(size=(h, d))
    wv = rng.normal(size=(h, d))
    prompt = rng.integers(-100, 100, size=(256, h)).astype(np.float64)
    prompt[2, 7] = 120.0  # the loudest token lives in the shared prompt, so
    # every session quantizes with one scale: their prefix state is
    # bit-identical and the paged store's content hashing pools it.

    uncached = SofaEngine(config, max_batch_heads=4)
    paged = SofaEngine(
        config,
        max_batch_heads=4,
        cache_kind="paged",
        cache_block_tokens=32,
        # One monolithic session's worth: only sharing + spill can hold all 6.
        cache_bytes=prompt.shape[0] * (h * 16 + d * 8),
    )
    sessions = [prompt.copy() for _ in range(n_sessions)]
    exact = True
    for step in range(steps):
        for i in range(n_sessions):
            sessions[i] = np.concatenate(
                [sessions[i], rng.integers(-80, 80, size=(1, h)).astype(np.float64)]
            )
            q = rng.normal(size=(1, d))
            base = dict(tokens=sessions[i], q=q, wk=wk, wv=wv)
            got = paged.run([AttentionRequest(**base, cache_key=f"chat-{i}")])[0]
            ref = uncached.run([AttentionRequest(**base)])[0]
            exact &= got.output.tobytes() == ref.output.tobytes()
    cache = paged.cache.stats
    budget = paged.cache.max_bytes
    print(f"  sessions x decode steps : {n_sessions} x {steps} "
          f"(shared prompt {prompt.shape[0]} tokens)")
    print(f"  bit-identical vs uncached: {exact}")
    print(f"  cache hits/misses       : {cache.hits}/{cache.misses} "
          f"(prefix rows reused {cache.rows_reused})")
    print(f"  block pool              : {cache.resident_blocks} resident "
          f"({cache.shared_blocks} shared across sessions, "
          f"{cache.spilled_blocks} spilled)")
    print(f"  RAM budget held         : {cache.resident_bytes} <= {budget} bytes "
          f"(spill loads {cache.spill_loads}, evictions {cache.evictions})")
    paged.shutdown()
    uncached.shutdown()


def act_telemetry(rng: np.random.Generator) -> None:
    print("\n[7] telemetry plane: stitched traces + metrics from a 2-worker cluster")
    print("-" * 60)
    config = SofaConfig(tile_cols=32, top_k=0.15)
    requests = make_wave(rng, 6, "traced")
    sequential = [SofaAttention(r.wk, r.wv, config)(r.tokens, r.q) for r in requests]

    # The env var (not just the in-process switch) so the spawned worker
    # processes inherit the verdict and ship their spans/registries home
    # on the stats channel.
    os.environ[obs.ENV_VAR] = "1"
    obs.reset_telemetry()
    try:
        with EngineCluster(
            n_workers=2, config=config, routing="round_robin", transport="socket"
        ) as cluster:
            results = cluster.run(requests)
            stats = cluster.stats
            telemetry = obs.get_telemetry()
            spans = telemetry.tracer.spans()
            trace = telemetry.tracer.chrome_trace()
            worker_snaps = [w.telemetry for w in stats.workers if w.telemetry]
            merged = obs.merge_snapshots(
                telemetry.registry.snapshot(), *worker_snaps
            )
    finally:
        del os.environ[obs.ENV_VAR]
        obs.reset_telemetry()

    exact = all(
        a.output.tobytes() == b.output.tobytes()
        and np.array_equal(a.selected, b.selected)
        for a, b in zip(sequential, results)
    )
    roots = [s for s in spans if s["name"] == "cluster.request"]
    stitched = sum(
        1
        for root in roots
        if any(
            s["name"] == "worker.request" and s["trace_id"] == root["trace_id"]
            for s in spans
        )
    )
    out_dir = pathlib.Path(tempfile.mkdtemp(prefix="sofa-telemetry-"))
    (out_dir / "trace.json").write_text(json.dumps(trace) + "\n")
    (out_dir / "metrics.json").write_text(json.dumps(merged, indent=2) + "\n")
    latency = merged["histograms"]["sofa_engine_request_latency_seconds"]
    print(f"  bit-identical vs seq    : {exact} (telemetry perturbs nothing)")
    print(f"  spans collected         : {len(spans)} across "
          f"{len({s['pid'] for s in spans})} processes "
          f"({len(roots)} requests, {stitched} stitched to a worker span)")
    print(f"  request latency         : p50 {latency['p50'] * 1e3:.1f} ms / "
          f"p99 {latency['p99'] * 1e3:.1f} ms "
          f"(n={latency['count']}, from the merged worker registries)")
    print(f"  frames over the wire    : "
          f"{merged['counters'].get('sofa_transport_frames_sent_total', 0):.0f} sent / "
          f"{merged['counters'].get('sofa_transport_frames_received_total', 0):.0f} received")
    print(f"  chrome trace (Perfetto) : {out_dir / 'trace.json'}")
    print(f"  metrics snapshot        : {out_dir / 'metrics.json'}")


def act_gateway(rng: np.random.Generator) -> None:
    print("\n[8] HTTP gateway: mixed-tenant overload, shedding + autoscale")
    print("-" * 60)
    config = SofaConfig(tile_cols=32, top_k=0.15)
    requests = make_wave(rng, 24, "http")
    sequential = [SofaAttention(r.wk, r.wv, config)(r.tokens, r.q) for r in requests]

    def body(i: int, tenant: str, deadline_ms: float) -> dict:
        r = requests[i]
        return {
            "tokens": r.tokens.tolist(), "q": r.q.tolist(),
            "wk": r.wk.tolist(), "wv": r.wv.tolist(),
            "tenant": tenant, "deadline_ms": deadline_ms,
        }

    gw_config = GatewayConfig(
        max_queue=6,          # small on purpose: the flood must hit the bound
        overbook_factor=2.0,  # ...but deadline-carrying requests may overbook
        tenants={
            "pro": TenantPolicy(rate=500.0, burst=50.0, priority=0),
            "free": TenantPolicy(rate=2.0, burst=2.0, priority=2),
        },
    )
    # Demo-pace autoscaler: act on the first hot observation (hold_up_s=0)
    # so one burst is enough to watch the pool grow; production holds are
    # seconds, not zero.
    scaler = AutoscalerConfig(
        min_workers=2, max_workers=3, queue_high=1.0, queue_low=0.1,
        hold_up_s=0.0, hold_down_s=60.0, cooldown_s=0.0,
    )

    async def serve() -> None:
        cluster = EngineCluster(
            n_workers=2, config=config, transport="socket",
            supervisor=True, autoscaler=scaler,
        )
        async with AsyncSofaClient(cluster) as client:
            async with SofaGateway(
                client, gw_config, max_inflight=2
            ) as gateway:

                async def post(i: int, tenant: str, deadline_ms: float):
                    # One connection per in-flight request: the keep-alive
                    # client is deliberately not a pipelining one.
                    async with GatewayClient("127.0.0.1", gateway.port) as c:
                        return i, await c.attention(body(i, tenant, deadline_ms))

                # The flood: every request at once, tenants interleaved,
                # every one sheddable (a deadline makes overbooking legal).
                outcomes = await asyncio.gather(*[
                    post(i, "free" if i % 3 == 2 else "pro", 10_000.0)
                    for i in range(len(requests))
                ])

                by_status: dict[int, int] = {}
                exact = True
                for i, (status, _headers, reply) in outcomes:
                    by_status[status] = by_status.get(status, 0) + 1
                    if status == 200:
                        got = np.asarray(reply["output"], dtype=np.float64)
                        exact &= got.tobytes() == sequential[i].output.tobytes()
                stats = cluster.stats
                async with GatewayClient("127.0.0.1", gateway.port) as c:
                    scrape = await c.metrics()
                    health_status, health = await c.healthz()

                print(f"  concurrent flood        : {len(requests)} requests, "
                      f"2 tenants, queue bound {gw_config.max_queue} "
                      f"(overbook x{gw_config.overbook_factor})")
                print(f"  responses by status     : "
                      + ", ".join(f"{n}x {s}" for s, n in sorted(by_status.items())))
                print(f"  completed bit-identical : {exact} "
                      f"(float64 survives the JSON round trip)")
                print(f"  autoscale               : {stats.n_scale_ups} scale-up(s), "
                      f"pool now {len(stats.workers)} worker slot(s) "
                      f"[{health_status} /healthz, "
                      f"{len(health['live_workers'])} live]")
                wanted = {
                    "sofa_gateway_requests_total",
                    "sofa_gateway_completed_total",
                    "sofa_gateway_rate_limited_total",
                    "sofa_gateway_shed_queue_total",
                    "sofa_gateway_shed_deadline_total",
                    "sofa_gateway_request_latency_seconds_count",
                }
                print("  /metrics scrape (one Prometheus text page, merged "
                      "gateway + worker registries):")
                for line in scrape.splitlines():
                    if line.split(" ")[0] in wanted:
                        print(f"    {line}")
        cluster.shutdown()

    asyncio.run(serve())


def main() -> None:
    rng = make_rng(11)
    print("SOFA serving engine demo")
    print("=" * 60)
    act_continuous(rng)
    act_backends(rng)
    act_decode_cache(rng)
    act_cluster(rng)
    act_socket_supervised(rng)
    act_paged_cache(rng)
    act_telemetry(rng)
    act_gateway(rng)


if __name__ == "__main__":
    main()
