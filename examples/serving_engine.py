"""Serving demo: batch a stream of attention requests through SofaEngine.

Simulates production traffic: many independent attention heads (several
sequences, mixed sequence lengths) are submitted to the engine, whose greedy
scheduler groups all requests sharing one ``(S, tile_cols)`` cross-stage
tiling grid into a single fused multi-head pipeline execution.  The demo
verifies that served results are bit-identical to sequential per-head runs
and reports the wall-clock throughput of both paths.

Run:  python examples/serving_engine.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import AttentionRequest, SofaAttention, SofaConfig, SofaEngine
from repro.utils.rng import make_rng


def make_traffic(rng: np.random.Generator, n_requests: int) -> list[AttentionRequest]:
    """A mixed request stream: two sequence-length classes, per-head weights."""
    requests = []
    for i in range(n_requests):
        s = 256 if i % 3 else 128  # two shape classes interleaved
        h, d, t = 32, 32, 8
        requests.append(
            AttentionRequest(
                tokens=rng.integers(-100, 100, size=(s, h)).astype(np.float64),
                q=rng.normal(size=(t, d)),
                wk=rng.normal(size=(h, d)),
                wv=rng.normal(size=(h, d)),
                tag=f"req-{i}",
            )
        )
    return requests


def main() -> None:
    rng = make_rng(11)
    config = SofaConfig(tile_cols=32, top_k=0.15)
    requests = make_traffic(rng, 24)

    print("SOFA serving engine demo")
    print("=" * 60)

    # -------------------------------------------------- batched serving path
    engine = SofaEngine(config, max_batch_heads=16)
    t0 = time.perf_counter()
    futures = engine.submit_many(requests)
    records = engine.flush()
    results = [f.result() for f in futures]
    batched_s = time.perf_counter() - t0

    # ------------------------------------------------- sequential head loop
    t0 = time.perf_counter()
    sequential = [
        SofaAttention(r.wk, r.wv, config)(r.tokens, r.q) for r in requests
    ]
    sequential_s = time.perf_counter() - t0

    exact = all(
        np.array_equal(a.selected, b.selected) and a.output.tobytes() == b.output.tobytes()
        for a, b in zip(sequential, results)
    )

    print(f"requests submitted      : {len(requests)}")
    print(f"batches executed        : {len(records)}")
    for rec in records:
        print(
            f"  - {rec.n_heads:2d} heads on the (S={rec.seq_len}, "
            f"Bc={rec.tile_cols}) grid"
        )
    print(f"mean heads per batch    : {engine.stats.mean_batch_heads:.1f}")
    print(f"bit-identical to loop   : {exact}")
    print(f"sequential wall clock   : {sequential_s * 1e3:8.1f} ms "
          f"({len(requests) / sequential_s:7.1f} req/s)")
    print(f"engine wall clock       : {batched_s * 1e3:8.1f} ms "
          f"({len(requests) / batched_s:7.1f} req/s)")
    print(f"throughput gain         : {sequential_s / batched_s:.2f}x")
    total_triggers = sum(r.assurance_triggers for r in results)
    print(f"max-ensure activations  : {total_triggers} across the stream")


if __name__ == "__main__":
    main()
