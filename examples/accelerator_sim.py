"""Cycle-level accelerator walkthrough: per-module energy, RASS, pipeline.

Runs one LTPP workload through the functional pipeline, feeds the measured
selection statistics into the cycle-approximate SOFA accelerator model, and
prints the module-level energy attribution (Table III style), the RASS vs
naive KV schedule, and the tiled-pipeline timing.

Run:  python examples/accelerator_sim.py
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SofaConfig
from repro.core.pipeline import SofaAttention
from repro.hw.accelerator import SofaAccelerator, shape_from_pipeline
from repro.hw.area_power import SOFA_MODULES, total_area_mm2
from repro.hw.scheduler.rass import naive_schedule, rass_schedule
from repro.model.workloads import make_workload
from repro.utils.tables import format_table


def main() -> None:
    workload = make_workload(
        "bloom-1b7/wikitext2", n_queries=64, head_dim=64, seq_len=512, seed=9
    )
    config = SofaConfig(tile_cols=64, top_k=0.12)

    # Functional pipeline: produces the selection + assurance statistics.
    pipeline = SofaAttention(workload.wk, workload.wv, config)
    res = pipeline(workload.tokens, workload.q)
    requirements = [set(map(int, row)) for row in res.selected]

    shape = shape_from_pipeline(
        workload.n_queries, workload.seq_len, workload.tokens.shape[1],
        workload.head_dim, res.selected, res.assurance_triggers,
    )
    accelerator = SofaAccelerator(config=config)
    report = accelerator.run(shape, kv_requirements=requirements)
    baseline = accelerator.run_whole_row_baseline(shape, kv_requirements=requirements)

    print("SOFA accelerator simulation")
    print("=" * 64)
    print(f"workload          : {workload.case.name}, T={shape.n_queries}, "
          f"S={shape.seq_len}, k={shape.selected_per_row}")
    print(f"chip              : {total_area_mm2():.2f} mm^2 @ 28nm, "
          f"{accelerator.clock_hz/1e9:.0f} GHz, 128-query lanes")
    print(f"cycles            : {report.cycles:,.0f} "
          f"(whole-row baseline: {baseline.cycles:,.0f}, "
          f"{baseline.cycles/report.cycles:.2f}x)")
    print(f"pipeline speedup  : {report.pipeline_speedup:.2f}x over stage-serial")
    print(f"dram traffic      : {report.dram_bytes/1e3:.0f} KB "
          f"(baseline {baseline.dram_bytes/1e3:.0f} KB, "
          f"-{1-report.dram_bytes/baseline.dram_bytes:.0%})")
    print()

    total = report.total_energy_j
    rows = []
    for module, energy in sorted(report.energy_core_j.items()):
        spec = next((m for m in SOFA_MODULES if m.name == module), None)
        params = spec.parameters if spec else "-"
        rows.append((module, params, energy * 1e6, energy / total))
    rows.append(("sram", "192+96+28 KB", report.sram_energy_j * 1e6,
                 report.sram_energy_j / total))
    rows.append(("dram interface", "HBM2 PHY", report.dram_interface_energy_j * 1e6,
                 report.dram_interface_energy_j / total))
    rows.append(("dram devices", "HBM2 x16ch", report.dram_device_energy_j * 1e6,
                 report.dram_device_energy_j / total))
    print(
        format_table(
            ["module", "parameters", "energy_uJ", "share"],
            rows,
            formats=[None, None, ".2f", ".1%"],
            title="Energy attribution",
        )
    )

    naive = naive_schedule(requirements, capacity=64)
    rass = rass_schedule(requirements, capacity=64)
    print(f"\nRASS KV schedule  : {rass.vector_loads} vector loads in "
          f"{len(rass.phases)} phases "
          f"(naive: {naive.vector_loads}, "
          f"-{1-rass.vector_loads/naive.vector_loads:.0%})")
    unique = int(np.unique(res.selected).size)
    print(f"unique KV pairs   : {unique} "
          f"({unique/workload.seq_len:.0%} of tokens generated on demand)")


if __name__ == "__main__":
    main()
