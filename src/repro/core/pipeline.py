"""The cross-stage coordinated tiled pipeline (the SOFA end-to-end flow).

This module fuses the three dynamic-sparsity stages under one tiling grid
(Fig. 6): a row of S keys is covered by Tc tiles of width Bc, and the *same*
tiles serve as

* DLZS prediction units of work (one K_hat/A_hat tile at a time),
* SADS sub-segments (each tile selects its top-(k/Tc) share), and
* SU-FA processing blocks (selected keys stream through in sorted order).

Consequences modeled here:

* **No intermediate DRAM traffic** - a Pre-Atten tile (T x Bc) lives entirely
  in SRAM and is consumed by the tile's sorter before the next tile arrives;
  the full (T, S) Pre-Atten/Atten matrices are never materialized off-chip.
  The accounting that proves it feeds Fig. 20(a).
* **On-demand KV generation** - only keys/values that survive selection are
  generated at formal precision (``K = x W_k`` etc. for selected tokens
  only), eliminating the wasted projection work of generate-everything
  baselines.
* **Fine-grained stage overlap** - per-tile latencies feed the hw pipeline
  model; the functional result here is exact regardless of overlap.

This module is the single-head operator; ``repro.engine`` executes whole
``(batch * heads)`` stacks through the same stages in fused NumPy ops, with
bit-for-bit identical per-head results (the float paths route through the
batch-invariant primitives in ``repro.numerics.linalg``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attention.reference import masked_attention
from repro.attention.topk import indices_to_mask
from repro.core.config import SofaConfig
from repro.core.dlzs import DlzsPredictor
from repro.core.sads import SadsSorter
from repro.core.sufa import UpdateOrder, sorted_updating_attention
from repro.kernels.predict_select_fused import fused_pair
from repro.kernels.registry import get_kernel
from repro.numerics.complexity import OpCounter, matmul_ops
from repro.numerics.linalg import det_matmul


def prediction_trace_bytes(
    cfg: SofaConfig, s: int, h: int, dk: int, t: int
) -> tuple[float, float]:
    """(dram, sram) bytes of the DLZS stage - shared with the batched engine."""
    pred_bits = cfg.dlzs.token_bits
    dram = float(s) * h * (pred_bits // 8)  # token stream
    dram += h * dk * 0.5  # 4-bit LZ codes
    sram = float(t) * cfg.tile_cols * 2 + cfg.tile_cols * h
    return dram, sram


def sads_trace_sram(cfg: SofaConfig, t: int, k_count: int) -> float:
    """SRAM high-water mark of the SADS stage (its DRAM traffic is zero)."""
    return float(t) * cfg.tile_cols * 2 + float(t) * k_count * 4


def formal_trace_bytes(
    cfg: SofaConfig, u: int, h: int, t: int, d: int, dk: int, dv: int
) -> tuple[float, float]:
    """(dram, sram) bytes of the on-demand-KV + SU-FA stage.

    ``u`` is the number of unique selected tokens (the re-read set).
    """
    dram = (
        u * h * 1.0  # re-read selected tokens (8-bit)
        + float(t) * d * 2  # Q stream (16-bit)
        + float(t) * dv * 2  # output write
    )
    sram = float(t) * d * 2 + 2 * cfg.tile_cols * dk * 2 + float(t) * (dv + 2) * 2
    return dram, sram


@dataclass
class StageTrace:
    """Per-stage accounting of one pipeline run.

    ``dram_bytes`` follows the tiled dataflow: intermediates stay on chip, so
    only true inputs/outputs appear.  ``sram_peak_bytes`` is the high-water
    mark of live tile state.
    """

    name: str
    ops: OpCounter
    dram_bytes: float
    sram_peak_bytes: float


@dataclass
class SofaAttentionResult:
    """Full result of the SOFA attention pipeline.

    Attributes
    ----------
    output:
        ``(T, D)`` sparse attention output (exact over the selected set).
    selected:
        ``(T, k)`` selected key indices in descending estimated score.
    stages:
        Per-stage op/memory traces (prediction, sorting, formal).
    assurance_triggers:
        Max-Ensuring circuit activations inside SU-FA.
    reference_mask:
        Boolean mask equivalent of ``selected`` for fidelity checks.
    """

    output: np.ndarray
    selected: np.ndarray
    stages: list[StageTrace]
    assurance_triggers: int

    @property
    def total_ops(self) -> OpCounter:
        total = OpCounter()
        for st in self.stages:
            total = total + st.ops
        return total

    @property
    def total_dram_bytes(self) -> float:
        return sum(st.dram_bytes for st in self.stages)

    @property
    def reference_mask(self) -> np.ndarray:
        s = int(self.selected.max()) + 1 if self.selected.size else 0
        return indices_to_mask(self.selected, max(s, self._row_len))

    _row_len: int = 0


class SofaAttention:
    """The SOFA attention operator: DLZS -> SADS -> SU-FA under shared tiling.

    Construction pre-converts the key projection weights (offline step);
    :meth:`__call__` executes the online tiled pipeline for one attention
    head given token activations and the query matrix.
    """

    def __init__(self, wk: np.ndarray, wv: np.ndarray, config: SofaConfig | None = None):
        self.config = config or SofaConfig()
        self.predictor = DlzsPredictor(wk, self.config.dlzs)
        self._wk = np.asarray(wk, dtype=np.float64)
        self._wv = np.asarray(wv, dtype=np.float64)
        sads_cfg = self.config.sads
        self.sorter = SadsSorter(sads_cfg)

    def __call__(
        self,
        tokens: np.ndarray,
        q: np.ndarray,
        k_scale: float = 1.0,
        v_scale: float = 1.0,
        v: np.ndarray | None = None,
    ) -> SofaAttentionResult:
        """Run the pipeline: predict, select, and compute sparse attention.

        Parameters
        ----------
        tokens:
            ``(S, H)`` token activations (integer-range; the pre-compute
            stage quantizes internally).
        q:
            ``(T, D)`` formal-precision query matrix.
        k_scale / v_scale:
            Scales applied to the on-demand generated K/V (the model
            substrate folds normalization constants here).
        v:
            Optional ``(S, Dv)`` pre-computed value matrix (a serving value
            cache).  When given, SU-FA consumes it directly and the
            on-demand generation (and its op charge) covers keys only.
        """
        tokens = np.asarray(tokens, dtype=np.float64)
        q = np.asarray(q, dtype=np.float64)
        s = tokens.shape[0]
        t = q.shape[0]
        cfg = self.config
        k_count = cfg.resolve_top_k(s)
        n_tiles = cfg.n_tiles(s)

        # ------------------------------------------- stages 1+2: DLZS + SADS
        # Both stages resolve through the per-stage kernel registries; when
        # they resolve to the same fused engine, prediction and selection run
        # tile by tile and the full (T, S) score matrix is never built.
        # Either way the bits (indices, op tallies) are those of the
        # reference predict -> select_stack pipeline.
        predict_kernel = get_kernel("predict", cfg.dlzs.kernel)
        select_kernel = get_kernel("select", cfg.sads.kernel)
        # The coordinated tiling: the sorter's segments ARE the Bc tiles.
        sorter = SadsSorter(cfg.sads_for(n_tiles))
        fused = fused_pair(predict_kernel, select_kernel)
        if fused is not None:
            prep, stack = fused.run_single(
                self.predictor, sorter, tokens, q, k_count
            )
            pred_ops = prep.ops
        else:
            pred = predict_kernel(self.predictor, tokens, q)
            pred_ops = pred.ops
            stack = select_kernel(sorter, pred.a_hat, k_count)
        selected = stack.indices

        pred_dram, pred_sram = prediction_trace_bytes(
            cfg, s, tokens.shape[1], self._wk.shape[1], t
        )
        stage1 = StageTrace("dlzs_prediction", pred_ops, pred_dram, pred_sram)
        sads_ops = OpCounter()
        sads_ops.add_op("compare", float(stack.compare_rows.sum()))
        stage2 = StageTrace(
            "sads_topk",
            sads_ops,
            0.0,  # Pre-Atten tiles never leave SRAM in the tiled dataflow
            sads_trace_sram(cfg, t, k_count),
        )

        # ------------------------------------------- stage 3: on-demand KV + SU-FA
        unique_tokens = np.unique(selected)
        k_mat = np.zeros((s, self._wk.shape[1]))
        k_mat[unique_tokens] = det_matmul(tokens[unique_tokens], self._wk) * k_scale
        kv_ops = matmul_ops(unique_tokens.size, tokens.shape[1], self._wk.shape[1])
        if v is None:
            v_mat = np.zeros((s, self._wv.shape[1]))
            v_mat[unique_tokens] = det_matmul(tokens[unique_tokens], self._wv) * v_scale
            kv_ops = kv_ops + matmul_ops(
                unique_tokens.size, tokens.shape[1], self._wv.shape[1]
            )
        else:
            v_mat = np.asarray(v, dtype=np.float64)
            if v_mat.ndim != 2 or v_mat.shape[0] != s:
                raise ValueError("value cache must be (S, Dv)")

        sufa = sorted_updating_attention(
            q,
            k_mat,
            v_mat,
            selected,
            order=UpdateOrder.DESCENDING if cfg.sufa.descending else UpdateOrder.ASCENDING,
            max_assurance=cfg.sufa.max_assurance,
            tile_cols=cfg.tile_cols,
            kernel=cfg.sufa.kernel,
        )
        formal_dram, formal_sram = formal_trace_bytes(
            cfg,
            unique_tokens.size,
            tokens.shape[1],
            t,
            q.shape[1],
            self._wk.shape[1],
            v_mat.shape[1],
        )
        stage3 = StageTrace(
            "sufa_formal", kv_ops + sufa.ops, formal_dram, formal_sram
        )

        result = SofaAttentionResult(
            output=sufa.output,
            selected=selected,
            stages=[stage1, stage2, stage3],
            assurance_triggers=sufa.assurance_triggers,
        )
        result._row_len = s
        return result

    def reference_output(
        self,
        tokens: np.ndarray,
        q: np.ndarray,
        selected: np.ndarray,
        k_scale: float = 1.0,
        v_scale: float = 1.0,
    ) -> np.ndarray:
        """Exact masked attention over the same selected set (golden model)."""
        tokens = np.asarray(tokens, dtype=np.float64)
        k_mat = tokens @ self._wk * k_scale
        v_mat = tokens @ self._wv * v_scale
        mask = indices_to_mask(selected, tokens.shape[0])
        return masked_attention(q, k_mat, v_mat, mask)


def sofa_attention(
    tokens: np.ndarray,
    q: np.ndarray,
    wk: np.ndarray,
    wv: np.ndarray,
    config: SofaConfig | None = None,
    k_scale: float = 1.0,
    v_scale: float = 1.0,
) -> SofaAttentionResult:
    """Functional one-shot wrapper around :class:`SofaAttention`."""
    op = SofaAttention(wk, wv, config)
    return op(tokens, q, k_scale=k_scale, v_scale=v_scale)
