"""Zero-eliminator measurement for the DLZS engine (paper Fig. 12).

The DLZS engine's datapath starts with a zero-eliminator: operands whose
converted (LZ-format) factor is zero contribute nothing to the shift-add
accumulation and are removed before they occupy the array.  The *benefit* is
workload-dependent - quantized weights and token activations carry different
zero densities - so the hardware model takes the measured nonzero fraction
as an input rather than assuming one.

This module provides those measurements from real operand tensors, plus the
effective-throughput model of an eliminator with a finite scan window (the
hardware can only skip zeros it finds within its lookahead).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ZeroProfile:
    """Zero structure of one operand tensor.

    ``nonzero_fraction`` is the share of elements that reach the array;
    ``column_nonzero`` per-column shares (the engine schedules by weight
    column, so column-level imbalance limits the realizable skip rate).
    """

    nonzero_fraction: float
    column_nonzero: np.ndarray

    @property
    def worst_column_fraction(self) -> float:
        return float(self.column_nonzero.max()) if self.column_nonzero.size else 0.0


def profile_zeros(operand: np.ndarray) -> ZeroProfile:
    """Measure the zero structure of a (quantized) operand matrix."""
    arr = np.asarray(operand)
    if arr.ndim != 2:
        raise ValueError("operand must be 2-D")
    nonzero = arr != 0
    total = arr.size or 1
    per_col = nonzero.mean(axis=0) if arr.shape[0] else np.zeros(arr.shape[1])
    return ZeroProfile(
        nonzero_fraction=float(nonzero.sum() / total),
        column_nonzero=per_col.astype(np.float64),
    )


def effective_nonzero_fraction(profile: ZeroProfile, lookahead: int = 4) -> float:
    """The skip rate a finite-lookahead eliminator actually realizes.

    A window of ``lookahead`` operands can compress at most ``lookahead - 1``
    zeros per surviving element; with window w the floor on issued work is
    ``1/w``.  Dense columns bound the schedule (lanes sharing a column wait
    for its stragglers), so the realizable fraction is the mean of per-column
    fractions clamped at the window floor.
    """
    if lookahead < 1:
        raise ValueError("lookahead must be >= 1")
    floor = 1.0 / lookahead
    cols = np.maximum(profile.column_nonzero, floor)
    return float(cols.mean()) if cols.size else 1.0


def quantization_zero_fraction(values: np.ndarray, bits: int) -> float:
    """Fraction of elements a ``bits``-wide symmetric quantizer zeroes out.

    Convenience for workload studies: narrower prediction widths produce
    more zeros (values under half an LSB), which the eliminator converts
    into energy savings - one of DLZS's compounding effects.
    """
    from repro.numerics.fixed_point import quantize

    q = quantize(np.asarray(values, dtype=np.float64), bits)
    return float(np.mean(q.values == 0))
