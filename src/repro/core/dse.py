"""Design-space exploration for per-layer tiling size and top-k (Sec. III-D).

The tiling size Bc of each layer and the global top-k ratio form a large
design space (the paper counts >1e15 points for BERT-Base), searched with
Bayesian optimization: a Gaussian-process surrogate over the objective

    L(R) = L_en + alpha * L_cmp + beta * L_exp          (Eq. 2)

where ``L_en`` is the task loss (our output-fidelity proxy), ``L_cmp``
penalizes sorting cost (Eq. 3: sum(Bc_i * k) / sum(S * k)) and ``L_exp``
penalizes SU-FA exponential work (Eq. 4: sum(S / Bc_i)).

Everything is implemented from scratch on numpy: an RBF-kernel GP with
cached Cholesky solves and an expected-improvement acquisition evaluated on
candidate samples from the discrete space (Tc in 2..32 step 2, top-k in
5%..50% step 5%), matching Alg. 1's loop structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.utils.rng import make_rng

TC_CHOICES: tuple[int, ...] = tuple(range(2, 33, 2))
TOPK_CHOICES: tuple[float, ...] = tuple(round(0.05 * i, 2) for i in range(1, 11))


@dataclass(frozen=True)
class DsePoint:
    """One candidate: per-layer tile counts (Tc) plus the top-k fraction."""

    tc_per_layer: tuple[int, ...]
    top_k: float

    def bc_per_layer(self, seq_len: int) -> tuple[int, ...]:
        """Convert tile counts to tile widths for a given sequence length."""
        return tuple(max(seq_len // tc, 1) for tc in self.tc_per_layer)

    def as_vector(self) -> np.ndarray:
        return np.array([*self.tc_per_layer, self.top_k * 100.0], dtype=np.float64)


def complexity_penalties(point: DsePoint, seq_len: int) -> tuple[float, float]:
    """The (L_cmp, L_exp) penalty pair of Eqs. (3)/(4), normalized.

    ``L_cmp`` grows with tile width Bc (bigger segments sort more per tile);
    ``L_exp`` grows with tile count S/Bc (more tiles mean more SU-FA
    synchronization/exponential overhead) - the tension the DSE balances.
    """
    bcs = point.bc_per_layer(seq_len)
    l_cmp = sum(bc * point.top_k for bc in bcs) / (len(bcs) * seq_len * point.top_k)
    l_exp = sum(seq_len / bc for bc in bcs) / (len(bcs) * seq_len)
    return float(l_cmp), float(l_exp)


class GaussianProcess:
    """Minimal RBF-kernel GP regressor (zero mean, jittered Cholesky)."""

    def __init__(self, length_scale: float = 8.0, signal_var: float = 1.0, noise: float = 1e-6):
        self.length_scale = length_scale
        self.signal_var = signal_var
        self.noise = noise
        self._x: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._chol: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq = np.sum(a**2, axis=1)[:, None] + np.sum(b**2, axis=1)[None, :] - 2 * a @ b.T
        return self.signal_var * np.exp(-0.5 * np.maximum(sq, 0.0) / self.length_scale**2)

    def fit(self, x: np.ndarray, y: np.ndarray) -> None:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64)
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        yn = (y - self._y_mean) / self._y_std
        k = self._kernel(x, x) + self.noise * np.eye(len(x))
        self._chol = np.linalg.cholesky(k)
        self._alpha = np.linalg.solve(
            self._chol.T, np.linalg.solve(self._chol, yn)
        )
        self._x = x

    def predict(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at query points."""
        if self._x is None:
            raise RuntimeError("GP must be fit before predict")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        k_star = self._kernel(x, self._x)
        mean = k_star @ self._alpha * self._y_std + self._y_mean
        v = np.linalg.solve(self._chol, k_star.T)
        var = self.signal_var - np.sum(v**2, axis=0)
        std = np.sqrt(np.maximum(var, 1e-12)) * self._y_std
        return mean, std


def expected_improvement(mean: np.ndarray, std: np.ndarray, best: float) -> np.ndarray:
    """EI for *minimization*: E[max(best - f, 0)] under the GP posterior."""
    from scipy.stats import norm

    z = (best - mean) / std
    return (best - mean) * norm.cdf(z) + std * norm.pdf(z)


@dataclass
class DseResult:
    """Search outcome: the best point, its objective, and the trace."""

    best_point: DsePoint
    best_objective: float
    history: list[tuple[DsePoint, float]] = field(default_factory=list)

    @property
    def objectives(self) -> np.ndarray:
        return np.array([obj for _, obj in self.history])

    @property
    def best_so_far(self) -> np.ndarray:
        return np.minimum.accumulate(self.objectives)


class BayesianDse:
    """Alg. 1: GP-guided search over (per-layer Tc, top-k).

    Parameters
    ----------
    evaluate_loss:
        ``f(point) -> L_en`` - the task-loss term (experiments pass an
        output-fidelity evaluation over a workload; tests pass synthetic
        landscapes).
    n_layers / seq_len:
        Problem dimensions.
    alpha / beta:
        Penalty coefficients of Eq. (2); the paper tunes them per model
        (e.g. 0.24/0.31 for BERT, 0.58/0.63 for Llama).
    """

    def __init__(
        self,
        evaluate_loss: Callable[[DsePoint], float],
        n_layers: int,
        seq_len: int,
        alpha: float = 0.3,
        beta: float = 0.3,
        seed: int | None = None,
    ):
        if n_layers < 1:
            raise ValueError("n_layers must be >= 1")
        self.evaluate_loss = evaluate_loss
        self.n_layers = n_layers
        self.seq_len = seq_len
        self.alpha = alpha
        self.beta = beta
        self.rng = make_rng(seed)

    def objective(self, point: DsePoint) -> float:
        """The full Eq. (2) objective at one point."""
        l_en = self.evaluate_loss(point)
        l_cmp, l_exp = complexity_penalties(point, self.seq_len)
        return l_en + self.alpha * l_cmp + self.beta * l_exp

    def _random_point(self) -> DsePoint:
        tcs = tuple(
            int(self.rng.choice(TC_CHOICES)) for _ in range(self.n_layers)
        )
        return DsePoint(tc_per_layer=tcs, top_k=float(self.rng.choice(TOPK_CHOICES)))

    def search(
        self,
        n_iterations: int = 40,
        n_init: int = 8,
        n_candidates: int = 256,
        convergence_patience: int = 15,
    ) -> DseResult:
        """Run the Bayesian-optimization loop of Alg. 1.

        Each iteration fits the GP to observed (point, objective) pairs,
        samples candidate points, and evaluates the EI argmax.  Stops early
        when the incumbent has not improved for ``convergence_patience``
        iterations ("result does not converge" guard of Alg. 1).
        """
        history: list[tuple[DsePoint, float]] = []
        seen: set[tuple] = set()

        def consider(point: DsePoint) -> float:
            obj = self.objective(point)
            history.append((point, obj))
            seen.add((point.tc_per_layer, point.top_k))
            return obj

        for _ in range(max(n_init, 2)):
            consider(self._random_point())

        best_idx = int(np.argmin([o for _, o in history]))
        best_point, best_obj = history[best_idx]
        stale = 0

        gp = GaussianProcess(length_scale=max(self.n_layers, 4.0))
        while len(history) < n_iterations and stale < convergence_patience:
            xs = np.stack([p.as_vector() for p, _ in history])
            ys = np.array([o for _, o in history])
            gp.fit(xs, ys)

            candidates = [self._random_point() for _ in range(n_candidates)]
            fresh = [
                c for c in candidates if (c.tc_per_layer, c.top_k) not in seen
            ]
            if not fresh:
                break
            cand_x = np.stack([c.as_vector() for c in fresh])
            mean, std = gp.predict(cand_x)
            ei = expected_improvement(mean, std, best_obj)
            pick = fresh[int(np.argmax(ei))]
            obj = consider(pick)
            if obj < best_obj:
                best_obj, best_point = obj, pick
                stale = 0
            else:
                stale += 1

        return DseResult(best_point=best_point, best_objective=best_obj, history=history)


def grid_search(
    evaluate: Callable[[DsePoint], float],
    n_layers: int,
    tc_choices: tuple[int, ...] = TC_CHOICES,
    topk_choices: tuple[float, ...] = TOPK_CHOICES,
) -> DseResult:
    """Exhaustive search with *uniform* per-layer tiling (test oracle only).

    The full per-layer grid is intractable (that is the point of Alg. 1);
    restricting to uniform tilings gives a small exact reference that the
    Bayesian search should approach on smooth landscapes.
    """
    history: list[tuple[DsePoint, float]] = []
    for tc in tc_choices:
        for k in topk_choices:
            point = DsePoint(tc_per_layer=(tc,) * n_layers, top_k=k)
            history.append((point, evaluate(point)))
    best_point, best_obj = min(history, key=lambda it: it[1])
    return DseResult(best_point=best_point, best_objective=best_obj, history=history)
