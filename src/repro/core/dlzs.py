"""DLZS: differential leading-zero summation sparsity prediction (Sec. III-A).

DLZS replaces the multiplications of the pre-compute stage with shift-adds by
converting *one* operand of each product into the log domain:

    x * y  ~=  XOR(sign_x, sign_y) * |x| << (W - LZ(y))

where ``LZ(y)`` is y's leading-zero count in a W-bit field.  Keeping x exact
("differential") halves both the converter hardware and the approximation
error relative to the vanilla scheme that one-hot encodes *both* operands.

The cross-phase flow (paper Fig. 7(a)):

1.1 *Key prediction*: ``K_hat = tokens @ Wk`` with Wk pre-converted to LZ
    codes offline (weights are static), so no LZE runs at inference.
1.2 *Attention prediction*: ``A_hat = Q @ K_hat^T`` with **Q** converted to
    the log domain (not K_hat - converting the freshly-estimated operand
    would compound the phase-1 error).

Both phases are add/shift-only; the module counts shifts/adds/LZC uses so
ablations can compare DLZS against 4-bit multiplication baselines.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Sequence

import numpy as np

from repro.core.config import DlzsConfig
from repro.numerics.complexity import OpCounter
from repro.numerics.fixed_point import quantize, quantize_stack, quantize_with_scale

from repro.numerics.leading_zero import (
    ConfigurableLZE,
    leading_zeros,
    lz_decode_magnitude,
)

if TYPE_CHECKING:
    from repro.engine.cache import DecodeStepCache


@dataclass
class DlzsMatmulResult:
    """Approximate product matrix plus operation accounting."""

    values: np.ndarray
    ops: OpCounter


def dlzs_matmul(
    exact_operand: np.ndarray,
    converted_operand: np.ndarray,
    width: int,
    count_conversion: bool = True,
) -> DlzsMatmulResult:
    """Approximate ``exact_operand @ converted_operand`` with shift-adds.

    Parameters
    ----------
    exact_operand:
        ``(M, K)`` integer matrix kept at full precision (the "differential"
        operand that is only shifted).
    converted_operand:
        ``(K, N)`` integer matrix replaced by sign * 2^(width - LZ).
    width:
        Bit width of the converted operand's field.
    count_conversion:
        Whether LZC work is charged (False when codes were pre-converted
        offline, as for the static Wk).
    """
    a = np.asarray(exact_operand, dtype=np.int64)
    b = np.asarray(converted_operand, dtype=np.int64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} x {b.shape}")

    signs = np.sign(b)
    lz = leading_zeros(b, width)
    ops = OpCounter()
    if count_conversion:
        ops.add_op("lzc", b.size)

    # Each product |a_mk| << (width - lz_kn) with the XOR'd sign, then summed
    # over k. Vectorized: decode the power-of-two magnitude once per b entry.
    pow2 = lz_decode_magnitude(lz, width)  # (K, N)
    signed_pow2 = signs * pow2
    approx = a @ signed_pow2  # shifts realized as power-of-two multiplies

    m, k_dim = a.shape
    n = b.shape[1]
    nonzero = int(np.count_nonzero(signed_pow2))
    # One shift + one XOR per contributing product; adds for accumulation.
    ops.add_op("shift", float(m) * nonzero)
    ops.add_op("xor", float(m) * nonzero)
    ops.add_op("add", float(m) * max(k_dim - 1, 0) * n)
    return DlzsMatmulResult(values=approx.astype(np.int64), ops=ops)


def vanilla_lz_matmul(
    a: np.ndarray, b: np.ndarray, width: int
) -> DlzsMatmulResult:
    """The vanilla leading-zero scheme: BOTH operands one-hot encoded.

    Used by the Fig. 7(c) comparison: it needs two converters per product and
    its error is roughly double DLZS's because both mantissas are dropped.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} x {b.shape}")
    ops = OpCounter()
    ops.add_op("lzc", a.size + b.size)
    a_pow = np.sign(a) * lz_decode_magnitude(leading_zeros(a, width), width)
    b_pow = np.sign(b) * lz_decode_magnitude(leading_zeros(b, width), width)
    approx = a_pow @ b_pow
    m, k_dim = a.shape
    n = b.shape[1]
    nonzero = int(np.count_nonzero(b_pow))
    ops.add_op("shift", float(m) * nonzero)
    ops.add_op("xor", float(m) * nonzero)
    ops.add_op("add", float(m) * max(k_dim - 1, 0) * n)
    return DlzsMatmulResult(values=approx.astype(np.int64), ops=ops)


@dataclass
class PredictionResult:
    """Cross-phase DLZS prediction output.

    ``a_hat`` approximates the formal scores up to a positive per-workload
    scale (rank order is what the top-k stage consumes, so any positive
    scaling is irrelevant); ``k_hat`` is the intermediate key estimate.
    """

    a_hat: np.ndarray
    k_hat: np.ndarray
    ops: OpCounter
    scale: float


@dataclass
class PreparedPrediction:
    """Phase-1.1 state plus the encoded query, *before* the score matmul.

    Everything :meth:`DlzsPredictor.predict` produces except ``a_hat``
    itself: the truncated key estimate, the query's signed power-of-two
    codes, the quantization scale, and the **complete** op accounting
    (every DLZS charge is a function of shapes and nonzero counts, so it
    needs no score values).  ``a_hat`` equals
    ``(pow2 @ k_hat.T).astype(float64) * scale`` - and because integer
    matmul is exact per output element, any *column block* of it equals
    ``(pow2 @ k_hat[lo:hi].T).astype(float64) * scale`` bit for bit, which
    is what lets the fused predict+select kernel
    (:mod:`repro.kernels.predict_select_fused`) stream score tiles without
    ever materializing the full matrix.
    """

    k_hat: np.ndarray  # (S, D') int64, truncated to intermediate_bits
    pow2: np.ndarray  # (T, D') int64 signed power-of-two query codes
    scale: float
    ops: OpCounter


class DlzsPredictor:
    """Stateful cross-phase DLZS predictor with pre-converted weights.

    Mirrors the hardware flow: construction pre-converts ``Wk`` to (sign, LZ)
    codes (the offline "model preparation" step of Fig. 16); calls to
    :meth:`predict` then run phases 1.1/1.2 with add/shift work only.
    """

    def __init__(self, wk: np.ndarray, config: DlzsConfig | None = None):
        self.config = config or DlzsConfig()
        wk = np.asarray(wk)
        if wk.ndim != 2:
            raise ValueError("Wk must be 2-D (H, D)")
        if np.issubdtype(wk.dtype, np.floating):
            self._wk_int = quantize(wk, self.config.weight_bits).values
        else:
            self._wk_int = wk.astype(np.int64)
        w = self.config.weight_bits
        self._wk_signs = np.sign(self._wk_int)
        self._wk_lz = leading_zeros(self._wk_int, w)
        self._wk_pow2 = self._wk_signs * lz_decode_magnitude(self._wk_lz, w)

    @property
    def stored_weight_bits(self) -> int:
        """Bits stored per weight: sign + LZ code (paper: 8-bit -> 4-bit)."""
        w = self.config.weight_bits
        return 1 + max(int(np.ceil(np.log2(w + 1))), 1)

    def predict_keys(self, tokens: np.ndarray) -> DlzsMatmulResult:
        """Phase 1.1: ``K_hat = tokens @ Wk`` via pre-converted LZ weights.

        No LZE runs here - the conversion happened offline (that is the
        "converter free" feature of Fig. 7(b)).
        """
        tok = np.asarray(tokens)
        if np.issubdtype(tok.dtype, np.floating):
            tok = quantize(tok, self.config.token_bits).values
        tok = tok.astype(np.int64)
        approx = tok @ self._wk_pow2
        ops = OpCounter()
        m = tok.shape[0]
        nonzero = int(np.count_nonzero(self._wk_pow2))
        ops.add_op("shift", float(m) * nonzero)
        ops.add_op("xor", float(m) * nonzero)
        ops.add_op("add", float(m) * max(tok.shape[1] - 1, 0) * self._wk_pow2.shape[1])
        return DlzsMatmulResult(values=approx.astype(np.int64), ops=ops)

    def predict_prepared(self, tokens: np.ndarray, q: np.ndarray) -> PreparedPrediction:
        """Phases 1.1 + query encoding, stopping short of the score matmul.

        Returns the :class:`PreparedPrediction` from which ``A_hat`` (or
        any column block of it) follows by one exact integer matmul; the
        op accounting is already complete because every DLZS charge
        depends only on shapes and nonzero counts, never on score values.
        """
        key_res = self.predict_keys(tokens)
        ops = key_res.ops

        # Truncate K_hat to the intermediate width (hardware keeps <=16 bits).
        k_hat_q = quantize(key_res.values, self.config.intermediate_bits)
        k_hat = k_hat_q.values

        q_arr = np.asarray(q)
        if np.issubdtype(q_arr.dtype, np.floating):
            q_q = quantize(q_arr, self.config.query_bits)
            q_int, q_scale = q_q.values, q_q.scale
        else:
            q_int, q_scale = q_arr.astype(np.int64), 1.0

        lze = ConfigurableLZE(mode_bits=self.config.query_bits)
        q_signs, q_lz = lze.encode(q_int)
        ops.add_op("lzc", q_int.size)

        width = self.config.query_bits
        pow2 = q_signs * lz_decode_magnitude(q_lz, width)  # (T, D)
        t, d = q_int.shape
        nonzero = int(np.count_nonzero(pow2))
        ops.add_op("shift", float(k_hat.shape[0]) * nonzero)
        ops.add_op("xor", float(k_hat.shape[0]) * nonzero)
        ops.add_op("add", float(t) * max(d - 1, 0) * k_hat.shape[0])
        return PreparedPrediction(
            k_hat=k_hat, pow2=pow2, scale=q_scale * k_hat_q.scale, ops=ops
        )

    def predict(self, tokens: np.ndarray, q: np.ndarray) -> PredictionResult:
        """Full cross-phase prediction: tokens -> K_hat -> A_hat.

        Phase 1.2 converts **Q** through the 16-bit-mode configurable LZE and
        shifts the (truncated) K_hat estimate, following the paper's error
        containment argument.  ``A_hat[t, s] = sum_d K_hat[s, d] <<
        (W - LZ(Q[t, d]))``, signed - realized as one exact integer matmul
        over the :meth:`predict_prepared` state.
        """
        prep = self.predict_prepared(tokens, q)
        a_hat = prep.pow2 @ prep.k_hat.T  # (T, S)
        return PredictionResult(
            a_hat=a_hat.astype(np.float64) * prep.scale,
            k_hat=prep.k_hat,
            ops=prep.ops,
            scale=prep.scale,
        )


@dataclass
class StackedPredictionResult:
    """Cross-phase DLZS prediction for a stack of heads.

    ``a_hat`` is ``(N, T, S)``; ``head_ops[i]`` tallies exactly the work the
    per-head :meth:`DlzsPredictor.predict` would report for head ``i``.
    """

    a_hat: np.ndarray
    k_hat: np.ndarray
    head_ops: list[OpCounter]
    scales: np.ndarray


@dataclass
class PreparedStackPrediction:
    """Stacked phase-1.1 state plus encoded queries, before the score matmul.

    The stacked twin of :class:`PreparedPrediction`: ``a_hat`` for the
    whole stack equals ``(pow2 @ k_hat.transpose(0, 2, 1)).astype(float64)
    * scales[:, None, None]``, and any column block of it follows from the
    matching ``k_hat`` slice - exactly - so fused kernels can stream score
    tiles per segment.  ``head_ops`` already carries the complete per-head
    accounting.
    """

    k_hat: np.ndarray  # (N, S, D') int64, truncated
    pow2: np.ndarray  # (N, T, D') int64 signed power-of-two query codes
    scales: np.ndarray  # (N,) per-head quantization scales
    head_ops: list[OpCounter]


class StackedDlzsPredictor:
    """Cross-phase DLZS over a ``(N, H, D)`` stack of key projections.

    The batched twin of :class:`DlzsPredictor`: every head's weights are
    pre-converted to (sign, LZ) codes with that head's own quantization
    scale, and :meth:`predict` runs phases 1.1/1.2 for the whole stack in
    fused integer matmuls.  Because the integer arithmetic is exact and the
    per-head scales match :func:`repro.numerics.fixed_point.quantize` bit for
    bit, head ``i`` of the result equals ``DlzsPredictor(wk[i]).predict(
    tokens[i], q[i])`` exactly.
    """

    def __init__(self, wk: np.ndarray, config: DlzsConfig | None = None):
        self.config = config or DlzsConfig()
        wk = np.asarray(wk)
        if wk.ndim != 3:
            raise ValueError("stacked Wk must be 3-D (N, H, D)")
        if np.issubdtype(wk.dtype, np.floating):
            self._wk_int = quantize_stack(wk, self.config.weight_bits).values
        else:
            self._wk_int = wk.astype(np.int64)
        w = self.config.weight_bits
        self._wk_signs = np.sign(self._wk_int)
        self._wk_lz = leading_zeros(self._wk_int, w)
        self._wk_pow2 = self._wk_signs * lz_decode_magnitude(self._wk_lz, w)
        self._head_digests: list[str] | None = None

    @property
    def n_heads(self) -> int:
        return self._wk_pow2.shape[0]

    def _head_digest(self, i: int) -> str:
        """Digest identifying head ``i``'s pre-converted weights.

        Namespaces decode-cache keys so entries written by one operator can
        never satisfy a lookup from an operator with different weights, even
        when callers reuse sequence ids across models.
        """
        if self._head_digests is None:
            self._head_digests = [
                hashlib.sha1(np.ascontiguousarray(self._wk_pow2[j]).tobytes()).hexdigest()
                for j in range(self.n_heads)
            ]
        return self._head_digests[i]

    def _phase1_head_cached(
        self, i: int, t_i: np.ndarray, cache: "DecodeStepCache", key: Hashable
    ) -> np.ndarray:
        """Phase 1.1 for one head through the decode-step cache.

        Returns the raw int64 ``K_hat`` rows, bit-identical to the fused
        uncached computation: cached rows are reused only when the token
        prefix matches exactly AND the appended rows cannot change the
        symmetric quantization scale (see :mod:`repro.engine.cache`).
        """
        # Function-local on purpose: repro.engine.batched imports this
        # module, so a module-level import of repro.engine.cache would be a
        # core -> engine cycle.  Do not hoist.
        from repro.engine.cache import DecodeCacheEntry

        floating = bool(np.issubdtype(t_i.dtype, np.floating))
        if floating:
            # quantize/quantize_stack round in float64; narrower float input
            # must be widened BEFORE the incremental rint or the appended
            # rows can round differently than the uncached path would.
            t_i = np.asarray(t_i, dtype=np.float64)
        bits = self.config.token_bits
        store_key = (key, self.config, self._head_digest(i))
        entry = cache.get(store_key)

        if (
            entry is not None
            and entry.quantized == floating
            and entry.seq_len <= t_i.shape[0]
            and np.array_equal(t_i[: entry.seq_len], entry.tokens)
        ):
            new = t_i[entry.seq_len :]
            if not floating:
                new_vals = new.astype(np.int64)
                reusable = True
                scale, max_abs = entry.tok_scale, entry.tok_max_abs
            else:
                new_max = float(np.max(np.abs(new))) if new.size else 0.0
                # The per-tensor scale is max|x|/hi over the FULL matrix: the
                # cached codes stay bit-exact only while the prefix still
                # holds the maximum.  A louder new token changes the scale
                # for every row -> invalidate and recompute.
                reusable = new_max <= entry.tok_max_abs
                scale, max_abs = entry.tok_scale, entry.tok_max_abs
                if reusable:
                    new_vals = quantize_with_scale(new, scale, bits)
            if reusable:
                if new_vals.shape[0]:
                    tok_values = np.concatenate([entry.tok_values, new_vals])
                    key_values = np.concatenate(
                        [entry.key_values, new_vals @ self._wk_pow2[i]]
                    )
                else:
                    tok_values, key_values = entry.tok_values, entry.key_values
                cache.record_hit(
                    reused_rows=entry.seq_len,
                    appended_rows=t_i.shape[0] - entry.seq_len,
                )
                cache.put(
                    store_key,
                    DecodeCacheEntry(
                        tokens=t_i.copy(),
                        tok_values=tok_values,
                        tok_scale=scale,
                        tok_max_abs=max_abs,
                        key_values=key_values,
                        quantized=floating,
                    ),
                )
                return key_values

        # Miss: unknown sequence, rewritten/shrunk prefix, dtype switch, or
        # scale invalidation - run the full per-head phase 1.1.
        cache.record_miss(invalidated=entry is not None)
        if floating:
            qt = quantize(t_i, bits)
            tok_values, scale = qt.values, qt.scale
            max_abs = float(np.max(np.abs(t_i))) if t_i.size else 0.0
        else:
            tok_values = t_i.astype(np.int64)
            scale, max_abs = 1.0, 0.0
        key_values = tok_values @ self._wk_pow2[i]
        cache.put(
            store_key,
            DecodeCacheEntry(
                tokens=t_i.copy(),
                tok_values=tok_values,
                tok_scale=scale,
                tok_max_abs=max_abs,
                key_values=key_values,
                quantized=floating,
            ),
        )
        return key_values

    def predict_prepared(
        self,
        tokens: np.ndarray,
        q: np.ndarray,
        cache: "DecodeStepCache | None" = None,
        cache_keys: Sequence[Hashable | None] | None = None,
    ) -> PreparedStackPrediction:
        """Stacked phases 1.1 + query encoding, short of the score matmul.

        Same contract as :meth:`predict` (including the decode-step-cache
        interaction) but returns the :class:`PreparedStackPrediction` from
        which ``a_hat`` - or any column block - follows by one exact
        integer matmul per block.
        """
        tokens = np.asarray(tokens)
        q_arr = np.asarray(q)
        if tokens.ndim != 3 or q_arr.ndim != 3:
            raise ValueError("stacked predict needs (N, S, H) tokens and (N, T, D) q")
        n = self.n_heads
        if tokens.shape[0] != n or q_arr.shape[0] != n:
            raise ValueError("leading axis must match the weight stack")
        if cache_keys is not None and len(cache_keys) != n:
            raise ValueError("need one cache key (or None) per head")

        # Phase 1.1: K_hat = tokens @ Wk via pre-converted LZ weights.
        keyed = (
            [i for i in range(n) if cache_keys[i] is not None]
            if cache is not None and cache_keys is not None
            else []
        )
        if not keyed:
            if np.issubdtype(tokens.dtype, np.floating):
                tok = quantize_stack(tokens, self.config.token_bits).values
            else:
                tok = tokens.astype(np.int64)
            key_values = tok @ self._wk_pow2  # exact batched int64 matmul
        else:
            # Keyed heads run per head so each sequence's state stays
            # independent; keyless batch-mates keep the fused stack path.
            # Integer matmuls are exact, so the split changes no bits.
            s_len = tokens.shape[1]
            key_values = np.empty((n, s_len, self._wk_pow2.shape[2]), dtype=np.int64)
            keyless = [i for i in range(n) if cache_keys[i] is None]
            if keyless:
                sub = tokens[keyless]
                if np.issubdtype(sub.dtype, np.floating):
                    sub_tok = quantize_stack(sub, self.config.token_bits).values
                else:
                    sub_tok = sub.astype(np.int64)
                key_values[keyless] = sub_tok @ self._wk_pow2[keyless]
            for i in keyed:
                key_values[i] = self._phase1_head_cached(
                    i, tokens[i], cache, cache_keys[i]
                )

        # Truncate K_hat to the intermediate width (hardware keeps <=16 bits).
        k_hat_q = quantize_stack(key_values, self.config.intermediate_bits)
        k_hat = k_hat_q.values

        # Phase 1.2: convert Q through the 16-bit-mode LZE, shift K_hat.
        if np.issubdtype(q_arr.dtype, np.floating):
            q_q = quantize_stack(q_arr, self.config.query_bits)
            q_int, q_scales = q_q.values, q_q.scales
        else:
            q_int, q_scales = q_arr.astype(np.int64), np.ones(n)

        lze = ConfigurableLZE(mode_bits=self.config.query_bits)
        q_signs, q_lz = lze.encode(q_int)
        width = self.config.query_bits
        pow2 = q_signs * lz_decode_magnitude(q_lz, width)  # (N, T, D)

        scales = q_scales * k_hat_q.scales
        s = tokens.shape[1]
        t, d = q_int.shape[1], q_int.shape[2]
        h = tokens.shape[2]
        dw = self._wk_pow2.shape[2]
        wk_nonzero = np.count_nonzero(self._wk_pow2, axis=(1, 2))
        q_nonzero = np.count_nonzero(pow2, axis=(1, 2))
        head_ops: list[OpCounter] = []
        for i in range(n):  # per-head bookkeeping only; the math is fused
            ops = OpCounter()
            ops.add_op("shift", float(s) * int(wk_nonzero[i]))
            ops.add_op("xor", float(s) * int(wk_nonzero[i]))
            ops.add_op("add", float(s) * max(h - 1, 0) * dw)
            ops.add_op("lzc", t * d)
            ops.add_op("shift", float(s) * int(q_nonzero[i]))
            ops.add_op("xor", float(s) * int(q_nonzero[i]))
            ops.add_op("add", float(t) * max(d - 1, 0) * s)
            head_ops.append(ops)

        return PreparedStackPrediction(
            k_hat=k_hat, pow2=pow2, scales=scales, head_ops=head_ops
        )

    def predict(
        self,
        tokens: np.ndarray,
        q: np.ndarray,
        cache: "DecodeStepCache | None" = None,
        cache_keys: Sequence[Hashable | None] | None = None,
    ) -> StackedPredictionResult:
        """Stack-fused phases 1.1/1.2: ``(N, S, H)`` tokens -> ``(N, T, S)``.

        All heavy arithmetic is batched (integer matmuls over the whole
        stack); only the per-head op-counter assembly iterates over heads.

        When ``cache`` and ``cache_keys`` are given, phase 1.1 runs through
        the decode-step cache head by head: head ``i`` with a non-``None``
        ``cache_keys[i]`` reuses (and extends) its cached quantized-token /
        ``K_hat`` state.  The result - including the per-head op counters,
        which keep charging the nominal pipeline work - is bit-identical to
        the uncached fused path; the cache only skips *re-doing* arithmetic
        whose outcome is provably unchanged.
        """
        prep = self.predict_prepared(tokens, q, cache=cache, cache_keys=cache_keys)
        a_hat = prep.pow2 @ prep.k_hat.transpose(0, 2, 1)  # (N, T, S), exact int64
        return StackedPredictionResult(
            a_hat=a_hat.astype(np.float64) * prep.scales[:, None, None],
            k_hat=prep.k_hat,
            head_ops=prep.head_ops,
            scales=prep.scales,
        )


def dlzs_relative_error(approx: np.ndarray, exact: np.ndarray) -> float:
    """Scale-free relative error between score matrices.

    Because DLZS systematically over-scales (the dropped mantissa is in
    [0.5, 1)), we first remove the best positive scalar fit; what remains is
    the rank-corrupting error the top-k stage actually suffers.
    """
    approx = np.asarray(approx, dtype=np.float64).ravel()
    exact = np.asarray(exact, dtype=np.float64).ravel()
    denom = float(approx @ approx)
    alpha = float(approx @ exact) / denom if denom > 0 else 0.0
    resid = np.linalg.norm(alpha * approx - exact)
    norm = np.linalg.norm(exact)
    return float(resid / norm) if norm > 0 else 0.0
