"""Deployment flow: pre-deployment preparation and user inference (Fig. 16).

The paper splits SOFA's lifecycle into two phases:

* **Pre-deployment preparation (offline)** - for each (model, task) pair the
  server runs the DSE for per-layer tiling sizes, tunes the top-k budget to
  the task's loss tolerance, and pre-converts the key-projection weights
  into leading-zero format.  Everything lands in a *configuration list*.
* **User inference (online)** - a user picks a prepared entry; the runtime
  loads the stored configuration and executes real-time dynamic-sparsity
  inference without any further tuning.

This module implements that split as a small registry so the examples and
tests exercise the same artifact hand-off the figure describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attention.metrics import loss_to_topk_fraction
from repro.core.config import DlzsConfig, SadsConfig, SofaConfig, SufaConfig
from repro.core.dlzs import DlzsPredictor
from repro.core.dse import BayesianDse, DsePoint
from repro.core.pipeline import SofaAttention


@dataclass(frozen=True)
class PreparedModel:
    """One configuration-list entry: everything user inference needs.

    Attributes
    ----------
    name / task:
        Registry key components.
    config:
        The tuned :class:`SofaConfig` (tile width, top-k, stage settings).
    wk_signs / wk_lz:
        The pre-converted key-projection weights (sign + LZ code) - the
        artifact that makes phase-1.1 prediction converter-free online.
    wk / wv:
        Full-precision projections for the formal stage.
    dse_objective:
        The DSE objective value achieved during preparation (provenance).
    """

    name: str
    task: str
    config: SofaConfig
    wk_signs: np.ndarray
    wk_lz: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    dse_objective: float

    @property
    def key(self) -> str:
        return f"{self.name}/{self.task}"


@dataclass
class DeploymentServer:
    """The offline preparation side: builds and stores configuration entries."""

    configurations: dict[str, PreparedModel] = field(default_factory=dict)

    def prepare(
        self,
        name: str,
        task: str,
        wk: np.ndarray,
        wv: np.ndarray,
        seq_len: int,
        loss_budget_pct: float = 1.0,
        n_layers: int = 1,
        dse_iterations: int = 16,
        evaluate_loss=None,
        seed: int | None = None,
    ) -> PreparedModel:
        """Run the offline pipeline: DSE -> top-k tuning -> LZ conversion.

        ``evaluate_loss`` is the task-loss callable handed to the DSE; when
        omitted a neutral landscape is used (the complexity penalties alone
        pick the tiling), which matches preparing a model before its
        calibration data arrives.
        """
        if evaluate_loss is None:
            evaluate_loss = lambda point: 0.0  # noqa: E731 - neutral landscape
        dse = BayesianDse(
            evaluate_loss, n_layers=n_layers, seq_len=seq_len, seed=seed
        )
        result = dse.search(n_iterations=dse_iterations, n_init=4)
        best: DsePoint = result.best_point
        tile_cols = max(seq_len // best.tc_per_layer[0], 1)

        keep = loss_to_topk_fraction(loss_budget_pct)
        config = SofaConfig(
            tile_cols=tile_cols,
            top_k=keep,
            dlzs=DlzsConfig(),
            sads=SadsConfig(),
            sufa=SufaConfig(),
        )
        predictor = DlzsPredictor(wk, config.dlzs)
        prepared = PreparedModel(
            name=name,
            task=task,
            config=config,
            wk_signs=predictor._wk_signs.copy(),
            wk_lz=predictor._wk_lz.copy(),
            wk=np.asarray(wk, dtype=np.float64),
            wv=np.asarray(wv, dtype=np.float64),
            dse_objective=result.best_objective,
        )
        self.configurations[prepared.key] = prepared
        return prepared

    def available(self) -> list[str]:
        """The configuration list shown to users."""
        return sorted(self.configurations)


class InferenceSession:
    """The online side: load a prepared entry and serve inference calls."""

    def __init__(self, server: DeploymentServer, key: str):
        try:
            self.prepared = server.configurations[key]
        except KeyError:
            known = ", ".join(server.available()) or "(none prepared)"
            raise KeyError(f"model {key!r} not prepared; available: {known}") from None
        self._operator = SofaAttention(
            self.prepared.wk, self.prepared.wv, self.prepared.config
        )
        # Online conversion must be unnecessary: verify the stored LZ codes
        # match what the operator derived (the hand-off is consistent).
        if not np.array_equal(self._operator.predictor._wk_lz, self.prepared.wk_lz):
            raise RuntimeError("stored LZ codes disagree with the loaded weights")

    def infer(self, tokens: np.ndarray, q: np.ndarray, **scales):
        """One real-time dynamic-sparsity attention call."""
        return self._operator(tokens, q, **scales)
