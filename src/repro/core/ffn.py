"""Layer-specific FFN sparsity (the paper's fourth design, Fig. 6 flow).

Besides attention, SOFA's end-to-end flow lists a *layer-specific FFN
sparsity* mechanism: FFN intermediate activations are highly sparse after
the GELU (most pre-activations are negative and map near zero), and the
usable sparsity level differs per layer, so each layer carries its own
keep-fraction calibrated offline (the same pre-deployment preparation step
that fine-tunes attention top-k in Fig. 16).

The mechanism mirrors the attention pipeline's cross-phase structure:

1. *Predict* the intermediate pre-activations ``h = x @ W1`` with the DLZS
   shift-add paradigm (W1 pre-converted to LZ codes offline);
2. *Select* the top-k neurons per token from the estimates;
3. *Compute* exactly only the selected columns of W1 and rows of W2 -
   the FFN analogue of on-demand KV generation.

Because GELU is monotone, ranking pre-activations ranks post-activations
(up to the small negative tail), so top-k on the estimate is a faithful
proxy for post-activation magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attention.topk import exact_topk_indices
from repro.core.dlzs import DlzsPredictor
from repro.model.layers import gelu
from repro.numerics.complexity import OpCounter, matmul_ops


@dataclass
class SparseFfnResult:
    """Output and accounting of one sparse FFN forward.

    ``output`` is exact over the selected neuron set; ``selected`` holds the
    per-token neuron indices; ``ops`` covers prediction + selection + the
    sparse formal computation; ``dense_ops`` is the matched dense tally for
    reduction reporting.
    """

    output: np.ndarray
    selected: np.ndarray
    ops: OpCounter
    dense_ops: OpCounter

    @property
    def computation_reduction(self) -> float:
        dense = self.dense_ops.normalized()
        return 1.0 - self.ops.normalized() / dense if dense else 0.0


class LayerSpecificFfnSparsity:
    """Per-layer sparse FFN executor with DLZS neuron prediction.

    Parameters
    ----------
    w1 / w2:
        Dense FFN weights, ``(H, F)`` and ``(F, H)``.
    keep_fraction:
        This layer's calibrated fraction of intermediate neurons to keep.
        The paper's pre-deployment DSE assigns each layer its own value;
        :func:`calibrate_keep_fractions` provides that offline step.
    """

    def __init__(self, w1: np.ndarray, w2: np.ndarray, keep_fraction: float = 0.3):
        w1 = np.asarray(w1, dtype=np.float64)
        w2 = np.asarray(w2, dtype=np.float64)
        if w1.ndim != 2 or w2.ndim != 2 or w1.shape[1] != w2.shape[0]:
            raise ValueError(f"inconsistent FFN shapes {w1.shape} x {w2.shape}")
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0, 1]")
        self.w1 = w1
        self.w2 = w2
        self.keep_fraction = keep_fraction
        self.predictor = DlzsPredictor(w1)

    @property
    def n_neurons(self) -> int:
        return self.w1.shape[1]

    def predict_neurons(self, x: np.ndarray) -> tuple[np.ndarray, OpCounter]:
        """Rank intermediate neurons per token from the DLZS estimate.

        Returns ``(T, k)`` neuron indices (descending estimated magnitude)
        and the prediction op tally.  Magnitude (not signed value) ranks the
        neurons: a large-negative pre-activation still contributes ~0 after
        GELU, so the estimate ranks ``h`` directly - GELU's monotonicity
        makes the positive side dominate the ranking.
        """
        est = self.predictor.predict_keys(x)
        k = max(1, int(round(self.keep_fraction * self.n_neurons)))
        indices = exact_topk_indices(est.values.astype(np.float64), k)
        ops = est.ops
        ops.add_op("compare", float(x.shape[0]) * self.n_neurons)  # selection scan
        return indices, ops

    #: Cap on the per-chunk gathered-weight temporaries: rows are processed
    #: in chunks so the (chunk, k, H) gathers stay cache-friendly no matter
    #: how many tokens share the call.
    _GATHER_CHUNK_ELEMENTS = 4_000_000

    def __call__(self, x: np.ndarray) -> SparseFfnResult:
        """Sparse forward: compute only the selected neurons exactly.

        The gathered per-token matmuls run batched: one stacked
        ``(chunk, k, H) @ (chunk, H, 1)`` contraction for W1 and one
        ``(chunk, 1, k) @ (chunk, k, H_out)`` for W2 per row chunk, instead
        of a Python loop over tokens - each token's result is its own
        fixed-shape contraction, so it is independent of how many tokens
        share the call (``test_core_ffn`` pins the loop parity).  Op counts
        are closed-form and unchanged.
        """
        x = np.asarray(x, dtype=np.float64)
        t, h = x.shape
        if h != self.w1.shape[0]:
            raise ValueError(f"expected (T, {self.w1.shape[0]}) input, got {x.shape}")
        selected, ops = self.predict_neurons(x)
        k = selected.shape[1]
        f = self.n_neurons

        output = np.empty((t, self.w2.shape[1]))
        w1_cols = self.w1.T  # (F, H): row gather == column gather of W1
        # Budget the wider of the two per-token gathers (k x H for W1,
        # k x H_out for W2), so neither temporary outgrows the cap.
        widest = max(k * h, k * self.w2.shape[1], 1)
        chunk = max(1, self._GATHER_CHUNK_ELEMENTS // widest)
        for lo in range(0, t, chunk):
            hi = min(lo + chunk, t)
            sel = selected[lo:hi]
            hidden = np.matmul(w1_cols[sel], x[lo:hi, :, None])[:, :, 0]
            output[lo:hi] = np.matmul(gelu(hidden)[:, None, :], self.w2[sel])[:, 0, :]
        ops = ops + matmul_ops(t, h, k)
        ops.add_op("exp", float(t) * k)  # gelu nonlinearity per kept neuron
        ops = ops + matmul_ops(t, k, self.w2.shape[1])

        dense = matmul_ops(t, h, f)
        dense.add_op("exp", float(t) * f)
        dense = dense + matmul_ops(t, f, self.w2.shape[1])
        return SparseFfnResult(output=output, selected=selected, ops=ops, dense_ops=dense)

    def dense_forward(self, x: np.ndarray) -> np.ndarray:
        """The exact dense FFN (golden model)."""
        return gelu(np.asarray(x, dtype=np.float64) @ self.w1) @ self.w2


def calibrate_keep_fractions(
    layers: list[tuple[np.ndarray, np.ndarray]],
    sample_inputs: list[np.ndarray],
    error_budget: float = 0.05,
    candidates: tuple[float, ...] = (0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.7, 1.0),
) -> list[float]:
    """Offline per-layer keep-fraction calibration (pre-deployment step).

    For each layer, pick the smallest keep fraction whose sparse output
    stays within ``error_budget`` relative L2 error of the dense output on
    the sample inputs - "layer specific" because activation sparsity varies
    across depth.
    """
    if len(layers) != len(sample_inputs):
        raise ValueError("need one sample input batch per layer")
    fractions: list[float] = []
    for (w1, w2), x in zip(layers, sample_inputs, strict=True):
        dense = LayerSpecificFfnSparsity(w1, w2, 1.0).dense_forward(x)
        norm = np.linalg.norm(dense) or 1.0
        chosen = 1.0
        for frac in sorted(candidates):
            sparse = LayerSpecificFfnSparsity(w1, w2, frac)(x).output
            if np.linalg.norm(sparse - dense) / norm <= error_budget:
                chosen = frac
                break
        fractions.append(chosen)
    return fractions
