"""User-facing configuration of the SOFA attention pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class DlzsConfig:
    """DLZS prediction-stage parameters.

    ``token_bits``/``weight_bits`` are the pre-compute integer widths (paper:
    8-bit tokens, weights pre-converted to 4-bit LZ codes);
    ``intermediate_bits`` is the truncation width of the predicted K before
    attention prediction (paper: "truncated to at most 16 bit").

    ``kernel`` selects the predict-stage kernel from the
    :mod:`repro.kernels` registry (``"reference"``, ``"fused"``, or a
    registered custom name); the default ``"auto"`` defers to the
    ``SOFA_PREDICT_KERNEL`` environment variable and then the registry
    default.  Kernels are bit-for-bit interchangeable, so the knob moves
    wall-clock time only.  (``"fused"`` on both this and
    :class:`SadsConfig` engages the fused predict+select kernel that
    never materializes the full score matrix.)
    """

    token_bits: int = 8
    weight_bits: int = 8
    intermediate_bits: int = 16
    query_bits: int = 16
    kernel: str = "auto"


@dataclass(frozen=True)
class SadsConfig:
    """SADS sorting-stage parameters.

    ``n_segments`` distributes one S-long row into n sub-segments, each
    selecting top-(k/n) (paper Fig. 9).  ``radius`` is the sphere-search
    clipping radius in score units (values below ``running_max - radius`` are
    clipped); ``adjust_rounds`` runs the adjustive exchange iterations
    (max/min swap between the virtual top-k set and excluded candidates).
    ``sorter_width``/``sorter_keep`` describe the bitonic core (16-to-4 in
    the paper's engine).

    ``kernel`` selects the select-stage kernel from the
    :mod:`repro.kernels` registry (``"reference"``, ``"fused"``, or a
    registered custom name); ``"auto"`` defers to ``SOFA_SELECT_KERNEL``
    and then the registry default.  Bit-for-bit interchangeable; pair
    ``"fused"`` with the predict stage to stream selection tile by tile
    without the full ``(rows, S)`` score matrix.
    """

    n_segments: int = 4
    radius: float = 4.0
    adjust_rounds: int = 2
    sorter_width: int = 16
    sorter_keep: int = 4
    kernel: str = "auto"


@dataclass(frozen=True)
class SufaConfig:
    """SU-FA formal-stage parameters.

    ``descending=True`` selects the cheaper update order (one exp + one add
    per step for the normalizer); ``max_assurance=True`` enables the
    runtime Max-Ensuring behaviour that repairs a mispredicted maximum
    (paper Sec. IV-D) at the cost of classic-FA rescale ops on the rows where
    it triggers.

    ``kernel`` selects the streaming kernel implementation from
    :mod:`repro.kernels` (``"blocked"``, ``"reference"``, or a registered
    custom name); the default ``"auto"`` defers to the ``SOFA_SUFA_KERNEL``
    environment variable and then the registry default.  Every kernel is
    bit-for-bit interchangeable, so this knob moves wall-clock time only.
    """

    descending: bool = True
    max_assurance: bool = True
    kernel: str = "auto"


@dataclass(frozen=True)
class SofaConfig:
    """Top-level SOFA configuration.

    ``tile_cols`` is Bc, the cross-stage tile width shared by every stage
    (the paper's coordinated-tiling principle: SADS sub-segments are the SU-FA
    tiles).  ``top_k`` may be an absolute count (int) or a fraction (float in
    (0, 1]).
    """

    tile_cols: int = 64
    top_k: float = 0.15
    dlzs: DlzsConfig = field(default_factory=DlzsConfig)
    sads: SadsConfig = field(default_factory=SadsConfig)
    sufa: SufaConfig = field(default_factory=SufaConfig)

    def resolve_top_k(self, seq_len: int) -> int:
        """Turn the top-k knob into an absolute per-row count."""
        if isinstance(self.top_k, float) and 0 < self.top_k <= 1:
            k = int(round(self.top_k * seq_len))
        else:
            k = int(self.top_k)
        if not 1 <= k <= seq_len:
            raise ValueError(f"resolved top-k {k} out of range for S={seq_len}")
        return k

    def n_tiles(self, seq_len: int) -> int:
        """Number of Bc-wide tiles covering a row of length ``seq_len``."""
        if self.tile_cols < 1:
            raise ValueError("tile_cols must be >= 1")
        return -(-seq_len // self.tile_cols)

    def sads_for(self, n_segments: int) -> SadsConfig:
        """Stage-2 sorter config under the coordinated tiling.

        The sorter's sub-segments ARE the Bc tiles, so the pipeline (and its
        batched twin, which must stay bit-identical) both derive the sorter
        from this single place.
        """
        return replace(self.sads, n_segments=n_segments)
