"""SOFA core algorithms (the paper's primary contribution).

* :mod:`repro.core.dlzs` - differential leading-zero summation prediction.
* :mod:`repro.core.sads` - sphere-search aided distributed sorting.
* :mod:`repro.core.sufa` - sorted-updating FlashAttention.
* :mod:`repro.core.pipeline` - the cross-stage coordinated tiled pipeline
  that fuses the three stages and eliminates intermediate DRAM traffic.
* :mod:`repro.core.dse` - Bayesian-optimization design-space exploration for
  per-layer tiling size and top-k.
* :mod:`repro.core.config` - user-facing configuration.
"""

from repro.core.config import SofaConfig
from repro.core.dlzs import DlzsPredictor, dlzs_matmul, vanilla_lz_matmul
from repro.core.pipeline import SofaAttention, sofa_attention
from repro.core.sads import SadsSorter
from repro.core.sufa import (
    UpdateOrder,
    sorted_updating_attention,
    stream_selected,
    stream_selected_reference,
)

__all__ = [
    "SofaConfig",
    "DlzsPredictor",
    "dlzs_matmul",
    "vanilla_lz_matmul",
    "SofaAttention",
    "sofa_attention",
    "SadsSorter",
    "UpdateOrder",
    "sorted_updating_attention",
    "stream_selected",
    "stream_selected_reference",
]
