"""SADS: sphere-search aided distributed sorting (Sec. III-B).

SADS exploits the Distributed Cluster Effect: attention rows are dominated by
values that are *spread across* the row (Type-I/II of Fig. 8), so a row of
length S can be split into n sub-segments that each select their own
top-(k/n) with little loss versus an exact full-row top-k.

Mechanisms modeled here, mirroring the hardware engine (Fig. 13):

* **Distributed selection** - each segment independently selects top-(k/n)
  through an iterative 16-to-4 bitonic core (12 fresh inputs merged with the
  4 best carried values per round); comparator work is counted per round.
* **Sphere-search clipping** - a threshold ``max(running_max - radius,
  current_min_of_buffer)`` suppresses hopeless candidates before sorting;
  clipped values cost no comparator switching (power) but are counted as one
  threshold comparison.
* **Adjustive exchange** - after the distributed pass, up to ``adjust_rounds``
  iterations compare the *minimum* of the selected virtual-top-k against the
  *maximum* of the excluded pool and swap when out of order (Fig. 9 step 2),
  repairing cross-segment imbalance (the Type-III failure case).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SadsConfig
from repro.numerics.complexity import OpCounter


def _bitonic_rounds(n_items: int, fresh_per_round: int) -> int:
    """Rounds an iterative sorter needs to stream ``n_items`` inputs."""
    if n_items <= 0:
        return 0
    return -(-n_items // fresh_per_round)


def _bitonic_comparators(width: int) -> int:
    """Comparator count of one pass of a ``width``-input bitonic network.

    A full bitonic sorting network of width w uses w/2 * log2(w) * (log2(w)+1)/2
    comparators; the engine prunes the network because only the top-4 need
    full ordering (paper: the 3rd..k-th order is inconsequential), which
    removes roughly the final ordering stage - about log2(w)/ (log2(w)+1) of
    comparators remain.
    """
    if width < 2:
        return 0
    stages = int(np.log2(width))
    full = (width // 2) * stages * (stages + 1) // 2
    pruned = full * stages // (stages + 1)
    return max(pruned, 1)


@dataclass
class SegmentSelection:
    """Per-segment output: chosen local indices plus observed extremes."""

    indices: np.ndarray
    max_value: float
    min_selected: float


@dataclass
class SadsRowResult:
    """SADS output for one attention row.

    ``indices`` are global column indices sorted by descending estimated
    score - the order SU-FA consumes (the first entry is the predicted Max).
    """

    indices: np.ndarray
    ops: OpCounter
    clipped: int


@dataclass
class SadsResult:
    """Batched SADS output for a (T, S) score-estimate matrix."""

    indices: np.ndarray  # (T, k) global indices, descending estimated score
    ops: OpCounter
    clipped_fraction: float


@dataclass
class SadsStackResult:
    """Row-resolved SADS output for an arbitrary stack of score rows.

    This is the engine-facing variant: op counts stay per-row so a caller
    batching many heads can re-aggregate them per head without losing the
    exact totals the per-head sequential path reports.
    """

    indices: np.ndarray  # (R, k)
    compare_rows: np.ndarray  # (R,) raw comparator counts
    clipped_rows: np.ndarray  # (R,) clipped candidate counts

    def row_ops(self, row: int) -> OpCounter:
        ops = OpCounter()
        ops.add_op("compare", float(self.compare_rows[row]))
        return ops


class SadsSorter:
    """Distributed top-k selector with sphere clipping and adjustive exchange."""

    def __init__(self, config: SadsConfig | None = None):
        self.config = config or SadsConfig()
        if self.config.n_segments < 1:
            raise ValueError("n_segments must be >= 1")
        if self.config.radius <= 0:
            raise ValueError("radius must be positive")

    # ------------------------------------------------------------------ row
    def select_row(self, row: np.ndarray, k: int) -> SadsRowResult:
        """Select k indices from one row, distributed over n sub-segments.

        Routed through the vectorized :meth:`select_stack` core as a
        one-row stack, so the single-row and stack paths share one
        implementation; :meth:`select_row_reference` keeps the sequential
        per-segment walk as the golden model, and ``test_core_sads``
        asserts the two agree exactly (indices, comparator counts, clipped
        tallies).
        """
        stack = self.select_stack(np.asarray(row, dtype=np.float64)[None, :], k)
        ops = OpCounter()
        ops.add_op("compare", float(stack.compare_rows[0]))
        return SadsRowResult(
            indices=stack.indices[0],
            ops=ops,
            clipped=int(stack.clipped_rows[0]),
        )

    def select_row_reference(self, row: np.ndarray, k: int) -> SadsRowResult:
        """Sequential single-row selection (the golden model for tests).

        Walks the segment grid one segment at a time with the scalar
        clipping threshold, exactly as the hardware schedules one row; the
        vectorized :meth:`select_stack` must reproduce its indices, op
        counts and clipped tallies row for row.
        """
        row = np.asarray(row, dtype=np.float64)
        s = row.size
        if not 1 <= k <= s:
            raise ValueError(f"k={k} out of range for row of length {s}")
        n = min(self.config.n_segments, k, s)
        bounds = np.linspace(0, s, n + 1, dtype=np.int64)
        quota = self._capped_quotas(k, bounds)

        ops = OpCounter()
        clipped_total = 0
        running_max = -np.inf
        selections: list[np.ndarray] = []
        for seg in range(n):
            lo, hi = int(bounds[seg]), int(bounds[seg + 1])
            seg_vals = row[lo:hi]
            sel, seg_ops, clipped, seg_max = self._select_segment(
                seg_vals, quota[seg], running_max
            )
            running_max = max(running_max, seg_max)
            selections.append(sel + lo)
            ops = ops + seg_ops
            clipped_total += clipped

        indices = np.concatenate(selections)
        indices, exch_ops = self._adjustive_exchange(row, indices, k)
        ops = ops + exch_ops

        order = np.argsort(-row[indices], kind="stable")
        ops.add_op("compare", _final_merge_compares(k, n))
        return SadsRowResult(indices=indices[order], ops=ops, clipped=clipped_total)

    # ---------------------------------------------------------------- batch
    def select(self, scores: np.ndarray, k: int) -> SadsResult:
        """Row-parallel selection over a (T, S) estimate matrix.

        Runs the vectorized :meth:`select_stack` core; each row's indices and
        comparator counts are bit-identical to :meth:`select_row` on that row
        (the single-row path is kept as the golden reference and the parity
        is asserted by the engine test suite).
        """
        stack = self.select_stack(scores, k)
        ops = OpCounter()
        ops.add_op("compare", float(stack.compare_rows.sum()))
        total = np.asarray(scores).size
        clipped = int(stack.clipped_rows.sum())
        return SadsResult(
            indices=stack.indices,
            ops=ops,
            clipped_fraction=clipped / total if total else 0.0,
        )

    def select_stack(self, scores: np.ndarray, k: int) -> SadsStackResult:
        """Vectorized distributed top-k over a ``(R, S)`` stack of rows.

        One fused pass runs every row of every head in a batch through the
        same segment grid: the per-segment work is ``argsort``/mask algebra
        over the whole stack, the adjustive exchange advances all rows in
        lockstep, and per-row comparator tallies are returned so callers can
        group them back per head.  Row semantics (selection, ordering, tie
        breaks, op counts) exactly match :meth:`select_row`.
        """
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 2:
            raise ValueError("scores must be 2-D")
        r, s = scores.shape
        if not 1 <= k <= s:
            raise ValueError(f"k={k} out of range for row of length {s}")
        n = min(self.config.n_segments, k, s)
        bounds = np.linspace(0, s, n + 1, dtype=np.int64)
        quotas = self._capped_quotas(k, bounds)
        fresh = max(self.config.sorter_width - self.config.sorter_keep, 1)
        per_pass = _bitonic_comparators(self.config.sorter_width)

        compare_rows = np.zeros(r, dtype=np.float64)
        clipped_rows = np.zeros(r, dtype=np.int64)
        running_max = np.full(r, -np.inf)
        chosen_parts: list[np.ndarray] = []
        for seg in range(n):
            lo, hi = int(bounds[seg]), int(bounds[seg + 1])
            block = scores[:, lo:hi]
            width = hi - lo
            quota = int(quotas[seg])
            seg_max = block.max(axis=1)
            if quota > 0:
                threshold = np.where(
                    np.isfinite(running_max), running_max - self.config.radius, -np.inf
                )
                survivors = (block >= threshold[:, None]).sum(axis=1)
                # The top-quota set is threshold-independent (clipping only
                # suppresses comparator switching), so selection reduces to a
                # stable descending sort; the survivor count drives op/power
                # accounting and the below-quota hardware fallback.
                take = min(quota, width)
                order = np.argsort(-block, axis=1, kind="stable")[:, :take]
                chosen_parts.append(order + lo)
                cand = np.where(survivors < quota, take, survivors)
                clipped_rows += width - cand
                compare_rows += width  # threshold check on every element
                rounds = -(-cand // fresh)
                compare_rows += rounds * per_pass
            running_max = np.maximum(running_max, seg_max)

        sel = np.concatenate(chosen_parts, axis=1)
        sel, exch_compares = self._adjustive_exchange_stack(scores, sel, k)
        compare_rows += exch_compares

        selvals = np.take_along_axis(scores, sel, axis=1)
        order = np.argsort(-selvals, axis=1, kind="stable")
        indices = np.take_along_axis(sel, order, axis=1)
        compare_rows += _final_merge_compares(k, n)
        return SadsStackResult(
            indices=indices, compare_rows=compare_rows, clipped_rows=clipped_rows
        )

    def select_stack_streamed(
        self, tile_fn, n_rows: int, row_len: int, k: int
    ) -> SadsStackResult:
        """:meth:`select_stack` semantics over *streamed* score tiles.

        ``tile_fn(seg, lo, hi)`` must return the ``(n_rows, hi - lo)``
        float64 score block of segment ``seg`` (columns ``lo:hi`` of the
        conceptual ``(n_rows, row_len)`` score matrix).  The selection -
        indices, ordering, tie breaks, comparator and clipped tallies - is
        **bit-identical** to calling :meth:`select_stack` on the full
        matrix, but no state larger than one segment block (plus O(rows *
        k) selection state) is ever held: this is the entry point of the
        fused predict+select kernel, which feeds DLZS score tiles straight
        from the prediction matmul.

        Exactness argument, stage by stage:

        * the per-segment pass consumes only the segment block in both
          implementations (thresholds, quotas, stable descending argsort,
          survivor/clipping accounting are unchanged code);
        * the adjustive exchange needs, per round, the *maximum excluded*
          entry under numpy's argmax tie-break (value descending, then
          lowest index).  A per-row pool of the top-``adjust_rounds``
          excluded candidates in exactly that order is sufficient: each
          exchange round removes at most the pool head and re-inserts the
          swapped-out selected value, so the pool's real population never
          shrinks, and any excluded entry outside a segment's top-
          ``adjust_rounds`` is dominated (value, then index) by ones
          inside it, for every round;
        * the final descending reorder uses the retained selected values,
          which mirror ``take_along_axis(scores, sel, axis=1)`` by
          construction.
        """
        r, s = int(n_rows), int(row_len)
        if not 1 <= k <= s:
            raise ValueError(f"k={k} out of range for row of length {s}")
        n = min(self.config.n_segments, k, s)
        bounds = np.linspace(0, s, n + 1, dtype=np.int64)
        quotas = self._capped_quotas(k, bounds)
        fresh = max(self.config.sorter_width - self.config.sorter_keep, 1)
        per_pass = _bitonic_comparators(self.config.sorter_width)
        rounds = self.config.adjust_rounds

        compare_rows = np.zeros(r, dtype=np.float64)
        clipped_rows = np.zeros(r, dtype=np.int64)
        running_max = np.full(r, -np.inf)
        chosen_parts: list[np.ndarray] = []
        chosen_val_parts: list[np.ndarray] = []
        # Excluded-candidate pool: per row, the top-`rounds` excluded
        # (value, index) pairs in argmax tie-break order (value desc, index
        # asc).  Padding sorts last: -inf value, out-of-range index.
        m_pool = max(rounds, 1)
        pool_vals = np.full((r, m_pool), -np.inf)
        pool_idx = np.full((r, m_pool), s, dtype=np.int64)

        for seg in range(n):
            lo, hi = int(bounds[seg]), int(bounds[seg + 1])
            block = np.asarray(tile_fn(seg, lo, hi), dtype=np.float64)
            if block.shape != (r, hi - lo):
                raise ValueError(
                    f"tile_fn returned {block.shape}, expected {(r, hi - lo)}"
                )
            width = hi - lo
            quota = int(quotas[seg])
            seg_max = block.max(axis=1)
            if quota > 0:
                threshold = np.where(
                    np.isfinite(running_max), running_max - self.config.radius, -np.inf
                )
                survivors = (block >= threshold[:, None]).sum(axis=1)
                take = min(quota, width)
                order = np.argsort(-block, axis=1, kind="stable")
                chosen = order[:, :take]
                chosen_parts.append(chosen + lo)
                chosen_val_parts.append(np.take_along_axis(block, chosen, axis=1))
                cand = np.where(survivors < quota, take, survivors)
                clipped_rows += width - cand
                compare_rows += width  # threshold check on every element
                compare_rows += (-(-cand // fresh)) * per_pass
                if rounds > 0 and take < width:
                    # Segment's top excluded candidates: next entries of the
                    # same stable descending argsort.  Merge into the pool;
                    # the stable sort keeps (value desc, index asc) because
                    # existing pool indices all precede this segment's.
                    extra = order[:, take : take + rounds]
                    extra_vals = np.take_along_axis(block, extra, axis=1)
                    merged_vals = np.concatenate([pool_vals, extra_vals], axis=1)
                    merged_idx = np.concatenate([pool_idx, extra + lo], axis=1)
                    top = np.argsort(-merged_vals, axis=1, kind="stable")[:, :m_pool]
                    pool_vals = np.take_along_axis(merged_vals, top, axis=1)
                    pool_idx = np.take_along_axis(merged_idx, top, axis=1)
            running_max = np.maximum(running_max, seg_max)

        sel = np.concatenate(chosen_parts, axis=1)[:, :k]
        selvals = np.concatenate(chosen_val_parts, axis=1)[:, :k]
        compare_rows += self._pooled_exchange(
            sel, selvals, pool_vals, pool_idx, s, k
        )

        order = np.argsort(-selvals, axis=1, kind="stable")
        indices = np.take_along_axis(sel, order, axis=1)
        compare_rows += _final_merge_compares(k, n)
        return SadsStackResult(
            indices=indices, compare_rows=compare_rows, clipped_rows=clipped_rows
        )

    def _pooled_exchange(
        self,
        sel: np.ndarray,
        selvals: np.ndarray,
        pool_vals: np.ndarray,
        pool_idx: np.ndarray,
        s: int,
        k: int,
    ) -> np.ndarray:
        """Adjustive exchange against the excluded-candidate pool (in place).

        Replicates :meth:`_adjustive_exchange_stack` without the ``(R, S)``
        excluded mask: the pool head *is* the reference's
        ``argmax(where(excluded, scores, -inf))`` (same value, same
        tie-break), and a swap removes the head and re-inserts the
        swapped-out selected entry at its (value desc, index asc) pool
        position - the pool's real population is invariant under swaps, so
        ``adjust_rounds`` entries are enough for ``adjust_rounds`` rounds.
        Mutates ``sel``/``selvals``; returns per-row comparator counts.
        """
        rounds = self.config.adjust_rounds
        r, k_sel = sel.shape
        compare_rows = np.zeros(r, dtype=np.float64)
        if rounds <= 0:
            return compare_rows
        rows = np.arange(r)
        # A row has excluded candidates iff s > k - constant across rounds,
        # because every swap removes one excluded entry and adds another.
        alive = np.full(r, s > k_sel, dtype=bool)
        m_pool = pool_vals.shape[1]
        for _ in range(rounds):
            if not alive.any():
                break
            min_pos = np.argmin(selvals, axis=1)
            min_val = selvals[rows, min_pos]
            min_idx = sel[rows, min_pos]
            exc_val = pool_vals[:, 0]
            exc_idx = pool_idx[:, 0]
            compare_rows[alive] += k_sel + 1
            swap = alive & (exc_val > min_val)
            if swap.any():
                sw = np.flatnonzero(swap)
                sel[sw, min_pos[sw]] = exc_idx[sw]
                selvals[sw, min_pos[sw]] = exc_val[sw]
                # Pool update: drop the consumed head, then insert the
                # swapped-out (value, index) at its sorted position (the
                # freed padding slot absorbs the shift).
                pv = pool_vals[sw]
                pi = pool_idx[sw]
                pv[:, :-1] = pv[:, 1:]
                pi[:, :-1] = pi[:, 1:]
                pv[:, -1] = -np.inf
                pi[:, -1] = s
                ins_val = min_val[sw]
                ins_idx = min_idx[sw]
                before = (pv > ins_val[:, None]) | (
                    (pv == ins_val[:, None]) & (pi < ins_idx[:, None])
                )
                pos = before.sum(axis=1)  # prefix property: pv stays sorted
                for j in range(m_pool):
                    shifted_v = pv[:, j - 1] if j > 0 else ins_val
                    shifted_i = pi[:, j - 1] if j > 0 else ins_idx
                    keep = pos > j
                    here = pos == j
                    pool_vals[sw, j] = np.where(
                        keep, pv[:, j], np.where(here, ins_val, shifted_v)
                    )
                    pool_idx[sw, j] = np.where(
                        keep, pi[:, j], np.where(here, ins_idx, shifted_i)
                    )
            alive = swap
        return compare_rows

    # ------------------------------------------------------------- internals
    def _segment_quotas(self, k: int, n: int) -> np.ndarray:
        """Distribute k across n segments (first segments absorb remainder)."""
        base, rem = divmod(k, n)
        quotas = np.full(n, base, dtype=np.int64)
        quotas[:rem] += 1
        return quotas

    def _capped_quotas(self, k: int, bounds: np.ndarray) -> np.ndarray:
        """Width-aware quotas: never assign a segment more than it holds.

        The even split can exceed a narrow segment's width when k approaches
        S (e.g. select-all over uneven tiles); the overflow re-distributes
        round-robin into segments with spare capacity so exactly k indices
        are always selected.
        """
        widths = np.diff(bounds)
        quotas = np.minimum(self._segment_quotas(k, widths.size), widths)
        shortfall = k - int(quotas.sum())
        while shortfall > 0:
            for i in range(widths.size):
                if shortfall <= 0:
                    break
                if quotas[i] < widths[i]:
                    quotas[i] += 1
                    shortfall -= 1
        return quotas

    def _select_segment(
        self, values: np.ndarray, quota: int, running_max: float
    ) -> tuple[np.ndarray, OpCounter, int, float]:
        """Top-``quota`` of one segment through the clipping + sorting model."""
        ops = OpCounter()
        if quota <= 0:
            return np.empty(0, dtype=np.int64), ops, 0, float(values.max(initial=-np.inf))

        seg_max = float(values.max()) if values.size else -np.inf
        threshold = running_max - self.config.radius if np.isfinite(running_max) else -np.inf
        survivors = values >= threshold
        # Never clip below quota: hardware falls back to keeping the segment's
        # own largest values when the threshold is too aggressive.
        if survivors.sum() < quota:
            keep = np.argsort(-values, kind="stable")[:quota]
            survivors = np.zeros_like(survivors)
            survivors[keep] = True
        clipped = int(values.size - survivors.sum())
        ops.add_op("compare", values.size)  # threshold check on every element

        candidate_idx = np.flatnonzero(survivors)
        cand_vals = values[candidate_idx]
        order = np.argsort(-cand_vals, kind="stable")
        chosen = candidate_idx[order[:quota]]

        fresh = self.config.sorter_width - self.config.sorter_keep
        rounds = _bitonic_rounds(cand_vals.size, max(fresh, 1))
        ops.add_op("compare", rounds * _bitonic_comparators(self.config.sorter_width))
        return chosen.astype(np.int64), ops, clipped, seg_max

    def _adjustive_exchange(
        self, row: np.ndarray, indices: np.ndarray, k: int
    ) -> tuple[np.ndarray, OpCounter]:
        """Swap selected-min with excluded-max while out of order (Fig. 9).

        The selected set is kept as an array in segment-concatenation order
        with in-place swaps, so tie-breaking is deterministic and the
        vectorized :meth:`_adjustive_exchange_stack` can reproduce it row for
        row.
        """
        ops = OpCounter()
        rounds = self.config.adjust_rounds
        indices = np.array(indices[:k], dtype=np.int64)
        if rounds <= 0:
            return indices, ops
        excluded_mask = np.ones(row.size, dtype=bool)
        excluded_mask[indices] = False
        for _ in range(rounds):
            if not excluded_mask.any():
                break
            min_pos = int(np.argmin(row[indices]))
            exc_idx = int(np.argmax(np.where(excluded_mask, row, -np.inf)))
            # The threshold-updating unit tracks the excluded maximum as a
            # side effect of the clipping pass, so one exchange round only
            # pays a min-scan over the k selected values plus the swap check.
            ops.add_op("compare", indices.size + 1)
            if row[exc_idx] <= row[indices[min_pos]]:
                break  # "If the min >= the max: End"
            excluded_mask[exc_idx] = False
            excluded_mask[indices[min_pos]] = True
            indices[min_pos] = exc_idx
        return indices, ops

    def _adjustive_exchange_stack(
        self, scores: np.ndarray, sel: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized adjustive exchange advancing every row in lockstep.

        A row leaves the lockstep (goes inactive) exactly when the sequential
        loop would break for it: no excluded candidates left, or the swap
        check failed.  Returns the adjusted indices and per-row comparator
        counts.
        """
        rounds = self.config.adjust_rounds
        r, s = scores.shape
        compare_rows = np.zeros(r, dtype=np.float64)
        sel = np.array(sel[:, :k], dtype=np.int64)
        if rounds <= 0:
            return sel, compare_rows
        k_sel = sel.shape[1]
        excluded = np.ones((r, s), dtype=bool)
        np.put_along_axis(excluded, sel, False, axis=1)
        rows = np.arange(r)
        alive = np.ones(r, dtype=bool)
        for _ in range(rounds):
            alive = alive & excluded.any(axis=1)
            if not alive.any():
                break
            selvals = np.take_along_axis(scores, sel, axis=1)
            min_pos = np.argmin(selvals, axis=1)
            min_idx = sel[rows, min_pos]
            exc_idx = np.argmax(np.where(excluded, scores, -np.inf), axis=1)
            compare_rows[alive] += k_sel + 1
            swap = alive & (scores[rows, exc_idx] > scores[rows, min_idx])
            if swap.any():
                sw = np.flatnonzero(swap)
                excluded[sw, exc_idx[sw]] = False
                excluded[sw, min_idx[sw]] = True
                sel[sw, min_pos[sw]] = exc_idx[sw]
            alive = swap
        return sel, compare_rows


def _final_merge_compares(k: int, n_segments: int) -> float:
    """Comparator cost of merging n sorted quota lists into descending order."""
    if k <= 1:
        return 0.0
    return float(k * max(int(np.ceil(np.log2(max(n_segments, 2)))), 1))


def vanilla_sort_ops(s: int, k: int) -> OpCounter:
    """Comparator tally of a full-row top-k (the baseline sorter).

    A selection-style hardware sorter scans the S-long row maintaining a
    k-deep sorted buffer: every element compares against the buffer min and,
    on insert, against log2(k) levels - about ``S + S_ins*log2(k)`` compares;
    we charge the conservative ``S * log2(k)`` the paper's complexity model
    uses for whole-row sorting.
    """
    ops = OpCounter()
    levels = max(int(np.ceil(np.log2(max(k, 2)))), 1)
    ops.add_op("compare", float(s) * levels)
    return ops
