"""SU-FA: sorted-updating FlashAttention (Sec. III-C).

Classic FlashAttention must refresh a running row-max across K/V tiles and
rescale its running normalizer/output by ``exp(m_prev - m)`` whenever the max
moves - the recomputation the paper's Fig. 5 shows exploding with tile count.
SU-FA removes that work by consuming the *ordering* the top-k stage already
produced: processing selected keys in **descending** estimated-score order
means the first element is the row max, so the running max never changes and
each step costs one exp + one add for the normalizer (Eq. (2) of Fig. 10).

Processing in **ascending** order also avoids comparisons but each step still
pays an extra exp-mul rescale (Eq. (1)); the paper measures descending at
~11% less complexity than ascending and ~25% less than classic FA.

Because the ordering comes from the *approximate* DLZS scores, the predicted
max can be wrong.  The Max-Ensuring circuit (Sec. IV-D) is modeled by
``max_assurance=True``: whenever a streamed score exceeds the running max the
engine falls back to one classic-FA rescale step (counted), keeping the
result exact regardless of prediction quality.

Implementation note: the streaming core (:func:`stream_selected`) is
vectorized over an arbitrary stack of query rows and dispatches to an
interchangeable **kernel** from :mod:`repro.kernels`:

* ``"blocked"`` (the default) advances the stack one ``tile_cols``-wide
  block of keys per Python step - the software shape of the hardware's
  Bc-wide SU-FA tiles, with the Max-Ensuring circuit falling back to the
  per-key path only inside blocks where it actually fires;
* ``"reference"`` (:func:`stream_selected_reference`, kept in this module)
  advances one selected key per Python iteration - the original loop,
  retained as the golden model for differential testing.

The streaming semantics are **tile-synchronized**, mirroring the
hardware's dataflow: per-key state (running max, Max-Ensuring violations,
softmax weights, op/trigger accounting) evolves key by key, while the
accumulated weight/value mass of each ``tile_cols``-wide tile merges into
the carried normalizer/output at the tile boundary - the PE-column
partials meeting the accumulator at tile sync, the same boundary the
per-tile synchronization op has always charged.  Both kernels share one
prologue (score gather, warmup max scan), one epilogue (tile-sync
accounting, final normalization), and one batch-invariant tile-merge
primitive (:func:`repro.numerics.linalg.det_pv_contract`), so every row's
result is **bit-identical** across kernels and whether one row or ten
thousand share the call - which is what lets the batched engine
(``repro.engine``) and the cluster workers reuse this core while matching
the per-head operator exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.numerics.complexity import OpCounter
from repro.numerics.linalg import det_pv_contract, det_stack_scores, det_tile_mass


class UpdateOrder(Enum):
    """Processing order of the selected keys."""

    DESCENDING = "descending"
    ASCENDING = "ascending"


#: Entries scanned in max-update mode before streaming begins (the hardware
#: runs the AP module in mode 1 during the first phase of a tile).
_WARMUP_SCAN = 4

#: Raised (by every kernel) when a running-max violation is detected while
#: the Max-Ensuring circuit is disabled.
_ASSURANCE_ERROR = (
    "running max violated but max assurance is disabled; "
    "the predicted ordering was wrong"
)


@dataclass
class SufaRowResult:
    """SU-FA output for one query row."""

    output: np.ndarray
    ops: OpCounter
    assurance_triggers: int


@dataclass
class SufaResult:
    """Batched SU-FA output.

    ``assurance_triggers`` counts how often the Max-Ensuring circuit fired
    (0 when the sorting info was exact); it is the hardware-visible measure
    of DLZS prediction quality.
    """

    output: np.ndarray
    ops: OpCounter
    assurance_triggers: int


@dataclass
class SufaStackResult:
    """Row-resolved SU-FA output for a stack of query rows.

    Per-row op tallies stay separate so a caller batching many heads can
    aggregate them per head without losing the exact per-head totals.
    """

    output: np.ndarray  # (R, Dv)
    op_rows: dict[str, np.ndarray]  # op kind -> (R,) raw counts
    trigger_rows: np.ndarray  # (R,) Max-Ensuring activations

    def row_ops(self, row: int) -> OpCounter:
        ops = OpCounter()
        for op, counts in self.op_rows.items():
            ops.add_op(op, float(counts[row]))
        return ops


def _stream_prologue(
    q_rows: np.ndarray,
    k_sel: np.ndarray,
    v_sel: np.ndarray,
    order: UpdateOrder,
) -> tuple[
    np.ndarray,
    np.ndarray,
    dict[str, np.ndarray],
    np.ndarray,
    np.ndarray,
    np.ndarray,
    np.ndarray,
]:
    """Kernel-shared entry work: score gather, op tallies, warmup max scan.

    Returns ``(scores, values, op_rows, m, l, o, triggers)`` with ``scores``
    and ``values`` already flipped into processing order.  Every kernel must
    start from this state so the per-row op accounting and the mode-1 warmup
    semantics stay identical across implementations.
    """
    q_rows = np.asarray(q_rows, dtype=np.float64)
    k_sel = np.asarray(k_sel, dtype=np.float64)
    v_sel = np.asarray(v_sel, dtype=np.float64)
    r, d = q_rows.shape
    kk = k_sel.shape[1]
    dv = v_sel.shape[2]
    scale = 1.0 / np.sqrt(d)

    # Scale folded into q before the gather: one (R, D) multiply instead of
    # an extra full pass over the (R, kk) score matrix.
    scores = det_stack_scores(k_sel, q_rows * scale)  # (R, kk)
    if order is UpdateOrder.ASCENDING:
        # Materialized (not viewed) reversals: downstream primitives must
        # see one canonical layout, because BLAS-backed contractions take a
        # different (bit-divergent) path for negative-stride operands.
        scores = np.ascontiguousarray(scores[:, ::-1])
        values = np.ascontiguousarray(v_sel[:, ::-1, :])
    else:
        values = v_sel

    op_rows: dict[str, np.ndarray] = {
        # the QK^T gather work, charged as a (1, d) x (d, kk) matmul per row
        "mul": np.full(r, float(d * kk)),
        "add": np.full(r, float(max(d - 1, 0) * kk)),
        "compare": np.zeros(r),
        "exp": np.zeros(r),
        "div": np.zeros(r),
    }

    # Mode-1 warmup: the sorter guarantees exact ordering only for the top-1
    # and top-2 entries (paper Sec. IV-C), and the Max-Ensuring circuit runs
    # in max-update mode over the first block, so the engine starts from the
    # true maximum of the leading entries rather than trusting scores[:, 0].
    warmup = min(_WARMUP_SCAN, kk)
    m = np.max(scores[:, :warmup], axis=1)
    op_rows["compare"] += warmup - 1
    l = np.zeros(r)
    o = np.zeros((r, dv))
    triggers = np.zeros(r, dtype=np.int64)
    return scores, values, op_rows, m, l, o, triggers


def _stream_epilogue(
    o: np.ndarray,
    l: np.ndarray,
    op_rows: dict[str, np.ndarray],
    triggers: np.ndarray,
    kk: int,
    tile_cols: int,
) -> SufaStackResult:
    """Kernel-shared exit work: tile-sync accounting and final normalization."""
    # tile synchronization bookkeeping: one boundary op per tile
    n_tiles = -(-kk // tile_cols) if tile_cols >= 1 else 1
    op_rows["compare"] += n_tiles
    out = o / l[:, None]
    op_rows["div"] += o.shape[1]
    return SufaStackResult(output=out, op_rows=op_rows, trigger_rows=triggers)


def stream_selected_reference(
    q_rows: np.ndarray,
    k_sel: np.ndarray,
    v_sel: np.ndarray,
    order: UpdateOrder = UpdateOrder.DESCENDING,
    max_assurance: bool = True,
    tile_cols: int = 64,
) -> SufaStackResult:
    """The per-key streaming loop: one selected key per Python iteration.

    This is the **golden model** of the tile-synchronized streaming
    semantics: the whole stack advances one key position per step - the
    running max, Max-Ensuring violations, softmax weights, trigger and op
    accounting all evolve per key exactly as in the pre-kernel-layer loop -
    and every state update is elementwise, so each row's result is
    trivially independent of its batch-mates.  The accumulated weight/value
    mass of a tile is merged into the carried ``(l, o)`` state at the tile
    boundary through the shared batch-invariant
    :func:`~repro.numerics.linalg.det_pv_contract` primitive (the
    hardware's PE-column partials merging at tile sync - the same boundary
    the per-tile synchronization op already models); a mid-tile
    misprediction rescales the carried state *and* the tile's pending
    weights, keeping the result exact.

    The blocked kernel is differentially tested against this model bit for
    bit (``tests/test_kernels_sufa.py``); serving paths reach it via
    ``kernel="reference"``.
    """
    scores, values, op_rows, m, l, o, triggers = _stream_prologue(
        q_rows, k_sel, v_sel, order
    )
    r = scores.shape[0]
    kk = scores.shape[1]
    dv = values.shape[2]
    block = max(int(tile_cols), 1)

    for lo in range(0, kk, block):
        hi = min(lo + block, kk)
        p_tile = np.zeros((r, hi - lo))
        for t in range(hi - lo):
            j = lo + t
            x = scores[:, j]
            viol = x > m
            if viol.any():
                if not max_assurance:
                    raise RuntimeError(_ASSURANCE_ERROR)
                # Max-Ensuring circuit: one classic-FA rescale step on the
                # violating rows only (corr == 1.0 elsewhere leaves state
                # exact): the carried normalizer/output and the tile's
                # pending weights all rescale by exp(m_prev - m).
                corr = np.exp(np.where(viol, m - x, 0.0))
                l = l * corr
                o = o * corr[:, None]
                p_tile[:, :t] *= corr[:, None]
                op_rows["exp"] += viol
                op_rows["mul"] += viol * (1 + dv)
                op_rows["compare"] += viol
                m = np.where(viol, x, m)
                triggers += viol
            p_tile[:, t] = np.exp(x - m)
            op_rows["exp"] += 1
            if order is UpdateOrder.ASCENDING and j > 0:
                # Eq. (1): ascending updates rescale l by exp(m_prev - m)
                # even though the exponent simplification makes p == 1; that
                # rescale is one extra mul per step relative to descending.
                op_rows["mul"] += 1
            op_rows["add"] += 1
            op_rows["mul"] += dv
            op_rows["add"] += dv
        # Tile sync: fold this tile's weight/value mass into the carried
        # state through the shared contraction primitives.
        l = l + det_tile_mass(p_tile)
        o = o + det_pv_contract(p_tile, values[:, lo:hi, :])

    return _stream_epilogue(o, l, op_rows, triggers, kk, tile_cols)


def stream_selected(
    q_rows: np.ndarray,
    k_sel: np.ndarray,
    v_sel: np.ndarray,
    order: UpdateOrder = UpdateOrder.DESCENDING,
    max_assurance: bool = True,
    tile_cols: int = 64,
    kernel: str | None = None,
) -> SufaStackResult:
    """Stream pre-gathered (K, V) pairs through the sorted-updating engine.

    Parameters
    ----------
    q_rows:
        ``(R, D)`` query rows (one per selected-key list).
    k_sel / v_sel:
        ``(R, kk, D)`` / ``(R, kk, Dv)`` keys and values already gathered in
        SADS output order (descending estimated score).
    order / max_assurance / tile_cols:
        As in :func:`sorted_updating_attention`.
    kernel:
        Which streaming kernel runs the stack (see :mod:`repro.kernels`):
        ``"blocked"`` (tile-blocked, the default), ``"reference"`` (per-key
        loop), or ``None``/``"auto"`` to take the ``SOFA_SUFA_KERNEL``
        environment override / registry default.

    Every kernel produces bit-identical outputs, Max-Ensuring trigger
    counts, and per-row op tallies, so the choice only moves wall-clock
    time; each row's result is also bit-identical to streaming it alone.
    """
    from repro.kernels import get_sufa_kernel

    impl = get_sufa_kernel(kernel)
    return impl(
        q_rows,
        k_sel,
        v_sel,
        order=order,
        max_assurance=max_assurance,
        tile_cols=tile_cols,
    )


def sorted_updating_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    sorted_indices: np.ndarray,
    order: UpdateOrder = UpdateOrder.DESCENDING,
    max_assurance: bool = True,
    tile_cols: int = 64,
    kernel: str | None = None,
) -> SufaResult:
    """Sparse attention over pre-sorted selected keys (the SU-FA engine).

    Parameters
    ----------
    q, k, v:
        ``(T, D)``, ``(S, D)``, ``(S, D)`` float matrices.
    sorted_indices:
        ``(T, kk)`` selected key indices per row, sorted by *descending
        estimated* score (the SADS output convention).  For ascending order
        the engine walks them back-to-front.
    order:
        Update order; descending is the paper's default.
    max_assurance:
        Model the Max-Ensuring circuit; disabling it raises on mispredicted
        orderings instead of silently producing overflow-prone results.
    tile_cols:
        Bc: the streaming block width of the blocked kernel, and the tile
        synchronization op count.
    kernel:
        Streaming kernel selection, as in :func:`stream_selected`.
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    sorted_indices = np.asarray(sorted_indices, dtype=np.int64)
    t = q.shape[0]
    if sorted_indices.ndim != 2 or sorted_indices.shape[0] != t:
        raise ValueError("sorted_indices must be (T, k)")

    res = stream_selected(
        q,
        k[sorted_indices],
        v[sorted_indices],
        order=order,
        max_assurance=max_assurance,
        tile_cols=tile_cols,
        kernel=kernel,
    )
    ops = OpCounter()
    for op, counts in res.op_rows.items():
        ops.add_op(op, float(counts.sum()))
    return SufaResult(
        output=res.output,
        ops=ops,
        assurance_triggers=int(res.trigger_rows.sum()),
    )


def sufa_update_ops_per_step(order: UpdateOrder, d: int) -> dict[str, float]:
    """Closed-form per-step softmax-state cost of each order (Fig. 10).

    Excludes the shared P*V accumulation work; descending needs one exp and
    one add for l, ascending adds one mul (the exp(m_prev - m) rescale).
    Classic FA additionally rescales o (d muls) and compares (1) per step in
    the worst case, which is how the ~25% total saving arises.
    """
    base = {"exp": 1.0, "add": 1.0}
    if order is UpdateOrder.ASCENDING:
        base["mul"] = 1.0
    return base
