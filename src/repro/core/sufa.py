"""SU-FA: sorted-updating FlashAttention (Sec. III-C).

Classic FlashAttention must refresh a running row-max across K/V tiles and
rescale its running normalizer/output by ``exp(m_prev - m)`` whenever the max
moves - the recomputation the paper's Fig. 5 shows exploding with tile count.
SU-FA removes that work by consuming the *ordering* the top-k stage already
produced: processing selected keys in **descending** estimated-score order
means the first element is the row max, so the running max never changes and
each step costs one exp + one add for the normalizer (Eq. (2) of Fig. 10).

Processing in **ascending** order also avoids comparisons but each step still
pays an extra exp-mul rescale (Eq. (1)); the paper measures descending at
~11% less complexity than ascending and ~25% less than classic FA.

Because the ordering comes from the *approximate* DLZS scores, the predicted
max can be wrong.  The Max-Ensuring circuit (Sec. IV-D) is modeled by
``max_assurance=True``: whenever a streamed score exceeds the running max the
engine falls back to one classic-FA rescale step (counted), keeping the
result exact regardless of prediction quality.

Implementation note: the streaming core (:func:`stream_selected`) is
vectorized over an arbitrary stack of query rows - the key-position loop
advances every row one selected key at a time, exactly like the hardware's
row-parallel PE columns share one K/V stream.  Row results are bit-identical
whether one row or ten thousand share the call, which is what lets the
batched engine (``repro.engine``) reuse this core while matching the
per-head operator exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.numerics.complexity import OpCounter
from repro.numerics.linalg import det_rowdot


class UpdateOrder(Enum):
    """Processing order of the selected keys."""

    DESCENDING = "descending"
    ASCENDING = "ascending"


#: Entries scanned in max-update mode before streaming begins (the hardware
#: runs the AP module in mode 1 during the first phase of a tile).
_WARMUP_SCAN = 4


@dataclass
class SufaRowResult:
    """SU-FA output for one query row."""

    output: np.ndarray
    ops: OpCounter
    assurance_triggers: int


@dataclass
class SufaResult:
    """Batched SU-FA output.

    ``assurance_triggers`` counts how often the Max-Ensuring circuit fired
    (0 when the sorting info was exact); it is the hardware-visible measure
    of DLZS prediction quality.
    """

    output: np.ndarray
    ops: OpCounter
    assurance_triggers: int


@dataclass
class SufaStackResult:
    """Row-resolved SU-FA output for a stack of query rows.

    Per-row op tallies stay separate so a caller batching many heads can
    aggregate them per head without losing the exact per-head totals.
    """

    output: np.ndarray  # (R, Dv)
    op_rows: dict[str, np.ndarray]  # op kind -> (R,) raw counts
    trigger_rows: np.ndarray  # (R,) Max-Ensuring activations

    def row_ops(self, row: int) -> OpCounter:
        ops = OpCounter()
        for op, counts in self.op_rows.items():
            ops.add_op(op, float(counts[row]))
        return ops


def stream_selected(
    q_rows: np.ndarray,
    k_sel: np.ndarray,
    v_sel: np.ndarray,
    order: UpdateOrder = UpdateOrder.DESCENDING,
    max_assurance: bool = True,
    tile_cols: int = 64,
) -> SufaStackResult:
    """Stream pre-gathered (K, V) pairs through the sorted-updating engine.

    Parameters
    ----------
    q_rows:
        ``(R, D)`` query rows (one per selected-key list).
    k_sel / v_sel:
        ``(R, kk, D)`` / ``(R, kk, Dv)`` keys and values already gathered in
        SADS output order (descending estimated score).
    order / max_assurance / tile_cols:
        As in :func:`sorted_updating_attention`.

    The whole stack advances one key position per step; state updates are
    elementwise, so each row's result is bit-identical to streaming it alone.
    """
    q_rows = np.asarray(q_rows, dtype=np.float64)
    k_sel = np.asarray(k_sel, dtype=np.float64)
    v_sel = np.asarray(v_sel, dtype=np.float64)
    r, d = q_rows.shape
    kk = k_sel.shape[1]
    dv = v_sel.shape[2]
    scale = 1.0 / np.sqrt(d)

    scores = det_rowdot(k_sel, q_rows[:, None, :]) * scale  # (R, kk)
    if order is UpdateOrder.ASCENDING:
        scores = scores[:, ::-1]
        values = v_sel[:, ::-1, :]
    else:
        values = v_sel

    op_rows: dict[str, np.ndarray] = {
        # the QK^T gather work, charged as a (1, d) x (d, kk) matmul per row
        "mul": np.full(r, float(d * kk)),
        "add": np.full(r, float(max(d - 1, 0) * kk)),
        "compare": np.zeros(r),
        "exp": np.zeros(r),
        "div": np.zeros(r),
    }

    # Mode-1 warmup: the sorter guarantees exact ordering only for the top-1
    # and top-2 entries (paper Sec. IV-C), and the Max-Ensuring circuit runs
    # in max-update mode over the first block, so the engine starts from the
    # true maximum of the leading entries rather than trusting scores[:, 0].
    warmup = min(_WARMUP_SCAN, kk)
    m = np.max(scores[:, :warmup], axis=1)
    op_rows["compare"] += warmup - 1
    l = np.zeros(r)
    o = np.zeros((r, dv))
    triggers = np.zeros(r, dtype=np.int64)

    for j in range(kk):
        x = scores[:, j]
        viol = x > m
        if viol.any():
            if not max_assurance:
                raise RuntimeError(
                    "running max violated but max assurance is disabled; "
                    "the predicted ordering was wrong"
                )
            # Max-Ensuring circuit: one classic-FA rescale step on the
            # violating rows only (corr == 1.0 elsewhere leaves state exact).
            corr = np.exp(np.where(viol, m - x, 0.0))
            l = l * corr
            o = o * corr[:, None]
            op_rows["exp"] += viol
            op_rows["mul"] += viol * (1 + dv)
            op_rows["compare"] += viol
            m = np.where(viol, x, m)
            triggers += viol
        p = np.exp(x - m)
        op_rows["exp"] += 1
        if order is UpdateOrder.ASCENDING and j > 0:
            # Eq. (1): ascending updates rescale l by exp(m_prev - m) even
            # though the exponent simplification makes p == 1; that rescale
            # is one extra mul per step relative to descending.
            op_rows["mul"] += 1
        l = l + p
        op_rows["add"] += 1
        o = o + p[:, None] * values[:, j, :]
        op_rows["mul"] += dv
        op_rows["add"] += dv

    # tile synchronization bookkeeping: one boundary op per tile
    n_tiles = -(-kk // tile_cols) if tile_cols >= 1 else 1
    op_rows["compare"] += n_tiles

    o = o / l[:, None]
    op_rows["div"] += dv
    return SufaStackResult(output=o, op_rows=op_rows, trigger_rows=triggers)


def sorted_updating_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    sorted_indices: np.ndarray,
    order: UpdateOrder = UpdateOrder.DESCENDING,
    max_assurance: bool = True,
    tile_cols: int = 64,
) -> SufaResult:
    """Sparse attention over pre-sorted selected keys (the SU-FA engine).

    Parameters
    ----------
    q, k, v:
        ``(T, D)``, ``(S, D)``, ``(S, D)`` float matrices.
    sorted_indices:
        ``(T, kk)`` selected key indices per row, sorted by *descending
        estimated* score (the SADS output convention).  For ascending order
        the engine walks them back-to-front.
    order:
        Update order; descending is the paper's default.
    max_assurance:
        Model the Max-Ensuring circuit; disabling it raises on mispredicted
        orderings instead of silently producing overflow-prone results.
    tile_cols:
        Bc, only affects synchronization op counts.
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    sorted_indices = np.asarray(sorted_indices, dtype=np.int64)
    t = q.shape[0]
    if sorted_indices.ndim != 2 or sorted_indices.shape[0] != t:
        raise ValueError("sorted_indices must be (T, k)")

    res = stream_selected(
        q,
        k[sorted_indices],
        v[sorted_indices],
        order=order,
        max_assurance=max_assurance,
        tile_cols=tile_cols,
    )
    ops = OpCounter()
    for op, counts in res.op_rows.items():
        ops.add_op(op, float(counts.sum()))
    return SufaResult(
        output=res.output,
        ops=ops,
        assurance_triggers=int(res.trigger_rows.sum()),
    )


def sufa_update_ops_per_step(order: UpdateOrder, d: int) -> dict[str, float]:
    """Closed-form per-step softmax-state cost of each order (Fig. 10).

    Excludes the shared P*V accumulation work; descending needs one exp and
    one add for l, ascending adds one mul (the exp(m_prev - m) rescale).
    Classic FA additionally rescales o (d muls) and compares (1) per step in
    the worst case, which is how the ~25% total saving arises.
    """
    base = {"exp": 1.0, "add": 1.0}
    if order is UpdateOrder.ASCENDING:
        base["mul"] = 1.0
    return base
