"""SU-FA: sorted-updating FlashAttention (Sec. III-C).

Classic FlashAttention must refresh a running row-max across K/V tiles and
rescale its running normalizer/output by ``exp(m_prev - m)`` whenever the max
moves - the recomputation the paper's Fig. 5 shows exploding with tile count.
SU-FA removes that work by consuming the *ordering* the top-k stage already
produced: processing selected keys in **descending** estimated-score order
means the first element is the row max, so the running max never changes and
each step costs one exp + one add for the normalizer (Eq. (2) of Fig. 10).

Processing in **ascending** order also avoids comparisons but each step still
pays an extra exp-mul rescale (Eq. (1)); the paper measures descending at
~11% less complexity than ascending and ~25% less than classic FA.

Because the ordering comes from the *approximate* DLZS scores, the predicted
max can be wrong.  The Max-Ensuring circuit (Sec. IV-D) is modeled by
``max_assurance=True``: whenever a streamed score exceeds the running max the
engine falls back to one classic-FA rescale step (counted), keeping the
result exact regardless of prediction quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.numerics.complexity import OpCounter, matmul_ops


class UpdateOrder(Enum):
    """Processing order of the selected keys."""

    DESCENDING = "descending"
    ASCENDING = "ascending"


#: Entries scanned in max-update mode before streaming begins (the hardware
#: runs the AP module in mode 1 during the first phase of a tile).
_WARMUP_SCAN = 4


@dataclass
class SufaRowResult:
    """SU-FA output for one query row."""

    output: np.ndarray
    ops: OpCounter
    assurance_triggers: int


@dataclass
class SufaResult:
    """Batched SU-FA output.

    ``assurance_triggers`` counts how often the Max-Ensuring circuit fired
    (0 when the sorting info was exact); it is the hardware-visible measure
    of DLZS prediction quality.
    """

    output: np.ndarray
    ops: OpCounter
    assurance_triggers: int


def _stream_row(
    scores: np.ndarray,
    values: np.ndarray,
    order: UpdateOrder,
    max_assurance: bool,
    tile_cols: int,
) -> SufaRowResult:
    """Stream one row's (score, value) pairs in the given order.

    ``scores``/``values`` must already be arranged in the processing order
    (the caller applies the top-k stage's permutation).  Tiling only affects
    the synchronization op count (one tile-boundary bookkeeping compare per
    tile), not the numerics - the state (m, l, o) carries across tiles.
    """
    ops = OpCounter()
    k = scores.size
    d = values.shape[1]
    triggers = 0

    # Mode-1 warmup: the sorter guarantees exact ordering only for the top-1
    # and top-2 entries (paper Sec. IV-C), and the Max-Ensuring circuit runs
    # in max-update mode over the first block, so the engine starts from the
    # true maximum of the leading entries rather than trusting scores[0].
    warmup = min(_WARMUP_SCAN, k)
    m = float(np.max(scores[:warmup]))
    ops.add_op("compare", warmup - 1)
    l = 0.0
    o = np.zeros(d)

    for j in range(k):
        x = float(scores[j])
        if x > m:
            if not max_assurance:
                raise RuntimeError(
                    "running max violated but max assurance is disabled; "
                    "the predicted ordering was wrong"
                )
            # Max-Ensuring circuit: one classic-FA rescale step.
            corr = np.exp(m - x)
            ops.add_op("exp", 1)
            l *= corr
            o *= corr
            ops.add_op("mul", 1 + d)
            ops.add_op("compare", 1)
            m = x
            triggers += 1
        p = np.exp(x - m)
        ops.add_op("exp", 1)
        if order is UpdateOrder.ASCENDING and j > 0:
            # Eq. (1): ascending updates rescale l by exp(m_prev - m) even
            # though the exponent simplification makes p == 1; that rescale
            # is one extra mul per step relative to descending.
            ops.add_op("mul", 1)
        l += p
        ops.add_op("add", 1)
        o += p * values[j]
        ops.add_op("mul", d)
        ops.add_op("add", d)

    # tile synchronization bookkeeping: one boundary op per tile
    n_tiles = -(-k // tile_cols) if tile_cols >= 1 else 1
    ops.add_op("compare", n_tiles)

    o /= l
    ops.add_op("div", d)
    return SufaRowResult(output=o, ops=ops, assurance_triggers=triggers)


def sorted_updating_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    sorted_indices: np.ndarray,
    order: UpdateOrder = UpdateOrder.DESCENDING,
    max_assurance: bool = True,
    tile_cols: int = 64,
) -> SufaResult:
    """Sparse attention over pre-sorted selected keys (the SU-FA engine).

    Parameters
    ----------
    q, k, v:
        ``(T, D)``, ``(S, D)``, ``(S, D)`` float matrices.
    sorted_indices:
        ``(T, kk)`` selected key indices per row, sorted by *descending
        estimated* score (the SADS output convention).  For ascending order
        the engine walks them back-to-front.
    order:
        Update order; descending is the paper's default.
    max_assurance:
        Model the Max-Ensuring circuit; disabling it raises on mispredicted
        orderings instead of silently producing overflow-prone results.
    tile_cols:
        Bc, only affects synchronization op counts.
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    sorted_indices = np.asarray(sorted_indices, dtype=np.int64)
    t, d = q.shape
    if sorted_indices.ndim != 2 or sorted_indices.shape[0] != t:
        raise ValueError("sorted_indices must be (T, k)")
    kk = sorted_indices.shape[1]
    scale = 1.0 / np.sqrt(d)

    ops = OpCounter()
    outputs = np.zeros((t, v.shape[1]))
    triggers = 0
    for i in range(t):
        sel = sorted_indices[i]
        scores = (k[sel] @ q[i]) * scale  # (kk,) - the QK^T work
        ops_row = matmul_ops(1, d, kk)
        if order is UpdateOrder.ASCENDING:
            sel_order = slice(None, None, -1)
        else:
            sel_order = slice(None)
        res = _stream_row(
            scores[sel_order],
            v[sel][sel_order],
            order,
            max_assurance,
            tile_cols,
        )
        outputs[i] = res.output
        ops = ops + ops_row + res.ops
        triggers += res.assurance_triggers
    return SufaResult(output=outputs, ops=ops, assurance_triggers=triggers)


def sufa_update_ops_per_step(order: UpdateOrder, d: int) -> dict[str, float]:
    """Closed-form per-step softmax-state cost of each order (Fig. 10).

    Excludes the shared P*V accumulation work; descending needs one exp and
    one add for l, ascending adds one mul (the exp(m_prev - m) rescale).
    Classic FA additionally rescales o (d muls) and compares (1) per step in
    the worst case, which is how the ~25% total saving arises.
    """
    base = {"exp": 1.0, "add": 1.0}
    if order is UpdateOrder.ASCENDING:
        base["mul"] = 1.0
    return base
