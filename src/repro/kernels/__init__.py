"""``repro.kernels``: interchangeable implementations of the hot streaming cores.

The serving stack's hottest path is the SU-FA streaming core every tier
bottoms out in (per-head pipeline, :class:`~repro.engine.batched.
BatchedSofaAttention`, :class:`~repro.engine.serving.SofaEngine` backends,
:mod:`repro.cluster` workers).  This package separates *what* that core
computes (the contract of :func:`repro.core.sufa.stream_selected`, fixed
bit for bit) from *how* it is executed:

* :mod:`repro.kernels.registry` - named kernel registration and the
  selection precedence (explicit name > ``SOFA_SUFA_KERNEL`` env var >
  ``"blocked"`` default);
* :mod:`repro.kernels.sufa_blocked` - the tile-blocked kernel
  (``tile_cols`` keys per Python step, per-key fallback only inside
  blocks where the Max-Ensuring circuit fires);
* ``"reference"`` - the original per-key loop, living next to the
  contract in :mod:`repro.core.sufa` as the golden model.

Because every tier resolves its kernel through this one registry, the
engine/cluster parity contract cannot drift: all paths share a single
streaming implementation per selection, and any registered kernel must be
differentially bit-equal to the reference.
"""

from repro.kernels.registry import (
    DEFAULT_SUFA_KERNEL,
    KERNEL_ENV_VAR,
    SufaKernel,
    available_sufa_kernels,
    get_sufa_kernel,
    register_sufa_kernel,
    resolve_sufa_kernel_name,
)
from repro.kernels.sufa_blocked import stream_selected_blocked

__all__ = [
    "DEFAULT_SUFA_KERNEL",
    "KERNEL_ENV_VAR",
    "SufaKernel",
    "available_sufa_kernels",
    "get_sufa_kernel",
    "register_sufa_kernel",
    "resolve_sufa_kernel_name",
    "stream_selected_blocked",
]
