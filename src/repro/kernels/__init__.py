"""``repro.kernels``: per-stage registries of interchangeable stage kernels.

Every dynamic-sparsity stage of the pipeline resolves its implementation
through a named registry keyed by stage (:data:`STAGES` - ``"predict"``,
``"select"``, ``"stream"``), separating *what* a stage computes (a
bit-for-bit fixed contract, each with a golden model in ``repro.core``)
from *how* it is executed:

* :mod:`repro.kernels.registry` - registration plus the per-stage
  selection precedence (explicit name > ``SOFA_<STAGE>_KERNEL`` env var >
  stage default);
* :mod:`repro.kernels.predict_select_fused` - the ``"fused"`` predict and
  select entries: blocked DLZS score prediction with in-band SADS
  selection per tile, never materializing the full score matrix (the
  software analogue of the paper's coordinated tiling, engaged when both
  stages resolve to the same fused engine - see :func:`fused_pair`);
* :mod:`repro.kernels.sufa_blocked` - the tile-blocked SU-FA streaming
  kernel (``tile_cols`` keys per Python step);
* ``"reference"`` entries - the golden models themselves
  (``DlzsPredictor.predict`` / ``SadsSorter.select_stack`` /
  the per-key loop in :mod:`repro.core.sufa`).

Because every serving tier (per-head pipeline, batched engine, thread
backends, cluster/socket workers) resolves all three stages through these
registries, the cross-tier parity contract cannot drift: one
implementation per stage per selection, and any registered kernel must be
differentially bit-equal to its stage's golden model (enforced by the
kernel test suites, re-run per combination by CI's kernel-matrix job).
The same seam is where array-API backends (CuPy / torch) plug in later: a
backend is just another registered kernel facing the same sweeps.

The SU-FA-only names of PR 4 (``register_sufa_kernel`` and friends)
remain as thin wrappers over the ``"stream"`` stage.
"""

from repro.kernels.predict_select_fused import (
    FUSED,
    FusedPredictSelect,
    fused_pair,
)
from repro.kernels.registry import (
    DEFAULT_SUFA_KERNEL,
    KERNEL_ENV_VAR,
    STAGES,
    Kernel,
    SufaKernel,
    available_kernels,
    available_sufa_kernels,
    default_kernel,
    get_kernel,
    get_sufa_kernel,
    kernel_env_var,
    register_kernel,
    register_sufa_kernel,
    resolve_kernel_name,
    resolve_sufa_kernel_name,
    resolved_kernels,
)
from repro.kernels.sufa_blocked import stream_selected_blocked

__all__ = [
    "DEFAULT_SUFA_KERNEL",
    "FUSED",
    "FusedPredictSelect",
    "KERNEL_ENV_VAR",
    "Kernel",
    "STAGES",
    "SufaKernel",
    "available_kernels",
    "available_sufa_kernels",
    "default_kernel",
    "fused_pair",
    "get_kernel",
    "get_sufa_kernel",
    "kernel_env_var",
    "register_kernel",
    "register_sufa_kernel",
    "resolve_kernel_name",
    "resolve_sufa_kernel_name",
    "resolved_kernels",
    "stream_selected_blocked",
]
