"""Block-vectorized SU-FA streaming kernel (the ``"blocked"`` registry entry).

The reference loop advances the whole query stack one selected key per
Python iteration, spending ~8 small-array ufunc dispatches (violation
compare, branch, exp, weight store, op tallies) per key - O(kk)
interpreter steps that cap every serving tier built on top of it.  The
paper's SU-FA engine instead consumes keys in Bc-wide tiles, with the
Max-Ensuring circuit firing only on the rare misprediction (Sec. IV-D).
This kernel makes the software match the hardware: O(kk / tile_cols)
Python steps, each advancing a whole ``tile_cols``-wide block for every
row at once - one fused ``exp`` over the block, one block-max violation
probe, and the very same pair of tile-merge primitive calls the reference
issues at its tile boundary.

Why the result is bit-for-bit identical to the reference loop:

* **Violation detection is exact.**  The loop's running max only ever
  rises to the running prefix maximum (``m`` after key ``j`` equals
  ``max(m_carry, x_0..x_j)`` whether or not a violation fired), so a block
  contains a violation exactly when its maximum strictly exceeds the
  carried max: the *first* in-block key above ``m_carry`` has nothing
  before it in the block exceeding ``m_carry``, so it violates; and any
  violating key exceeds its prefix max, hence ``m_carry``.  One ``max``
  reduction per block replaces the loop's per-key compare-and-branch; the
  full per-key violation pattern (``x_j > max(m_carry, x_0..x_{j-1})``, a
  ``np.maximum.accumulate`` prefix) is only materialized for the rows
  that need it.
* **The fast path computes the same tile quantities.**  In a
  violation-free block the running max is constant, so the per-key weights
  collapse to one ``exp`` over the whole block - the same ufunc,
  elementwise, as the reference's per-key ``exp``.
* **Violating rows replay the block per key.**  Rows whose block contains
  a violation replay the reference's step body - carried-state and
  pending-weight rescales on each firing - restricted to those rows
  (every update is elementwise, so row results are independent of
  batch-mates), writing their weights into the same stack-wide tile
  buffer the fast rows fill vectorized.
* **The tile merge is one shared call.**  Both kernels fold the completed
  tile buffer into the carried state through
  :func:`~repro.numerics.linalg.det_tile_mass` /
  :func:`~repro.numerics.linalg.det_pv_contract`, invoked on the whole
  stack with identical shapes and layouts - never on row subsets - so the
  merge contributes bit-identical addends no matter how rows were split
  between fast path and replay.
* **Op tallies are closed-form per block.**  The loop's unconditional
  per-step charges sum to ``B``-scaled constants; its violation charges
  sum to the per-row violation count, which the exact violation mask
  provides without charging anything inside the replay.

The differential sweep in ``tests/test_kernels_sufa.py`` enforces all of
this against :func:`repro.core.sufa.stream_selected_reference` on
adversarial orderings, odd block tails, and warmup-short selections.
"""

from __future__ import annotations

import numpy as np

from repro.core.sufa import (
    _ASSURANCE_ERROR,
    SufaStackResult,
    UpdateOrder,
    _stream_epilogue,
    _stream_prologue,
)
from repro.numerics.linalg import det_pv_contract, det_tile_mass


def _replay_block(
    x: np.ndarray,
    rows: np.ndarray,
    m: np.ndarray,
    l: np.ndarray,
    o: np.ndarray,
    p_buf: np.ndarray,
) -> None:
    """Exact per-key replay of one block for the rows it violated in.

    Replays the reference step body restricted to ``rows``: per-key
    running-max updates, Max-Ensuring rescales of the carried state and of
    the tile's pending weights.  Fills ``p_buf[rows]`` with the resulting
    weights; the caller performs the (stack-wide) tile merge.  State
    updates are elementwise, so restricting the stack cannot change a
    row's bits; op accounting happens closed-form in the caller.
    """
    m_s, l_s, o_s = m[rows], l[rows], o[rows]
    p_tile = np.zeros((rows.size, x.shape[1]))
    for t in range(x.shape[1]):
        xj = x[rows, t]
        viol = xj > m_s
        if viol.any():
            corr = np.exp(np.where(viol, m_s - xj, 0.0))
            l_s = l_s * corr
            o_s = o_s * corr[:, None]
            p_tile[:, :t] *= corr[:, None]
            m_s = np.where(viol, xj, m_s)
        p_tile[:, t] = np.exp(xj - m_s)
    p_buf[rows] = p_tile
    m[rows], l[rows], o[rows] = m_s, l_s, o_s


def stream_selected_blocked(
    q_rows: np.ndarray,
    k_sel: np.ndarray,
    v_sel: np.ndarray,
    order: UpdateOrder = UpdateOrder.DESCENDING,
    max_assurance: bool = True,
    tile_cols: int = 64,
) -> SufaStackResult:
    """Tile-blocked SU-FA streaming: ``tile_cols`` keys per Python step.

    Same contract (and same bits) as
    :func:`repro.core.sufa.stream_selected_reference`; see the module
    docstring for the parity argument.
    """
    scores, values, op_rows, m, l, o, triggers = _stream_prologue(
        q_rows, k_sel, v_sel, order
    )
    r = scores.shape[0]
    kk = scores.shape[1]
    dv = values.shape[2]
    block = max(int(tile_cols), 1)
    ascending = order is UpdateOrder.ASCENDING
    # One weight buffer reused across full-width blocks (the common case);
    # a short tail block gets its own exact-width buffer.
    weight_buf = np.empty((r, min(block, kk) if kk else 0))

    # Closed-form whole-stream tallies: the loop's unconditional per-step
    # charges (one exp, 1+Dv adds, Dv muls per key; ascending adds one
    # rescale mul per key past the first) summed over all kk keys.  All
    # counts are small integers, so the float totals are exact regardless
    # of summation granularity.
    op_rows["exp"] += kk
    op_rows["add"] += kk * (1.0 + dv)
    op_rows["mul"] += float(kk * dv)
    if ascending and kk:
        op_rows["mul"] += kk - 1

    for lo in range(0, kk, block):
        hi = min(lo + block, kk)
        b = hi - lo
        x = scores[:, lo:hi]

        # Exact block-level violation probe: the block violates iff its max
        # strictly exceeds the carried running max (see module docstring).
        has_viol = x.max(axis=1) > m
        if has_viol.any():
            if not max_assurance:
                raise RuntimeError(_ASSURANCE_ERROR)
            slow = np.flatnonzero(has_viol)
            # Per-key violation pattern, materialized only for these rows:
            # entry t of the exclusive prefix max is the loop's m before
            # key lo+t, so the comparison reproduces its firing pattern.
            xs = x[slow]
            prefix = np.maximum.accumulate(
                np.concatenate([m[slow][:, None], xs[:, :-1]], axis=1), axis=1
            )
            viol_counts = (xs > prefix).sum(axis=1)
            # Violation charges: one exp, 1+Dv muls, one compare (and one
            # trigger) per violating key, on the violating row only.
            op_rows["exp"][slow] += viol_counts
            op_rows["mul"][slow] += viol_counts * (1.0 + dv)
            op_rows["compare"][slow] += viol_counts
            triggers[slow] += viol_counts
            p_buf = weight_buf if b == weight_buf.shape[1] else np.empty((r, b))
            fast = np.flatnonzero(~has_viol)
            if fast.size:
                # m is constant on violation-free rows, so their whole
                # block of weights is one exp (elementwise == per-key).
                p_fast = np.subtract(x[fast], m[fast][:, None])
                np.exp(p_fast, out=p_fast)
                p_buf[fast] = p_fast
            _replay_block(x, slow, m, l, o, p_buf)
        else:
            p_buf = weight_buf if b == weight_buf.shape[1] else np.empty((r, b))
            np.subtract(x, m[:, None], out=p_buf)
            np.exp(p_buf, out=p_buf)

        # Tile sync, identical (stack-wide) primitive calls to the
        # reference's boundary merge.
        l += det_tile_mass(p_buf)
        o += det_pv_contract(p_buf, values[:, lo:hi, :])

    return _stream_epilogue(o, l, op_rows, triggers, kk, tile_cols)
