"""Registry of interchangeable SU-FA streaming kernels.

Every kernel implements one signature - the streaming contract of
:func:`repro.core.sufa.stream_selected` minus the ``kernel`` argument::

    kernel(q_rows, k_sel, v_sel, *, order, max_assurance, tile_cols)
        -> SufaStackResult

and every registered kernel must be **bit-for-bit interchangeable**: same
output bits, same Max-Ensuring trigger counts, same per-row op tallies as
the ``"reference"`` golden model on any input (the differential sweep in
``tests/test_kernels_sufa.py`` is the enforcement).  Because all serving
tiers (per-head pipeline, batched engine, thread backends, cluster workers)
reach SU-FA through this registry, their mutual parity contract holds by
construction - there is only one streaming implementation per process-wide
selection, not one per tier.

Selection precedence, first hit wins:

1. an explicit kernel name passed by the caller (``stream_selected(...,
   kernel="reference")`` or ``SufaConfig.sufa.kernel != "auto"``);
2. the :data:`KERNEL_ENV_VAR` environment variable (``SOFA_SUFA_KERNEL``);
3. :data:`DEFAULT_SUFA_KERNEL` (``"blocked"``).

Adding a kernel takes one call (or decorator use)::

    from repro.kernels import register_sufa_kernel

    @register_sufa_kernel("mine")
    def stream_selected_mine(q_rows, k_sel, v_sel, *, order, ...):
        ...

after which ``kernel="mine"`` (or ``SOFA_SUFA_KERNEL=mine``) routes every
tier through it.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.core.sufa import SufaStackResult

#: A streaming kernel: the stream_selected contract minus ``kernel``.
SufaKernel = Callable[..., "SufaStackResult"]

#: Environment override consulted when no explicit kernel name is given.
KERNEL_ENV_VAR = "SOFA_SUFA_KERNEL"

#: Registry fallback when neither caller nor environment picks a kernel.
DEFAULT_SUFA_KERNEL = "blocked"

#: Names a caller may pass to mean "apply env/default precedence".
_AUTO_NAMES = (None, "", "auto")

_REGISTRY: dict[str, SufaKernel] = {}
_builtins_loaded = False


def _load_builtins() -> None:
    """Register the in-tree kernels (lazily, to dodge import cycles).

    ``repro.core.sufa`` must stay importable without this package and this
    package needs the reference kernel from it, so the linkage happens on
    first registry use instead of at import time.
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    from repro.core.sufa import stream_selected_reference
    from repro.kernels.sufa_blocked import stream_selected_blocked

    _REGISTRY.setdefault("reference", stream_selected_reference)
    _REGISTRY.setdefault("blocked", stream_selected_blocked)


def register_sufa_kernel(
    name: str, fn: SufaKernel | None = None, *, overwrite: bool = False
):
    """Register ``fn`` under ``name``; usable as a decorator when ``fn`` is None.

    Names are case-sensitive identifiers; re-registering an existing name
    raises unless ``overwrite=True`` (so a typo cannot silently shadow the
    built-ins the parity contract stands on).
    """
    if not name or name in _AUTO_NAMES:
        raise ValueError(f"kernel name {name!r} is reserved")

    def _register(kernel: SufaKernel) -> SufaKernel:
        _load_builtins()
        if not overwrite and name in _REGISTRY and _REGISTRY[name] is not kernel:
            raise ValueError(f"SU-FA kernel {name!r} is already registered")
        _REGISTRY[name] = kernel
        return kernel

    return _register if fn is None else _register(fn)


def available_sufa_kernels() -> tuple[str, ...]:
    """Registered kernel names, sorted."""
    _load_builtins()
    return tuple(sorted(_REGISTRY))


def resolve_sufa_kernel_name(name: str | None = None) -> str:
    """Apply the selection precedence and validate the resulting name."""
    _load_builtins()
    if name in _AUTO_NAMES:
        name = os.environ.get(KERNEL_ENV_VAR) or DEFAULT_SUFA_KERNEL
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown SU-FA kernel {name!r}; available: {available_sufa_kernels()}"
        )
    return name


def get_sufa_kernel(name: str | None = None) -> SufaKernel:
    """The kernel callable for ``name`` (``None``/``"auto"`` -> env/default)."""
    _load_builtins()
    return _REGISTRY[resolve_sufa_kernel_name(name)]
