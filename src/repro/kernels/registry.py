"""Per-stage registries of interchangeable pipeline-stage kernels.

The pipeline has three dynamic-sparsity stages, and each one resolves its
implementation through its own named registry:

``"predict"``
    DLZS score prediction.  A predict kernel drives a
    :class:`~repro.core.dlzs.DlzsPredictor` /
    :class:`~repro.core.dlzs.StackedDlzsPredictor` with the signature
    ``kernel(predictor, tokens, q, *, cache=None, cache_keys=None)`` and
    returns exactly what ``predictor.predict`` returns.
``"select"``
    SADS top-k selection.  A select kernel drives a
    :class:`~repro.core.sads.SadsSorter` with the signature
    ``kernel(sorter, scores, k) -> SadsStackResult`` over a ``(R, S)``
    stack of score rows.
``"stream"``
    SU-FA streaming - the contract of
    :func:`repro.core.sufa.stream_selected` minus the ``kernel`` argument::

        kernel(q_rows, k_sel, v_sel, *, order, max_assurance, tile_cols)
            -> SufaStackResult

Every registered kernel must be **bit-for-bit interchangeable** within its
stage: same output bits, same selections, same op tallies and trigger
counts as that stage's golden model on any input (the differential sweeps
in ``tests/test_kernels_sufa.py`` and ``tests/test_kernels_fused.py`` are
the enforcement, re-run per registered combination by CI's kernel-matrix
job).  Because all serving tiers (per-head pipeline, batched engine,
thread backends, cluster workers) reach every stage through these
registries, their mutual parity contract holds by construction - there is
only one implementation per stage per process-wide selection, not one per
tier.  The same seam is where array-API backends (CuPy / torch) plug in
later: a backend is just another registered kernel facing the same
differential sweep.

Selection precedence per stage, first hit wins:

1. an explicit kernel name passed by the caller (``stream_selected(...,
   kernel="reference")``, ``SofaEngine(kernel=...)``, or a non-``"auto"``
   ``kernel`` field on the stage's config dataclass);
2. the stage's environment variable (:func:`kernel_env_var`):
   ``SOFA_PREDICT_KERNEL`` / ``SOFA_SELECT_KERNEL`` / ``SOFA_SUFA_KERNEL``
   (the stream stage keeps its historical PR-4 name);
3. the stage default: ``reference`` / ``reference`` / ``blocked``.

Adding a kernel takes one call (or decorator use)::

    from repro.kernels import register_kernel

    @register_kernel("stream", "mine")
    def stream_selected_mine(q_rows, k_sel, v_sel, *, order, ...):
        ...

after which ``kernel="mine"`` (or ``SOFA_SUFA_KERNEL=mine``) routes every
tier through it.  The SU-FA-only API of PR 4 (``register_sufa_kernel`` and
friends) is kept as thin wrappers over the ``"stream"`` stage.
"""

from __future__ import annotations

import os
from typing import Callable

#: A stage kernel; the per-stage calling conventions are documented above.
Kernel = Callable[..., object]

#: Legacy alias for the stream-stage callable type (PR-4 API).
SufaKernel = Kernel

#: The pipeline stages with kernel registries, in pipeline order.
STAGES = ("predict", "select", "stream")

#: Per-stage environment override consulted when no explicit name is given.
#: ``stream`` keeps its PR-4 name (``SOFA_SUFA_KERNEL``) so existing
#: deployments and the historical docs stay valid.
_ENV_VARS = {
    "predict": "SOFA_PREDICT_KERNEL",
    "select": "SOFA_SELECT_KERNEL",
    "stream": "SOFA_SUFA_KERNEL",
}

#: Per-stage registry fallback when neither caller nor environment picks.
_DEFAULTS = {"predict": "reference", "select": "reference", "stream": "blocked"}

#: Legacy names for the stream stage (PR-4 API surface).
KERNEL_ENV_VAR = _ENV_VARS["stream"]
DEFAULT_SUFA_KERNEL = _DEFAULTS["stream"]

#: Names a caller may pass to mean "apply env/default precedence".
_AUTO_NAMES = (None, "", "auto")

_REGISTRIES: dict[str, dict[str, Kernel]] = {stage: {} for stage in STAGES}
_builtins_loaded = False


def _check_stage(stage: str) -> str:
    if stage not in _REGISTRIES:
        raise ValueError(f"unknown kernel stage {stage!r}; stages: {STAGES}")
    return stage


def _load_builtins() -> None:
    """Register the in-tree kernels (lazily, to dodge import cycles).

    ``repro.core`` must stay importable without this package while this
    package needs the golden models from it, so the linkage happens on
    first registry use instead of at import time.
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    from repro.core.sufa import stream_selected_reference
    from repro.kernels.predict_select_fused import (
        fused_predict_stage,
        fused_select_stage,
        predict_reference,
        select_reference,
    )
    from repro.kernels.sufa_blocked import stream_selected_blocked

    _REGISTRIES["predict"].setdefault("reference", predict_reference)
    _REGISTRIES["predict"].setdefault("fused", fused_predict_stage)
    _REGISTRIES["select"].setdefault("reference", select_reference)
    _REGISTRIES["select"].setdefault("fused", fused_select_stage)
    _REGISTRIES["stream"].setdefault("reference", stream_selected_reference)
    _REGISTRIES["stream"].setdefault("blocked", stream_selected_blocked)


def kernel_env_var(stage: str) -> str:
    """The environment variable that overrides ``stage``'s kernel."""
    return _ENV_VARS[_check_stage(stage)]


def default_kernel(stage: str) -> str:
    """The registry fallback name for ``stage``."""
    return _DEFAULTS[_check_stage(stage)]


def register_kernel(
    stage: str, name: str, fn: Kernel | None = None, *, overwrite: bool = False
):
    """Register ``fn`` under ``stage``/``name``; decorator form when ``fn`` is None.

    Names are case-sensitive identifiers; re-registering an existing name
    raises unless ``overwrite=True`` (so a typo cannot silently shadow the
    built-ins the parity contract stands on).
    """
    _check_stage(stage)
    if not name or name in _AUTO_NAMES:
        raise ValueError(f"kernel name {name!r} is reserved")

    def _register(kernel: Kernel) -> Kernel:
        _load_builtins()
        registry = _REGISTRIES[stage]
        if not overwrite and name in registry and registry[name] is not kernel:
            raise ValueError(f"{stage} kernel {name!r} is already registered")
        registry[name] = kernel
        return kernel

    return _register if fn is None else _register(fn)


def available_kernels(stage: str) -> tuple[str, ...]:
    """Registered kernel names for ``stage``, sorted."""
    _check_stage(stage)
    _load_builtins()
    return tuple(sorted(_REGISTRIES[stage]))


def resolve_kernel_name(stage: str, name: str | None = None) -> str:
    """Apply the selection precedence for ``stage`` and validate the result.

    An unknown name raises a :class:`ValueError` that says which stage was
    being resolved, which **source** supplied the bad name (the explicit
    argument, the stage's environment variable, or the registry default),
    and what names *are* registered for that stage - so a typo'd env var in
    a worker process is diagnosable from the error text alone.
    """
    _check_stage(stage)
    _load_builtins()
    source = "explicit kernel argument"
    if name in _AUTO_NAMES:
        env_var = _ENV_VARS[stage]
        env_value = os.environ.get(env_var)
        if env_value:
            name, source = env_value, f"environment variable {env_var}"
        else:
            name, source = _DEFAULTS[stage], "registry default"
    if name not in _REGISTRIES[stage]:
        raise ValueError(
            f"unknown {stage} kernel {name!r} (from {source}); "
            f"registered {stage} kernels: {available_kernels(stage)}"
        )
    return name


def get_kernel(stage: str, name: str | None = None) -> Kernel:
    """The kernel callable for ``stage``/``name`` (auto -> env/default).

    With telemetry enabled each resolution bumps
    ``sofa_kernel_resolutions_total_<stage>`` and records the winning name
    in the ``sofa_kernels`` info metric.  The callable itself is returned
    *unwrapped*: ``fused_pair`` detects fusability by kernel identity
    (``fused_owner``), so this hook must never decorate it.
    """
    _load_builtins()
    resolved = resolve_kernel_name(stage, name)
    from repro.obs import get_telemetry

    obs = get_telemetry()
    if obs.enabled:
        obs.inc(f"sofa_kernel_resolutions_total_{stage}")
        obs.set_info("sofa_kernels", {stage: resolved})
    return _REGISTRIES[_check_stage(stage)][resolved]


def resolved_kernels(config) -> dict[str, str]:
    """The per-stage kernel names a :class:`~repro.core.config.SofaConfig`
    resolves to right now (env vars included) - the observability hook the
    cluster workers report through their stats snapshots."""
    return {
        "predict": resolve_kernel_name("predict", config.dlzs.kernel),
        "select": resolve_kernel_name("select", config.sads.kernel),
        "stream": resolve_kernel_name("stream", config.sufa.kernel),
    }


# ------------------------------------------------------ PR-4 stream-only API
def register_sufa_kernel(
    name: str, fn: SufaKernel | None = None, *, overwrite: bool = False
):
    """Register a stream-stage kernel (PR-4 API; ``register_kernel`` wrapper).

    Kept because external code and the bench suite register SU-FA kernels
    through it; errors keep the legacy "SU-FA kernel" wording via the
    stream stage.
    """
    if not name or name in _AUTO_NAMES:
        raise ValueError(f"kernel name {name!r} is reserved")
    return register_kernel("stream", name, fn, overwrite=overwrite)


def available_sufa_kernels() -> tuple[str, ...]:
    """Registered stream-stage kernel names, sorted (PR-4 API)."""
    return available_kernels("stream")


def resolve_sufa_kernel_name(name: str | None = None) -> str:
    """Resolve a stream-stage kernel name (PR-4 API).

    The legacy error wording ("unknown SU-FA kernel") is preserved on top
    of the per-stage diagnostics, because serving-tier tests and callers
    match on it.
    """
    try:
        return resolve_kernel_name("stream", name)
    except ValueError as error:
        raise ValueError(f"unknown SU-FA kernel: {error}") from None


def get_sufa_kernel(name: str | None = None) -> SufaKernel:
    """The stream kernel callable for ``name`` (PR-4 API)."""
    return _REGISTRIES["stream"][resolve_sufa_kernel_name(name)]
