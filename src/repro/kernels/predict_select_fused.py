"""Fused DLZS predict + SADS select kernel (ROADMAP item 3).

The reference pipeline decouples the first two dynamic-sparsity stages:
``DlzsPredictor.predict`` materializes the full ``(rows, S)`` score
matrix, then ``SadsSorter.select_stack`` thresholds it.  The paper's
coordinated tiling exists to avoid exactly that - a Pre-Atten tile is
consumed by its tile's sorter before the next tile is produced, so the
full score matrix never exists (Fig. 6 / Fig. 20(a)).  This module is the
software analogue: one fused kernel that

1. runs DLZS up to (but not including) the score matmul
   (:meth:`~repro.core.dlzs.DlzsPredictor.predict_prepared` - phase 1.1,
   truncation, query LZ encoding, and the *complete* op accounting, none
   of which needs score values), then
2. feeds score **tiles** - one SADS sub-segment at a time, computed by a
   per-tile exact matmul over the prepared state - straight into the
   streaming selector
   (:meth:`~repro.core.sads.SadsSorter.select_stack_streamed`).

Bit-exactness rests on two facts, each proven at its site:

* integer matmul is exact per output element, so a column block of the
  score matrix equals the matmul against the matching ``k_hat`` row
  slice, bit for bit (see :class:`~repro.core.dlzs.PreparedPrediction`);
* the streaming selector replicates ``select_stack`` exactly, including
  the adjustive exchange, via a bounded excluded-candidate pool (see
  :meth:`~repro.core.sads.SadsSorter.select_stack_streamed`).

The fusion also unlocks the kernel's speed lever: when every partial sum
of a tile matmul fits in float64's 53-bit integer window (checked against
the actual operand magnitudes), the int64 matmul - which NumPy cannot
route to BLAS - is replaced by a float64 BLAS matmul producing the same
integers, hence the same bits after scaling.  Inputs too large for the
window (never the default 16-bit configs) fall back to int64 tiles,
trading speed, not correctness.

Registration: both the ``predict`` and ``select`` registries carry a
``"fused"`` entry.  Fusion is cross-stage, so it engages only when *both*
stages resolve to entries owned by the same :class:`FusedPredictSelect`
(checked via :func:`fused_pair` by the pipeline/engine call sites); a
mixed selection - say ``SOFA_PREDICT_KERNEL=fused`` with the select stage
on ``reference`` - degrades each wrapper to the stage's reference
behaviour, keeping every CI kernel-matrix combination bit-correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Sequence

import numpy as np

if TYPE_CHECKING:
    from repro.core.dlzs import (
        DlzsPredictor,
        PreparedPrediction,
        PreparedStackPrediction,
        StackedDlzsPredictor,
    )
    from repro.core.sads import SadsSorter, SadsStackResult
    from repro.engine.cache import DecodeStepCache

#: Float64 integer window: every integer of magnitude < 2**53 is exact.
_EXACT_WINDOW = float(2**53)


def predict_reference(
    predictor,
    tokens: np.ndarray,
    q: np.ndarray,
    *,
    cache: "DecodeStepCache | None" = None,
    cache_keys: "Sequence[Hashable | None] | None" = None,
):
    """The predict-stage golden model: ``predictor.predict`` itself.

    Works for both the per-head :class:`~repro.core.dlzs.DlzsPredictor`
    (which takes no cache arguments - they are only forwarded when set,
    and only the stacked engine path ever sets them) and the stacked
    :class:`~repro.core.dlzs.StackedDlzsPredictor`.
    """
    if cache is None and cache_keys is None:
        return predictor.predict(tokens, q)
    return predictor.predict(tokens, q, cache=cache, cache_keys=cache_keys)


def select_reference(sorter, scores: np.ndarray, k: int):
    """The select-stage golden model: ``sorter.select_stack`` itself."""
    return sorter.select_stack(scores, k)


def _blas_exact(pow2: np.ndarray, k_hat: np.ndarray) -> bool:
    """Whether float64 BLAS reproduces the int64 score matmul bit for bit.

    Sufficient condition: ``depth * max|pow2| * max|k_hat| < 2**53`` bounds
    the absolute value of *every* partial sum any summation order (or FMA
    blocking) can form, so all intermediates and the final dot products are
    exactly representable.  Defaults sit far inside the window: 16-bit
    queries and keys give ``depth * 2**15 * 2**15``, exact up to depth
    ``2**23``.
    """
    if pow2.size == 0 or k_hat.size == 0:
        return True
    depth = pow2.shape[-1]
    max_p = float(np.max(np.abs(pow2)))
    max_k = float(np.max(np.abs(k_hat)))
    return depth * max_p * max_k < _EXACT_WINDOW


@dataclass
class FusedProbe:
    """Peak-intermediate-size evidence from the last fused run.

    ``peak_tile_elems`` is the largest score block the run ever held;
    tests assert it stays a tile, not the ``full_matrix_elems`` the
    unfused pipeline materializes (the acceptance criterion's probe).
    """

    rows: int
    row_len: int
    peak_tile_elems: int
    full_matrix_elems: int
    exact_blas: bool


class FusedPredictSelect:
    """Fused predict+select execution engine behind the ``"fused"`` entries.

    ``run_single`` / ``run_stacked`` return ``(prepared, stack)`` - the
    :class:`~repro.core.dlzs.PreparedPrediction` (or stacked twin), which
    carries the complete DLZS op accounting, plus the
    :class:`~repro.core.sads.SadsStackResult` - everything the pipeline
    and the batched engine consume, with the full score matrix never
    allocated.  ``last_probe`` records the peak intermediate size of the
    most recent run (diagnostic only; concurrent callers may interleave
    writes to it, the returned results are untouched by that).
    """

    def __init__(self) -> None:
        self.last_probe: FusedProbe | None = None

    def run_single(
        self,
        predictor: "DlzsPredictor",
        sorter: "SadsSorter",
        tokens: np.ndarray,
        q: np.ndarray,
        k: int,
    ) -> "tuple[PreparedPrediction, SadsStackResult]":
        prep = predictor.predict_prepared(tokens, q)
        t, s = prep.pow2.shape[0], prep.k_hat.shape[0]
        exact = _blas_exact(prep.pow2, prep.k_hat)
        probe = FusedProbe(
            rows=t,
            row_len=s,
            peak_tile_elems=0,
            full_matrix_elems=t * s,
            exact_blas=exact,
        )
        if exact:
            pow2_f = prep.pow2.astype(np.float64)
            k_hat_f = prep.k_hat.astype(np.float64)

            def tile_fn(seg: int, lo: int, hi: int) -> np.ndarray:
                block = pow2_f @ k_hat_f[lo:hi].T  # exact integers in float64
                probe.peak_tile_elems = max(probe.peak_tile_elems, block.size)
                return block * prep.scale

        else:

            def tile_fn(seg: int, lo: int, hi: int) -> np.ndarray:
                block = prep.pow2 @ prep.k_hat[lo:hi].T
                probe.peak_tile_elems = max(probe.peak_tile_elems, block.size)
                return block.astype(np.float64) * prep.scale

        stack = sorter.select_stack_streamed(tile_fn, t, s, k)
        self.last_probe = probe
        return prep, stack

    def run_stacked(
        self,
        predictor: "StackedDlzsPredictor",
        sorter: "SadsSorter",
        tokens: np.ndarray,
        q: np.ndarray,
        k: int,
        cache: "DecodeStepCache | None" = None,
        cache_keys: "Sequence[Hashable | None] | None" = None,
    ) -> "tuple[PreparedStackPrediction, SadsStackResult]":
        prep = predictor.predict_prepared(tokens, q, cache=cache, cache_keys=cache_keys)
        n, t = prep.pow2.shape[0], prep.pow2.shape[1]
        s = prep.k_hat.shape[1]
        exact = _blas_exact(prep.pow2, prep.k_hat)
        probe = FusedProbe(
            rows=n * t,
            row_len=s,
            peak_tile_elems=0,
            full_matrix_elems=n * t * s,
            exact_blas=exact,
        )
        scales = prep.scales[:, None, None]
        if exact:
            pow2_f = prep.pow2.astype(np.float64)
            k_hat_f = prep.k_hat.astype(np.float64)

            def tile_fn(seg: int, lo: int, hi: int) -> np.ndarray:
                block = pow2_f @ k_hat_f[:, lo:hi, :].transpose(0, 2, 1)
                probe.peak_tile_elems = max(probe.peak_tile_elems, block.size)
                return (block * scales).reshape(n * t, hi - lo)

        else:

            def tile_fn(seg: int, lo: int, hi: int) -> np.ndarray:
                block = prep.pow2 @ prep.k_hat[:, lo:hi, :].transpose(0, 2, 1)
                probe.peak_tile_elems = max(probe.peak_tile_elems, block.size)
                return (block.astype(np.float64) * scales).reshape(n * t, hi - lo)

        stack = sorter.select_stack_streamed(tile_fn, n * t, s, k)
        self.last_probe = probe
        return prep, stack


#: The process-wide fused execution engine both ``"fused"`` registry
#: entries point back to (via their ``fused_owner`` attribute).
FUSED = FusedPredictSelect()


def fused_predict_stage(
    predictor,
    tokens: np.ndarray,
    q: np.ndarray,
    *,
    cache: "DecodeStepCache | None" = None,
    cache_keys: "Sequence[Hashable | None] | None" = None,
):
    """Predict-stage ``"fused"`` entry.

    Fusion is cross-stage, so the wrapper itself just runs the reference
    behaviour; call sites detect the fused pairing via :func:`fused_pair`
    and route through :meth:`FusedPredictSelect.run_single` /
    ``run_stacked`` instead of calling the stages separately.  When only
    one stage resolves to ``"fused"``, this fallback keeps the combination
    bit-correct.
    """
    return predict_reference(predictor, tokens, q, cache=cache, cache_keys=cache_keys)


def fused_select_stage(sorter, scores: np.ndarray, k: int):
    """Select-stage ``"fused"`` entry; see :func:`fused_predict_stage`."""
    return select_reference(sorter, scores, k)


fused_predict_stage.fused_owner = FUSED
fused_select_stage.fused_owner = FUSED


def fused_pair(predict_kernel, select_kernel) -> FusedPredictSelect | None:
    """The shared fused engine of a (predict, select) kernel pair, if any.

    Returns the :class:`FusedPredictSelect` both kernels are fronts for,
    or ``None`` when the stages resolved to unrelated kernels - in which
    case the caller must run them separately (each stage's wrapper then
    behaves as its stage's reference).
    """
    owner = getattr(predict_kernel, "fused_owner", None)
    if owner is not None and getattr(select_kernel, "fused_owner", None) is owner:
        return owner
    return None
