"""Numpy Transformer layers: projections, multi-head attention, FFN, norm.

These layers provide the dense *reference* computation that every sparse /
tiled variant is validated against, and give the SOFA pipeline a realistic
end-to-end host (the examples run whole Transformer blocks, not bare
matmuls).  Weights are float64 for clean comparisons against quantized paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.config import ModelConfig
from repro.numerics.softmax import softmax


def layer_norm(x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Standard layer normalization over the last axis (no affine params)."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps)


def gelu(x: np.ndarray) -> np.ndarray:
    """Tanh-approximation GELU (the variant BERT/GPT-2 ship)."""
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


@dataclass
class LinearLayer:
    """A dense projection ``y = x @ W + b``."""

    weight: np.ndarray
    bias: np.ndarray

    @classmethod
    def init(cls, rng: np.random.Generator, d_in: int, d_out: int) -> "LinearLayer":
        scale = 1.0 / np.sqrt(d_in)
        return cls(
            weight=rng.normal(0.0, scale, size=(d_in, d_out)),
            bias=np.zeros(d_out),
        )

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return x @ self.weight + self.bias


def split_heads(x: np.ndarray, n_heads: int) -> np.ndarray:
    """``(S, H) -> (n_heads, S, H/n_heads)``."""
    s, h = x.shape
    return x.reshape(s, n_heads, h // n_heads).transpose(1, 0, 2)


def merge_heads(x: np.ndarray) -> np.ndarray:
    """``(n_heads, S, Dh) -> (S, n_heads*Dh)``."""
    n, s, d = x.shape
    return x.transpose(1, 0, 2).reshape(s, n * d)


@dataclass
class MultiHeadAttention:
    """Dense multi-head self-attention with pluggable per-head attention op.

    The ``attention_fn`` hook is how SOFA slots in: the default computes exact
    ``softmax(QK^T/sqrt(d)) V``; the pipeline passes a function running the
    DLZS -> SADS -> SU-FA cross-stage flow instead.

    A ``batched_attention_fn`` hook receives the full ``(n_heads, S, Dh)``
    Q/K/V stacks in one call - the entry point for the batched serving
    engine, which fuses every head of the layer into one pipeline execution.
    """

    wq: LinearLayer
    wk: LinearLayer
    wv: LinearLayer
    wo: LinearLayer
    n_heads: int

    @classmethod
    def init(cls, rng: np.random.Generator, cfg: ModelConfig) -> "MultiHeadAttention":
        return cls(
            wq=LinearLayer.init(rng, cfg.hidden, cfg.hidden),
            wk=LinearLayer.init(rng, cfg.hidden, cfg.hidden),
            wv=LinearLayer.init(rng, cfg.hidden, cfg.hidden),
            wo=LinearLayer.init(rng, cfg.hidden, cfg.hidden),
            n_heads=cfg.n_heads,
        )

    def project_qkv(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return per-head (Q, K, V), each ``(n_heads, S, Dh)``."""
        return (
            split_heads(self.wq(x), self.n_heads),
            split_heads(self.wk(x), self.n_heads),
            split_heads(self.wv(x), self.n_heads),
        )

    def __call__(
        self, x: np.ndarray, attention_fn=None, batched_attention_fn=None
    ) -> np.ndarray:
        q, k, v = self.project_qkv(x)
        if batched_attention_fn is not None:
            return self.wo(merge_heads(np.asarray(batched_attention_fn(q, k, v))))
        head_dim = q.shape[-1]
        outputs = []
        for h in range(self.n_heads):
            if attention_fn is None:
                scores = q[h] @ k[h].T / np.sqrt(head_dim)
                outputs.append(softmax(scores, axis=-1) @ v[h])
            else:
                outputs.append(attention_fn(q[h], k[h], v[h]))
        return self.wo(merge_heads(np.stack(outputs)))


@dataclass
class FeedForward:
    """The two-layer FFN with GELU."""

    w1: LinearLayer
    w2: LinearLayer

    @classmethod
    def init(cls, rng: np.random.Generator, cfg: ModelConfig) -> "FeedForward":
        return cls(
            w1=LinearLayer.init(rng, cfg.hidden, cfg.ffn_hidden),
            w2=LinearLayer.init(rng, cfg.ffn_hidden, cfg.hidden),
        )

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.w2(gelu(self.w1(x)))


@dataclass
class TransformerBlock:
    """Pre-norm Transformer block: ``x + MHA(LN(x))`` then ``x + FFN(LN(x))``."""

    attn: MultiHeadAttention
    ffn: FeedForward

    @classmethod
    def init(cls, rng: np.random.Generator, cfg: ModelConfig) -> "TransformerBlock":
        return cls(
            attn=MultiHeadAttention.init(rng, cfg),
            ffn=FeedForward.init(rng, cfg),
        )

    def __call__(
        self, x: np.ndarray, attention_fn=None, batched_attention_fn=None
    ) -> np.ndarray:
        x = x + self.attn(
            layer_norm(x),
            attention_fn=attention_fn,
            batched_attention_fn=batched_attention_fn,
        )
        return x + self.ffn(layer_norm(x))
