"""Analytic FLOPs / bytes / operational-intensity profiles of Transformer parts.

Regenerates the characterization figures:

* Fig. 1 - memory footprint and computation breakdown (QKV / Attention / FFN)
  as the sequence length grows; attention dominates past ~32k tokens because
  its cost is quadratic in S while QKV/FFN are linear.
* Fig. 4(b) - operational intensity (FLOPs per byte moved, the roofline x-axis
  [37]) of the three parts; MHA is far below FFN.
* Fig. 4(c) - OI of attention vs token-processing parallelism T; growing T
  increases reuse of the K/V working set and lifts the performance ceiling.

The profiles are per-layer-per-head exact arithmetic counts; no simulation is
involved, which matches how the paper's Fig. 1/4 were produced (profiling the
static computation graph).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.config import ModelConfig


@dataclass(frozen=True)
class PartProfile:
    """FLOPs and bytes moved of one Transformer part at a given (S, bytes/elt).

    ``flops`` counts multiply-accumulates as 2 ops.  ``bytes_moved`` counts
    reads of all operands plus writes of all results once - the minimum
    traffic, i.e. an infinitely large on-chip buffer; relative magnitudes
    across parts are what the figures compare.
    """

    name: str
    flops: float
    bytes_moved: float

    @property
    def operational_intensity(self) -> float:
        return self.flops / self.bytes_moved if self.bytes_moved else 0.0


def qkv_profile(cfg: ModelConfig, seq_len: int, bytes_per_elt: int = 2) -> PartProfile:
    """QKV generation: three ``(S,H) @ (H,H)`` projections per layer."""
    s, h = seq_len, cfg.hidden
    flops = cfg.n_layers * 3 * 2.0 * s * h * h
    bytes_moved = cfg.n_layers * bytes_per_elt * (s * h + 3 * h * h + 3 * s * h)
    return PartProfile("qkv", flops, bytes_moved)


def attention_profile(cfg: ModelConfig, seq_len: int, bytes_per_elt: int = 2) -> PartProfile:
    """Multi-head attention: QK^T, softmax, and score @ V per layer.

    The S^2-sized score/probability matrices are both produced and consumed
    - and the softmax path runs at fp32 with explicit head-split/transpose
    materializations (the paper's latency breakdown attributes ~40% of
    attention time to transpose+softmax and ~16% to split/concat/reshape) -
    which is what crushes MHA's operational intensity relative to FFN.
    """
    s, h = seq_len, cfg.hidden
    softmax_bytes = 4  # fp32 softmax path
    # QK^T and PV are (S,S,H) contractions in aggregate over heads.
    matmul_flops = 2 * 2.0 * s * s * h
    softmax_flops = 5.0 * s * s  # max, sub, exp, sum, div per element (amortized)
    flops = cfg.n_layers * (matmul_flops + softmax_flops)
    score_bytes = 2 * s * s * softmax_bytes  # write scores + read for softmax
    prob_bytes = 2 * s * s * softmax_bytes  # write probs + read for PV
    transpose_bytes = 2 * s * s * softmax_bytes  # transpose materialization
    reshape_bytes = 2 * 4 * s * h * bytes_per_elt  # head split/concat round trips
    io_bytes = (3 * s * h + s * h) * bytes_per_elt  # read Q,K,V; write O
    bytes_moved = cfg.n_layers * (
        score_bytes + prob_bytes + transpose_bytes + reshape_bytes + io_bytes
    )
    return PartProfile("attention", flops, bytes_moved)


def ffn_profile(cfg: ModelConfig, seq_len: int, bytes_per_elt: int = 2) -> PartProfile:
    """FFN: two dense layers ``(S,H)@(H,F)`` and ``(S,F)@(F,H)``."""
    s, h, f = seq_len, cfg.hidden, cfg.ffn_hidden
    flops = cfg.n_layers * 2 * 2.0 * s * h * f
    bytes_moved = cfg.n_layers * bytes_per_elt * (2 * h * f + 2 * s * h + 2 * s * f)
    return PartProfile("ffn", flops, bytes_moved)


def profile_parts(
    cfg: ModelConfig, seq_len: int | None = None, bytes_per_elt: int = 2
) -> dict[str, PartProfile]:
    """Profile all three parts; keys ``qkv``, ``attention``, ``ffn``."""
    s = seq_len if seq_len is not None else cfg.default_seq_len
    return {
        "qkv": qkv_profile(cfg, s, bytes_per_elt),
        "attention": attention_profile(cfg, s, bytes_per_elt),
        "ffn": ffn_profile(cfg, s, bytes_per_elt),
    }


def breakdown_shares(cfg: ModelConfig, seq_len: int) -> dict[str, dict[str, float]]:
    """Fractional compute and memory shares per part (rows of Fig. 1)."""
    parts = profile_parts(cfg, seq_len)
    total_flops = sum(p.flops for p in parts.values())
    total_bytes = sum(p.bytes_moved for p in parts.values())
    return {
        name: {
            "compute_share": p.flops / total_flops,
            "memory_share": p.bytes_moved / total_bytes,
        }
        for name, p in parts.items()
    }


def attention_oi_vs_parallelism(
    cfg: ModelConfig, parallelism: int, bytes_per_elt: int = 2
) -> float:
    """Operational intensity of attention when T queries are processed together.

    With T-way query parallelism each loaded K/V tile serves T query rows, so
    per-query K/V traffic divides by T while per-query FLOPs are unchanged -
    this is the reuse gain of Fig. 4(c).  Score-matrix traffic is per-query
    and does not amortize.
    """
    if parallelism < 1:
        raise ValueError("parallelism must be >= 1")
    s, h = cfg.default_seq_len, cfg.hidden
    flops_per_query = 2 * 2.0 * s * h + 5.0 * s
    kv_bytes_per_query = 2 * s * h * bytes_per_elt / parallelism
    score_bytes_per_query = 4 * s * bytes_per_elt
    q_bytes = h * bytes_per_elt
    return flops_per_query / (kv_bytes_per_query + score_bytes_per_query + q_bytes)


def memory_footprint_bytes(cfg: ModelConfig, seq_len: int, bytes_per_elt: int = 2) -> float:
    """Peak activation footprint of one layer (dominated by the S*S scores)."""
    s, h = seq_len, cfg.hidden
    activations = 4 * s * h  # x, q, k, v
    scores = s * s
    ffn_mid = s * cfg.ffn_hidden
    return bytes_per_elt * float(activations + scores + ffn_mid)
