"""A complete numpy Transformer used by the end-to-end examples and tests.

The model is intentionally small-instantiable: any :class:`ModelConfig` can be
built with a reduced ``n_layers``/``hidden`` through
:meth:`Transformer.init_scaled` so tests stay fast, while profiles and
experiments use the analytic profiler at full published size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.config import ModelConfig
from repro.model.layers import TransformerBlock, layer_norm


@dataclass
class Transformer:
    """Stack of :class:`TransformerBlock` with a final layer norm."""

    config: ModelConfig
    blocks: list[TransformerBlock]

    @classmethod
    def init(cls, rng: np.random.Generator, config: ModelConfig) -> "Transformer":
        blocks = [TransformerBlock.init(rng, config) for _ in range(config.n_layers)]
        return cls(config=config, blocks=blocks)

    @classmethod
    def init_scaled(
        cls,
        rng: np.random.Generator,
        config: ModelConfig,
        n_layers: int | None = None,
        hidden: int | None = None,
        seq_len: int | None = None,
    ) -> "Transformer":
        """Build a reduced-size instance preserving the config's shape ratios.

        ``hidden`` must stay divisible by the head count; we keep the head
        count fixed and shrink the head dimension instead when needed.
        """
        h = hidden if hidden is not None else config.hidden
        heads = config.n_heads
        if h % heads != 0:
            heads = max(1, min(heads, h))
            while h % heads != 0:
                heads -= 1
        small = ModelConfig(
            name=config.name,
            n_layers=n_layers if n_layers is not None else config.n_layers,
            hidden=h,
            n_heads=heads,
            ffn_hidden=max(4, int(h * config.ffn_hidden / config.hidden)),
            default_seq_len=seq_len if seq_len is not None else config.default_seq_len,
            family=config.family,
        )
        return cls.init(rng, small)

    def __call__(
        self, x: np.ndarray, attention_fn=None, batched_attention_fn=None
    ) -> np.ndarray:
        """Forward pass over embeddings ``x`` of shape ``(S, hidden)``."""
        if x.ndim != 2 or x.shape[1] != self.config.hidden:
            raise ValueError(
                f"expected (S, {self.config.hidden}) embeddings, got {x.shape}"
            )
        for block in self.blocks:
            x = block(
                x,
                attention_fn=attention_fn,
                batched_attention_fn=batched_attention_fn,
            )
        return layer_norm(x)

    def embed_tokens(self, rng: np.random.Generator, seq_len: int) -> np.ndarray:
        """Draw synthetic embeddings standing in for token+position lookups."""
        return rng.normal(0.0, 1.0, size=(seq_len, self.config.hidden))
