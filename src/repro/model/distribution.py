"""Attention-row distribution taxonomy: Type-I / Type-II / Type-III (Fig. 8).

The paper's SADS design rests on an empirical observation about post-softmax
attention rows:

* **Type-I** - dominated by a *few* tokens (one or two sharp spikes anywhere).
* **Type-II** - dominated by *several* tokens spread evenly across the row.
* **Type-III** - dominated by several tokens *concentrated in one region*.

Type-I + Type-II cover >95% of rows across BERT/ViT/GPT-2/Llama, which the
paper names the *Distributed Cluster Effect* (DCE): each sub-segment of a row
contains its own share of the dominant values, so per-segment top-(k/n)
selection loses little.  Type-III is the adversarial case for SADS.

This module provides both a generator-independent *classifier* (used to
regenerate Fig. 8(b) statistics from synthetic rows and to sanity-check the
generators) and the mixture tables per model family.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.numerics.softmax import softmax


class RowType(Enum):
    """The three attention-row shapes of Fig. 8(a)."""

    TYPE_I = "type-i"
    TYPE_II = "type-ii"
    TYPE_III = "type-iii"


#: Fractions of (Type-I, Type-II, Type-III) per model family, following the
#: statistics reported around Fig. 8(b): Type-II predominates everywhere
#: (>76% average), Type-I averages ~25% on ViT/GPT-2/Llama, Type-III is rare
#: and nearly absent for autoregressive LLMs.
FAMILY_MIXTURES: dict[str, tuple[float, float, float]] = {
    "nlp-encoder": (0.14, 0.82, 0.04),
    "nlp-decoder": (0.24, 0.755, 0.005),
    "vision": (0.26, 0.71, 0.03),
}


@dataclass(frozen=True)
class RowClassification:
    """Classifier output for one attention row."""

    row_type: RowType
    dominant_count: int
    dominant_spread: float


def _dominant_indices(probs: np.ndarray, mass: float = 0.5) -> np.ndarray:
    """Smallest set of indices capturing ``mass`` of the probability."""
    order = np.argsort(probs)[::-1]
    cum = np.cumsum(probs[order])
    cutoff = int(np.searchsorted(cum, mass) + 1)
    return order[:cutoff]


def classify_row(
    scores: np.ndarray,
    few_threshold: int = 4,
    concentration_window: float = 0.25,
) -> RowClassification:
    """Classify one row of attention *scores* (pre-softmax) into Fig. 8 types.

    The classifier mirrors the paper's verbal definitions:

    * If at most ``few_threshold`` tokens carry half the softmax mass, the
      row is **Type-I** ("dominated by a few tokens").
    * Otherwise, if the dominant tokens span less than a
      ``concentration_window`` fraction of the row, it is **Type-III**
      (concentrated region); else **Type-II** (evenly distributed).
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1 or scores.size < 4:
        raise ValueError("need a 1-D row with at least 4 elements")
    probs = softmax(scores)
    dom = _dominant_indices(probs)
    spread = (dom.max() - dom.min()) / max(scores.size - 1, 1) if dom.size > 1 else 0.0
    if dom.size <= few_threshold:
        row_type = RowType.TYPE_I
    elif spread < concentration_window:
        row_type = RowType.TYPE_III
    else:
        row_type = RowType.TYPE_II
    return RowClassification(
        row_type=row_type, dominant_count=int(dom.size), dominant_spread=float(spread)
    )


def classify_rows(score_matrix: np.ndarray) -> dict[RowType, float]:
    """Fraction of rows of each type in a score matrix (Fig. 8(b) columns)."""
    counts = {t: 0 for t in RowType}
    for row in np.asarray(score_matrix, dtype=np.float64):
        counts[classify_row(row).row_type] += 1
    n = score_matrix.shape[0]
    return {t: counts[t] / n for t in RowType}
