"""Model configurations for the paper's evaluation zoo.

Architectural parameters follow the published model cards; sequence lengths
follow the paper's Sec. V-A setup (e.g. BERT 256-512 by task, Bloom-1.7B 2k,
Llama-7B/13B 4k, PVT 3192).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelConfig:
    """Architectural description of one Transformer model.

    Attributes
    ----------
    name:
        Canonical model name used throughout reports.
    n_layers / hidden / n_heads / ffn_hidden:
        Standard Transformer dimensions; ``ffn_hidden`` is the intermediate
        width of the two-layer FFN.
    default_seq_len:
        The sequence length the paper evaluates this model at.
    family:
        ``"nlp-encoder"``, ``"nlp-decoder"`` or ``"vision"`` - selects the
        attention-row distribution mixture of Fig. 8.
    """

    name: str
    n_layers: int
    hidden: int
    n_heads: int
    ffn_hidden: int
    default_seq_len: int
    family: str

    @property
    def head_dim(self) -> int:
        return self.hidden // self.n_heads

    def __post_init__(self) -> None:
        if self.hidden % self.n_heads != 0:
            raise ValueError(f"{self.name}: hidden {self.hidden} not divisible by heads")

    def scaled_to(self, seq_len: int) -> "ModelConfig":
        """Copy of this config at a different sequence length."""
        return ModelConfig(
            name=self.name,
            n_layers=self.n_layers,
            hidden=self.hidden,
            n_heads=self.n_heads,
            ffn_hidden=self.ffn_hidden,
            default_seq_len=seq_len,
            family=self.family,
        )


MODEL_ZOO: dict[str, ModelConfig] = {
    cfg.name: cfg
    for cfg in (
        ModelConfig("bert-base", 12, 768, 12, 3072, 512, "nlp-encoder"),
        ModelConfig("bert-large", 24, 1024, 16, 4096, 512, "nlp-encoder"),
        ModelConfig("gpt2", 12, 768, 12, 3072, 1024, "nlp-decoder"),
        ModelConfig("gpt2-large", 36, 1280, 20, 5120, 1024, "nlp-decoder"),
        ModelConfig("vit-base", 12, 768, 12, 3072, 3192, "vision"),
        ModelConfig("pvt", 16, 512, 8, 2048, 3192, "vision"),
        ModelConfig("bloom-1b7", 24, 2048, 16, 8192, 2048, "nlp-decoder"),
        ModelConfig("bloom-3b", 30, 2560, 32, 10240, 2048, "nlp-decoder"),
        ModelConfig("llama-7b", 32, 4096, 32, 11008, 4096, "nlp-decoder"),
        ModelConfig("llama-13b", 40, 5120, 40, 13824, 4096, "nlp-decoder"),
    )
}


def get_model(name: str) -> ModelConfig:
    """Look up a model config by name with a helpful error."""
    try:
        return MODEL_ZOO[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_ZOO))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None
