"""Synthetic attention workload generators and the 20-benchmark suite.

The paper evaluates 20 benchmarks (GLUE/SQuAD tasks on BERT-B/L, language
modeling on GPT-2/Bloom/Llama, ImageNet on ViT/PVT).  We substitute synthetic
workloads whose *attention-score structure* is calibrated to the Fig. 8
Type-I/II/III mixture of each model family, because every SOFA mechanism
(prediction error, top-k recall, complexity ratios) depends only on that
structure, not on language content (see DESIGN.md substitution table).

A workload carries:

* low-precision token/weight integers for the DLZS pre-compute stage,
* float Q/K/V matrices for the formal stage,
* a target top-k budget derived from the benchmark's sparsity level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.config import ModelConfig, get_model
from repro.model.distribution import FAMILY_MIXTURES, RowType
from repro.utils.rng import derive_rng, make_rng


@dataclass(frozen=True)
class BenchmarkCase:
    """One of the 20 evaluation benchmarks (model x task).

    ``sparsity`` is the paper-reported usable token sparsity of the task
    family: sentiment/similarity sets (SST-2, STS-B) run ~90% reduction,
    vision ~73%, other language tasks in between (Sec. V-B discussion).
    """

    name: str
    model: str
    task: str
    seq_len: int
    sparsity: float


#: The 20-benchmark evaluation suite (Sec. V-A): BERT-B/L on eight GLUE/SQuAD
#: tasks, GPT-2/Bloom/Llama on language modeling sets, ViT/PVT on ImageNet.
BENCHMARK_SUITE: tuple[BenchmarkCase, ...] = (
    BenchmarkCase("bert-b/mrpc", "bert-base", "mrpc", 256, 0.80),
    BenchmarkCase("bert-b/rte", "bert-base", "rte", 256, 0.78),
    BenchmarkCase("bert-b/squad", "bert-base", "squad", 384, 0.75),
    BenchmarkCase("bert-b/stsb", "bert-base", "stsb", 512, 0.90),
    BenchmarkCase("bert-b/sst2", "bert-base", "sst2", 512, 0.90),
    BenchmarkCase("bert-b/qnli", "bert-base", "qnli", 512, 0.80),
    BenchmarkCase("bert-l/mrpc", "bert-large", "mrpc", 256, 0.80),
    BenchmarkCase("bert-l/rte", "bert-large", "rte", 256, 0.78),
    BenchmarkCase("bert-l/squad", "bert-large", "squad", 384, 0.75),
    BenchmarkCase("bert-l/stsb", "bert-large", "stsb", 512, 0.90),
    BenchmarkCase("bert-l/qnli", "bert-large", "qnli", 512, 0.80),
    BenchmarkCase("gpt2/wikitext2", "gpt2", "wikitext2", 1024, 0.80),
    BenchmarkCase("gpt2/wikilingua", "gpt2", "wikilingua", 1024, 0.78),
    BenchmarkCase("bloom-1b7/wikitext2", "bloom-1b7", "wikitext2", 2048, 0.82),
    BenchmarkCase("bloom-1b7/wikiraw", "bloom-1b7", "wiki-raw", 2048, 0.80),
    BenchmarkCase("llama-7b/wikitext2", "llama-7b", "wikitext2", 4096, 0.85),
    BenchmarkCase("llama-7b/winogrande", "llama-7b", "winogrande", 4096, 0.83),
    BenchmarkCase("llama-13b/wikitext2", "llama-13b", "wikitext2", 4096, 0.85),
    BenchmarkCase("vit-b/imagenet", "vit-base", "imagenet", 3192, 0.73),
    BenchmarkCase("pvt/imagenet", "pvt", "imagenet", 3192, 0.73),
)


@dataclass
class AttentionWorkload:
    """One attention-head workload: inputs of all three SOFA stages.

    Attributes
    ----------
    tokens:
        ``(S, H)`` int8-range token activations (pre-compute stage inputs).
    wk / wv:
        ``(H, D)`` int8-range projection weights (pre-converted to LZ format
        by the DLZS predictor).
    q / k / v:
        ``(T, D)`` and ``(S, D)`` float matrices for the formal stage; ``k``
        and ``v`` equal ``tokens @ wk`` / ``tokens @ wv`` (scaled) so the
        prediction stage genuinely predicts the formal stage's scores.
    top_k:
        Per-row selection budget implied by the benchmark sparsity.
    case:
        The suite entry this workload instantiates.
    """

    tokens: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    q: np.ndarray
    k: np.ndarray
    v: np.ndarray
    top_k: int
    case: BenchmarkCase

    @property
    def seq_len(self) -> int:
        return self.k.shape[0]

    @property
    def n_queries(self) -> int:
        return self.q.shape[0]

    @property
    def head_dim(self) -> int:
        return self.q.shape[1]

    def scores(self) -> np.ndarray:
        """Exact formal-stage attention scores ``Q K^T / sqrt(d)``."""
        return self.q @ self.k.T / np.sqrt(self.head_dim)

    def fold_scale(self) -> float:
        """The K/V normalization constant folded into ``k_scale``/``v_scale``.

        ``k`` equals ``tokens @ wk`` times one scalar; recover it from any
        entry whose numerator *and* denominator are nonzero, so integer-zero
        products never hit a division (the ratio is constant wherever it is
        defined).
        """
        prod = self.tokens @ self.wk
        defined = (self.k != 0) & (prod != 0)
        if not defined.any():
            return 1.0
        return float((self.k[defined] / prod[defined]).flat[0])


def _row_bias(
    rng: np.random.Generator, row_type: RowType, seq_len: int, strength: float
) -> np.ndarray:
    """Additive score bias creating one Fig. 8 row shape."""
    bias = np.zeros(seq_len)
    if row_type is RowType.TYPE_I:
        spikes = rng.choice(seq_len, size=rng.integers(1, 4), replace=False)
        bias[spikes] = strength * rng.uniform(1.5, 2.5, size=spikes.size)
    elif row_type is RowType.TYPE_II:
        n_dom = int(seq_len * rng.uniform(0.05, 0.12))
        spikes = rng.choice(seq_len, size=max(n_dom, 8), replace=False)
        bias[spikes] = strength * rng.uniform(0.8, 1.3, size=spikes.size)
    else:  # TYPE_III: dominant values packed into one region
        width = max(int(seq_len * rng.uniform(0.08, 0.18)), 8)
        start = int(rng.integers(0, seq_len - width))
        n_dom = max(width // 2, 6)
        spikes = start + rng.choice(width, size=n_dom, replace=False)
        bias[spikes] = strength * rng.uniform(0.8, 1.3, size=n_dom)
    return bias


def synthetic_scores(
    rng: np.random.Generator,
    n_rows: int,
    seq_len: int,
    family: str,
    strength: float = 6.0,
    shared_column_fraction: float = 0.65,
) -> np.ndarray:
    """Draw ``(n_rows, seq_len)`` attention scores with the family's mixture.

    ``shared_column_fraction`` blends in a *global* per-column bias: real
    attention maps concentrate on a shared set of important tokens (sink and
    topic tokens attract many queries), which is what makes query selections
    overlap - the property both on-demand KV generation and RASS reuse
    depend on.  0 disables sharing (worst case for reuse), 1 makes every row
    use the same dominant columns.
    """
    try:
        mix = FAMILY_MIXTURES[family]
    except KeyError:
        known = ", ".join(sorted(FAMILY_MIXTURES))
        raise KeyError(f"unknown family {family!r}; known: {known}") from None
    if not 0.0 <= shared_column_fraction <= 1.0:
        raise ValueError("shared_column_fraction must be in [0, 1]")
    types = list(RowType)
    picks = rng.choice(len(types), size=n_rows, p=np.asarray(mix) / np.sum(mix))
    base = rng.normal(0.0, 1.0, size=(n_rows, seq_len))
    n_shared = max(int(seq_len * 0.08), 8)
    shared_cols = rng.choice(seq_len, size=n_shared, replace=False)
    for i in range(n_rows):
        row_type = types[picks[i]]
        bias = np.zeros(seq_len)
        if row_type is RowType.TYPE_I:
            # A few spikes, drawn mostly *from the shared columns* so that
            # selections overlap across rows (attention-sink behaviour).
            n_spikes = int(rng.integers(1, 4))
            from_shared = rng.random(n_spikes) < shared_column_fraction
            cols = np.where(
                from_shared,
                rng.choice(shared_cols, size=n_spikes),
                rng.choice(seq_len, size=n_spikes),
            )
            bias[np.unique(cols)] = strength * rng.uniform(1.8, 2.4, size=np.unique(cols).size)
        elif row_type is RowType.TYPE_II:
            # Many near-equal-height dominants on the shared set (plus a few
            # private ones), evenly spread across the row.  Heights must stay
            # tight in log space or the softmax re-concentrates the mass into
            # a few columns and the row degenerates to Type-I.
            heights = strength * rng.uniform(1.0, 1.06, size=n_shared)
            keep_mask = rng.random(n_shared) < max(shared_column_fraction, 0.3)
            bias[shared_cols[keep_mask]] = heights[keep_mask]
            n_own = max(int(n_shared * (1.0 - shared_column_fraction)), 2)
            own_cols = rng.choice(seq_len, size=n_own, replace=False)
            bias[own_cols] = np.maximum(
                bias[own_cols], strength * rng.uniform(1.0, 1.06, size=n_own)
            )
        else:
            bias = _row_bias(rng, row_type, seq_len, strength)
        # Dominant columns REPLACE the background noise (with a small jitter)
        # rather than add to it: N(0,1) noise on top of the plateau would be
        # exponentiated by the softmax and re-concentrate Type-II rows into
        # a few lucky columns.
        dominant = bias > 0
        base[i, dominant] = bias[dominant] + rng.normal(0.0, 0.2, size=int(dominant.sum()))
    return base


def make_workload(
    case: BenchmarkCase | str,
    n_queries: int = 64,
    head_dim: int = 64,
    seq_len: int | None = None,
    seed: int | None = None,
) -> AttentionWorkload:
    """Instantiate a benchmark case as a concrete attention workload.

    The construction plants the family's score structure through the *whole*
    computation chain, not just into Q:

    1. draw target scores with :func:`synthetic_scores`;
    2. truncate them to rank ``head_dim`` (scores = QK^T can never exceed
       that rank; the truncation keeps the shared/concentrated structure and
       smears only inexpressible per-row noise);
    3. factor the low-rank scores into Q and K via the SVD;
    4. back-solve integer tokens so ``tokens @ Wk`` reproduces K - this way
       the DLZS prediction path (tokens -> K_hat -> A_hat) runs on a real
       token/weight chain whose exact scores carry the planted structure
       (up to int8 quantization noise, which is part of what DLZS faces).
    """
    if isinstance(case, str):
        matches = [c for c in BENCHMARK_SUITE if c.name == case]
        if not matches:
            raise KeyError(f"unknown benchmark case {case!r}")
        case = matches[0]
    cfg: ModelConfig = get_model(case.model)
    s = seq_len if seq_len is not None else case.seq_len
    rng = make_rng(seed)
    rng_w = derive_rng(rng, "weights", case.name)
    rng_score = derive_rng(rng, "scores", case.name)

    wk = np.clip(np.rint(rng_w.normal(0, 12, size=(head_dim * 2, head_dim))), -127, 127)
    wv = np.clip(np.rint(rng_w.normal(0, 12, size=(head_dim * 2, head_dim))), -127, 127)
    weight_scale = np.sqrt(head_dim * 2.0) * 30 * 12

    target = synthetic_scores(rng_score, n_queries, s, cfg.family)
    # Rank-d truncation and balanced factorization: target_lr = q_f @ k_f.T.
    u, sing, vt = np.linalg.svd(target, full_matrices=False)
    rank = min(head_dim, sing.size)
    q_f = u[:, :rank] * np.sqrt(sing[:rank])
    k_f = (vt[:rank].T) * np.sqrt(sing[:rank])
    if rank < head_dim:  # pad factors to the head dimension
        q_f = np.pad(q_f, ((0, 0), (0, head_dim - rank)))
        k_f = np.pad(k_f, ((0, 0), (0, head_dim - rank)))

    # Back-solve tokens so that (tokens @ wk) / weight_scale ~= k_f.
    tokens_real = (k_f * weight_scale) @ np.linalg.pinv(wk)
    tok_max = np.max(np.abs(tokens_real)) or 1.0
    token_gain = 120.0 / tok_max
    tokens = np.clip(np.rint(tokens_real * token_gain), -127, 127)

    k = (tokens @ wk) / (weight_scale * token_gain)
    v = (tokens @ wv) / (weight_scale * token_gain)
    q = q_f * np.sqrt(head_dim)  # undo the 1/sqrt(d) score scaling

    top_k = max(1, int(round(s * (1.0 - case.sparsity))))
    return AttentionWorkload(
        tokens=tokens, wk=wk, wv=wv, q=q, k=k, v=v, top_k=top_k, case=case
    )
