"""Multi-layer inference runner: a full Transformer with SOFA attention.

Ties the substrates together for end-to-end studies: every attention head of
every layer runs the DLZS -> SADS -> SU-FA pipeline (per-layer tile sizes as
chosen by the DSE), and the runner aggregates per-layer operation counts,
selection statistics and fidelity against the dense forward pass.

This is the integration surface the examples and ablation studies use when
one attention head is not enough - e.g. measuring how prediction error
compounds (or doesn't) across depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attention.metrics import output_relative_error
from repro.attention.reference import masked_attention
from repro.attention.topk import indices_to_mask
from repro.core.config import SadsConfig, SofaConfig
from repro.core.sads import SadsSorter
from repro.model.transformer import Transformer
from repro.numerics.complexity import OpCounter


@dataclass
class LayerStats:
    """Per-layer aggregate across heads."""

    layer: int
    ops: OpCounter
    mean_selected_fraction: float
    mean_union_fraction: float


@dataclass
class SparseInferenceReport:
    """Outcome of one sparse forward pass.

    ``output`` is the sparse model output; ``relative_error`` compares it to
    the dense forward on the same inputs; ``layers`` holds per-layer stats.
    """

    output: np.ndarray
    dense_output: np.ndarray
    layers: list[LayerStats] = field(default_factory=list)

    @property
    def relative_error(self) -> float:
        return output_relative_error(self.output, self.dense_output)

    @property
    def total_ops(self) -> OpCounter:
        total = OpCounter()
        for layer in self.layers:
            total = total + layer.ops
        return total


class SparseInferenceRunner:
    """Runs a :class:`Transformer` with per-layer SOFA sparse attention.

    Parameters
    ----------
    model:
        The dense numpy Transformer (golden model for fidelity).
    config:
        Base SOFA configuration; ``tile_cols_per_layer`` (when given)
        overrides the tile width layer by layer, mirroring the DSE's
        layer-specific tiling.
    """

    def __init__(
        self,
        model: Transformer,
        config: SofaConfig | None = None,
        tile_cols_per_layer: list[int] | None = None,
    ):
        self.model = model
        self.config = config or SofaConfig(tile_cols=32, top_k=0.25)
        n_layers = model.config.n_layers
        if tile_cols_per_layer is not None and len(tile_cols_per_layer) != n_layers:
            raise ValueError("need one tile width per layer")
        self.tile_cols_per_layer = tile_cols_per_layer

    def _layer_attention(self, layer_idx: int, stats: list[LayerStats]):
        """Build the per-head attention hook for one layer."""
        tile_cols = (
            self.tile_cols_per_layer[layer_idx]
            if self.tile_cols_per_layer is not None
            else self.config.tile_cols
        )

        def attention(q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
            s = k.shape[0]
            k_count = self.config.resolve_top_k(s)
            n_tiles = max(-(-s // tile_cols), 1)
            sorter = SadsSorter(
                SadsConfig(
                    n_segments=n_tiles,
                    radius=self.config.sads.radius,
                    adjust_rounds=self.config.sads.adjust_rounds,
                )
            )
            scores = q @ k.T / np.sqrt(q.shape[1])
            sel = sorter.select(scores, k_count)
            mask = indices_to_mask(sel.indices, s)
            out = masked_attention(q, k, v, mask)

            entry = stats[layer_idx]
            entry.ops = entry.ops + sel.ops
            entry.mean_selected_fraction += k_count / s
            entry.mean_union_fraction += np.unique(sel.indices).size / s
            return out

        return attention

    def run(self, x: np.ndarray) -> SparseInferenceReport:
        """Sparse forward with per-layer stats; dense forward for reference."""
        n_layers = self.model.config.n_layers
        stats = [
            LayerStats(layer=i, ops=OpCounter(), mean_selected_fraction=0.0,
                       mean_union_fraction=0.0)
            for i in range(n_layers)
        ]

        # Run layer by layer so each layer gets its own attention hook.
        dense = x.copy()
        sparse = x.copy()
        from repro.model.layers import layer_norm

        n_heads = self.model.config.n_heads
        for i, block in enumerate(self.model.blocks):
            dense = block(dense)
            sparse = block(sparse, attention_fn=self._layer_attention(i, stats))
            stats[i].mean_selected_fraction /= n_heads
            stats[i].mean_union_fraction /= n_heads
        dense = layer_norm(dense)
        sparse = layer_norm(sparse)
        return SparseInferenceReport(output=sparse, dense_output=dense, layers=stats)
