"""Multi-layer inference runner: a full Transformer served by the SOFA engine.

Ties the substrates together for end-to-end studies: every attention head of
every layer runs the DLZS -> SADS -> SU-FA pipeline, and the runner
aggregates per-layer operation counts, selection statistics and fidelity
against the dense forward pass.

Since the serving engine landed, the runner is also its first production
consumer: each layer submits all of its heads to a shared
:class:`~repro.engine.serving.SofaEngine` as independent
:class:`~repro.engine.serving.AttentionRequest` objects.  The engine's
scheduler groups them onto one ``(S, tile_cols)`` tiling grid and executes
the whole layer as a single fused :class:`~repro.engine.batched.
BatchedSofaAttention` call - exactly how a deployment would amortize the
cross-stage grid over concurrent traffic.  Inside a Transformer the head's
K rows double as the pre-compute token stream (identity key projection) and
the real V matrix rides along as the request's value cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.attention.metrics import output_relative_error
from repro.core.config import SofaConfig
from repro.engine.serving import AttentionRequest, SofaEngine
from repro.model.transformer import Transformer
from repro.numerics.complexity import OpCounter


@dataclass
class LayerStats:
    """Per-layer aggregate across heads."""

    layer: int
    ops: OpCounter
    mean_selected_fraction: float
    mean_union_fraction: float


@dataclass
class SparseInferenceReport:
    """Outcome of one sparse forward pass.

    ``output`` is the sparse model output; ``relative_error`` compares it to
    the dense forward on the same inputs; ``layers`` holds per-layer stats.
    """

    output: np.ndarray
    dense_output: np.ndarray
    layers: list[LayerStats] = field(default_factory=list)

    @property
    def relative_error(self) -> float:
        return output_relative_error(self.output, self.dense_output)

    @property
    def total_ops(self) -> OpCounter:
        total = OpCounter()
        for layer in self.layers:
            total = total + layer.ops
        return total


class SparseInferenceRunner:
    """Runs a :class:`Transformer` with engine-served SOFA sparse attention.

    Parameters
    ----------
    model:
        The dense numpy Transformer (golden model for fidelity).
    config:
        Base SOFA configuration; ``tile_cols_per_layer`` (when given)
        overrides the tile width layer by layer, mirroring the DSE's
        layer-specific tiling.
    engine:
        Optional shared :class:`SofaEngine`; by default the runner owns one,
        so callers can inspect ``runner.engine.stats`` for batching behavior.
    """

    def __init__(
        self,
        model: Transformer,
        config: SofaConfig | None = None,
        tile_cols_per_layer: list[int] | None = None,
        engine: SofaEngine | None = None,
    ):
        self.model = model
        self.config = config or SofaConfig(tile_cols=32, top_k=0.25)
        n_layers = model.config.n_layers
        if tile_cols_per_layer is not None and len(tile_cols_per_layer) != n_layers:
            raise ValueError("need one tile width per layer")
        self.tile_cols_per_layer = tile_cols_per_layer
        self.engine = engine or SofaEngine(config=self.config)
        self._identity: dict[int, np.ndarray] = {}

    def _layer_config(self, layer_idx: int) -> SofaConfig:
        if self.tile_cols_per_layer is None:
            return self.config
        return replace(self.config, tile_cols=self.tile_cols_per_layer[layer_idx])

    def _layer_attention(self, layer_idx: int, stats: list[LayerStats]):
        """Build the whole-layer batched attention hook for one layer."""
        cfg = self._layer_config(layer_idx)

        def attention(q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
            n_heads, s, dh = q.shape
            eye = self._identity.setdefault(dh, np.eye(dh))
            # One request per head: K rows are the token stream under an
            # identity key projection; the true V rides as a value cache.
            futures = self.engine.submit_many(
                [
                    AttentionRequest(
                        tokens=k[h], q=q[h], wk=eye, wv=eye, v=v[h], config=cfg
                    )
                    for h in range(n_heads)
                ]
            )
            self.engine.flush()

            entry = stats[layer_idx]
            outputs = []
            for future in futures:
                res = future.result()
                outputs.append(res.output)
                for stage in res.stages:
                    entry.ops = entry.ops + stage.ops
                entry.mean_selected_fraction += res.selected.shape[1] / s
                entry.mean_union_fraction += np.unique(res.selected).size / s
            return np.stack(outputs)

        return attention

    def run(self, x: np.ndarray) -> SparseInferenceReport:
        """Sparse forward with per-layer stats; dense forward for reference."""
        n_layers = self.model.config.n_layers
        stats = [
            LayerStats(layer=i, ops=OpCounter(), mean_selected_fraction=0.0,
                       mean_union_fraction=0.0)
            for i in range(n_layers)
        ]

        # Run layer by layer so each layer gets its own attention hook.
        dense = x.copy()
        sparse = x.copy()
        from repro.model.layers import layer_norm

        n_heads = self.model.config.n_heads
        for i, block in enumerate(self.model.blocks):
            dense = block(dense)
            sparse = block(sparse, batched_attention_fn=self._layer_attention(i, stats))
            stats[i].mean_selected_fraction /= n_heads
            stats[i].mean_union_fraction /= n_heads
        dense = layer_norm(dense)
        sparse = layer_norm(sparse)
        return SparseInferenceReport(output=sparse, dense_output=dense, layers=stats)
