"""Multi-layer inference runner: a full Transformer served by the SOFA engine.

Ties the substrates together for end-to-end studies: every attention head of
every layer runs the DLZS -> SADS -> SU-FA pipeline, and the runner
aggregates per-layer operation counts, selection statistics and fidelity
against the dense forward pass.

Since the serving engine landed, the runner is also its first production
consumer: each layer submits all of its heads to a shared
:class:`~repro.engine.serving.SofaEngine` as independent
:class:`~repro.engine.serving.AttentionRequest` objects.  The engine's
scheduler groups them onto one ``(S, tile_cols)`` tiling grid and executes
the whole layer as a single fused :class:`~repro.engine.batched.
BatchedSofaAttention` call - exactly how a deployment would amortize the
cross-stage grid over concurrent traffic.  Inside a Transformer the head's
K rows double as the pre-compute token stream (identity key projection) and
the real V matrix rides along as the request's value cache.

:class:`SparseDecodeSession` extends this to autoregressive decode: it
keeps per-layer K/V stacks, forwards only the new positions each step, and
serves every head's attention through the engine's **decode-step cache**
(``cache_key=(session, layer, head)``), so the DLZS phase-1.1 state of the
unchanged context prefix is reused instead of re-quantized - with results
bit-identical to uncached serving.

Both consumers accept an :class:`~repro.cluster.serving.EngineCluster` as
a drop-in ``engine`` - including one running over the **socket transport**
with workers on other hosts (``EngineCluster(transport="socket",
worker_addresses=[...], supervisor=...)``).  Nothing here changes for
that: the cluster serves the same submit/flush/futures surface, the codec
round-trips every tensor bit-exactly over frames, and supervision
(heartbeats, auto-respawn/reconnect) keeps the worker fleet healthy while
this module just awaits its futures - so a multi-host deployment is a
constructor argument, not a code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.attention.metrics import output_relative_error
from repro.core.config import SofaConfig
from repro.engine.serving import AttentionRequest, SofaEngine

if TYPE_CHECKING:  # annotation-only: keep repro.model import light
    from repro.cluster import EngineCluster
from repro.model.layers import layer_norm, merge_heads
from repro.model.transformer import Transformer
from repro.numerics.complexity import OpCounter


@dataclass
class LayerStats:
    """Per-layer aggregate across heads."""

    layer: int
    ops: OpCounter
    mean_selected_fraction: float
    mean_union_fraction: float


@dataclass
class SparseInferenceReport:
    """Outcome of one sparse forward pass.

    ``output`` is the sparse model output; ``relative_error`` compares it to
    the dense forward on the same inputs; ``layers`` holds per-layer stats.
    """

    output: np.ndarray
    dense_output: np.ndarray
    layers: list[LayerStats] = field(default_factory=list)

    @property
    def relative_error(self) -> float:
        return output_relative_error(self.output, self.dense_output)

    @property
    def total_ops(self) -> OpCounter:
        total = OpCounter()
        for layer in self.layers:
            total = total + layer.ops
        return total


class SparseInferenceRunner:
    """Runs a :class:`Transformer` with engine-served SOFA sparse attention.

    Parameters
    ----------
    model:
        The dense numpy Transformer (golden model for fidelity).
    config:
        Base SOFA configuration; ``tile_cols_per_layer`` (when given)
        overrides the tile width layer by layer, mirroring the DSE's
        layer-specific tiling.
    engine:
        Optional shared :class:`SofaEngine` - or an
        :class:`~repro.cluster.serving.EngineCluster`, which serves the
        same submit/flush/futures surface from sharded worker processes
        (local children or, via ``transport="socket"``, supervised
        standalone workers on this or other hosts) - by default the
        runner owns a single engine, so callers can inspect
        ``runner.engine.stats`` for batching behavior.
    """

    def __init__(
        self,
        model: Transformer,
        config: SofaConfig | None = None,
        tile_cols_per_layer: list[int] | None = None,
        engine: SofaEngine | EngineCluster | None = None,
    ):
        self.model = model
        self.config = config or SofaConfig(tile_cols=32, top_k=0.25)
        n_layers = model.config.n_layers
        if tile_cols_per_layer is not None and len(tile_cols_per_layer) != n_layers:
            raise ValueError("need one tile width per layer")
        self.tile_cols_per_layer = tile_cols_per_layer
        self.engine = engine or SofaEngine(config=self.config)
        self._identity: dict[int, np.ndarray] = {}

    def _layer_config(self, layer_idx: int) -> SofaConfig:
        if self.tile_cols_per_layer is None:
            return self.config
        return replace(self.config, tile_cols=self.tile_cols_per_layer[layer_idx])

    def _layer_attention(self, layer_idx: int, stats: list[LayerStats]):
        """Build the whole-layer batched attention hook for one layer."""
        cfg = self._layer_config(layer_idx)

        def attention(q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
            n_heads, s, dh = q.shape
            eye = self._identity.setdefault(dh, np.eye(dh))
            # One request per head: K rows are the token stream under an
            # identity key projection; the true V rides as a value cache.
            futures = self.engine.submit_many(
                [
                    AttentionRequest(
                        tokens=k[h], q=q[h], wk=eye, wv=eye, v=v[h], config=cfg
                    )
                    for h in range(n_heads)
                ]
            )
            self.engine.flush()

            entry = stats[layer_idx]
            outputs = []
            for future in futures:
                res = future.result()
                outputs.append(res.output)
                for stage in res.stages:
                    entry.ops = entry.ops + stage.ops
                entry.mean_selected_fraction += res.selected.shape[1] / s
                entry.mean_union_fraction += np.unique(res.selected).size / s
            return np.stack(outputs)

        return attention

    def run(self, x: np.ndarray) -> SparseInferenceReport:
        """Sparse forward with per-layer stats; dense forward for reference."""
        n_layers = self.model.config.n_layers
        stats = [
            LayerStats(layer=i, ops=OpCounter(), mean_selected_fraction=0.0,
                       mean_union_fraction=0.0)
            for i in range(n_layers)
        ]

        # Run layer by layer so each layer gets its own attention hook.
        dense = x.copy()
        sparse = x.copy()
        n_heads = self.model.config.n_heads
        for i, block in enumerate(self.model.blocks):
            dense = block(dense)
            sparse = block(sparse, batched_attention_fn=self._layer_attention(i, stats))
            stats[i].mean_selected_fraction /= n_heads
            stats[i].mean_union_fraction /= n_heads
        dense = layer_norm(dense)
        sparse = layer_norm(sparse)
        return SparseInferenceReport(output=sparse, dense_output=dense, layers=stats)


@dataclass
class DecodeStepReport:
    """Outcome of one decode step.

    ``output`` holds the final-normalized hidden states of the *new*
    positions only; ``seq_len`` is the total context length after the step.
    ``cache_hits``/``cache_misses`` are the decode-step-cache lookups this
    step performed (hits skip re-quantizing the context prefix).
    """

    output: np.ndarray
    seq_len: int
    cache_hits: int = 0
    cache_misses: int = 0


class SparseDecodeSession:
    """Autoregressive decode served through the engine's decode-step cache.

    The session keeps per-layer K/V stacks (the model substrate's KV cache)
    and, each :meth:`step`, forwards only the newly appended positions: every
    layer projects the new rows, extends its K/V stacks, and submits one
    :class:`AttentionRequest` per head with ``cache_key=(session_id, layer,
    head)``.  Because a head's K rows double as the SOFA token stream and
    earlier rows never change, the engine's :class:`~repro.engine.cache.
    DecodeStepCache` reuses the quantized ``K_hat`` prefix from the previous
    step - the serving analogue of keeping the predicted-key SRAM resident
    across decode steps.  Outputs are bit-identical to running the same
    requests uncached (``use_cache=False``).

    Note the session computes attention for new positions over the *whole*
    context (the substrate's attention is bidirectional over the submitted
    rows); earlier positions' outputs are never revisited, which is the
    standard causal-decode contract.
    """

    def __init__(
        self,
        model: Transformer,
        config: SofaConfig | None = None,
        engine: SofaEngine | EngineCluster | None = None,
        session_id: str | None = None,
        use_cache: bool = True,
    ):
        self.model = model
        self.config = config or SofaConfig(tile_cols=32, top_k=0.25)
        # The session touches n_layers*n_heads cache entries in a fixed scan
        # order every step; an LRU smaller than that working set would evict
        # each entry right before its next lookup (0% hits), so a
        # session-owned engine sizes its cache to hold the whole session.
        working_set = model.config.n_layers * model.config.n_heads
        self.engine = engine or SofaEngine(
            config=self.config, cache_entries=max(256, 2 * working_set)
        )
        self.session_id = session_id or f"decode-session-{id(self):x}"
        self.use_cache = use_cache
        n_layers = model.config.n_layers
        self._k: list[np.ndarray | None] = [None] * n_layers
        self._v: list[np.ndarray | None] = [None] * n_layers
        self._identity: dict[int, np.ndarray] = {}

    @property
    def seq_len(self) -> int:
        """Tokens decoded so far (0 before the first step/prefill)."""
        first = self._k[0] if self._k else None
        return 0 if first is None else first.shape[1]

    def prefill(self, x: np.ndarray) -> DecodeStepReport:
        """Ingest the prompt: one step covering all prompt positions."""
        return self.step(x)

    def step(self, x_new: np.ndarray) -> DecodeStepReport:
        """Append embeddings ``x_new`` (``(T_new, hidden)`` or ``(hidden,)``)
        and return the final hidden states of the new positions."""
        x_new = np.asarray(x_new, dtype=np.float64)
        if x_new.ndim == 1:
            x_new = x_new[None, :]
        if x_new.ndim != 2 or x_new.shape[1] != self.model.config.hidden:
            raise ValueError(
                f"expected (T_new, {self.model.config.hidden}) embeddings, "
                f"got {x_new.shape}"
            )
        # Engine stats.cache is a live counter object, the cluster's a
        # point-in-time merged snapshot - capture scalars, re-read after.
        before = self.engine.stats.cache
        hits0, misses0 = before.hits, before.misses

        cur = x_new
        for i, block in enumerate(self.model.blocks):
            q, k, v = block.attn.project_qkv(layer_norm(cur))
            if self._k[i] is None:
                k_full, v_full = k, v
            else:
                k_full = np.concatenate([self._k[i], k], axis=1)
                v_full = np.concatenate([self._v[i], v], axis=1)
            self._k[i], self._v[i] = k_full, v_full

            dh = q.shape[2]
            eye = self._identity.setdefault(dh, np.eye(dh))
            futures = self.engine.submit_many(
                [
                    AttentionRequest(
                        tokens=k_full[h],
                        q=q[h],
                        wk=eye,
                        wv=eye,
                        v=v_full[h],
                        config=self.config,
                        cache_key=(self.session_id, i, h) if self.use_cache else None,
                    )
                    for h in range(k_full.shape[0])
                ]
            )
            self.engine.flush()
            heads = np.stack([f.result().output for f in futures])
            cur = cur + block.attn.wo(merge_heads(heads))
            cur = cur + block.ffn(layer_norm(cur))

        after = self.engine.stats.cache
        return DecodeStepReport(
            output=layer_norm(cur),
            seq_len=self.seq_len,
            cache_hits=after.hits - hits0,
            cache_misses=after.misses - misses0,
        )

    def close(self) -> int:
        """End the session: drop its decode-cache entries; returns how many.

        Goes through the engine/cluster ``invalidate_cache`` surface, so a
        cluster-backed session drops its state on every worker.
        """
        return self.engine.invalidate_cache(self.session_id)
