"""Transformer substrate: configs, numpy layers, profiler and workloads.

The paper evaluates on BERT-B/L, GPT-2, ViT-B, PVT, Bloom-1.7B and
Llama-7B/13B across 20 benchmarks.  We cannot ship those checkpoints, so this
package provides:

* :mod:`repro.model.config` - published architectural parameters of each
  model (layers, hidden size, heads, FFN width, sequence lengths).
* :mod:`repro.model.layers` / :mod:`repro.model.transformer` - a complete
  numpy forward pass (QKV projection, multi-head attention, FFN) so the SOFA
  algorithms run inside a real end-to-end Transformer computation.
* :mod:`repro.model.profiler` - analytic FLOPs / bytes / operational-intensity
  profiles (regenerates Figs. 1 and 4).
* :mod:`repro.model.workloads` - synthetic attention-score generators
  calibrated to the paper's Type-I/II/III row taxonomy (Fig. 8), plus the
  20-benchmark suite descriptor used by the evaluation harness.
"""

from repro.model.config import ModelConfig, MODEL_ZOO, get_model
from repro.model.transformer import Transformer
from repro.model.workloads import AttentionWorkload, BENCHMARK_SUITE, make_workload

__all__ = [
    "ModelConfig",
    "MODEL_ZOO",
    "get_model",
    "Transformer",
    "AttentionWorkload",
    "BENCHMARK_SUITE",
    "make_workload",
]
