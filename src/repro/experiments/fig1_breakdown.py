"""Fig. 1: Transformer memory and computation breakdown for long sequences.

For Llama-7B and ViT-B across sequence lengths, report each part's share of
total compute and total memory traffic plus the absolute footprint.  The
paper's observation to reproduce: attention's compute share crosses 50%
around S ~ 32k and dominates both axes at 128k.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.model.config import get_model
from repro.model.profiler import breakdown_shares, memory_footprint_bytes

#: The sequence sweeps of Fig. 1's two panels.
SWEEPS: dict[str, tuple[int, ...]] = {
    "llama-7b": (4096, 16384, 32768, 65536, 131072),
    "vit-base": (4096, 8192, 14336, 32768, 126976),
}


def run(quick: bool = False) -> ExperimentResult:
    rows = []
    crossover_seq = None
    for model_name, seq_lens in SWEEPS.items():
        cfg = get_model(model_name)
        for s in seq_lens:
            shares = breakdown_shares(cfg, s)
            att = shares["attention"]
            rows.append(
                (
                    model_name,
                    s,
                    shares["qkv"]["compute_share"] * 100,
                    att["compute_share"] * 100,
                    shares["ffn"]["compute_share"] * 100,
                    shares["qkv"]["memory_share"] * 100,
                    att["memory_share"] * 100,
                    shares["ffn"]["memory_share"] * 100,
                    memory_footprint_bytes(cfg, s) / 2**20,
                )
            )
            if (
                model_name == "llama-7b"
                and crossover_seq is None
                and att["compute_share"] > 0.5
            ):
                crossover_seq = s
    return ExperimentResult(
        experiment_id="fig1",
        title="Fig. 1: memory & computation breakdown vs sequence length",
        headers=[
            "model", "seq_len", "qkv_comp%", "atten_comp%", "ffn_comp%",
            "qkv_mem%", "atten_mem%", "ffn_mem%", "footprint_MiB",
        ],
        rows=rows,
        formats=[None, None, ".1f", ".1f", ".1f", ".1f", ".1f", ".1f", ".0f"],
        headline={
            "llama7b_attention_compute_share_at_128k": next(
                r[3] for r in rows if r[0] == "llama-7b" and r[1] == 131072
            ),
            "llama7b_compute_crossover_seq": float(crossover_seq or 0),
        },
    )
