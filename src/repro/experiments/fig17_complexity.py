"""Fig. 17: complexity-reduction ablation of DLZS, SADS and SU-FA.

Against the ``4-bit multiplication + vanilla (full-row bitonic) sorting +
FA-2`` baseline at matched sparsity, report the normalized-complexity
reduction of the three stacked substitutions.  Paper values: DLZS -18%,
+SADS -25%, +SU-FA -28% (each model's loss kept under 2%).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.experiments.suite import geomean, measure_case, suite_cases

LOSS_BUDGET = 2.0  # "each model's loss remains under 2%"


def run(quick: bool = False) -> ExperimentResult:
    rows = []
    reductions = {"dlzs": [], "dlzs_sads": [], "sofa": []}
    for case in suite_cases(quick=quick):
        m = measure_case(case.name, LOSS_BUDGET)
        base = m.complexity["baseline"]
        row_red = {
            cfg: 1 - m.complexity[cfg] / base for cfg in ("dlzs", "dlzs_sads", "sofa")
        }
        for cfg, val in row_red.items():
            reductions[cfg].append(val)
        rows.append(
            (
                case.name,
                m.measured_loss_pct,
                row_red["dlzs"] * 100,
                row_red["dlzs_sads"] * 100,
                row_red["sofa"] * 100,
            )
        )
    means = {cfg: float(np.mean(vals)) for cfg, vals in reductions.items()}
    rows.append(
        (
            "MEAN",
            0.0,
            means["dlzs"] * 100,
            means["dlzs_sads"] * 100,
            means["sofa"] * 100,
        )
    )
    return ExperimentResult(
        experiment_id="fig17",
        title="Fig. 17: normalized complexity reduction vs 4bit+vanilla-sort+FA2",
        headers=["benchmark", "measured_loss%", "DLZS%", "+SADS%", "+SU-FA%"],
        rows=rows,
        formats=[None, ".2f", ".1f", ".1f", ".1f"],
        headline={
            "dlzs_reduction_pct": means["dlzs"] * 100,
            "dlzs_sads_reduction_pct": means["dlzs_sads"] * 100,
            "sofa_reduction_pct": means["sofa"] * 100,
            "geomean_sofa_keep_ratio": geomean(
                [1 - r for r in reductions["sofa"]]
            ),
        },
    )
