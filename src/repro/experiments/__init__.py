"""Experiment harness: one module per paper table/figure.

Run ``python -m repro.experiments <id>`` (or ``all``) to regenerate a
table/figure's rows.  Each module exposes ``run(...) -> ExperimentResult``;
the registry below maps experiment ids (DESIGN.md index) to modules.
"""

from repro.experiments.harness import ExperimentResult, REGISTRY, get_experiment

__all__ = ["ExperimentResult", "REGISTRY", "get_experiment"]
