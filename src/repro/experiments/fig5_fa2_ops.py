"""Fig. 5(b)/(c): FlashAttention-2's op growth over vanilla attention.

Panel (b): extra exponential and comparison operations of FA-2 vs the
untiled softmax attention as S grows (paper: ~9e6 extra exps and ~3e5 extra
comparisons at S=2048 with Bc=16).  Panel (c): total normalized complexity
increase vs S for several tile counts - larger Tc (smaller Bc) grows faster.

The counts come from the *executed* FA-2 simulator, cross-checked against the
closed-form model (a test pins their equality).
"""

from __future__ import annotations

from repro.attention.flash import flash_attention, vanilla_attention_ops
from repro.experiments.harness import ExperimentResult
from repro.numerics.complexity import DEFAULT_WEIGHTS
from repro.utils.rng import make_rng

SEQ_LENS = (256, 512, 1024, 2048)
TILE_SIZES = (4, 16, 64)
HEAD_DIM = 64


def run(quick: bool = False) -> ExperimentResult:
    rng = make_rng(5)
    rows = []
    headline: dict[str, float] = {}
    seq_lens = SEQ_LENS[:2] if quick else SEQ_LENS
    for s in seq_lens:
        t = s  # prefill: as many query rows as keys
        # Measure one query block and extrapolate rows (exact for op counts).
        t_sample = min(t, 32)
        q = rng.normal(size=(t_sample, HEAD_DIM))
        k = rng.normal(size=(s, HEAD_DIM))
        v = rng.normal(size=(s, HEAD_DIM))
        vanilla = vanilla_attention_ops(t, s, HEAD_DIM)
        for bc in TILE_SIZES:
            res = flash_attention(q, k, v, tile_cols=bc)
            scaled = res.ops.scaled(t / t_sample)
            extra_exp = scaled["exp"] - vanilla["exp"]
            extra_cmp = scaled["compare"] - vanilla["compare"]
            overhead = scaled.normalized(DEFAULT_WEIGHTS) / vanilla.normalized(
                DEFAULT_WEIGHTS
            )
            rows.append((s, bc, res.n_tiles * (t // t_sample or 1), extra_exp, extra_cmp, overhead))
            if s == 2048 and bc == 16:
                headline["extra_exp_s2048_bc16"] = extra_exp
                headline["extra_compare_s2048_bc16"] = extra_cmp
            if s == 1024 and bc == 4:
                headline["overhead_ratio_s1024_bc4"] = overhead
    return ExperimentResult(
        experiment_id="fig5",
        title="Fig. 5: FA-2 op growth vs vanilla attention",
        headers=["seq_len", "Bc", "tiles", "extra_exp", "extra_compare", "complexity_ratio"],
        rows=rows,
        formats=[None, None, None, ".3g", ".3g", ".3f"],
        headline=headline,
    )
