"""Fig. 3: memory-access-time share of FACT/Energon under scaled parallelism.

For each of the four (model, sequence) panels, report the DRAM-access share
of latency at T=1 and at the panel's maximum parallelism for both
accelerators.  Shape to reproduce: the share rises steeply with T and
averages ~72% at scale (the paper's 40-54% per-panel callouts are
mid-sweep values).
"""

from __future__ import annotations

from repro.baselines.accel_models import FIG3_PANELS, average_mat_share_at_scale, mat_breakdown
from repro.experiments.harness import ExperimentResult


def run(quick: bool = False) -> ExperimentResult:
    rows = []
    for accel in ("fact", "energon"):
        for model, seq_len, t_max in FIG3_PANELS:
            low = mat_breakdown(accel, model, seq_len, 1)
            high = mat_breakdown(accel, model, seq_len, t_max)
            rows.append(
                (
                    accel,
                    model,
                    seq_len,
                    t_max,
                    low.mat_share * 100,
                    high.mat_share * 100,
                )
            )
    return ExperimentResult(
        experiment_id="fig3",
        title="Fig. 3: DRAM-access latency share vs token parallelism (2MB SRAM)",
        headers=["accelerator", "model", "seq_len", "T_max", "MAT%@T=1", "MAT%@T=max"],
        rows=rows,
        formats=[None, None, None, None, ".1f", ".1f"],
        headline={"average_mat_share_at_scale_pct": average_mat_share_at_scale() * 100},
    )
