"""Table III: SOFA area and power breakdown by module (TSMC 28 nm, 1 GHz)."""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.hw.area_power import (
    SOFA_MODULES,
    lp_area_fraction,
    lp_power_fraction,
    total_area_mm2,
    total_core_power_w,
)


def run(quick: bool = False) -> ExperimentResult:
    rows = [
        (m.name, m.parameters, m.area_mm2, m.power_w * 1e3) for m in SOFA_MODULES
    ]
    rows.append(("TOTAL", "-", total_area_mm2(), total_core_power_w() * 1e3))
    return ExperimentResult(
        experiment_id="table3",
        title="Table III: SOFA area/power breakdown @ 28nm 1GHz",
        headers=["module", "parameters", "area_mm2", "power_mW"],
        rows=rows,
        formats=[None, None, ".3f", ".2f"],
        headline={
            "total_area_mm2": total_area_mm2(),
            "total_power_w": total_core_power_w(),
            "lp_area_fraction_pct": lp_area_fraction() * 100,
            "lp_power_fraction_pct": lp_power_fraction() * 100,
        },
    )
