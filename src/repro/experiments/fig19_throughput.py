"""Fig. 19: throughput gain of SOFA over the A100 GPU baselines.

Panel (a): SOFA vs GPU-with-LP at 0/1/2% loss (paper GeoMean: SOFA 6.1x /
7.2x / 9.5x over dense; GPU-LP only 1.08-1.78x).  Panel (b): SOFA at 2%
loss vs GPU LP+FlashAttention-1/2 (paper: 9.5x total, 3.57x over LP+FA1 and
3.01x over LP+FA2).
"""

from __future__ import annotations

from repro.baselines.gpu import GpuModel
from repro.experiments.gains import case_gains
from repro.experiments.harness import ExperimentResult
from repro.experiments.suite import geomean, measure_case, suite_cases

LOSS_BUDGETS = (0.0, 1.0, 2.0)


def run(quick: bool = False) -> ExperimentResult:
    gpu = GpuModel()
    rows = []
    sofa_by_budget: dict[float, list[float]] = {b: [] for b in LOSS_BUDGETS}
    lp_by_budget: dict[float, list[float]] = {b: [] for b in LOSS_BUDGETS}
    fa1_ratio: list[float] = []
    fa2_ratio: list[float] = []
    for case in suite_cases(quick=quick):
        cells = [case.name]
        for budget in LOSS_BUDGETS:
            m = measure_case(case.name, budget)
            gains = case_gains(m, "gpu")
            lp = gpu.lp_speedup(min(m.atten_reduction, 0.99))
            sofa = gains.total
            lp_by_budget[budget].append(lp)
            sofa_by_budget[budget].append(sofa)
            cells.extend([lp, sofa])
            if budget == 2.0:
                lp_fa1 = gpu.lp_fa_speedup(min(m.atten_reduction, 0.99), fa2=False)
                lp_fa2 = gpu.lp_fa_speedup(min(m.atten_reduction, 0.99), fa2=True)
                fa1_ratio.append(sofa / lp_fa1)
                fa2_ratio.append(sofa / lp_fa2)
        rows.append(tuple(cells))

    gm = {b: geomean(sofa_by_budget[b]) for b in LOSS_BUDGETS}
    rows.append(
        (
            "GEOMEAN",
            geomean(lp_by_budget[0.0]), gm[0.0],
            geomean(lp_by_budget[1.0]), gm[1.0],
            geomean(lp_by_budget[2.0]), gm[2.0],
        )
    )
    return ExperimentResult(
        experiment_id="fig19",
        title="Fig. 19: throughput gain over dense A100 (LP-on-GPU vs SOFA)",
        headers=[
            "benchmark",
            "gpu_lp@0", "sofa@0",
            "gpu_lp@1", "sofa@1",
            "gpu_lp@2", "sofa@2",
        ],
        rows=rows,
        formats=[None, ".2f", ".2f", ".2f", ".2f", ".2f", ".2f"],
        headline={
            "sofa_speedup_loss0": gm[0.0],
            "sofa_speedup_loss1": gm[1.0],
            "sofa_speedup_loss2": gm[2.0],
            "sofa_over_lp_fa1": geomean(fa1_ratio),
            "sofa_over_lp_fa2": geomean(fa2_ratio),
        },
    )
