"""Fig. 4(b)/(c): operational intensity of Transformer parts and vs parallelism.

Panel (b): normalized OI of QKV / MHA / FFN per model - MHA should sit far
below FFN (the paper reports ~15% of FFN on average).  Panel (c): attention
OI versus token parallelism T for two models - OI grows with T thanks to
K/V reuse, lifting the roofline performance ceiling.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.model.config import get_model
from repro.model.profiler import attention_oi_vs_parallelism, profile_parts

PANEL_B_MODELS = ("vit-base", "bert-base", "gpt2-large", "bloom-3b")
PANEL_C_MODELS = ("bloom-3b", "gpt2")
PARALLELISMS = (1, 2, 4, 8, 16, 32, 64, 128)


def run(quick: bool = False) -> ExperimentResult:
    rows = []
    mha_over_ffn = []
    for name in PANEL_B_MODELS:
        cfg = get_model(name)
        parts = profile_parts(cfg)
        ffn_oi = parts["ffn"].operational_intensity
        rows.append(
            (
                "b", name, 0,
                parts["qkv"].operational_intensity,
                parts["attention"].operational_intensity,
                ffn_oi,
            )
        )
        mha_over_ffn.append(parts["attention"].operational_intensity / ffn_oi)
    for name in PANEL_C_MODELS:
        cfg = get_model(name)
        for t in PARALLELISMS:
            oi = attention_oi_vs_parallelism(cfg, t)
            rows.append(("c", name, t, 0.0, oi, 0.0))
    oi_1 = attention_oi_vs_parallelism(get_model("bloom-3b"), 1)
    oi_128 = attention_oi_vs_parallelism(get_model("bloom-3b"), 128)
    return ExperimentResult(
        experiment_id="fig4",
        title="Fig. 4: operational intensity per part (b) and vs parallelism (c)",
        headers=["panel", "model", "parallelism", "qkv_oi", "attention_oi", "ffn_oi"],
        rows=rows,
        formats=[None, None, None, ".1f", ".2f", ".1f"],
        headline={
            "mean_mha_oi_fraction_of_ffn": sum(mha_over_ffn) / len(mha_over_ffn),
            "bloom3b_oi_gain_t128_over_t1": oi_128 / oi_1,
        },
    )
