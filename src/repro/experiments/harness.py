"""Experiment registry and the shared result container.

Every experiment module exposes ``run(quick: bool = False) ->
ExperimentResult``; this module maps DESIGN.md experiment ids to those
callables and renders results uniformly.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.utils.tables import format_table


@dataclass
class ExperimentResult:
    """A regenerated table/figure: headers + rows + headline scalars.

    ``headline`` holds the handful of numbers the paper quotes in prose
    (e.g. geomean speedups), keyed by a short name; EXPERIMENTS.md records
    these against the paper's values.
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]]
    formats: Sequence[str | None] | None = None
    headline: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        parts = [format_table(self.headers, self.rows, self.formats, title=self.title)]
        if self.headline:
            parts.append("")
            parts.append("headline:")
            for key, value in self.headline.items():
                parts.append(f"  {key}: {value:.4g}")
        return "\n".join(parts)


#: experiment id -> module path (module must define ``run``).
REGISTRY: dict[str, str] = {
    "fig1": "repro.experiments.fig1_breakdown",
    "fig3": "repro.experiments.fig3_mat",
    "fig4": "repro.experiments.fig4_oi",
    "fig5": "repro.experiments.fig5_fa2_ops",
    "fig8": "repro.experiments.fig8_distribution",
    "fig15": "repro.experiments.fig15_rass",
    "fig17": "repro.experiments.fig17_complexity",
    "fig18": "repro.experiments.fig18_lp_reduction",
    "fig19": "repro.experiments.fig19_throughput",
    "fig20": "repro.experiments.fig20_memory_energy",
    "fig21": "repro.experiments.fig21_breakdown",
    "table1": "repro.experiments.table1_summary",
    "table2": "repro.experiments.table2_sota",
    "table3": "repro.experiments.table3_area_power",
    "table4": "repro.experiments.table4_power",
}


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Resolve an experiment id to its ``run`` callable."""
    try:
        module_path = REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}") from None
    module = importlib.import_module(module_path)
    return module.run
