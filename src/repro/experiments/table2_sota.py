"""Table II: normalized comparison with 8 SOTA accelerators.

For each accelerator: published specs plus the derived columns computed by
our normalization protocol - device (core+IO) energy efficiency at 28 nm,
area efficiency, and the 137-GOPs Llama-7B attention latency at the
128-multiplier / 1 GHz budget.  Headlines: SOFA's mean advantage (paper:
15.8x energy efficiency, 10.3x area efficiency, 9.3x speedup on average
across the eight designs).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.specs import (
    ACCELERATOR_SPECS,
    area_efficiency_gops_per_mm2,
    device_efficiency_gops_per_w,
    protocol_latency_ms,
)
from repro.experiments.harness import ExperimentResult


def run(quick: bool = False) -> ExperimentResult:
    rows = []
    device_eff_ratios = []
    area_eff_ratios = []
    latency_ratios = []
    sofa = ACCELERATOR_SPECS["sofa"]
    sofa_dev_eff = device_efficiency_gops_per_w(sofa)
    sofa_area_eff = area_efficiency_gops_per_mm2(sofa)
    sofa_latency = protocol_latency_ms(sofa)
    for spec in ACCELERATOR_SPECS.values():
        dev_eff = device_efficiency_gops_per_w(spec)
        area_eff = area_efficiency_gops_per_mm2(spec)
        latency = protocol_latency_ms(spec)
        rows.append(
            (
                spec.name,
                spec.sparsity_kind,
                spec.accuracy_loss_pct,
                spec.saved_computation * 100,
                spec.tech_nm,
                spec.throughput_gops,
                spec.core_eff_gops_per_w,
                dev_eff if dev_eff is not None else float("nan"),
                area_eff,
                latency,
            )
        )
        if spec.name != "sofa":
            if dev_eff is not None and sofa_dev_eff is not None:
                device_eff_ratios.append(sofa_dev_eff / dev_eff)
            area_eff_ratios.append(sofa_area_eff / area_eff)
            latency_ratios.append(latency / sofa_latency)
    # The paper's "average 15.8x / 10.3x / 9.3x" aggregates per-design
    # ratios (SOFA over each competitor), not a ratio of means.
    return ExperimentResult(
        experiment_id="table2",
        title="Table II: comparison with SOTA accelerators (normalized to 28nm)",
        headers=[
            "accelerator", "sparsity", "loss%", "saved%", "tech_nm",
            "GOPS", "core_eff", "device_eff", "area_eff", "latency_ms",
        ],
        rows=rows,
        formats=[None, None, ".1f", ".0f", ".0f", ".0f", ".0f", ".0f", ".0f", ".0f"],
        headline={
            "mean_device_eff_advantage": float(np.mean(device_eff_ratios)),
            "mean_area_eff_advantage": float(np.mean(area_eff_ratios)),
            "mean_latency_advantage": float(np.mean(latency_ratios)),
            "sofa_latency_ms": sofa_latency,
            "fact_latency_ms": protocol_latency_ms(ACCELERATOR_SPECS["fact"]),
        },
    )
