"""Table IV: power split across core, memory interface and DRAM.

Derived from the core module specs plus the DRAM channel model at the
59.8 GB/s operating point (paper: 0.95 W core, 0.53 W interface, 1.92 W
DRAM, 3.40 W overall).
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.hw.area_power import TABLE_IV_BANDWIDTH_BYTES_PER_S, table_iv_power_breakdown


def run(quick: bool = False) -> ExperimentResult:
    split = table_iv_power_breakdown()
    rows = [
        ("core", split["core_w"]),
        ("memory interface", split["interface_w"]),
        ("DRAM", split["dram_w"]),
        ("overall", split["overall_w"]),
    ]
    return ExperimentResult(
        experiment_id="table4",
        title=f"Table IV: power breakdown at {TABLE_IV_BANDWIDTH_BYTES_PER_S/1e9:.1f} GB/s",
        headers=["component", "power_w"],
        rows=rows,
        formats=[None, ".2f"],
        headline={
            "overall_power_w": split["overall_w"],
            "core_power_w": split["core_w"],
        },
    )
