"""Device-gain composition model shared by the Fig. 19-21 experiments.

The paper decomposes SOFA's advantage over a dense GPU/TPU baseline into a
software factor (the LP + FA-style algorithm running on the device) and four
hardware-engine factors (DLZS, SADS, SU-FA, RASS).  Our substitution policy
(DESIGN.md): the *per-engine calibration anchors* come from the paper's
measured GPU/TPU ablation (Fig. 21), while the workload dependence of each
factor is driven by quantities measured from our functional pipeline
(complexity ratios, reuse rates, assurance rates).  This keeps the per-
benchmark spread and loss-budget trends endogenous while the absolute scale
matches the published hardware.

Anchor values (paper Fig. 21, GeoMean over the suite):

==============  =====  =====
factor           GPU    TPU
==============  =====  =====
software        3.16x  2.9x  (at the 2%-loss operating point)
+DLZS engine    1.65x  1.82x
+SADS engine    1.28x  1.52x
+SU-FA engine   1.26x  1.1x
+RASS unit      1.14x  1.3x
==============  =====  =====
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.gpu import GpuModel
from repro.baselines.tpu import TpuModel
from repro.experiments.suite import CaseMeasurement

#: Fig. 21 anchor gains at the 2%-loss GeoMean operating point.
ENGINE_ANCHORS = {
    "gpu": {"dlzs": 1.65, "sads": 1.28, "sufa": 1.26, "rass": 1.14},
    "tpu": {"dlzs": 1.82, "sads": 1.52, "sufa": 1.10, "rass": 1.30},
}

#: Reference measurement values at the anchor operating point (2% loss,
#: suite GeoMean) used to normalize the workload modulation to 1.0 there;
#: these are the measured suite geomeans under the default seed.
_REF_COMPLEXITY_RATIO = 0.655  # sofa/baseline complexity at 2% loss
_REF_KV_REUSE = 0.303  # rass/naive vector loads
_REF_ASSURANCE = 0.030
_REF_ATTEN_REDUCTION = 0.876  # suite geomean at 2% loss
_REF_KEEP_FRACTION = 0.075  # top-k keep fraction at the 2%-loss budget


@dataclass(frozen=True)
class GainBreakdown:
    """Multiplicative gain chain of one benchmark on one device."""

    device: str
    software: float
    dlzs: float
    sads: float
    sufa: float
    rass: float

    @property
    def hardware(self) -> float:
        return self.dlzs * self.sads * self.sufa * self.rass

    @property
    def total(self) -> float:
        return self.software * self.hardware


def _clamp(value: float, lo: float, hi: float) -> float:
    return max(lo, min(hi, value))


def case_gains(m: CaseMeasurement, device: str = "gpu") -> GainBreakdown:
    """Compose the speedup chain for one measured benchmark case.

    Modulation terms (each exactly 1.0 at the anchor operating point):

    * DLZS engine gain scales with how much complexity the workload sheds
      (ratio of sofa to baseline normalized complexity): the shift-add
      datapath's advantage grows with the pruned fraction.
    * SADS and SU-FA gains scale with the sparsity operating point (smaller
      keep fraction = shorter sorted lists and fewer formal columns, which
      the dedicated datapaths exploit better than a GPU's fixed-width SIMD).
    * SU-FA additionally pays for Max-Ensuring triggers (mispredictions
      force classic-FA rescales); triggers can only hurt, never help.
    * RASS gain scales with the measured KV reuse (rass/naive load ratio).
    """
    if device not in ENGINE_ANCHORS:
        raise KeyError(f"unknown device {device!r}")
    anchors = ENGINE_ANCHORS[device]
    dev_model = GpuModel() if device == "gpu" else TpuModel()

    reduction = _clamp(m.atten_reduction, 0.0, 0.99)
    if device == "gpu":
        software = dev_model.lp_fa_speedup(reduction, fa2=True)
    else:
        software = dev_model.lp_speedup(reduction) * dev_model.fa_gain

    complexity_ratio = m.complexity["sofa"] / m.complexity["baseline"]
    keep_ratio = _REF_KEEP_FRACTION / max(m.keep_fraction, 1e-6)
    reuse = m.kv_loads["rass"] / max(m.kv_loads["naive"], 1)

    dlzs_mod = _clamp((_REF_COMPLEXITY_RATIO / complexity_ratio) ** 0.6, 0.7, 1.3)
    sads_mod = _clamp(keep_ratio**0.15, 0.8, 1.2)
    assurance_penalty = min(
        1.0, (1 + 10 * _REF_ASSURANCE) / (1 + 10 * m.assurance_rate)
    )
    sufa_mod = _clamp(keep_ratio**0.2, 0.8, 1.2) * assurance_penalty
    rass_mod = _clamp((_REF_KV_REUSE / max(reuse, 1e-6)) ** 0.25, 0.8, 1.25)

    return GainBreakdown(
        device=device,
        software=software,
        dlzs=anchors["dlzs"] * dlzs_mod,
        sads=anchors["sads"] * sads_mod,
        sufa=anchors["sufa"] * sufa_mod,
        rass=anchors["rass"] * rass_mod,
    )


#: Calibrated GPU-side dense energy efficiency on attention workloads,
#: GOPS/W.  Chosen so the suite-GeoMean SOFA-vs-A100 energy-efficiency gain
#: lands at the paper's 71.5x at 2% loss given SOFA's 7183 GOPS/W device
#: efficiency (Table II).
GPU_ATTENTION_GOPS_PER_W = 100.0
SOFA_DEVICE_GOPS_PER_W = 7183.0


def energy_efficiency_gain(m: CaseMeasurement, device: str = "gpu") -> float:
    """SOFA-vs-device energy-efficiency ratio for one benchmark case.

    SOFA's device efficiency scales with the workload's complexity reduction
    relative to the 2%-loss anchor (more retained work = lower effective
    GOPS/W); the device side is the calibrated dense constant.
    """
    gains = case_gains(m, device)
    anchor_total = case_total_at_anchor(device)
    sofa_eff = SOFA_DEVICE_GOPS_PER_W * (gains.total / anchor_total)
    return sofa_eff / GPU_ATTENTION_GOPS_PER_W


def case_total_at_anchor(device: str) -> float:
    """The gain chain's total at the anchor point (normalization constant)."""
    anchors = ENGINE_ANCHORS[device]
    dev_model = GpuModel() if device == "gpu" else TpuModel()
    if device == "gpu":
        software = dev_model.lp_fa_speedup(_REF_ATTEN_REDUCTION, fa2=True)
    else:
        software = dev_model.lp_speedup(_REF_ATTEN_REDUCTION) * dev_model.fa_gain
    hw = anchors["dlzs"] * anchors["sads"] * anchors["sufa"] * anchors["rass"]
    return software * hw
