"""Fig. 18: computation reduction by LP prediction at 0/1/2% loss budgets.

For every benchmark and loss budget, report the fractional computation
reduction of (a) the attention part alone and (b) QKV+attention combined
(on-demand KV generation credits the QKV side).  Paper averages:
attention 81.3%/87.7%/92.6%, QKV+attention 56.8%/62.6%/67.4% at 0/1/2% loss.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.experiments.suite import measure_case, suite_cases

LOSS_BUDGETS = (0.0, 1.0, 2.0)


def run(quick: bool = False) -> ExperimentResult:
    rows = []
    agg: dict[float, dict[str, list[float]]] = {
        b: {"atten": [], "qkv_atten": []} for b in LOSS_BUDGETS
    }
    for case in suite_cases(quick=quick):
        cells = [case.name]
        for budget in LOSS_BUDGETS:
            m = measure_case(case.name, budget)
            agg[budget]["atten"].append(m.atten_reduction)
            agg[budget]["qkv_atten"].append(m.qkv_atten_reduction)
            cells.extend([m.atten_reduction * 100, m.qkv_atten_reduction * 100])
        rows.append(tuple(cells))
    mean_cells = ["MEAN"]
    headline = {}
    for budget in LOSS_BUDGETS:
        a = float(np.mean(agg[budget]["atten"])) * 100
        qa = float(np.mean(agg[budget]["qkv_atten"])) * 100
        mean_cells.extend([a, qa])
        headline[f"atten_reduction_pct_loss{budget:g}"] = a
        headline[f"qkv_atten_reduction_pct_loss{budget:g}"] = qa
    rows.append(tuple(mean_cells))
    return ExperimentResult(
        experiment_id="fig18",
        title="Fig. 18: LP computation reduction [attention, QKV+attention] per loss budget",
        headers=[
            "benchmark",
            "atten%@0", "qkv+a%@0",
            "atten%@1", "qkv+a%@1",
            "atten%@2", "qkv+a%@2",
        ],
        rows=rows,
        formats=[None, ".1f", ".1f", ".1f", ".1f", ".1f", ".1f"],
        headline=headline,
    )
