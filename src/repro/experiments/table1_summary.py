"""Table I: qualitative optimization coverage of SOTA Transformer accelerators.

Which of the five optimization axes (QKV compute, attention compute, QKV
memory, attention memory, cross-stage coordination) each design covers; SOFA
is the only one covering all five.
"""

from __future__ import annotations

from repro.baselines.specs import table_i_rows
from repro.experiments.harness import ExperimentResult


def _mark(flag: bool) -> str:
    return "yes" if flag else "-"


def run(quick: bool = False) -> ExperimentResult:
    rows = []
    full_coverage = 0
    for name, qkv_c, att_c, qkv_m, att_m, cross in table_i_rows():
        rows.append(
            (name, _mark(qkv_c), _mark(att_c), _mark(qkv_m), _mark(att_m), _mark(cross))
        )
        if all((qkv_c, att_c, qkv_m, att_m, cross)):
            full_coverage += 1
    return ExperimentResult(
        experiment_id="table1",
        title="Table I: optimization coverage of SOTA accelerators",
        headers=["accelerator", "qkv-comp", "attn-comp", "qkv-mem", "attn-mem", "cross-stage"],
        rows=rows,
        headline={"designs_covering_all_axes": float(full_coverage)},
    )
