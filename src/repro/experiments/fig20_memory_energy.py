"""Fig. 20: memory-access reduction and energy-efficiency gain.

Panel (a): DRAM traffic of (vanilla LP) vs (LP+RASS) vs (full SOFA with
SU-FA + tiled pipeline dataflow), normalized to vanilla LP.  Paper: RASS
alone removes ~23%, the full stack ~79%.  Panel (b): energy-efficiency gain
over the A100 at 0/1/2% loss (paper GeoMean: 49.8x / 57.6x / 71.5x).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.gains import energy_efficiency_gain
from repro.experiments.harness import ExperimentResult
from repro.experiments.suite import geomean, measure_case, suite_cases

LOSS_BUDGETS = (0.0, 1.0, 2.0)
MEM_LOSS_BUDGET = 2.0


def run(quick: bool = False) -> ExperimentResult:
    rows = []
    rass_reductions = []
    sofa_reductions = []
    eff_by_budget: dict[float, list[float]] = {b: [] for b in LOSS_BUDGETS}
    for case in suite_cases(quick=quick):
        m = measure_case(case.name, MEM_LOSS_BUDGET)
        vanilla = m.mem_bytes["vanilla_lp"]
        rass_red = 1 - m.mem_bytes["lp_rass"] / vanilla
        sofa_red = 1 - m.mem_bytes["sofa"] / vanilla
        rass_reductions.append(rass_red)
        sofa_reductions.append(sofa_red)
        effs = []
        for budget in LOSS_BUDGETS:
            mb = measure_case(case.name, budget)
            gain = energy_efficiency_gain(mb, "gpu")
            eff_by_budget[budget].append(gain)
            effs.append(gain)
        rows.append(
            (case.name, rass_red * 100, sofa_red * 100, effs[0], effs[1], effs[2])
        )
    gm = {b: geomean(eff_by_budget[b]) for b in LOSS_BUDGETS}
    rows.append(
        (
            "MEAN/GEOMEAN",
            float(np.mean(rass_reductions)) * 100,
            float(np.mean(sofa_reductions)) * 100,
            gm[0.0], gm[1.0], gm[2.0],
        )
    )
    return ExperimentResult(
        experiment_id="fig20",
        title="Fig. 20: memory-access reduction (vs vanilla LP) and energy gain vs A100",
        headers=[
            "benchmark", "rass_mem_red%", "sofa_mem_red%",
            "energy_gain@0", "energy_gain@1", "energy_gain@2",
        ],
        rows=rows,
        formats=[None, ".1f", ".1f", ".1f", ".1f", ".1f"],
        headline={
            "rass_memory_reduction_pct": float(np.mean(rass_reductions)) * 100,
            "sofa_memory_reduction_pct": float(np.mean(sofa_reductions)) * 100,
            "energy_gain_loss0": gm[0.0],
            "energy_gain_loss1": gm[1.0],
            "energy_gain_loss2": gm[2.0],
        },
    )
