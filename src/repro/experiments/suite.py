"""Shared 20-benchmark suite measurement used by the Fig. 17-21 experiments.

One :func:`measure_case` call runs a benchmark workload through four stacked
configurations at a given accuracy-loss budget, measuring *from the
functional implementations* (not closed forms):

* ``baseline``   - 4-bit multiplication prediction + vanilla full-row
  (hardware bitonic) sorting + FA-2 formal compute over the selected keys.
* ``dlzs``       - DLZS prediction replaces the 4-bit multiplies.
* ``dlzs_sads``  - SADS distributed per-tile sorting replaces full-row sort.
* ``sofa``       - SU-FA replaces FA-2 in the formal stage (full SOFA).

Workloads are instantiated at a scaled-down geometry (sequence capped at
``max_seq``) for tractability; operation counts are extrapolated to the
benchmark's true (T, S) with per-stage scale factors, which is exact for the
matmul-like stages and conservative for sorting.

Memory-traffic measurements for Fig. 20(a) are produced alongside, covering
the three dataflow variants (vanilla LP, LP+RASS, full SOFA tiled).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.attention.metrics import accuracy_loss_proxy, loss_to_topk_fraction
from repro.attention.reference import masked_attention
from repro.attention.topk import topk_recall
from repro.core.config import SadsConfig
from repro.core.dlzs import DlzsPredictor
from repro.core.sads import SadsSorter
from repro.core.sufa import UpdateOrder, sorted_updating_attention
from repro.hw.scheduler.rass import naive_schedule, rass_schedule
from repro.model.workloads import BENCHMARK_SUITE, BenchmarkCase, make_workload
from repro.numerics.complexity import (
    DEFAULT_WEIGHTS,
    OpCounter,
    OpWeights,
    matmul_ops,
    softmax_ops,
)

#: Bit-width aware weights for the ablation: the baseline's prediction
#: multiplies are 4-bit (cheap), formal multiplies 16-bit.  A 4-bit multiply
#: with its 16-bit accumulation path is charged 2.5 adds (n^2/16 for the
#: array plus accumulator overhead); DLZS shift+sign costs 0.6.
ABLATION_WEIGHTS = OpWeights(mul=16.0, exp=48.0, div=32.0, shift=0.5, lzc=0.5, xor=0.1)
MUL4_COST = 2.5
FA2_TILE_COLS = 16


@dataclass(frozen=True)
class CaseMeasurement:
    """All measured quantities of one (benchmark, loss-budget) evaluation.

    Complexities are normalized totals under :data:`ABLATION_WEIGHTS`,
    extrapolated to the benchmark's published (T, S).  Memory traffic is in
    bytes for the three dataflows.  ``atten_reduction`` /
    ``qkv_atten_reduction`` follow Fig. 18's definition (fraction of dense
    work removed, prediction overhead subtracted).
    """

    case_name: str
    loss_budget_pct: float
    measured_loss_pct: float
    keep_fraction: float
    recall: float
    union_fraction: float
    assurance_rate: float
    complexity: dict[str, float]
    mem_bytes: dict[str, float]
    atten_reduction: float
    qkv_atten_reduction: float
    kv_loads: dict[str, int]


def _prediction_ops_4bit(t: int, s: int, d: int) -> float:
    """Baseline 4-bit multiply prediction complexity (normalized)."""
    return t * s * d * (MUL4_COST + 1.0)  # mul4 + 16-bit accumulate add


def _prediction_ops_dlzs(t: int, s: int, d: int, weights: OpWeights) -> float:
    """DLZS attention-prediction complexity on the same (T x S x D) scope.

    Per product: one shift + one sign XOR + one accumulate add; plus one LZC
    per Q element (the K-estimation phase belongs to the QKV/on-demand
    accounting, identically in the 4-bit baseline, so it cancels out of the
    Fig. 17 ablation which compares *prediction paradigms*).
    """
    products = float(t) * s * d
    return (
        products * (weights.shift + weights.xor + weights.add)
        + float(t) * d * weights.lzc
    )


def _vanilla_sort_ops(t: int, s: int) -> float:
    """Full-row hardware bitonic sorting network comparisons (normalized).

    A sorting network over S elements uses ~S/2 * log2(S) * (log2(S)+1)/2
    comparators; every row of the T parallel queries sorts independently.
    """
    stages = max(int(np.ceil(np.log2(max(s, 2)))), 1)
    per_row = (s / 2) * stages * (stages + 1) / 2
    return float(t) * per_row * DEFAULT_WEIGHTS.compare


def _fa2_formal_ops(t: int, k: int, d: int, weights: OpWeights) -> float:
    """FA-2 formal compute over k selected keys per row (normalized)."""
    ops = matmul_ops(t, d, k)
    ops = ops + matmul_ops(t, k, d)
    ops = ops + softmax_ops(t, k)
    n_tiles = -(-k // FA2_TILE_COLS)
    extra = OpCounter()
    extra.add_op("exp", t * n_tiles)
    extra.add_op("compare", t * n_tiles)
    extra.add_op("mul", t * n_tiles * (1 + d))
    return (ops + extra).normalized(weights)


@lru_cache(maxsize=256)
def measure_case(
    case_name: str,
    loss_budget_pct: float,
    n_queries: int = 32,
    max_seq: int = 512,
    head_dim: int = 64,
    seed: int = 7,
) -> CaseMeasurement:
    """Measure one benchmark case at a loss budget (cached - pure function)."""
    case = next(c for c in BENCHMARK_SUITE if c.name == case_name)
    s_eval = min(case.seq_len, max_seq)
    wl = make_workload(case, n_queries=n_queries, head_dim=head_dim,
                       seq_len=s_eval, seed=seed)
    keep = loss_to_topk_fraction(loss_budget_pct)
    k_count = max(1, int(round(keep * s_eval)))
    t, s, d = wl.n_queries, wl.seq_len, wl.head_dim
    h = wl.tokens.shape[1]

    # ----------------------------------------------------------- prediction
    predictor = DlzsPredictor(wl.wk)
    pred = predictor.predict(wl.tokens, wl.q)
    exact_scores = wl.scores()

    # --------------------------------------------------------------- sorting
    n_tiles = max(s // 64, 2)
    sorter = SadsSorter(SadsConfig(n_segments=n_tiles))
    sads = sorter.select(pred.a_hat, k_count)
    recall = topk_recall(sads.indices, exact_scores, k_count)

    # --------------------------------------------------------------- formal
    k_mat = wl.k
    v_mat = wl.v
    sufa = sorted_updating_attention(
        wl.q, k_mat, v_mat, sads.indices, order=UpdateOrder.DESCENDING,
        max_assurance=True, tile_cols=64,
    )
    dense_out = masked_attention(
        wl.q, k_mat, v_mat, np.ones((t, s), dtype=bool)
    )
    measured_loss = accuracy_loss_proxy(sufa.output, dense_out)
    assurance_rate = sufa.assurance_triggers / max(sads.indices.size, 1)
    union = np.unique(sads.indices)
    union_fraction = union.size / s

    # ------------------------------------------------ complexity (extrapolated)
    t_full, s_full = case.seq_len, case.seq_len  # LTPP: prefill, T = S
    area_scale = (t_full / t) * (s_full / s)
    row_scale = t_full / t
    k_full = max(1, int(round(keep * s_full)))

    pred_dlzs = _prediction_ops_dlzs(t_full, s_full, d, ABLATION_WEIGHTS)
    pred_4bit = _prediction_ops_4bit(t_full, s_full, d)
    sort_vanilla = _vanilla_sort_ops(t_full, s_full)
    sort_sads = sads.ops.normalized(ABLATION_WEIGHTS) * area_scale
    formal_fa2 = _fa2_formal_ops(t_full, k_full, d, ABLATION_WEIGHTS)
    # SU-FA measured ops scale by rows and selected count.
    formal_sufa = sufa.ops.normalized(ABLATION_WEIGHTS) * row_scale * (k_full / k_count)

    complexity = {
        "baseline": pred_4bit + sort_vanilla + formal_fa2,
        "dlzs": pred_dlzs + sort_vanilla + formal_fa2,
        "dlzs_sads": pred_dlzs + sort_sads + formal_fa2,
        "sofa": pred_dlzs + sort_sads + formal_sufa,
    }

    # ------------------------------------------------- Fig. 18 reductions
    dense_atten = (
        matmul_ops(t_full, d, s_full) + matmul_ops(t_full, s_full, d)
    ).normalized(ABLATION_WEIGHTS) + softmax_ops(t_full, s_full).normalized(
        ABLATION_WEIGHTS
    )
    sparse_atten = pred_dlzs + sort_sads + formal_sufa
    atten_reduction = 1.0 - sparse_atten / dense_atten

    qkv_dense = 3 * matmul_ops(s_full, h, d).normalized(ABLATION_WEIGHTS)
    qkv_sparse = (1 + 2 * union_fraction) * matmul_ops(s_full, h, d).normalized(
        ABLATION_WEIGHTS
    )
    qkv_atten_reduction = 1.0 - (sparse_atten + qkv_sparse) / (dense_atten + qkv_dense)

    # --------------------------------------------------- memory dataflows
    requirements = [set(map(int, row)) for row in sads.indices]
    naive = naive_schedule(requirements, capacity=64)
    rass = rass_schedule(requirements, capacity=64)
    kv_scale = (t_full / t) * (k_full / k_count)

    # Common unavoidable streams (identical across dataflows): token input,
    # query input, output write, weight read.
    common_bytes = (
        float(s_full) * h * 1.0
        + float(t_full) * d * 2.0 * 2
        + 2.0 * h * d
    )
    vanilla_bytes = common_bytes + (
        float(t_full) * s_full * 1.0 * 2  # Pre-Atten spill (8-bit, store+load)
        + float(t_full) * k_full * 2.0 * 2  # Atten round trip (16-bit)
        + naive.vector_loads * kv_scale * d * 2.0  # per-query KV fetches
        + 2.0 * s_full * d * 2.0  # full KV generation stream
    )
    rass_bytes = common_bytes + (
        float(t_full) * s_full * 1.0 * 2
        + float(t_full) * k_full * 2.0 * 2
        + rass.vector_loads * kv_scale * d * 2.0
        + 2.0 * s_full * d * 2.0
    )
    sofa_bytes = common_bytes + (
        union_fraction * s_full * h * 1.0  # selected-token re-read (8-bit)
    )
    mem_bytes = {"vanilla_lp": vanilla_bytes, "lp_rass": rass_bytes, "sofa": sofa_bytes}

    return CaseMeasurement(
        case_name=case.name,
        loss_budget_pct=loss_budget_pct,
        measured_loss_pct=measured_loss,
        keep_fraction=keep,
        recall=recall,
        union_fraction=union_fraction,
        assurance_rate=assurance_rate,
        complexity=complexity,
        mem_bytes=mem_bytes,
        atten_reduction=atten_reduction,
        qkv_atten_reduction=qkv_atten_reduction,
        kv_loads={"naive": naive.vector_loads, "rass": rass.vector_loads},
    )


#: Representative subset used by benchmarks (keeps pytest-benchmark fast).
QUICK_SUITE: tuple[str, ...] = (
    "bert-b/sst2",
    "bert-l/squad",
    "gpt2/wikitext2",
    "bloom-1b7/wikitext2",
    "llama-7b/wikitext2",
    "llama-13b/wikitext2",
    "vit-b/imagenet",
    "pvt/imagenet",
)


def suite_cases(quick: bool = False) -> list[BenchmarkCase]:
    """The evaluation suite: all 20 benchmarks or the quick subset."""
    if quick:
        return [c for c in BENCHMARK_SUITE if c.name in QUICK_SUITE]
    return list(BENCHMARK_SUITE)


def geomean(values: list[float]) -> float:
    """Geometric mean (the paper's cross-benchmark aggregate)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0 or (arr <= 0).any():
        raise ValueError("geomean needs positive values")
    return float(np.exp(np.mean(np.log(arr))))
