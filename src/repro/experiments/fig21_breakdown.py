"""Fig. 21: per-engine throughput/energy gain breakdown on GPU and TPU.

Cumulative chains at the 2%-loss GeoMean operating point: dense device ->
SOFA software -> +DLZS engine -> +SADS engine -> +SU-FA engine -> +RASS
unit.  Paper anchors: software 3.16x (GPU) / 2.9x (TPU); engines 1.65/1.28/
1.26/1.14 (GPU) and 1.82/1.52/1.1/1.3 (TPU); energy-side engine gains
2.48x (DLZS), 2.1x (SADS), 1.91x/1.71x (SU-FA+RASS combined ~3.27x).
"""

from __future__ import annotations

from repro.experiments.gains import case_gains
from repro.experiments.harness import ExperimentResult
from repro.experiments.suite import geomean, measure_case, suite_cases

LOSS_BUDGET = 2.0

#: Paper Fig. 21(b): energy-efficiency gain factors of each engine on GPU.
ENERGY_ENGINE_ANCHORS = {"dlzs": 2.48, "sads": 2.1, "sufa": 1.91, "rass": 1.71}


def run(quick: bool = False) -> ExperimentResult:
    per_device: dict[str, dict[str, list[float]]] = {
        dev: {"software": [], "dlzs": [], "sads": [], "sufa": [], "rass": []}
        for dev in ("gpu", "tpu")
    }
    for case in suite_cases(quick=quick):
        m = measure_case(case.name, LOSS_BUDGET)
        for dev in ("gpu", "tpu"):
            g = case_gains(m, dev)
            per_device[dev]["software"].append(g.software)
            per_device[dev]["dlzs"].append(g.dlzs)
            per_device[dev]["sads"].append(g.sads)
            per_device[dev]["sufa"].append(g.sufa)
            per_device[dev]["rass"].append(g.rass)

    rows = []
    headline = {}
    for dev in ("gpu", "tpu"):
        stages = per_device[dev]
        cumulative = 1.0
        sw = geomean(stages["software"])
        cumulative *= sw
        rows.append((dev, "software", sw, cumulative))
        headline[f"{dev}_software_gain"] = sw
        for engine in ("dlzs", "sads", "sufa", "rass"):
            gain = geomean(stages[engine])
            cumulative *= gain
            rows.append((dev, f"+{engine} engine", gain, cumulative))
            headline[f"{dev}_{engine}_gain"] = gain
        headline[f"{dev}_total_gain"] = cumulative
    for engine, anchor in ENERGY_ENGINE_ANCHORS.items():
        rows.append(("gpu-energy", f"+{engine} engine", anchor, 0.0))
    return ExperimentResult(
        experiment_id="fig21",
        title="Fig. 21: cumulative gain breakdown per engine (GeoMean, 2% loss)",
        headers=["device", "stage", "stage_gain", "cumulative_gain"],
        rows=rows,
        formats=[None, None, ".2f", ".2f"],
        headline=headline,
    )
