"""Fig. 8: Type-I/II/III attention-row distribution shares per model.

Classify synthetic attention rows (4096 per model, matching the paper's
methodology) with the Fig. 8 taxonomy.  Shape to reproduce: Type-II
predominates everywhere (>76% average), Type-I is elevated for
vision/autoregressive models (~25%), Type-III is rare and nearly absent for
long-context LLMs - together Type-I+II exceed 95% (the DCE).
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.model.config import get_model
from repro.model.distribution import RowType, classify_rows
from repro.model.workloads import synthetic_scores
from repro.utils.rng import make_rng

MODELS = ("bert-base", "vit-base", "gpt2", "llama-7b")
N_ROWS = 4096
SEQ_LEN = 512


def run(quick: bool = False) -> ExperimentResult:
    n_rows = 512 if quick else N_ROWS
    rows = []
    type12_shares = []
    for name in MODELS:
        cfg = get_model(name)
        rng = make_rng(88)
        scores = synthetic_scores(rng, n_rows, SEQ_LEN, cfg.family)
        shares = classify_rows(scores)
        t1 = shares[RowType.TYPE_I] * 100
        t2 = shares[RowType.TYPE_II] * 100
        t3 = shares[RowType.TYPE_III] * 100
        rows.append((name, n_rows, t1, t2, t3, t1 + t2))
        type12_shares.append(t1 + t2)
    return ExperimentResult(
        experiment_id="fig8",
        title="Fig. 8: attention-row distribution taxonomy shares",
        headers=["model", "rows", "type-I%", "type-II%", "type-III%", "I+II%"],
        rows=rows,
        formats=[None, None, ".1f", ".1f", ".1f", ".1f"],
        headline={
            "mean_type12_share_pct": sum(type12_shares) / len(type12_shares),
            "min_type12_share_pct": min(type12_shares),
        },
    )
