"""CLI: regenerate paper tables/figures.

Usage::

    python -m repro.experiments fig17          # one experiment
    python -m repro.experiments all            # everything
    python -m repro.experiments fig19 --quick  # representative subset
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.harness import REGISTRY, get_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Regenerate SOFA paper experiments")
    parser.add_argument(
        "experiment",
        help=f"experiment id ({', '.join(sorted(REGISTRY))}) or 'all'",
    )
    parser.add_argument(
        "--quick", action="store_true", help="use the representative benchmark subset"
    )
    args = parser.parse_args(argv)

    ids = sorted(REGISTRY) if args.experiment == "all" else [args.experiment]
    for exp_id in ids:
        run = get_experiment(exp_id)
        result = run(quick=args.quick)
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
