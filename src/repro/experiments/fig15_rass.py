"""Fig. 15: RASS reuse-aware scheduling vs naive execution.

Reproduces the paper's worked example (4 queries x 8 KV pairs: naive loads
24 vectors, RASS 16 - a 33% reduction), checks the ID-buffer bitmask table,
and extends the measurement to randomized workload-derived requirement sets
to show the reduction is not an artifact of the example.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.hw.scheduler.rass import (
    FIG15_BUFFER_CAPACITY,
    FIG15_REQUIREMENTS,
    naive_schedule,
    rass_schedule,
)
from repro.model.workloads import make_workload
from repro.attention.topk import exact_topk_indices


def run(quick: bool = False) -> ExperimentResult:
    rows = []
    naive = naive_schedule(FIG15_REQUIREMENTS, FIG15_BUFFER_CAPACITY)
    rass = rass_schedule(FIG15_REQUIREMENTS, FIG15_BUFFER_CAPACITY)
    paper_reduction = 1 - rass.vector_loads / naive.vector_loads
    rows.append(
        ("paper-example", 4, 8, naive.vector_loads, rass.vector_loads, paper_reduction * 100)
    )

    cases = ["bert-b/sst2"] if quick else ["bert-b/sst2", "llama-7b/wikitext2", "vit-b/imagenet"]
    reductions = [paper_reduction]
    for name in cases:
        wl = make_workload(name, n_queries=32, head_dim=64, seq_len=256, seed=11)
        sel = exact_topk_indices(wl.scores(), max(wl.top_k, 8))
        reqs = [set(map(int, row)) for row in sel]
        nv = naive_schedule(reqs, capacity=64)
        rs = rass_schedule(reqs, capacity=64)
        red = 1 - rs.vector_loads / nv.vector_loads
        reductions.append(red)
        rows.append(
            (name, len(reqs), int(np.unique(sel).size), nv.vector_loads,
             rs.vector_loads, red * 100)
        )

    return ExperimentResult(
        experiment_id="fig15",
        title="Fig. 15: naive vs RASS KV vector loads",
        headers=["workload", "queries", "unique_kv", "naive_vectors", "rass_vectors", "reduction%"],
        rows=rows,
        formats=[None, None, None, None, None, ".1f"],
        headline={
            "paper_example_reduction_pct": paper_reduction * 100,
            "mean_reduction_pct": float(np.mean(reductions)) * 100,
        },
    )
