"""FlashAttention-1/2 tiled simulators with operation counting.

Implements the FA-2 inner loop of the paper's Fig. 5(a): Q is split into Tr
row blocks and K/V into Tc column blocks; per (i, j) tile the kernel computes
``S = Q_i K_j^T``, refreshes the running row max ``m``, rescales the running
normalizer ``l`` and output ``O`` by ``exp(m_prev - m)``, and accumulates
``P V_j``.  FA-1 differs by also rescaling through an extra division per tile
(non-lazy normalization), costing additional muls/divs.

Every tile's exponentials, comparisons, multiplications and additions are
tallied in an :class:`~repro.numerics.complexity.OpCounter`; the Fig. 5(b/c)
experiment compares these tallies against the vanilla (untiled) softmax
attention to reproduce the paper's observation that FA's memory savings come
with *growing recomputation* - the repeated ``rowmax`` refresh and rescale
work scales with the number of tiles Tc.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.numerics.complexity import OpCounter, matmul_ops, softmax_ops


class FlashVariant(Enum):
    """Which FlashAttention generation to simulate."""

    FA1 = "fa1"
    FA2 = "fa2"


@dataclass
class FlashResult:
    """Output of a simulated FlashAttention call.

    Attributes
    ----------
    output:
        ``(T, D)`` attention output; bit-equal in float64 terms to dense
        attention (the tiling is exact - a core test pins this).
    ops:
        Primitive-operation tally of the whole computation.
    n_tiles:
        Number of K/V column tiles processed (Tc).
    sram_peak_elements:
        Peak working-set elements held on chip (Q tile + K/V tile + state),
        used by memory-traffic comparisons.
    """

    output: np.ndarray
    ops: OpCounter
    n_tiles: int
    sram_peak_elements: int


def vanilla_attention_ops(t: int, s: int, d: int) -> OpCounter:
    """Op tally of untiled dense attention for a (T,D)x(S,D) problem.

    Scores matmul + full-row softmax + probs @ V.  This is the comparison
    baseline of Fig. 5(b): one max-scan and one exp per element, no repeated
    rescaling.
    """
    ops = matmul_ops(t, d, s)
    ops = ops + softmax_ops(t, s)
    ops = ops + matmul_ops(t, s, d)
    return ops


def flash_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    tile_cols: int = 16,
    variant: FlashVariant = FlashVariant.FA2,
) -> FlashResult:
    """Simulate FlashAttention over K/V column tiles of width ``tile_cols``.

    Parameters
    ----------
    q, k, v:
        ``(T, D)``, ``(S, D)``, ``(S, D)`` float matrices.
    tile_cols:
        Bc, the K/V tile width.  ``Tc = ceil(S / Bc)``.
    variant:
        FA1 rescales ``O`` through an explicit division each tile; FA2 defers
        normalization to a single epilogue division (fewer ops, same result).
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    t, d = q.shape
    s = k.shape[0]
    if tile_cols < 1:
        raise ValueError("tile_cols must be >= 1")
    if k.shape != (s, d) or v.shape[0] != s:
        raise ValueError("K/V shapes inconsistent with Q")

    scale = 1.0 / np.sqrt(d)
    n_tiles = int(np.ceil(s / tile_cols))
    ops = OpCounter()

    m = np.full(t, -np.inf)
    l = np.zeros(t)
    o = np.zeros((t, v.shape[1]))

    for j in range(n_tiles):
        lo, hi = j * tile_cols, min((j + 1) * tile_cols, s)
        width = hi - lo
        s_tile = (q @ k[lo:hi].T) * scale  # (T, width)
        ops = ops + matmul_ops(t, d, width)

        tile_max = s_tile.max(axis=1)
        ops.add_op("compare", t * max(width - 1, 0))  # rowmax within tile
        new_m = np.maximum(m, tile_max)
        ops.add_op("compare", t)  # refresh running max vs previous

        p = np.exp(s_tile - new_m[:, None])
        ops.add_op("exp", t * width)
        correction = np.exp(m - new_m)
        ops.add_op("exp", t)  # the per-tile rescale exponential
        np.nan_to_num(correction, copy=False, nan=0.0)  # first tile: m was -inf

        l = l * correction + p.sum(axis=1)
        ops.add_op("mul", t)
        ops.add_op("add", t * width)

        o = o * correction[:, None] + p @ v[lo:hi]
        ops.add_op("mul", t * v.shape[1])  # rescale O
        ops = ops + matmul_ops(t, width, v.shape[1])
        ops.add_op("add", t * v.shape[1])

        if variant is FlashVariant.FA1:
            # FA-1 keeps O normalized each step: an extra divide per element.
            ops.add_op("div", t * v.shape[1])
        m = new_m

    o = o / l[:, None]
    ops.add_op("div", t * v.shape[1])

    sram_peak = t * d + 2 * tile_cols * d + t * (v.shape[1] + 2)
    return FlashResult(output=o, ops=ops, n_tiles=n_tiles, sram_peak_elements=sram_peak)


def flash_extra_ops_vs_vanilla(
    t: int, s: int, d: int, tile_cols: int
) -> dict[str, float]:
    """Closed-form extra exp/compare/mul ops of FA-2 over vanilla (Fig. 5(b)).

    Derivation: per K/V tile FA-2 performs one rescale exponential and
    ``1 + D`` rescale multiplications per query row beyond what the vanilla
    single-pass softmax needs - with Tc tiles that is ``T * Tc`` extra exps
    and ``T * Tc * (1 + D)`` extra muls.  Comparison work only grows by the
    final cross-tile max refresh per row (the within-tile rowmax scans sum
    to the same ``S - Tc`` comparisons vanilla pays minus tile boundaries,
    plus ``Tc`` refreshes - net ``+T``).  The simulator's counters match
    this formula exactly (tested).
    """
    n_tiles = int(np.ceil(s / tile_cols))
    return {
        "extra_exp": float(t * n_tiles),
        "extra_compare": float(t),
        "extra_mul": float(t * n_tiles * (1 + d)),
    }
