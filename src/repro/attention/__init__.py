"""Attention substrate: dense reference, FlashAttention sims, sparse baseline.

* :mod:`repro.attention.reference` - exact dense attention (golden model).
* :mod:`repro.attention.flash` - FlashAttention-1/2 tiled simulators with
  per-operation counting; used both as a numerical baseline for SU-FA and to
  regenerate the Fig. 5 op-growth analysis.
* :mod:`repro.attention.dynamic_sparse` - the classic 3-stage dynamic
  sparsity baseline with whole-row processing (pre-compute -> full-row top-k
  -> formal compute), including its DRAM traffic accounting.
* :mod:`repro.attention.topk` - top-k mask utilities shared by all sparse
  paths.
* :mod:`repro.attention.metrics` - fidelity metrics mapping sparse outputs to
  the paper's "accuracy loss" budget.
"""

from repro.attention.reference import dense_attention, masked_attention
from repro.attention.flash import flash_attention, FlashVariant
from repro.attention.dynamic_sparse import dynamic_sparse_attention
from repro.attention.topk import exact_topk_indices, topk_mask, topk_recall
from repro.attention.metrics import output_relative_error, accuracy_loss_proxy

__all__ = [
    "dense_attention",
    "masked_attention",
    "flash_attention",
    "FlashVariant",
    "dynamic_sparse_attention",
    "exact_topk_indices",
    "topk_mask",
    "topk_recall",
    "output_relative_error",
    "accuracy_loss_proxy",
]
