"""Top-k selection utilities shared by every sparse attention path.

Dynamic-sparsity accelerators reduce attention to the k most important keys
per query row.  These helpers provide the exact selection (the quality
target SADS is measured against), mask construction, and recall metrics.
"""

from __future__ import annotations

import numpy as np


def exact_topk_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k largest entries per row, sorted by descending score.

    Returns an ``(T, k)`` int array.  Ties broken by lower index first (in
    line with a deterministic hardware comparator tree).
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError("scores must be 2-D (rows x keys)")
    t, s = scores.shape
    if not 1 <= k <= s:
        raise ValueError(f"k={k} out of range for row length {s}")
    # lexsort on (-score, index): stable deterministic tie-break.
    idx = np.argsort(-scores, axis=1, kind="stable")[:, :k]
    return idx.astype(np.int64)


def topk_mask(scores: np.ndarray, k: int) -> np.ndarray:
    """Boolean ``(T, S)`` mask selecting the exact per-row top-k."""
    scores = np.asarray(scores, dtype=np.float64)
    idx = exact_topk_indices(scores, k)
    mask = np.zeros(scores.shape, dtype=bool)
    np.put_along_axis(mask, idx, True, axis=1)
    return mask


def indices_to_mask(indices: np.ndarray, row_len: int) -> np.ndarray:
    """Convert per-row index lists (``(T, k)``) into a boolean mask."""
    indices = np.asarray(indices, dtype=np.int64)
    if indices.ndim != 2:
        raise ValueError("indices must be 2-D")
    if indices.size and (indices.min() < 0 or indices.max() >= row_len):
        raise ValueError("index out of range")
    mask = np.zeros((indices.shape[0], row_len), dtype=bool)
    np.put_along_axis(mask, indices, True, axis=1)
    return mask


def topk_recall(selected: np.ndarray, scores: np.ndarray, k: int) -> float:
    """Fraction of the exact top-k that an approximate selection captured.

    ``selected`` is a boolean mask or an index array; recall is averaged over
    rows.  This is the SADS quality metric: the paper argues DCE keeps it
    near 1 for Type-I/II dominated workloads.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if selected.dtype != bool:
        selected = indices_to_mask(selected, scores.shape[1])
    truth = topk_mask(scores, k)
    hits = np.logical_and(selected, truth).sum(axis=1)
    return float(np.mean(hits / k))


def retained_softmax_mass(selected: np.ndarray, scores: np.ndarray) -> float:
    """Mean softmax probability mass captured by the selected positions.

    A selection can miss exact top-k members yet retain nearly all mass when
    the missed members tie with captured ones - this is the quantity that
    actually drives output fidelity, so metrics report both.
    """
    from repro.numerics.softmax import softmax

    scores = np.asarray(scores, dtype=np.float64)
    if selected.dtype != bool:
        selected = indices_to_mask(selected, scores.shape[1])
    probs = softmax(scores, axis=-1)
    return float(np.mean(np.sum(probs * selected, axis=1)))
