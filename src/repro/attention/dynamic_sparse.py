"""The classic whole-row dynamic-sparsity baseline (pre-SOFA workflow).

This is the three-stage pipeline the paper's Fig. 2 criticizes:

1. **Pre-compute** - estimate the attention matrix at low precision (we use a
   4-bit quantized matmul, matching the paper's baseline assumption).
2. **Top-k sort** - full-row top-k over each S-long row.  Because the sort
   needs the *whole* row, the Pre-Atten matrix must be materialized; when it
   exceeds SRAM it spills to DRAM and is read back row-wise.
3. **Formal compute** - high-precision attention over the selected pairs,
   again materializing the Atten matrix row-wise.

The DRAM traffic bookkeeping implements that "whole-row-processing" cost so
Fig. 20(a)'s memory-access comparison has a concrete baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attention.reference import attention_scores, masked_attention
from repro.attention.topk import exact_topk_indices, indices_to_mask
from repro.numerics.complexity import OpCounter, matmul_ops, softmax_ops
from repro.numerics.fixed_point import quantize


@dataclass
class SparseBaselineResult:
    """Output and cost accounting of the whole-row dynamic-sparsity baseline.

    Attributes
    ----------
    output:
        ``(T, D)`` sparse attention output.
    selected:
        ``(T, k)`` chosen key indices per query.
    ops:
        Operation tally across all three stages.
    dram_bytes:
        Off-chip traffic in bytes: spills/reloads of Pre-Atten and Atten plus
        K/V and output streams.
    sram_bytes_needed:
        Working set a spill-free execution would need (the paper's 5 MB for
        T=512, S=2048 example).
    """

    output: np.ndarray
    selected: np.ndarray
    ops: OpCounter
    dram_bytes: float
    sram_bytes_needed: float


def dynamic_sparse_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    top_k: int,
    sram_bytes: float = 2 * 2**20,
    pred_bits: int = 4,
    formal_bytes_per_elt: int = 2,
) -> SparseBaselineResult:
    """Run the classic 3-stage dynamic sparsity flow with cost accounting.

    Parameters
    ----------
    q, k, v:
        Formal-precision inputs: ``(T, D)``, ``(S, D)``, ``(S, D)``.
    top_k:
        Keys kept per query row.
    sram_bytes:
        On-chip capacity; the Pre-Atten/Atten matrices spill to DRAM when the
        row-block working set exceeds it (paper assumes 2 MB for Fig. 3).
    pred_bits:
        Pre-compute stage precision (the paper's baseline uses 4-bit).
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    t, d = q.shape
    s = k.shape[0]

    ops = OpCounter()

    # Stage 1: low-precision prediction of the full (T, S) Pre-Atten matrix.
    q_q = quantize(q, pred_bits)
    k_q = quantize(k, pred_bits)
    pre_atten = (q_q.values @ k_q.values.T).astype(np.float64) * (q_q.scale * k_q.scale)
    ops = ops + matmul_ops(t, d, s)

    # Stage 2: full-row top-k. A hardware sorter scans each row once per
    # selected element (selection-style network): ~k*S comparisons per row.
    selected = exact_topk_indices(pre_atten, top_k)
    ops.add_op("compare", float(t) * top_k * s)

    # Stage 3: formal high-precision attention on the selected pairs.
    mask = indices_to_mask(selected, s)
    output = masked_attention(q, k, v, mask)
    ops = ops + matmul_ops(t, d, top_k)
    ops = ops + softmax_ops(t, top_k)
    ops = ops + matmul_ops(t, top_k, v.shape[1])

    # DRAM accounting: the Pre-Atten matrix is produced column-block by
    # column-block (K streamed), but consumed row-wise by the sorter, so when
    # it exceeds SRAM it must round-trip DRAM; likewise the Atten matrix
    # between softmax and the PV matmul.
    pred_elt = max(pred_bits // 8, 1)
    pre_atten_bytes = float(t) * s * pred_elt
    atten_bytes = float(t) * top_k * formal_bytes_per_elt
    dram = 0.0
    working = pre_atten_bytes + atten_bytes
    if working > sram_bytes:
        dram += 2 * pre_atten_bytes  # store then reload row-wise
        dram += 2 * atten_bytes
    # K/V streams: prediction reads all K once; formal reads selected K and V.
    dram += float(s) * d * pred_elt
    unique_cols = np.unique(selected)
    dram += 2.0 * unique_cols.size * d * formal_bytes_per_elt
    dram += float(t) * v.shape[1] * formal_bytes_per_elt  # output write

    return SparseBaselineResult(
        output=output,
        selected=selected,
        ops=ops,
        dram_bytes=dram,
        sram_bytes_needed=working,
    )


def scores_for_prediction(q: np.ndarray, k: np.ndarray, bits: int) -> np.ndarray:
    """Low-precision score estimate used by ablations (shared helper)."""
    q_q = quantize(np.asarray(q, dtype=np.float64), bits)
    k_q = quantize(np.asarray(k, dtype=np.float64), bits)
    return (q_q.values @ k_q.values.T).astype(np.float64) * (q_q.scale * k_q.scale)


def prediction_rank_fidelity(q: np.ndarray, k: np.ndarray, bits: int, top_k: int) -> float:
    """Recall of low-precision prediction's top-k vs exact scores.

    Convenience metric for comparing INT-k prediction against DLZS.
    """
    from repro.attention.topk import topk_recall

    exact = attention_scores(q, k)
    approx = scores_for_prediction(q, k, bits)
    sel = exact_topk_indices(approx, top_k)
    return topk_recall(sel, exact, top_k)
