"""Fidelity metrics mapping sparse attention outputs to an accuracy budget.

The paper reports computation reduction *at fixed end-task accuracy loss*
(0%/1%/2%).  Without the original checkpoints we use an output-fidelity proxy
(DESIGN.md substitution table): the mean relative L2 error between the sparse
and dense attention outputs, which is monotone in how much softmax mass the
selection dropped.  The mapping constant is chosen so that the paper's
operating points (top-k around 10-25% of tokens) land at proxy losses around
0-2%, matching Sec. V-B's reported sparsity/accuracy pairs.
"""

from __future__ import annotations

import numpy as np

#: Proxy calibration: accuracy-loss percent per unit mean relative error.
#: With this constant, retaining ~99.5% of softmax mass (typical for top-20%
#: on Type-II rows) maps to <1% loss, mirroring the paper's operating points.
LOSS_PER_RELATIVE_ERROR = 25.0


def output_relative_error(approx: np.ndarray, exact: np.ndarray) -> float:
    """Mean per-row relative L2 error ``||approx - exact|| / ||exact||``."""
    approx = np.asarray(approx, dtype=np.float64)
    exact = np.asarray(exact, dtype=np.float64)
    if approx.shape != exact.shape:
        raise ValueError(f"shape mismatch {approx.shape} vs {exact.shape}")
    num = np.linalg.norm(approx - exact, axis=-1)
    den = np.linalg.norm(exact, axis=-1)
    den = np.where(den == 0, 1.0, den)
    return float(np.mean(num / den))


def accuracy_loss_proxy(approx: np.ndarray, exact: np.ndarray) -> float:
    """Map output error to an accuracy-loss percentage (0 = lossless)."""
    return LOSS_PER_RELATIVE_ERROR * output_relative_error(approx, exact)


def kl_divergence_rows(p_scores: np.ndarray, q_scores: np.ndarray) -> float:
    """Mean KL(softmax(p) || softmax(q)) across rows; a sharper fidelity lens."""
    from repro.numerics.softmax import softmax

    p = softmax(np.asarray(p_scores, dtype=np.float64), axis=-1)
    q = softmax(np.asarray(q_scores, dtype=np.float64), axis=-1)
    eps = 1e-12
    return float(np.mean(np.sum(p * (np.log(p + eps) - np.log(q + eps)), axis=-1)))


def loss_to_topk_fraction(loss_budget_pct: float) -> float:
    """The paper's loss-budget -> top-k fraction operating curve.

    Interpolates the Sec. V-B operating points implied by the reported
    computation reductions (81.3%/87.7%/92.6% attention reduction at
    0%/1%/2% loss after fine-tuning): 0% loss keeps ~18% of tokens, 1%
    ~12%, 2% ~7.5%.  Used when an experiment needs "the top-k the paper
    would have used at this loss tolerance".
    """
    pts_loss = np.array([0.0, 1.0, 2.0])
    pts_keep = np.array([0.18, 0.12, 0.075])
    if loss_budget_pct < 0:
        raise ValueError("loss budget cannot be negative")
    return float(np.interp(loss_budget_pct, pts_loss, pts_keep))
