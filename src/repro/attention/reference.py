"""Exact dense and masked attention references.

These are the golden models: every tiled, sparse or log-domain variant in the
repository is validated against :func:`dense_attention` (for exact paths) or
:func:`masked_attention` (for top-k restricted paths).
"""

from __future__ import annotations

import numpy as np

from repro.numerics.softmax import softmax


def attention_scores(q: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Scaled scores ``Q K^T / sqrt(d)`` for ``q``: (T, D), ``k``: (S, D)."""
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    if q.ndim != 2 or k.ndim != 2 or q.shape[1] != k.shape[1]:
        raise ValueError(f"incompatible shapes {q.shape} x {k.shape}")
    return q @ k.T / np.sqrt(q.shape[1])


def dense_attention(q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Exact ``softmax(QK^T/sqrt(d)) V``."""
    scores = attention_scores(q, k)
    if v.shape[0] != k.shape[0]:
        raise ValueError("V rows must match K rows")
    return softmax(scores, axis=-1) @ np.asarray(v, dtype=np.float64)


def masked_attention(
    q: np.ndarray, k: np.ndarray, v: np.ndarray, mask: np.ndarray
) -> np.ndarray:
    """Attention restricted to ``mask`` (bool, shape (T, S)): the top-k target.

    Unselected positions receive -inf before softmax, i.e. exactly the
    computation a dynamic-sparsity accelerator aims to produce.  Rows with an
    empty mask are rejected - a sparse attention with no selected keys is a
    configuration bug, not a numerical corner.
    """
    scores = attention_scores(q, k)
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != scores.shape:
        raise ValueError(f"mask shape {mask.shape} != scores shape {scores.shape}")
    if not mask.any(axis=1).all():
        raise ValueError("every query row must select at least one key")
    neg = np.where(mask, scores, -np.inf)
    return softmax(neg, axis=-1) @ np.asarray(v, dtype=np.float64)
