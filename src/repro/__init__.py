"""SOFA reproduction: compute-memory optimized sparsity acceleration via
cross-stage coordinated tiling (MICRO 2024).

The package is organised as a stack of substrates topped by the paper's
contribution:

``repro.numerics``
    Fixed-point arithmetic, leading-zero counting circuits, softmax references
    and the arithmetic-complexity model used for every operation count.
``repro.model``
    A numpy Transformer substrate: model configurations, layers, a
    FLOPs/bytes profiler and synthetic attention workload generators.
``repro.attention``
    Dense attention, FlashAttention-1/2 simulators with operation counting,
    and the classic whole-row dynamic-sparsity baseline.
``repro.core``
    The SOFA algorithms: DLZS prediction, SADS distributed sorting, SU-FA
    sorted-updating FlashAttention, the cross-stage tiled pipeline and the
    Bayesian-optimisation design-space exploration.
``repro.kernels``
    Interchangeable implementations of the SU-FA streaming core behind a
    named registry (``blocked`` tile-vectorized default, ``reference``
    per-key golden model) - bit-for-bit equal, selectable per config,
    engine, cluster, or ``SOFA_SUFA_KERNEL``.
``repro.engine``
    The batched execution layer: a fused multi-head operator bit-identical
    to the per-head pipeline, and a serving frontend with a request queue,
    shape-batching scheduler and per-request futures.
``repro.cluster``
    The sharded serving tier: an ``EngineCluster`` of engine workers
    behind pluggable transports (local processes or socket-framed
    standalone workers across hosts) with pluggable routing,
    cross-request dedup, failure re-routing and opt-in supervision
    (heartbeats, auto-respawn/reconnect) and autoscaling (spawn/retire
    workers from queue-depth and latency signals), plus an
    ``AsyncSofaClient`` for asyncio serving loops.
``repro.gateway``
    The HTTP front door: an asyncio JSON server over ``AsyncSofaClient``
    with per-tenant token-bucket rate limits, a bounded priority queue
    with a deadline-only overbook band, deadline-aware shedding
    (429/503 + Retry-After), ``/metrics`` (merged Prometheus view) and
    ``/healthz`` - responses bit-identical to direct Python calls.
    ``docs/architecture.md`` walks one request through the whole stack.
``repro.obs``
    The telemetry plane: a metrics registry (counters/gauges/latency
    histograms, JSON snapshots and Prometheus text), request-lifecycle
    span tracing with Chrome trace-event export stitched across the
    cluster's process line, and a global switch (``SOFA_TELEMETRY=1``)
    that makes every hook a no-op when off - serving stays bit-identical
    either way.
``repro.hw``
    A cycle-approximate model of the SOFA accelerator: engines, SRAM/DRAM,
    RASS scheduling and area/power accounting.
``repro.baselines``
    Device models (A100 GPU, TPU) and the published SOTA accelerator specs.
``repro.experiments``
    One module per paper table/figure, regenerating its rows.
"""

from repro.cluster import AsyncSofaClient, EngineCluster
from repro.core.config import SofaConfig
from repro.core.dlzs import DlzsPredictor
from repro.core.pipeline import SofaAttention, sofa_attention
from repro.core.sads import SadsSorter
from repro.core.sufa import sorted_updating_attention
from repro.engine import AttentionRequest, BatchedSofaAttention, SofaEngine
from repro.kernels import available_sufa_kernels, get_sufa_kernel, register_sufa_kernel

__version__ = "1.9.0"

__all__ = [
    "SofaConfig",
    "SofaAttention",
    "sofa_attention",
    "DlzsPredictor",
    "SadsSorter",
    "sorted_updating_attention",
    "AsyncSofaClient",
    "BatchedSofaAttention",
    "EngineCluster",
    "SofaEngine",
    "AttentionRequest",
    "available_sufa_kernels",
    "get_sufa_kernel",
    "register_sufa_kernel",
    "__version__",
]
