"""Admission control: token buckets, priority queue, deadline shedding.

Everything here is *pure policy* - no sockets, no asyncio, no wall clock.
Callers pass ``now`` explicitly (the gateway passes ``time.monotonic()``,
tests pass a fake clock), and get back :class:`Decision` verdicts plus
:class:`Ticket` handles, so every admission edge (bucket exhaustion
mid-burst, overbook band, zero-deadline requests, shed-on-pop) is
deterministically testable without a running server.

The policy follows the Tailors observation (see ``PAPERS.md``): a hard
queue cap wastes capacity because admission-time load estimates are
conservative, so the queue *overbooks* past its nominal bound - but only
with requests that carry a deadline and can therefore be shed cheaply at
dispatch time if the optimism was wrong.  Deadline-less requests stop at
the nominal bound: they can never be shed, so every one admitted is a
hard promise.

Order of checks in :meth:`AdmissionController.offer` (each maps to one
HTTP status in the gateway):

1. an already-expired deadline is shed immediately (503 - retrying the
   same request cannot help, but a fresh one with a fresh deadline may);
2. the tenant's token bucket must yield a token (429 + Retry-After:
   exactly when the bucket refills - per-tenant isolation means one
   chatty tenant starves only itself);
3. the bounded queue must have room - nominal room for any request,
   overbook room only for sheddable (deadline-carrying) ones (503 +
   Retry-After when full: the queue is the shared resource).

Tickets pop in ``(priority, arrival)`` order and expired tickets are
shed *at pop time* too: under overload the queue never spends worker
time on a request whose client has already given up.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "AdmissionController",
    "Decision",
    "GatewayConfig",
    "TenantPolicy",
    "Ticket",
    "TokenBucket",
]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, capacity ``burst``.

    Lazy refill (tokens accrue on observation, no timers) and explicit
    clocks keep it exact under a fake clock; :meth:`try_take` never
    blocks - it either takes a token or says how long until one exists.
    """

    def __init__(self, rate: float, burst: float, now: float):
        if rate <= 0 or not math.isfinite(rate):
            raise ValueError("rate must be finite and > 0")
        if burst < 1:
            raise ValueError("burst must be >= 1 token")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)  # a fresh tenant may burst immediately
        self._refilled_at = now

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._refilled_at)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._refilled_at = now

    def try_take(self, now: float) -> float:
        """Take one token if available; returns seconds until one is.

        ``0.0`` means the token was taken (admit); a positive value is
        the exact Retry-After for a 429.
        """
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        """Current (last-refill) token count - observability only."""
        return self._tokens


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's rate limit and scheduling class.

    ``priority`` orders dispatch (lower dispatches first); within one
    priority, arrival order holds.  Rate limits isolate tenants from each
    other; priority decides who waits when the queue is contended.
    """

    rate: float = 100.0  # sustained requests/second
    burst: float = 20.0  # bucket capacity (instantaneous burst headroom)
    priority: int = 1    # lower = dispatched first

    def __post_init__(self) -> None:
        if self.rate <= 0 or not math.isfinite(self.rate):
            raise ValueError("rate must be finite and > 0")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway-level admission knobs.

    ``max_queue`` bounds admitted-but-undispatched requests;
    ``overbook_factor`` opens the Tailors band above it for sheddable
    requests only (``1.0`` disables overbooking).  ``default_deadline_s``
    assigns a deadline budget to requests that did not bring one - set
    it to make *every* request sheddable, or leave ``None`` to let
    deadline-less requests hold their hard-promise semantics.
    """

    max_queue: int = 128
    overbook_factor: float = 1.25
    default_tenant: TenantPolicy = field(default_factory=TenantPolicy)
    tenants: Mapping[str, TenantPolicy] = field(default_factory=dict)
    default_deadline_s: float | None = None
    #: Retry-After for queue-full rejections: half the nominal queue at
    #: the observed drain rate is unknowable here, so a flat hint is
    #: honest - clients with deadlines re-offer with fresh ones anyway.
    queue_full_retry_s: float = 0.1

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.overbook_factor < 1.0:
            raise ValueError("overbook_factor must be >= 1.0")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ValueError("default_deadline_s must be > 0")
        if self.queue_full_retry_s <= 0:
            raise ValueError("queue_full_retry_s must be > 0")

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self.tenants.get(tenant, self.default_tenant)


@dataclass(frozen=True)
class Decision:
    """One admission verdict; maps 1:1 onto the gateway's HTTP reply."""

    admitted: bool
    status: int = 200          # 200 admitted / 429 rate limit / 503 load
    reason: str = ""
    retry_after_s: float | None = None


@dataclass
class Ticket:
    """One admitted request waiting for dispatch."""

    tenant: str
    priority: int
    seq: int
    enqueued_at: float
    deadline: float | None  # absolute clock seconds; None = unsheddable
    payload: Any = None     # the gateway parks its response future here

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


class AdmissionController:
    """Bounded, tenant-aware, deadline-shedding admission queue."""

    def __init__(self, config: GatewayConfig, now: float):
        self.config = config
        self._buckets: dict[str, TokenBucket] = {}
        self._heap: list[tuple[int, int, Ticket]] = []
        self._seq = 0
        self._now0 = now
        # Tallies for the gateway's metrics (the controller itself stays
        # import-light: no repro.obs dependency in the policy layer).
        self.n_offered = 0
        self.n_admitted = 0
        self.n_rate_limited = 0
        self.n_shed_queue = 0
        self.n_shed_deadline = 0

    # ---------------------------------------------------------------- admission
    def offer(
        self,
        tenant: str,
        now: float,
        deadline: float | None = None,
        payload: Any = None,
    ) -> tuple[Decision, Ticket | None]:
        """Run the admission checks for one request.

        ``deadline`` is absolute clock seconds (same clock as ``now``);
        ``None`` falls back to ``config.default_deadline_s`` from now.
        Returns the verdict and, when admitted, the queued ticket.
        """
        self.n_offered += 1
        policy = self.config.policy_for(tenant)
        if deadline is None and self.config.default_deadline_s is not None:
            deadline = now + self.config.default_deadline_s
        if deadline is not None and now >= deadline:
            # A zero (or negative) budget can never be served in time;
            # shedding at the door is the whole point of deadlines.
            self.n_shed_deadline += 1
            return Decision(False, 503, "deadline_expired"), None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(policy.rate, policy.burst, now)
            self._buckets[tenant] = bucket
        wait = bucket.try_take(now)
        if wait > 0.0:
            self.n_rate_limited += 1
            return Decision(False, 429, "rate_limited", retry_after_s=wait), None
        depth = len(self._heap)
        nominal = self.config.max_queue
        overbooked = int(nominal * self.config.overbook_factor)
        if depth >= nominal and (deadline is None or depth >= overbooked):
            self.n_shed_queue += 1
            return (
                Decision(
                    False, 503, "queue_full",
                    retry_after_s=self.config.queue_full_retry_s,
                ),
                None,
            )
        ticket = Ticket(
            tenant=tenant,
            priority=policy.priority,
            seq=self._seq,
            enqueued_at=now,
            deadline=deadline,
            payload=payload,
        )
        self._seq += 1
        heapq.heappush(self._heap, (ticket.priority, ticket.seq, ticket))
        self.n_admitted += 1
        return Decision(True, 200, "admitted"), ticket

    # ----------------------------------------------------------------- dispatch
    def pop(self, now: float) -> tuple[Ticket | None, list[Ticket]]:
        """Next dispatchable ticket plus any shed on the way to it.

        Expired tickets between the heap top and the first live one are
        drained and returned so the caller can fail their futures - a
        full queue of expired work therefore *empties* in one pop call
        instead of hanging dispatch.
        """
        shed: list[Ticket] = []
        while self._heap:
            _, _, ticket = heapq.heappop(self._heap)
            if ticket.expired(now):
                self.n_shed_deadline += 1
                shed.append(ticket)
                continue
            return ticket, shed
        return None, shed

    def drain(self) -> list[Ticket]:
        """Remove and return every queued ticket (gateway shutdown)."""
        tickets = [t for _, _, t in self._heap]
        self._heap.clear()
        return tickets

    @property
    def depth(self) -> int:
        return len(self._heap)
