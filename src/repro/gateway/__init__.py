"""``repro.gateway``: the HTTP front door of the serving stack.

ROADMAP item 4.  Everything below this package speaks Python
(:class:`~repro.engine.serving.SofaEngine` futures,
:class:`~repro.cluster.EngineCluster` sharding,
:class:`~repro.cluster.AsyncSofaClient` coroutines); this package is
where the network starts - an asyncio HTTP/JSON server that admits,
queues, dispatches, and answers requests while holding the repo's two
standing contracts:

* **bit parity** - a gateway response carries exactly the result a
  direct :meth:`~repro.cluster.AsyncSofaClient.submit` of the same
  request produces (floats cross the wire through ``repr``-faithful
  JSON, which round-trips every finite float64);
* **graceful overload** - a saturated deployment answers *fast* with
  429/503 + Retry-After instead of growing its queue without bound
  (``BENCH_gateway.json`` records both behaviors side by side).

The pieces:

:class:`~repro.gateway.admission.AdmissionController`
    Pure admission policy: per-tenant token buckets, priority queue,
    bounded depth with a Tailors-style overbook band for sheddable
    (deadline-carrying) requests, deadline shedding at the door and at
    dispatch.  Fake-clock testable; no I/O.
:class:`~repro.gateway.server.SofaGateway`
    The asyncio HTTP server: ``POST /v1/attention``, ``GET /metrics``
    (merged gateway + telemetry + worker registries, Prometheus text),
    ``GET /healthz`` (supervisor/autoscaler state).
:class:`~repro.gateway.client.GatewayClient`
    Stdlib-only keep-alive HTTP client for tests/benchmarks/examples.

Pairs naturally with ``EngineCluster(autoscaler=...)``: the gateway
sheds what the pool cannot absorb *right now*, the
:class:`~repro.cluster.supervisor.PoolAutoscaler` grows the pool so
less needs shedding a moment later.  ``docs/architecture.md`` walks one
request end-to-end through both.
"""

from repro.gateway.admission import (
    AdmissionController,
    Decision,
    GatewayConfig,
    TenantPolicy,
    Ticket,
    TokenBucket,
)
from repro.gateway.client import GatewayClient
from repro.gateway.server import (
    GatewayError,
    SofaGateway,
    request_from_json,
    result_to_json,
)

__all__ = [
    "AdmissionController",
    "Decision",
    "GatewayClient",
    "GatewayConfig",
    "GatewayError",
    "SofaGateway",
    "TenantPolicy",
    "Ticket",
    "TokenBucket",
    "request_from_json",
    "result_to_json",
]
