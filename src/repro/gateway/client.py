"""GatewayClient: a minimal asyncio HTTP/1.1 client for the gateway.

Tests, benchmarks, and the example all need to speak plain HTTP at
:class:`~repro.gateway.server.SofaGateway` without pulling in an HTTP
library the container may not have; this is the smallest client that
does it honestly - one persistent keep-alive connection, explicit
status/headers/body, JSON helpers for the three endpoints.  It is *not*
a general HTTP client: no chunked encoding, no redirects, no TLS - the
gateway never emits any of those.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

__all__ = ["GatewayClient"]


class GatewayClient:
    """One keep-alive connection to a running gateway."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _connect(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def aclose(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "GatewayClient":
        await self._connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------- HTTP
    async def request(
        self, method: str, path: str, body: bytes | None = None
    ) -> tuple[int, dict[str, str], bytes]:
        """One round-trip; returns ``(status, headers, body)``.

        Reconnects once if the server closed the idle keep-alive
        connection between calls.
        """
        for attempt in (0, 1):
            await self._connect()
            try:
                return await self._round_trip(method, path, body)
            except (ConnectionError, asyncio.IncompleteReadError):
                await self.aclose()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    async def _round_trip(
        self, method: str, path: str, body: bytes | None
    ) -> tuple[int, dict[str, str], bytes]:
        assert self._reader is not None and self._writer is not None
        payload = body or b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Content-Type: application/json\r\n"
            "Connection: keep-alive\r\n\r\n"
        )
        self._writer.write(head.encode("latin-1") + payload)
        await self._writer.drain()
        raw = await self._reader.readuntil(b"\r\n\r\n")
        status_line, *header_lines = raw.decode("latin-1").split("\r\n")
        status = int(status_line.split(" ", 2)[1])
        headers: dict[str, str] = {}
        for line in header_lines:
            if ":" in line:
                key, value = line.split(":", 1)
                headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        response = await self._reader.readexactly(length) if length else b""
        if headers.get("connection") == "close":
            await self.aclose()
        return status, headers, response

    # ------------------------------------------------------------- endpoints
    async def attention(
        self, payload: dict[str, Any]
    ) -> tuple[int, dict[str, str], dict[str, Any]]:
        """POST one attention request; returns (status, headers, body)."""
        status, headers, body = await self.request(
            "POST", "/v1/attention", json.dumps(payload).encode()
        )
        return status, headers, json.loads(body)

    async def metrics(self) -> str:
        status, _, body = await self.request("GET", "/metrics")
        if status != 200:
            raise RuntimeError(f"/metrics returned {status}")
        return body.decode()

    async def healthz(self) -> tuple[int, dict[str, Any]]:
        status, _, body = await self.request("GET", "/healthz")
        return status, json.loads(body)
