"""SofaGateway: the asyncio HTTP/JSON front door over AsyncSofaClient.

This is ROADMAP item 4: the first entry point a *network* client can hit.
One :class:`SofaGateway` owns one :class:`~repro.cluster.AsyncSofaClient`
(over an :class:`~repro.cluster.EngineCluster` in production, a plain
:class:`~repro.engine.serving.SofaEngine` for single-process use) and
serves three endpoints on a raw ``asyncio.start_server`` loop - no HTTP
framework, stdlib only:

``POST /v1/attention``
    One attention request as JSON (nested lists for tensors, optional
    ``tenant`` / ``deadline_ms`` / ``cache_key`` / ``tag``).  The reply
    carries the *exact* result the Python API returns - output tensor,
    selected indices, assurance triggers, op counts - serialized through
    ``repr``-faithful JSON floats, so a gateway response is bit-identical
    to a direct :meth:`AsyncSofaClient.submit` of the same request (the
    differential sweep in ``tests/test_gateway_http.py`` is the proof).
``GET /metrics``
    Prometheus text exposition of the *merged* metrics view: the
    gateway's own always-on registry, the process-wide telemetry
    registry (when ``SOFA_TELEMETRY`` is on), and every cluster worker's
    piggybacked snapshot - one scrape covers the whole deployment (see
    :func:`repro.obs.render_prometheus_snapshot`).
``GET /healthz``
    200 while at least one worker can take traffic, 503 otherwise, with
    the supervisor/autoscaler view (live workers, respawns, scale
    events) as the JSON body.

Request lifecycle (``docs/architecture.md`` walks the full path):
arrival -> :class:`~repro.gateway.admission.AdmissionController` verdict
(429/503 rejections answer immediately, with ``Retry-After``) ->
priority queue -> dispatcher (bounded in-flight) -> ``AsyncSofaClient``
-> worker engine -> JSON reply.  Expired tickets are shed at dispatch
so overload never spends worker time on requests whose clients gave up.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any

import numpy as np

from repro.cluster.aio import AsyncSofaClient
from repro.engine.serving import AttentionRequest, validate_request
from repro.gateway.admission import AdmissionController, GatewayConfig, Ticket
from repro.obs import (
    MetricsRegistry,
    get_telemetry,
    merge_snapshots,
    render_prometheus_snapshot,
)

__all__ = [
    "GatewayError",
    "SofaGateway",
    "request_from_json",
    "result_to_json",
]

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: request body size cap - one head's tensors are small; anything larger
#: is a malformed or abusive payload, not a legitimate request.
MAX_BODY_BYTES = 64 * 1024 * 1024


class GatewayError(Exception):
    """A request failed inside the gateway (shed, shutdown, backend)."""

    def __init__(self, status: int, reason: str):
        super().__init__(reason)
        self.status = status
        self.reason = reason


# ------------------------------------------------------------------ JSON codec
def request_from_json(body: dict[str, Any]) -> AttentionRequest:
    """Build an :class:`AttentionRequest` from a decoded JSON body.

    Tensors arrive as nested lists and become float64 arrays - the same
    dtype the Python API uses - so serving a JSON request is bit-for-bit
    the same computation as serving the equivalent in-process request.
    Raises :class:`ValueError` on missing/malformed fields (-> 400).
    """

    def tensor(name: str, required: bool = True) -> np.ndarray | None:
        value = body.get(name)
        if value is None:
            if required:
                raise ValueError(f"missing tensor field {name!r}")
            return None
        array = np.asarray(value, dtype=np.float64)
        if array.ndim != 2:
            raise ValueError(f"tensor field {name!r} must be 2-D")
        return array

    tag = body.get("tag")
    if tag is not None and not isinstance(tag, str):
        raise ValueError("tag must be a string")
    cache_key = body.get("cache_key")
    if cache_key is not None and not isinstance(cache_key, str):
        # JSON has no tuples; string keys keep cross-client semantics flat.
        raise ValueError("cache_key must be a string")
    return AttentionRequest(
        tokens=tensor("tokens"),
        q=tensor("q"),
        wk=tensor("wk"),
        wv=tensor("wv"),
        k_scale=float(body.get("k_scale", 1.0)),
        v_scale=float(body.get("v_scale", 1.0)),
        v=tensor("v", required=False),
        tag=tag,
        cache_key=cache_key,
    )


def result_to_json(result) -> dict[str, Any]:
    """The response body for one served request.

    ``json.dumps`` renders floats via ``repr``, which round-trips every
    finite float64 exactly - the parity contract survives the wire.
    """
    return {
        "output": result.output.tolist(),
        "selected": result.selected.tolist(),
        "assurance_triggers": int(result.assurance_triggers),
        "ops": {k: v for k, v in result.total_ops},
    }


# --------------------------------------------------------------------- gateway
class SofaGateway:
    """One HTTP front door over one :class:`AsyncSofaClient`.

    The gateway does not own the client's backend: ``stop()`` fails any
    queued tickets and closes the listener, but shutting the cluster
    down stays the caller's job (typically ``async with client:``).

    Parameters
    ----------
    client:
        The serving client to dispatch admitted requests into.
    config:
        Admission policy (:class:`GatewayConfig`); default allows
        everything a small demo needs.
    host / port:
        Listen address; port ``0`` picks a free one (read ``.port``
        after :meth:`start`).
    max_inflight:
        Dispatcher concurrency bound - admitted tickets beyond it wait
        in the priority queue (that queue, not the dispatcher, is the
        backpressure surface).
    """

    def __init__(
        self,
        client: AsyncSofaClient,
        config: GatewayConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 32,
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.client = client
        self.config = config or GatewayConfig()
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self._server: asyncio.AbstractServer | None = None
        self._dispatcher: asyncio.Task | None = None
        self._tasks: set[asyncio.Task] = set()
        self._work = asyncio.Event()
        self._admission = AdmissionController(self.config, time.monotonic())
        # The gateway's own registry is always on (serving metrics are
        # the product here, not a debug aid); /metrics merges it with
        # the SOFA_TELEMETRY plane when that is enabled too.
        self.registry = MetricsRegistry()
        reg = self.registry
        self._c_requests = reg.counter(
            "sofa_gateway_requests_total", "HTTP requests received")
        self._c_completed = reg.counter(
            "sofa_gateway_completed_total", "requests served 200")
        self._c_rate_limited = reg.counter(
            "sofa_gateway_rate_limited_total", "429 rejections")
        self._c_shed_queue = reg.counter(
            "sofa_gateway_shed_queue_total", "503 queue-full rejections")
        self._c_shed_deadline = reg.counter(
            "sofa_gateway_shed_deadline_total",
            "requests shed on an expired deadline (door or queue)")
        self._c_errors = reg.counter(
            "sofa_gateway_errors_total", "backend/codec failures")
        reg.gauge(
            "sofa_gateway_queue_depth", "admitted tickets awaiting dispatch",
            callback=lambda: float(self._admission.depth))
        self._h_latency = reg.histogram(
            "sofa_gateway_request_latency_seconds",
            "arrival to response, admitted requests")

    # --------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        # Let a cluster backend's autoscaler see the admission backlog:
        # max_inflight caps what the cluster observes as in-flight, so
        # without this the pool would never grow past the dispatch cap.
        set_hook = getattr(self.client.backend, "set_queue_depth_hook", None)
        if set_hook is not None:
            set_hook(lambda: self._admission.depth)
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def stop(self) -> None:
        set_hook = getattr(self.client.backend, "set_queue_depth_hook", None)
        if set_hook is not None:
            set_hook(None)
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        for ticket in self._admission.drain():
            self._fail_ticket(ticket, 503, "gateway_shutdown")
        for task in list(self._tasks):
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "SofaGateway":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -------------------------------------------------------------- dispatcher
    async def _dispatch_loop(self) -> None:
        semaphore = asyncio.Semaphore(self.max_inflight)
        while True:
            ticket, shed = self._admission.pop(time.monotonic())
            for expired in shed:
                self._c_shed_deadline.inc()
                self._fail_ticket(expired, 503, "deadline_expired")
            if ticket is None:
                self._work.clear()
                if self._admission.depth == 0:
                    await self._work.wait()
                continue
            await semaphore.acquire()
            task = asyncio.create_task(self._run_ticket(ticket, semaphore))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _run_ticket(
        self, ticket: Ticket, semaphore: asyncio.Semaphore
    ) -> None:
        future, request = ticket.payload
        try:
            result = await self.client.submit(request)
        except Exception as error:  # noqa: BLE001 - reported to the caller
            if not future.done():
                future.set_exception(
                    GatewayError(500, f"backend failure: {error!r}")
                )
        else:
            if not future.done():
                future.set_result(result)
        finally:
            semaphore.release()

    @staticmethod
    def _fail_ticket(ticket: Ticket, status: int, reason: str) -> None:
        future, _ = ticket.payload
        if not future.done():
            future.set_exception(GatewayError(status, reason))

    # ------------------------------------------------------------- HTTP server
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                parsed = await self._read_request(reader)
                if parsed is None:
                    break
                method, path, headers, body = parsed
                status, payload, extra = await self._route(method, path, body)
                keep_alive = headers.get("connection", "keep-alive") != "close"
                await self._write_response(
                    writer, status, payload, extra, keep_alive
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        except asyncio.CancelledError:
            # Loop/server teardown while this connection sat idle; a
            # connection task is a leaf - absorbing the cancel here (and
            # closing below) is its entire shutdown protocol.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError, asyncio.CancelledError):
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return None
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = request_line.split(" ")
        if len(parts) != 3:
            return None
        method, path, _version = parts
        headers: dict[str, str] = {}
        for line in header_lines:
            if ":" in line:
                key, value = line.split(":", 1)
                headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        if length < 0 or length > MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        extra_headers: dict[str, str],
        keep_alive: bool,
    ) -> None:
        text = _STATUS_TEXT.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {text}",
            f"Content-Length: {len(payload)}",
            "Content-Type: "
            + extra_headers.pop("Content-Type", "application/json"),
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        lines += [f"{k}: {v}" for k, v in extra_headers.items()]
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        writer.write(payload)
        await writer.drain()

    # ----------------------------------------------------------------- routing
    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, bytes, dict[str, str]]:
        if path == "/v1/attention":
            if method != "POST":
                return 405, _json_bytes({"error": "POST required"}), {}
            return await self._handle_attention(body)
        if path == "/metrics":
            if method != "GET":
                return 405, _json_bytes({"error": "GET required"}), {}
            return 200, self.render_metrics().encode(), {
                "Content-Type": "text/plain; version=0.0.4",
            }
        if path == "/healthz":
            if method != "GET":
                return 405, _json_bytes({"error": "GET required"}), {}
            status, health = self.health()
            return status, _json_bytes(health), {}
        return 404, _json_bytes({"error": f"no route {path!r}"}), {}

    async def _handle_attention(
        self, body: bytes
    ) -> tuple[int, bytes, dict[str, str]]:
        arrival = time.monotonic()
        self._c_requests.inc()
        try:
            decoded = json.loads(body)
            if not isinstance(decoded, dict):
                raise ValueError("body must be a JSON object")
            request = request_from_json(decoded)
            validate_request(request, self._backend_config())
            deadline_ms = decoded.get("deadline_ms")
            if deadline_ms is not None:
                deadline_ms = float(deadline_ms)
                if deadline_ms < 0 or not np.isfinite(deadline_ms):
                    raise ValueError("deadline_ms must be finite and >= 0")
            tenant = decoded.get("tenant", "default")
            if not isinstance(tenant, str):
                raise ValueError("tenant must be a string")
        except (ValueError, TypeError, KeyError) as error:
            return 400, _json_bytes({"error": str(error)}), {}
        deadline = (
            None if deadline_ms is None else arrival + deadline_ms / 1000.0
        )
        if deadline is not None:
            # The engine's deadline scheduling sees the same budget the
            # gateway sheds against - one deadline, every tier.
            request = AttentionRequest(
                tokens=request.tokens, q=request.q, wk=request.wk,
                wv=request.wv, k_scale=request.k_scale,
                v_scale=request.v_scale, v=request.v, config=request.config,
                tag=request.tag, cache_key=request.cache_key,
                deadline=deadline,
            )
        future = asyncio.get_running_loop().create_future()
        decision, _ticket = self._admission.offer(
            tenant, arrival, deadline=deadline, payload=(future, request)
        )
        if not decision.admitted:
            if decision.status == 429:
                self._c_rate_limited.inc()
            elif decision.reason == "queue_full":
                self._c_shed_queue.inc()
            else:
                self._c_shed_deadline.inc()
            headers = {}
            if decision.retry_after_s is not None:
                headers["Retry-After"] = f"{decision.retry_after_s:.3f}"
            return (
                decision.status,
                _json_bytes({"error": decision.reason}),
                headers,
            )
        self._work.set()
        try:
            result = await future
        except GatewayError as error:
            if error.status >= 500 and error.reason.startswith("backend"):
                self._c_errors.inc()
            return error.status, _json_bytes({"error": error.reason}), {}
        self._h_latency.observe(time.monotonic() - arrival)
        self._c_completed.inc()
        return 200, _json_bytes(result_to_json(result)), {}

    def _backend_config(self):
        return self.client.backend.config

    # -------------------------------------------------------------- observability
    def render_metrics(self) -> str:
        """The merged Prometheus view this gateway's /metrics serves."""
        snapshots = [self.registry.snapshot()]
        telemetry = get_telemetry()
        if telemetry.enabled:
            snapshots.append(telemetry.registry.snapshot())
        stats = getattr(self.client.backend, "stats", None)
        workers = getattr(stats, "workers", None) or []
        for worker in workers:
            if worker.telemetry:
                snapshots.append(worker.telemetry)
        return render_prometheus_snapshot(merge_snapshots(*snapshots))

    def health(self) -> tuple[int, dict[str, Any]]:
        """(status, body) for /healthz: can the backend take traffic?"""
        backend = self.client.backend
        if not hasattr(backend, "live_workers"):
            # A plain SofaEngine runs in-process: if we answered, it serves.
            return 200, {"status": "ok", "backend": "engine"}
        live = backend.live_workers
        stats = backend.stats
        body = {
            "status": "ok" if live else "unavailable",
            "backend": "cluster",
            "transport": stats.transport,
            "live_workers": live,
            "n_workers": stats.n_workers,
            "pending": stats.pending,
            "n_worker_failures": stats.n_worker_failures,
            "n_respawns": stats.n_respawns,
            "n_reconnects": stats.n_reconnects,
            "n_scale_ups": stats.n_scale_ups,
            "n_scale_downs": stats.n_scale_downs,
            "request_p99_s": stats.request_p99_s,
            "queue_depth": self._admission.depth,
        }
        return (200 if live else 503), body


def _json_bytes(payload: dict[str, Any]) -> bytes:
    return json.dumps(payload).encode()
