"""Execution backends for :class:`~repro.engine.serving.SofaEngine`.

The engine's scheduler produces *chunks* - independently executable fused
multi-head pipeline calls.  This module decides how chunks run:

* :class:`SyncExecutor` executes them inline on the calling thread, in
  dispatch order.  This is the default and the reference for determinism.
* :class:`ThreadedExecutor` dispatches chunks onto a shared
  :class:`concurrent.futures.ThreadPoolExecutor`.  NumPy releases the GIL
  inside the fused matmul/ufunc kernels, so chunks overlap there; with the
  tile-blocked SU-FA kernel (:mod:`repro.kernels`) the streaming stage is
  fused ops too, leaving only O(kk / tile_cols) GIL-holding dispatch
  points per chunk.  The net effect remains workload- and host-dependent
  (``BENCH_engine_continuous.json`` records it honestly).
  Because every chunk is a pure function of its own requests (the
  batch-invariant numerics guarantee bit-identical outputs regardless of
  scheduling), thread interleaving cannot change a single result bit - only
  wall-clock time.

Both backends present one method, :meth:`run`, which returns one outcome
per task **in dispatch order**: the task's :class:`BatchRecord`-like return
value on success or the raised exception on failure.  Gathering in dispatch
order is what keeps the engine's statistics and error reporting identical
across backends.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")

#: Names accepted by :func:`make_executor` / ``SofaEngine(backend=...)``.
BACKENDS = ("sync", "threads")


class SyncExecutor:
    """Inline execution on the dispatching thread (the deterministic baseline)."""

    name = "sync"

    def run(self, tasks: Sequence[Callable[[], T]]) -> list[T | Exception]:
        outcomes: list[T | Exception] = []
        for task in tasks:
            try:
                outcomes.append(task())
            except Exception as error:  # noqa: BLE001 - outcome, not control flow
                outcomes.append(error)
        return outcomes

    def shutdown(self) -> None:
        """Nothing to release."""


class ThreadedExecutor:
    """Chunk execution on a shared thread pool with ordered gathering.

    The pool is created lazily on first use and reused across scheduling
    rounds; :meth:`shutdown` releases it.  Running again after a shutdown
    deliberately *revives* the pool (raising would strand futures a caller
    drains after an engine's ``with`` block) - pair every burst of use with
    its own :meth:`shutdown`/context manager if thread lifetime matters.
    ``max_workers=None`` defers to :class:`ThreadPoolExecutor`'s default
    sizing.
    """

    name = "threads"

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="sofa-engine"
            )
        return self._pool

    def run(self, tasks: Sequence[Callable[[], T]]) -> list[T | Exception]:
        if len(tasks) <= 1:
            # One chunk cannot overlap with anything; skip the pool hop.
            return SyncExecutor().run(tasks)
        pool = self._ensure_pool()
        futures = [pool.submit(task) for task in tasks]
        outcomes: list[T | Exception] = []
        for future in futures:  # dispatch order, NOT completion order
            try:
                outcomes.append(future.result())
            except Exception as error:  # noqa: BLE001 - outcome, not control flow
                outcomes.append(error)
        return outcomes

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_executor(
    backend: str, max_workers: int | None = None
) -> SyncExecutor | ThreadedExecutor:
    """Build the named backend (``"sync"`` or ``"threads"``)."""
    if backend == "sync":
        return SyncExecutor()
    if backend == "threads":
        return ThreadedExecutor(max_workers=max_workers)
    raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
