"""Decode-step cache: reuse quantized ``K_hat``/DLZS state across requests.

A decode loop re-submits the *same* attention problem every step with one
more token appended: the token prefix - and therefore the quantized token
codes and the phase-1.1 ``K_hat = tokens @ Wk`` rows derived from it - is
identical to the previous step's.  The accelerator analogue is keeping the
predicted-key SRAM resident between steps instead of re-running the
pre-compute stage over the whole context.

:class:`DecodeStepCache` is a keyed LRU store of per-sequence DLZS state
(:class:`DecodeCacheEntry`).  :class:`~repro.core.dlzs.StackedDlzsPredictor`
consults it inside the batched pipeline: on a **hit** only the newly appended
token rows are quantized and projected; on a **miss** (unknown key, prefix
changed, sequence shrank) the full phase-1.1 runs and the entry is replaced.

Bit-for-bit parity is preserved because reuse is only attempted when it is
*provably* equal to the uncached computation:

* token quantization uses one symmetric per-tensor scale derived from the
  global ``max|x|``; appended rows may only reuse the cached codes when
  their magnitudes stay within the cached maximum (the scale - and hence
  every previously quantized code - is then bit-identical).  A louder new
  token **invalidates** the entry and recomputes everything.
* the raw integer ``K_hat`` rows are exact row-independent int64 matmuls,
  so appending rows never perturbs cached rows.
* the intermediate-width truncation of ``K_hat`` (whose scale also depends
  on a global maximum) is recomputed from the full raw rows every call - it
  is cheap elementwise work, not the matmul the cache exists to skip.

Entries are immutable after insertion (updates replace the entry), so the
store is safe to share with the threaded executor backend: a stale read can
only cost a recompute, never a wrong bit.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable

import numpy as np


@dataclass(frozen=True)
class DecodeCacheEntry:
    """Immutable per-sequence DLZS phase-1.1 state.

    ``tokens`` is the float64 token matrix the entry was built from (the
    prefix-equality witness); ``tok_values`` its quantized int64 codes with
    ``tok_scale`` / ``tok_max_abs`` the per-tensor quantization state, and
    ``key_values`` the raw (pre-truncation) integer ``K_hat`` rows.
    ``quantized`` records whether the float quantization path was taken
    (integer-dtype submissions bypass it and must not mix with float ones).
    """

    tokens: np.ndarray
    tok_values: np.ndarray
    tok_scale: float
    tok_max_abs: float
    key_values: np.ndarray
    quantized: bool

    @property
    def seq_len(self) -> int:
        return self.tokens.shape[0]

    @property
    def nbytes(self) -> int:
        """Resident payload: entries grow with context length, not count."""
        return self.tokens.nbytes + self.tok_values.nbytes + self.key_values.nbytes


@dataclass
class CacheStats:
    """Counters of one :class:`DecodeStepCache` since construction.

    ``hits``/``misses`` count lookups; ``invalidations`` the subset of
    misses where a live entry had to be discarded (prefix changed, sequence
    shrank, or a new token exceeded the cached quantization maximum);
    ``evictions`` LRU pressure drops; ``expirations`` TTL drops of entries
    whose sequence went quiet (abandoned decode sessions that never called
    :meth:`DecodeStepCache.invalidate`).  ``rows_reused``/``rows_appended``
    tally how many phase-1.1 rows hits skipped vs incrementally computed.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0
    expirations: int = 0
    rows_reused: int = 0
    rows_appended: int = 0
    resident_bytes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            invalidations=self.invalidations,
            evictions=self.evictions,
            expirations=self.expirations,
            rows_reused=self.rows_reused,
            rows_appended=self.rows_appended,
            resident_bytes=self.resident_bytes,
        )

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Counter-wise sum (aggregating per-worker caches in a cluster)."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            invalidations=self.invalidations + other.invalidations,
            evictions=self.evictions + other.evictions,
            expirations=self.expirations + other.expirations,
            rows_reused=self.rows_reused + other.rows_reused,
            rows_appended=self.rows_appended + other.rows_appended,
            resident_bytes=self.resident_bytes + other.resident_bytes,
        )


class DecodeStepCache:
    """Bounded LRU store of :class:`DecodeCacheEntry` keyed per sequence.

    Keys are caller-composed hashables; consumers (the DLZS predictor via
    :class:`~repro.engine.batched.BatchedSofaAttention`) namespace the
    user-visible key with the weight/config identity so one store can serve
    many operators without cross-talk.  All methods are thread-safe: the
    threaded executor backend may look up and replace entries concurrently.

    Size ``max_entries`` to cover the *concurrent working set* (e.g.
    ``n_layers * n_heads`` per live decode session): decode scans its keys
    in a fixed order every step, and an LRU smaller than the scan length
    evicts each entry just before its next lookup - every lookup then
    misses and the cache only costs.  The ``evictions`` counter is the
    tell-tale.

    ``ttl_s`` bounds how long an *idle* entry may stay resident: a decode
    session abandoned without :meth:`invalidate` (a dropped connection, a
    crashed caller) would otherwise pin its context-sized payload until
    LRU pressure happens to reach it - which on a large cache may be
    never.  Entries untouched for ``ttl_s`` seconds are dropped lazily on
    the next cache operation (or an explicit :meth:`sweep_expired`) and
    counted as ``expirations`` in :class:`CacheStats`.  ``clock`` is
    injectable for tests and defaults to :func:`time.monotonic`.
    """

    def __init__(
        self,
        max_entries: int = 256,
        max_bytes: int | None = None,
        ttl_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 (or None)")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be > 0 (or None)")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.ttl_s = ttl_s
        self._clock = clock
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, DecodeCacheEntry] = OrderedDict()
        self._last_used: dict[Hashable, float] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _sweep_expired_locked(self, now: float) -> int:
        """Drop idle-past-TTL entries; caller holds the lock.

        LRU order *is* idle order (every touch moves the entry to the
        back), so the scan walks from the front and stops at the first
        still-fresh entry.
        """
        if self.ttl_s is None:
            return 0
        dropped = 0
        while self._entries:
            key = next(iter(self._entries))
            if now - self._last_used[key] <= self.ttl_s:
                break
            entry = self._entries.pop(key)
            del self._last_used[key]
            self.stats.resident_bytes -= entry.nbytes
            self.stats.expirations += 1
            dropped += 1
        return dropped

    def sweep_expired(self) -> int:
        """Explicitly drop idle-past-TTL entries; returns how many."""
        with self._lock:
            return self._sweep_expired_locked(self._clock())

    def get(self, key: Hashable) -> DecodeCacheEntry | None:
        """Return the live entry for ``key`` (marking it recently used)."""
        with self._lock:
            now = self._clock()
            self._sweep_expired_locked(now)
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._last_used[key] = now
            return entry

    def put(self, key: Hashable, entry: DecodeCacheEntry) -> None:
        """Insert/replace the entry for ``key``, evicting LRU overflow.

        Overflow is bounded on entry *count* and - when ``max_bytes`` is set
        - on total resident payload bytes (entries scale with context
        length, so a count bound alone is no byte bound); a single entry
        larger than ``max_bytes`` is still admitted, alone.
        """
        with self._lock:
            now = self._clock()
            self._sweep_expired_locked(now)
            old = self._entries.pop(key, None)
            if old is not None:
                self.stats.resident_bytes -= old.nbytes
            self._entries[key] = entry
            self._last_used[key] = now
            self.stats.resident_bytes += entry.nbytes
            while len(self._entries) > self.max_entries or (
                self.max_bytes is not None
                and self.stats.resident_bytes > self.max_bytes
                and len(self._entries) > 1
            ):
                evicted_key, evicted = self._entries.popitem(last=False)
                del self._last_used[evicted_key]
                self.stats.resident_bytes -= evicted.nbytes
                self.stats.evictions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Explicitly drop one sequence's state (e.g. its session ended)."""
        with self._lock:
            dropped = self._entries.pop(key, None)
            if dropped is not None:
                del self._last_used[key]
                self.stats.resident_bytes -= dropped.nbytes
            return dropped is not None

    def invalidate_prefix(self, prefix: Hashable) -> int:
        """Drop every entry namespaced under ``prefix``.

        Store keys are ``(user_key, config, weight_digest)`` tuples; the
        user key is matched directly, and - because sessions compose user
        keys as ``(session_id, layer, head)`` - a bare session id matches
        every entry of that session.  Returns the number dropped.
        """

        def matches(store_key: Hashable) -> bool:
            if not (isinstance(store_key, tuple) and store_key):
                return False
            user_key = store_key[0]
            if user_key == prefix:
                return True
            return isinstance(user_key, tuple) and bool(user_key) and user_key[0] == prefix

        with self._lock:
            doomed = [k for k in self._entries if matches(k)]
            for k in doomed:
                self.stats.resident_bytes -= self._entries[k].nbytes
                del self._entries[k]
                del self._last_used[k]
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._last_used.clear()
            self.stats.resident_bytes = 0

    # ------------------------------------------------------- counter helpers
    def record_hit(self, reused_rows: int, appended_rows: int) -> None:
        with self._lock:
            self.stats.hits += 1
            self.stats.rows_reused += reused_rows
            self.stats.rows_appended += appended_rows

    def record_miss(self, invalidated: bool) -> None:
        with self._lock:
            self.stats.misses += 1
            if invalidated:
                self.stats.invalidations += 1
