"""Decode-step cache: reuse quantized ``K_hat``/DLZS state across requests.

A decode loop re-submits the *same* attention problem every step with one
more token appended: the token prefix - and therefore the quantized token
codes and the phase-1.1 ``K_hat = tokens @ Wk`` rows derived from it - is
identical to the previous step's.  The accelerator analogue is keeping the
predicted-key SRAM resident between steps instead of re-running the
pre-compute stage over the whole context.

Two stores implement one surface (``get``/``put``/``invalidate``/
``invalidate_prefix``/``sweep_expired``/``clear`` plus the
``record_hit``/``record_miss`` counter hooks), selected through
:func:`make_decode_cache`:

:class:`DecodeStepCache` (``kind="flat"``)
    The original per-sequence LRU: one monolithic
    :class:`DecodeCacheEntry` per key, whole-entry eviction, no
    cross-sequence reuse.  Kept as the reference store (and for callers
    that want its strictly simpler residency model).
:class:`~repro.engine.paged.PagedDecodeCache` (``kind="paged"``, the
    serving default)
    A refcounted fixed-size **block pool**: entries are decomposed into
    ``block_tokens``-row blocks keyed by content hash, so sequences that
    share a token prefix (system prompts under real traffic) share the
    prefix's blocks; divergence is copy-on-write (blocks are immutable -
    a grown or diverged tail becomes new blocks, never a mutation of a
    shared one); cold blocks **spill to disk** under the ``max_bytes``
    RAM budget instead of being dropped, so an entry larger than the
    whole budget is still servable (satisfying lookups from the spill
    tier) rather than silently overshooting residency; a
    ``spill_dir`` + :meth:`~repro.engine.paged.PagedDecodeCache.persist`
    pair lets long-lived sessions survive a process restart.

Consumers are store-blind: :class:`~repro.core.dlzs.StackedDlzsPredictor`
consults the cache inside the batched pipeline - on a **hit** only the
newly appended token rows are quantized and projected; on a **miss**
(unknown key, prefix changed, sequence shrank) the full phase-1.1 runs and
the entry is replaced.

Bit-for-bit parity is preserved because reuse is only attempted when it is
*provably* equal to the uncached computation:

* token quantization uses one symmetric per-tensor scale derived from the
  global ``max|x|``; appended rows may only reuse the cached codes when
  their magnitudes stay within the cached maximum (the scale - and hence
  every previously quantized code - is then bit-identical).  A louder new
  token **invalidates** the entry and recomputes everything.
* the raw integer ``K_hat`` rows are exact row-independent int64 matmuls,
  so appending rows never perturbs cached rows.
* the intermediate-width truncation of ``K_hat`` (whose scale also depends
  on a global maximum) is recomputed from the full raw rows every call - it
  is cheap elementwise work, not the matmul the cache exists to skip.
* the paged store shares blocks **only by content hash over the exact
  bytes** (tokens, quantized codes and ``K_hat`` rows together), so two
  sequences share storage exactly when their per-row state is already
  bit-identical - sharing can never substitute different bits - and the
  spill codec (``.npz``) round-trips arrays bit-exactly.

Entries are immutable after insertion (updates replace the entry), so the
store is safe to share with the threaded executor backend: a stale read can
only cost a recompute, never a wrong bit.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable

from repro.obs import get_telemetry

import numpy as np


@dataclass(frozen=True)
class DecodeCacheEntry:
    """Immutable per-sequence DLZS phase-1.1 state.

    ``tokens`` is the float64 token matrix the entry was built from (the
    prefix-equality witness); ``tok_values`` its quantized int64 codes with
    ``tok_scale`` / ``tok_max_abs`` the per-tensor quantization state, and
    ``key_values`` the raw (pre-truncation) integer ``K_hat`` rows.
    ``quantized`` records whether the float quantization path was taken
    (integer-dtype submissions bypass it and must not mix with float ones).
    """

    tokens: np.ndarray
    tok_values: np.ndarray
    tok_scale: float
    tok_max_abs: float
    key_values: np.ndarray
    quantized: bool

    @property
    def seq_len(self) -> int:
        return self.tokens.shape[0]

    @property
    def nbytes(self) -> int:
        """Resident payload: entries grow with context length, not count."""
        return self.tokens.nbytes + self.tok_values.nbytes + self.key_values.nbytes


@dataclass
class CacheStats:
    """Counters of one :class:`DecodeStepCache` since construction.

    ``hits``/``misses`` count lookups; ``invalidations`` the subset of
    misses where a live entry had to be discarded (prefix changed, sequence
    shrank, or a new token exceeded the cached quantization maximum);
    ``evictions`` LRU pressure drops; ``expirations`` TTL drops of entries
    whose sequence went quiet (abandoned decode sessions that never called
    :meth:`DecodeStepCache.invalidate`).  ``rows_reused``/``rows_appended``
    tally how many phase-1.1 rows hits skipped vs incrementally computed.

    The block-pool gauges describe the paged store
    (:class:`~repro.engine.paged.PagedDecodeCache`; all zero on the flat
    LRU): ``resident_blocks``/``spilled_blocks`` partition the pool by
    tier (RAM vs disk), ``shared_blocks`` counts blocks referenced by more
    than one entry (the prefix-sharing win), ``spilled_bytes`` is the
    payload currently parked on disk, and ``spill_loads`` counts block
    reloads from the spill tier.  ``resident_bytes`` is the *RAM* payload
    for both stores - on the paged store a shared block is counted once
    (that is the honest residency figure sharing buys).
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0
    expirations: int = 0
    rows_reused: int = 0
    rows_appended: int = 0
    resident_bytes: int = 0
    resident_blocks: int = 0
    shared_blocks: int = 0
    spilled_blocks: int = 0
    spilled_bytes: int = 0
    spill_loads: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            invalidations=self.invalidations,
            evictions=self.evictions,
            expirations=self.expirations,
            rows_reused=self.rows_reused,
            rows_appended=self.rows_appended,
            resident_bytes=self.resident_bytes,
            resident_blocks=self.resident_blocks,
            shared_blocks=self.shared_blocks,
            spilled_blocks=self.spilled_blocks,
            spilled_bytes=self.spilled_bytes,
            spill_loads=self.spill_loads,
        )

    def register_metrics(self, registry, prefix: str = "sofa_cache") -> None:
        """Expose every counter field as a callback gauge on ``registry``.

        Weakref-backed (:func:`repro.obs.register_stats_gauges`): a retired
        cache reads 0 instead of being pinned by its telemetry.
        """
        from repro.obs import register_stats_gauges

        register_stats_gauges(
            registry,
            prefix,
            self,
            (
                "hits",
                "misses",
                "invalidations",
                "evictions",
                "expirations",
                "rows_reused",
                "rows_appended",
                "resident_bytes",
                "resident_blocks",
                "shared_blocks",
                "spilled_blocks",
                "spilled_bytes",
                "spill_loads",
            ),
        )

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Counter-wise sum (aggregating per-worker caches in a cluster)."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            invalidations=self.invalidations + other.invalidations,
            evictions=self.evictions + other.evictions,
            expirations=self.expirations + other.expirations,
            rows_reused=self.rows_reused + other.rows_reused,
            rows_appended=self.rows_appended + other.rows_appended,
            resident_bytes=self.resident_bytes + other.resident_bytes,
            resident_blocks=self.resident_blocks + other.resident_blocks,
            shared_blocks=self.shared_blocks + other.shared_blocks,
            spilled_blocks=self.spilled_blocks + other.spilled_blocks,
            spilled_bytes=self.spilled_bytes + other.spilled_bytes,
            spill_loads=self.spill_loads + other.spill_loads,
        )


def prefix_matches(store_key: Hashable, prefix: Hashable) -> bool:
    """Does a stored cache key fall under a caller's invalidation prefix?

    The documented key shapes are:

    * ``(user_key, config, weight_digest)`` tuples as composed by
      :class:`~repro.core.dlzs.StackedDlzsPredictor`, where ``user_key``
      is either a scalar session id or a ``(session_id, ...)`` tuple;
    * scalar (non-tuple) keys written by callers driving the store
      directly - these match when equal to ``prefix``.

    Shared by both cache implementations so ``invalidate_prefix`` agrees
    on what a session id reaches regardless of the store kind.
    """
    if not isinstance(store_key, tuple):
        # Plain-string (or other scalar) session ids used as raw store
        # keys used to fall through the tuple-only matcher and silently
        # invalidate nothing; they are a documented key shape and match
        # on equality.
        return store_key == prefix
    if not store_key:
        return False
    user_key = store_key[0]
    if user_key == prefix:
        return True
    return isinstance(user_key, tuple) and bool(user_key) and user_key[0] == prefix


#: Store kinds accepted by :func:`make_decode_cache`.
CACHE_KINDS = ("paged", "flat")


def make_decode_cache(
    kind: str = "paged",
    max_entries: int = 256,
    max_bytes: int | None = None,
    ttl_s: float | None = None,
    block_tokens: int = 32,
    spill_dir: str | None = None,
    clock: Callable[[], float] = time.monotonic,
):
    """Build a decode-step cache of the requested ``kind``.

    ``"paged"`` (the serving default) returns a
    :class:`~repro.engine.paged.PagedDecodeCache` (block pool, prefix
    sharing, disk spill); ``"flat"`` the original whole-entry
    :class:`DecodeStepCache` LRU.  ``block_tokens``/``spill_dir`` only
    apply to the paged store; the rest of the knobs are shared.
    """
    if kind == "flat":
        return DecodeStepCache(
            max_entries=max_entries, max_bytes=max_bytes, ttl_s=ttl_s, clock=clock
        )
    if kind == "paged":
        # Local on purpose: repro.engine.paged imports this module for the
        # entry/stats types, so a module-level import would be a cycle.
        from repro.engine.paged import PagedDecodeCache

        return PagedDecodeCache(
            max_entries=max_entries,
            max_bytes=max_bytes,
            ttl_s=ttl_s,
            block_tokens=block_tokens,
            spill_dir=spill_dir,
            clock=clock,
        )
    raise ValueError(f"unknown cache kind {kind!r}; expected one of {CACHE_KINDS}")


class DecodeStepCache:
    """Bounded LRU store of :class:`DecodeCacheEntry` keyed per sequence.

    Keys are caller-composed hashables; consumers (the DLZS predictor via
    :class:`~repro.engine.batched.BatchedSofaAttention`) namespace the
    user-visible key with the weight/config identity so one store can serve
    many operators without cross-talk.  All methods are thread-safe: the
    threaded executor backend may look up and replace entries concurrently.

    Size ``max_entries`` to cover the *concurrent working set* (e.g.
    ``n_layers * n_heads`` per live decode session): decode scans its keys
    in a fixed order every step, and an LRU smaller than the scan length
    evicts each entry just before its next lookup - every lookup then
    misses and the cache only costs.  The ``evictions`` counter is the
    tell-tale.

    ``ttl_s`` bounds how long an *idle* entry may stay resident: a decode
    session abandoned without :meth:`invalidate` (a dropped connection, a
    crashed caller) would otherwise pin its context-sized payload until
    LRU pressure happens to reach it - which on a large cache may be
    never.  Entries untouched for ``ttl_s`` seconds are dropped lazily on
    the next cache operation (or an explicit :meth:`sweep_expired`) and
    counted as ``expirations`` in :class:`CacheStats`.  ``clock`` is
    injectable for tests and defaults to :func:`time.monotonic`.
    """

    def __init__(
        self,
        max_entries: int = 256,
        max_bytes: int | None = None,
        ttl_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 (or None)")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be > 0 (or None)")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.ttl_s = ttl_s
        self._clock = clock
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, DecodeCacheEntry] = OrderedDict()
        self._last_used: dict[Hashable, float] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _sweep_expired_locked(self, now: float) -> int:
        """Drop idle-past-TTL entries; caller holds the lock.

        LRU order *is* idle order (every touch moves the entry to the
        back), so the scan walks from the front and stops at the first
        still-fresh entry.
        """
        if self.ttl_s is None:
            return 0
        dropped = 0
        while self._entries:
            key = next(iter(self._entries))
            if now - self._last_used[key] <= self.ttl_s:
                break
            entry = self._entries.pop(key)
            del self._last_used[key]
            self.stats.resident_bytes -= entry.nbytes
            self.stats.expirations += 1
            dropped += 1
        return dropped

    def sweep_expired(self) -> int:
        """Explicitly drop idle-past-TTL entries; returns how many."""
        with self._lock:
            return self._sweep_expired_locked(self._clock())

    def get(self, key: Hashable) -> DecodeCacheEntry | None:
        """Return the live entry for ``key`` (marking it recently used)."""
        obs = get_telemetry()
        t0 = obs.clock()
        with self._lock:
            now = self._clock()
            self._sweep_expired_locked(now)
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._last_used[key] = now
        obs.observe_since("sofa_cache_lookup_seconds", t0)
        return entry

    def put(self, key: Hashable, entry: DecodeCacheEntry) -> None:
        """Insert/replace the entry for ``key``, evicting LRU overflow.

        Overflow is bounded on entry *count* and - when ``max_bytes`` is set
        - on total resident payload bytes (entries scale with context
        length, so a count bound alone is no byte bound); a single entry
        larger than ``max_bytes`` is still admitted, alone.
        """
        with self._lock:
            now = self._clock()
            self._sweep_expired_locked(now)
            old = self._entries.pop(key, None)
            if old is not None:
                self.stats.resident_bytes -= old.nbytes
            self._entries[key] = entry
            self._last_used[key] = now
            self.stats.resident_bytes += entry.nbytes
            while len(self._entries) > self.max_entries or (
                self.max_bytes is not None
                and self.stats.resident_bytes > self.max_bytes
                and len(self._entries) > 1
            ):
                evicted_key, evicted = self._entries.popitem(last=False)
                del self._last_used[evicted_key]
                self.stats.resident_bytes -= evicted.nbytes
                self.stats.evictions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Explicitly drop one sequence's state (e.g. its session ended)."""
        with self._lock:
            dropped = self._entries.pop(key, None)
            if dropped is not None:
                del self._last_used[key]
                self.stats.resident_bytes -= dropped.nbytes
            return dropped is not None

    def invalidate_prefix(self, prefix: Hashable) -> int:
        """Drop every entry namespaced under ``prefix``.

        Key matching is :func:`prefix_matches`: ``(user_key, config,
        weight_digest)`` store keys match on the user key directly or - for
        ``(session_id, layer, head)`` user keys - on the bare session id,
        and scalar store keys match on equality.  Returns the number
        dropped.
        """
        with self._lock:
            doomed = [k for k in self._entries if prefix_matches(k, prefix)]
            for k in doomed:
                self.stats.resident_bytes -= self._entries[k].nbytes
                del self._entries[k]
                del self._last_used[k]
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._last_used.clear()
            self.stats.resident_bytes = 0

    def close(self) -> None:
        """Release held resources (no-op here; the paged store drops its
        spill tier).  Part of the shared store surface so owners can close
        whichever kind :func:`make_decode_cache` handed them."""
        self.clear()

    # ------------------------------------------------------- counter helpers
    def record_hit(self, reused_rows: int, appended_rows: int) -> None:
        with self._lock:
            self.stats.hits += 1
            self.stats.rows_reused += reused_rows
            self.stats.rows_appended += appended_rows

    def record_miss(self, invalidated: bool) -> None:
        with self._lock:
            self.stats.misses += 1
            if invalidated:
                self.stats.invalidations += 1
