"""Paged decode-step cache: refcounted block pool, prefix sharing, spill.

The flat :class:`~repro.engine.cache.DecodeStepCache` stores one monolithic
:class:`~repro.engine.cache.DecodeCacheEntry` per sequence, so two sessions
decoding from the same system prompt each pin a full copy of the prompt's
quantized tokens and ``K_hat`` rows, and byte pressure can only drop whole
entries.  This module is the block-pool analogue of a paged KV cache:

* Entries are decomposed into fixed-size **blocks** of ``block_tokens``
  consecutive rows (tokens, quantized codes and raw ``K_hat`` rows
  together).  Blocks live in one pool keyed by a SHA-1 **content hash**
  over their exact bytes, dtypes and shapes - two entries reference the
  same block exactly when their per-row state is bit-identical, so
  prefix sharing can never substitute different bits.  (The quantized
  codes depend on the sequence's global max-magnitude token; sharing
  therefore engages when that maximum lives in the shared prefix - the
  common case for a shared system prompt - and safely degrades to
  private blocks otherwise.)
* Blocks are **immutable** and refcounted: growth or divergence of a
  sequence produces new tail blocks and drops references to replaced
  ones (copy-on-write by construction - a shared block is never written
  through).  A block whose refcount reaches zero leaves the pool.
* Under a ``max_bytes`` RAM budget, cold blocks **spill to disk** as
  content-addressed ``.npz`` files instead of being dropped.  The budget
  is a hard invariant: after every operation the resident payload is at
  most ``max_bytes`` - an entry larger than the whole budget ends fully
  spilled (and still servable) rather than silently overshooting.
  Lookups that need spilled blocks reload them (``spill_loads``) and
  rebuild the entry bit-exactly (the ``.npy`` codec round-trips arrays
  exactly).
* :meth:`PagedDecodeCache.persist` writes every block plus a manifest to
  ``spill_dir`` so a long-lived session's cache survives a process
  restart: a new cache constructed over the same directory restores the
  entries with all blocks in the spill tier and faults them back in on
  first use.

The public surface is the :class:`~repro.engine.cache.DecodeStepCache`
surface (``get``/``put``/``invalidate``/``invalidate_prefix``/``clear``/
``sweep_expired``/``close`` plus the counter hooks), so the predictor,
engine, and cluster wire protocol are store-blind; construction normally
goes through :func:`~repro.engine.cache.make_decode_cache`.
"""

from __future__ import annotations

import hashlib
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Hashable

import numpy as np

from repro.engine.cache import CacheStats, DecodeCacheEntry, prefix_matches
from repro.obs import get_telemetry

#: order of the per-row arrays inside a block / spill file.
_FIELDS = ("tokens", "tok_values", "key_values")

#: name of the restart-survival index written by :meth:`PagedDecodeCache.persist`.
MANIFEST_NAME = "manifest.pkl"


def block_content_hash(rows: tuple[np.ndarray, ...]) -> str:
    """Content address of one block: SHA-1 over bytes, dtypes and shapes.

    Hashing the exact bytes (not a float canonicalization) is what makes
    sharing safe: equal hashes imply the pooled rows are bit-identical to
    the rows an entry would have stored privately.
    """
    digest = hashlib.sha1()
    for array in rows:
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


class _Block:
    """One immutable pooled slice of ``block_tokens`` rows.

    ``arrays`` holds the (tokens, tok_values, key_values) row slices while
    the block is RAM-resident and is ``None`` once spilled; ``on_disk``
    records whether the content-addressed ``.npz`` file exists (a block can
    be both resident and on disk after a reload or :meth:`persist`).
    """

    __slots__ = ("content_hash", "n_rows", "nbytes", "refcount", "arrays", "on_disk")

    def __init__(
        self, content_hash: str, arrays: tuple[np.ndarray, ...] | None, n_rows: int,
        nbytes: int,
    ):
        self.content_hash = content_hash
        self.arrays = arrays
        self.n_rows = n_rows
        self.nbytes = nbytes
        self.refcount = 0
        self.on_disk = arrays is None

    @property
    def resident(self) -> bool:
        return self.arrays is not None


@dataclass(frozen=True)
class _PagedEntry:
    """Per-sequence metadata: the block chain plus scalar entry state.

    ``specs`` records each array's dtype and trailing shape so zero-row
    entries (and the manifest) can rebuild exact array types without any
    block to consult.
    """

    block_hashes: tuple[str, ...]
    seq_len: int
    tok_scale: float
    tok_max_abs: float
    quantized: bool
    specs: tuple[tuple[str, tuple[int, ...]], ...]


class PagedDecodeCache:
    """Paged drop-in for :class:`~repro.engine.cache.DecodeStepCache`.

    Parameters
    ----------
    block_tokens:
        Rows per block.  Smaller blocks share prefixes at finer grain but
        cost more hash/bookkeeping per entry; the last block of an entry is
        partial.
    max_entries / ttl_s / clock:
        Same semantics as the flat store: whole-entry LRU eviction bound,
        idle TTL (swept lazily on every operation and explicitly via
        :meth:`sweep_expired`), injectable clock.
    max_bytes:
        RAM budget over unique resident block payload (shared blocks count
        once).  Enforced by spilling the coldest blocks to disk - never by
        overshooting and never by dropping data.
    spill_dir:
        Directory for spill files and the :meth:`persist` manifest.  When
        ``None`` a temporary directory is created on first spill and
        removed by :meth:`close`.  A directory already holding a manifest
        restores its entries (all blocks spilled) at construction.
    """

    def __init__(
        self,
        block_tokens: int = 32,
        max_entries: int = 256,
        max_bytes: int | None = None,
        ttl_s: float | None = None,
        spill_dir: str | Path | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if block_tokens < 1:
            raise ValueError("block_tokens must be >= 1")
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 (or None)")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be > 0 (or None)")
        self.block_tokens = block_tokens
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.ttl_s = ttl_s
        self._clock = clock
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, _PagedEntry] = OrderedDict()
        self._last_used: dict[Hashable, float] = {}
        #: pool in touch order - iteration order is coldest-first spill order.
        self._blocks: OrderedDict[str, _Block] = OrderedDict()
        self._lock = threading.RLock()
        self._tmp_dir: tempfile.TemporaryDirectory | None = None
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        if self._spill_dir is not None:
            self._restore()

    # ----------------------------------------------------------- spill tier
    def _spill_root(self) -> Path:
        if self._spill_dir is None:
            self._tmp_dir = tempfile.TemporaryDirectory(prefix="repro-decode-spill-")
            self._spill_dir = Path(self._tmp_dir.name)
        self._spill_dir.mkdir(parents=True, exist_ok=True)
        return self._spill_dir

    def _block_path(self, content_hash: str) -> Path:
        return self._spill_root() / f"{content_hash}.npz"

    def _write_block(self, block: _Block) -> None:
        """Ensure the block's content-addressed spill file exists."""
        if block.on_disk:
            return
        assert block.arrays is not None
        obs = get_telemetry()
        t0 = obs.clock()
        np.savez(self._block_path(block.content_hash),
                 **dict(zip(_FIELDS, block.arrays)))
        obs.observe_since("sofa_cache_spill_write_seconds", t0)
        block.on_disk = True

    def _spill_block(self, block: _Block) -> None:
        """Move a block out of RAM (writing it to disk first if needed)."""
        if not block.resident:
            return
        self._write_block(block)
        block.arrays = None

    def _load_block(self, block: _Block) -> bool:
        """Fault a spilled block back into RAM; False if unreadable."""
        if block.resident:
            return True
        obs = get_telemetry()
        t0 = obs.clock()
        try:
            with np.load(self._block_path(block.content_hash)) as archive:
                block.arrays = tuple(archive[name] for name in _FIELDS)
        except Exception:
            return False
        obs.observe_since("sofa_cache_spill_load_seconds", t0)
        self.stats.spill_loads += 1
        return True

    def _unlink_block_file(self, block: _Block) -> None:
        if block.on_disk and self._spill_dir is not None:
            self._block_path(block.content_hash).unlink(missing_ok=True)
        block.on_disk = False

    # ---------------------------------------------------------- pool helpers
    def _decref(self, content_hash: str) -> None:
        block = self._blocks[content_hash]
        block.refcount -= 1
        assert block.refcount >= 0, "block refcount went negative"
        if block.refcount == 0:
            del self._blocks[content_hash]
            self._unlink_block_file(block)

    def _drop_entry(self, key: Hashable) -> _PagedEntry:
        entry = self._entries.pop(key)
        del self._last_used[key]
        for content_hash in entry.block_hashes:
            self._decref(content_hash)
        return entry

    def _drop_block_and_owners(self, content_hash: str) -> None:
        """Evict a corrupt block: every entry referencing it becomes a miss."""
        doomed = [
            key for key, entry in self._entries.items()
            if content_hash in entry.block_hashes
        ]
        for key in doomed:
            self._drop_entry(key)
        # _drop_entry decrefs to zero and removes it unless a restore left a
        # stale refcount; drop defensively either way.
        block = self._blocks.pop(content_hash, None)
        if block is not None:
            self._unlink_block_file(block)

    def _resident_bytes(self) -> int:
        return sum(b.nbytes for b in self._blocks.values() if b.resident)

    def _enforce_budget(self) -> None:
        """Whole-entry LRU count bound, then spill down to ``max_bytes``."""
        while len(self._entries) > self.max_entries:
            oldest = next(iter(self._entries))
            self._drop_entry(oldest)
            self.stats.evictions += 1
        if self.max_bytes is None:
            return
        resident = self._resident_bytes()
        if resident <= self.max_bytes:
            return
        for block in list(self._blocks.values()):  # coldest first
            if not block.resident:
                continue
            self._spill_block(block)
            resident -= block.nbytes
            if resident <= self.max_bytes:
                break

    def _refresh_gauges(self) -> None:
        resident_bytes = resident_blocks = shared = spilled = spilled_bytes = 0
        for block in self._blocks.values():
            if block.resident:
                resident_blocks += 1
                resident_bytes += block.nbytes
            else:
                spilled += 1
                spilled_bytes += block.nbytes
            if block.refcount > 1:
                shared += 1
        self.stats.resident_bytes = resident_bytes
        self.stats.resident_blocks = resident_blocks
        self.stats.shared_blocks = shared
        self.stats.spilled_blocks = spilled
        self.stats.spilled_bytes = spilled_bytes

    def _sweep_expired_locked(self, now: float) -> int:
        if self.ttl_s is None:
            return 0
        dropped = 0
        while self._entries:
            key = next(iter(self._entries))
            if now - self._last_used[key] <= self.ttl_s:
                break
            self._drop_entry(key)
            self.stats.expirations += 1
            dropped += 1
        return dropped

    # -------------------------------------------------------- public surface
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def n_blocks(self) -> int:
        with self._lock:
            return len(self._blocks)

    def sweep_expired(self) -> int:
        """Explicitly drop idle-past-TTL entries; returns how many."""
        with self._lock:
            dropped = self._sweep_expired_locked(self._clock())
            if dropped:
                self._refresh_gauges()
            return dropped

    def get(self, key: Hashable) -> DecodeCacheEntry | None:
        """Rebuild the live entry for ``key`` from its blocks.

        Spilled blocks are faulted back in (counted as ``spill_loads``);
        the returned :class:`DecodeCacheEntry` owns fresh arrays, so
        callers can never write through to pooled blocks.  An unreadable
        spill file demotes every entry referencing that block to a miss.
        """
        obs = get_telemetry()
        t0 = obs.clock()
        entry = self._get_entry(key)
        obs.observe_since("sofa_cache_lookup_seconds", t0)
        return entry

    def _get_entry(self, key: Hashable) -> DecodeCacheEntry | None:
        with self._lock:
            now = self._clock()
            self._sweep_expired_locked(now)
            entry = self._entries.get(key)
            if entry is None:
                self._refresh_gauges()
                return None
            per_field: tuple[list[np.ndarray], ...] = ([], [], [])
            for content_hash in entry.block_hashes:
                block = self._blocks[content_hash]
                if not self._load_block(block):
                    self._drop_block_and_owners(content_hash)
                    self._refresh_gauges()
                    return None
                self._blocks.move_to_end(content_hash)
                for rows, array in zip(per_field, block.arrays):
                    rows.append(array)
            arrays = []
            for (dtype, trailing), rows in zip(entry.specs, per_field):
                if rows:
                    arrays.append(np.concatenate(rows, axis=0))
                else:
                    arrays.append(np.empty((0, *trailing), dtype=np.dtype(dtype)))
            self._entries.move_to_end(key)
            self._last_used[key] = now
            self._enforce_budget()
            self._refresh_gauges()
            return DecodeCacheEntry(
                tokens=arrays[0],
                tok_values=arrays[1],
                tok_scale=entry.tok_scale,
                tok_max_abs=entry.tok_max_abs,
                key_values=arrays[2],
                quantized=entry.quantized,
            )

    def put(self, key: Hashable, entry: DecodeCacheEntry) -> None:
        """Decompose ``entry`` into pooled blocks and store its chain.

        Row slices whose content hash is already pooled are shared (their
        refcount grows); new content gets fresh immutable copies.  The old
        chain for ``key`` is dereferenced first, so a grown sequence keeps
        its unchanged prefix blocks and only allocates the new tail -
        copy-on-write falls out of block immutability.
        """
        rows_of = tuple(
            np.ascontiguousarray(a)
            for a in (entry.tokens, entry.tok_values, entry.key_values)
        )
        with self._lock:
            now = self._clock()
            self._sweep_expired_locked(now)
            if key in self._entries:
                self._drop_entry(key)
            hashes: list[str] = []
            for lo in range(0, entry.seq_len, self.block_tokens):
                slices = tuple(a[lo : lo + self.block_tokens] for a in rows_of)
                content_hash = block_content_hash(slices)
                block = self._blocks.get(content_hash)
                if block is None:
                    copies = tuple(s.copy() for s in slices)
                    block = _Block(
                        content_hash,
                        copies,
                        n_rows=copies[0].shape[0],
                        nbytes=sum(c.nbytes for c in copies),
                    )
                    self._blocks[content_hash] = block
                else:
                    self._blocks.move_to_end(content_hash)
                block.refcount += 1
                hashes.append(content_hash)
            self._entries[key] = _PagedEntry(
                block_hashes=tuple(hashes),
                seq_len=entry.seq_len,
                tok_scale=entry.tok_scale,
                tok_max_abs=entry.tok_max_abs,
                quantized=entry.quantized,
                specs=tuple((str(a.dtype), a.shape[1:]) for a in rows_of),
            )
            self._last_used[key] = now
            self._enforce_budget()
            self._refresh_gauges()

    def invalidate(self, key: Hashable) -> bool:
        """Explicitly drop one sequence's state (e.g. its session ended)."""
        with self._lock:
            if key not in self._entries:
                return False
            self._drop_entry(key)
            self._refresh_gauges()
            return True

    def invalidate_prefix(self, prefix: Hashable) -> int:
        """Drop every entry matching ``prefix``; see
        :func:`~repro.engine.cache.prefix_matches` for the key shapes."""
        with self._lock:
            doomed = [k for k in self._entries if prefix_matches(k, prefix)]
            for key in doomed:
                self._drop_entry(key)
            if doomed:
                self._refresh_gauges()
            return len(doomed)

    def clear(self) -> None:
        """Drop every entry, block and spill file (a restart over the same
        ``spill_dir`` after a clear sees an empty cache)."""
        with self._lock:
            for block in self._blocks.values():
                self._unlink_block_file(block)
            self._entries.clear()
            self._last_used.clear()
            self._blocks.clear()
            if self._spill_dir is not None:
                (self._spill_dir / MANIFEST_NAME).unlink(missing_ok=True)
            self._refresh_gauges()

    def close(self) -> None:
        """Release the spill tier.

        An owned temporary directory is removed; an explicit ``spill_dir``
        is left intact so a :meth:`persist`-ed cache survives the process.
        """
        with self._lock:
            self._entries.clear()
            self._last_used.clear()
            self._blocks.clear()
            self._refresh_gauges()
            if self._tmp_dir is not None:
                self._tmp_dir.cleanup()
                self._tmp_dir = None
                self._spill_dir = None

    # ------------------------------------------------------- counter helpers
    def record_hit(self, reused_rows: int, appended_rows: int) -> None:
        with self._lock:
            self.stats.hits += 1
            self.stats.rows_reused += reused_rows
            self.stats.rows_appended += appended_rows

    def record_miss(self, invalidated: bool) -> None:
        with self._lock:
            self.stats.misses += 1
            if invalidated:
                self.stats.invalidations += 1

    # --------------------------------------------------- restart survival
    def persist(self) -> Path:
        """Write every live block plus the entry manifest to ``spill_dir``.

        Blocks stay RAM-resident (persisting is not spilling); a new
        :class:`PagedDecodeCache` constructed over the same directory
        restores the manifest with every block in the spill tier.  Returns
        the manifest path.  Store keys must be picklable (the documented
        key shapes - tuples of strings/ints/configs - are).
        """
        with self._lock:
            root = self._spill_root()
            for block in self._blocks.values():
                self._write_block(block)
            manifest = {
                "version": 1,
                "block_tokens": self.block_tokens,
                "blocks": {
                    h: (b.n_rows, b.nbytes) for h, b in self._blocks.items()
                },
                "entries": [
                    (key, entry) for key, entry in self._entries.items()
                ],
            }
            path = root / MANIFEST_NAME
            with open(path, "wb") as fh:
                pickle.dump(manifest, fh)
            return path

    def _restore(self) -> None:
        """Adopt a persisted manifest, if the spill dir holds a valid one.

        Restored entries start with every block in the spill tier (RAM
        empty) and fault blocks back in on first :meth:`get`.  A missing
        or unreadable manifest - or an entry whose spill files vanished -
        is skipped silently: restoring is an optimization, never a
        correctness dependency (the worst case is a recompute).
        """
        assert self._spill_dir is not None
        path = self._spill_dir / MANIFEST_NAME
        if not path.exists():
            return
        try:
            with open(path, "rb") as fh:
                manifest = pickle.load(fh)
            if manifest.get("version") != 1:
                return
            blocks = manifest["blocks"]
            entries = manifest["entries"]
        except Exception:
            return
        now = self._clock()
        for key, entry in entries:
            if not isinstance(entry, _PagedEntry):
                continue
            if not all(
                h in blocks and self._block_path(h).exists()
                for h in entry.block_hashes
            ):
                continue
            for h in entry.block_hashes:
                block = self._blocks.get(h)
                if block is None:
                    n_rows, nbytes = blocks[h]
                    block = _Block(h, None, n_rows=n_rows, nbytes=nbytes)
                    self._blocks[h] = block
                block.refcount += 1
            self._entries[key] = entry
            self._last_used[key] = now
        self._enforce_budget()
        self._refresh_gauges()
