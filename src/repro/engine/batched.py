"""Batched multi-head SOFA attention: one fused pass over a head stack.

:class:`BatchedSofaAttention` executes the DLZS -> SADS -> SU-FA pipeline for
a whole ``(batch * heads)`` stack of attention problems in fused NumPy ops -
there is no Python loop over heads in any compute stage:

* **DLZS prediction** runs as stacked integer matmuls over all heads
  (:class:`repro.core.dlzs.StackedDlzsPredictor`), with per-head quantization
  scales preserved.
* **SADS selection** flattens every query row of every head into one
  ``(N*T, S)`` stack and runs the vectorized segment grid once
  (:meth:`repro.core.sads.SadsSorter.select_stack`).
* **SU-FA** streams all ``N*T`` rows through the sorted-updating core in
  lockstep (:func:`repro.core.sufa.stream_selected`), mirroring how the
  hardware's PE columns share one K/V stream across rows.

Failure semantics follow the fusion: with ``max_assurance=False`` a
mispredicted ordering in *any* head aborts the whole call (streaming state
advances per step for the full stack), so callers needing per-head fault
isolation - like :class:`~repro.engine.serving.SofaEngine` - serve such
requests unbatched.

The mapping to the paper's Fig. 6 tiling grid is unchanged: every head in
the batch shares the same ``(S, tile_cols)`` grid, so the SADS sub-segments
of all heads are the same Bc tiles the SU-FA stage consumes.  Batching adds
a fourth reuse axis (heads) on top of the paper's three-stage reuse without
touching the per-head dataflow - which is why the result is **bit-for-bit**
identical to running :class:`repro.core.pipeline.SofaAttention` per head,
including the per-head :class:`~repro.core.pipeline.StageTrace` accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Sequence

import numpy as np

from repro.core.config import SofaConfig
from repro.core.dlzs import StackedDlzsPredictor
from repro.core.pipeline import (
    SofaAttentionResult,
    StageTrace,
    formal_trace_bytes,
    prediction_trace_bytes,
    sads_trace_sram,
)
from repro.core.sads import SadsSorter
from repro.core.sufa import UpdateOrder, stream_selected
from repro.kernels.predict_select_fused import fused_pair
from repro.kernels.registry import get_kernel
from repro.obs import get_telemetry
from repro.numerics.complexity import OpCounter, matmul_ops
from repro.numerics.linalg import det_gathered_project

if TYPE_CHECKING:
    from repro.engine.cache import DecodeStepCache


@dataclass
class BatchedSofaResult:
    """Output of one fused multi-head pipeline execution.

    ``per_head[i]`` is a full :class:`SofaAttentionResult` (output, selected
    indices, three stage traces, assurance triggers) equal to what the
    sequential operator reports for head ``i``.
    """

    outputs: np.ndarray  # (N, T, Dv)
    selected: np.ndarray  # (N, T, k)
    per_head: list[SofaAttentionResult]

    @property
    def n_heads(self) -> int:
        return self.outputs.shape[0]

    @property
    def total_ops(self) -> OpCounter:
        total = OpCounter()
        for head in self.per_head:
            total = total + head.total_ops
        return total

    @property
    def total_dram_bytes(self) -> float:
        return sum(head.total_dram_bytes for head in self.per_head)

    @property
    def assurance_triggers(self) -> int:
        return sum(head.assurance_triggers for head in self.per_head)


def _as_head_scales(scale: float | np.ndarray, n: int) -> np.ndarray:
    arr = np.asarray(scale, dtype=np.float64)
    if arr.ndim == 0:
        return np.full(n, float(arr))
    if arr.shape != (n,):
        raise ValueError(f"per-head scales must be scalar or ({n},), got {arr.shape}")
    return arr


class BatchedSofaAttention:
    """The fused multi-head SOFA operator.

    Construction pre-converts every head's key projection to (sign, LZ)
    codes (the offline model-preparation step, done once per weight stack);
    :meth:`__call__` executes the online pipeline for the whole stack.
    """

    def __init__(self, wk: np.ndarray, wv: np.ndarray, config: SofaConfig | None = None):
        self.config = config or SofaConfig()
        wk = np.asarray(wk, dtype=np.float64)
        wv = np.asarray(wv, dtype=np.float64)
        if wk.ndim != 3 or wv.ndim != 3 or wk.shape[:2] != wv.shape[:2]:
            raise ValueError("need (N, H, Dk) wk and (N, H, Dv) wv stacks")
        self.predictor = StackedDlzsPredictor(wk, self.config.dlzs)
        self._wk = wk
        self._wv = wv

    @property
    def n_heads(self) -> int:
        return self._wk.shape[0]

    def __call__(
        self,
        tokens: np.ndarray,
        q: np.ndarray,
        k_scale: float | np.ndarray = 1.0,
        v_scale: float | np.ndarray = 1.0,
        v: np.ndarray | None = None,
        cache: "DecodeStepCache | None" = None,
        cache_keys: Sequence[Hashable | None] | None = None,
    ) -> BatchedSofaResult:
        """Run the fused pipeline for the whole head stack.

        Parameters
        ----------
        tokens:
            ``(N, S, H)`` per-head token activations.
        q:
            ``(N, T, D)`` per-head query matrices.
        k_scale / v_scale:
            Scalar or ``(N,)`` per-head K/V generation scales.
        v:
            Optional ``(N, S, Dv)`` per-head value caches; when given the
            on-demand value generation is skipped (serving decode reuses the
            cache), matching ``SofaAttention(..., v=v[i])`` per head.
        cache / cache_keys:
            Optional decode-step cache and one key (or ``None``) per head;
            keyed heads reuse/extend their quantized ``K_hat`` state across
            calls (see :mod:`repro.engine.cache`).  Results stay bit-for-bit
            identical to the uncached call.
        """
        tokens = np.asarray(tokens, dtype=np.float64)
        q = np.asarray(q, dtype=np.float64)
        n = self.n_heads
        if tokens.ndim != 3 or tokens.shape[0] != n or tokens.shape[2] != self._wk.shape[1]:
            raise ValueError(f"tokens must be ({n}, S, {self._wk.shape[1]})")
        if q.ndim != 3 or q.shape[0] != n or q.shape[2] != self._wk.shape[2]:
            raise ValueError(f"q must be ({n}, T, {self._wk.shape[2]})")
        k_scales = _as_head_scales(k_scale, n)
        v_scales = _as_head_scales(v_scale, n)
        s, h = tokens.shape[1], tokens.shape[2]
        t, d = q.shape[1], q.shape[2]
        dk = self._wk.shape[2]
        cfg = self.config
        k_count = cfg.resolve_top_k(s)
        n_tiles = cfg.n_tiles(s)

        # ------------------------------------------- stages 1+2: DLZS + SADS
        # Both stages resolve through the per-stage kernel registries; when
        # they resolve to the same fused engine, prediction and selection run
        # tile by tile and the full (N*T, S) score matrix is never built.
        # Either way the bits (indices, per-head op tallies) are those of
        # the reference predict -> select_stack pipeline.
        predict_kernel = get_kernel("predict", cfg.dlzs.kernel)
        select_kernel = get_kernel("select", cfg.sads.kernel)
        # The coordinated tiling: the sorter's segments ARE the Bc tiles,
        # identical for every head in the batch (shared (S, Bc) grid).
        sorter = SadsSorter(cfg.sads_for(n_tiles))
        fused = fused_pair(predict_kernel, select_kernel)
        # Telemetry wraps the stage *calls*, never the registry callables:
        # fused_pair detects fusion by kernel identity (fused_owner), so the
        # kernels themselves must stay unwrapped.
        obs = get_telemetry()
        if fused is not None:
            with obs.span(
                "stage.predict_select_fused",
                attrs={"rows": n * t, "s": s},
                hist="sofa_stage_predict_select_fused_seconds",
            ):
                prep, stack = fused.run_stacked(
                    self.predictor,
                    sorter,
                    tokens,
                    q,
                    k_count,
                    cache=cache,
                    cache_keys=cache_keys,
                )
            head_ops = prep.head_ops
        else:
            with obs.span(
                "stage.predict",
                attrs={"rows": n * t, "s": s},
                hist="sofa_stage_predict_seconds",
            ):
                pred = predict_kernel(
                    self.predictor, tokens, q, cache=cache, cache_keys=cache_keys
                )
            head_ops = pred.head_ops
            with obs.span(
                "stage.select",
                attrs={"rows": n * t, "k": k_count},
                hist="sofa_stage_select_seconds",
            ):
                stack = select_kernel(sorter, pred.a_hat.reshape(n * t, s), k_count)
        pred_dram, pred_sram = prediction_trace_bytes(cfg, s, h, dk, t)
        kk = stack.indices.shape[1]
        selected = stack.indices.reshape(n, t, kk)
        sads_compare = stack.compare_rows.reshape(n, t)
        sads_sram = sads_trace_sram(cfg, t, k_count)

        # ------------------------------------------- stage 3: on-demand KV + SU-FA
        t_kv = obs.clock()
        sel_mask = np.zeros((n, s), dtype=bool)
        np.put_along_axis(sel_mask, selected.reshape(n, t * kk), True, axis=1)
        head_idx, tok_idx = np.nonzero(sel_mask)  # per head, ascending tokens
        unique_counts = sel_mask.sum(axis=1)

        toks_sel = tokens[head_idx, tok_idx]  # (U, H)
        k_mat = np.zeros((n, s, dk))
        k_mat[head_idx, tok_idx] = (
            det_gathered_project(toks_sel, self._wk, head_idx) * k_scales[head_idx, None]
        )
        if v is None:
            dv = self._wv.shape[2]
            v_mat = np.zeros((n, s, dv))
            v_mat[head_idx, tok_idx] = (
                det_gathered_project(toks_sel, self._wv, head_idx)
                * v_scales[head_idx, None]
            )
        else:
            v_mat = np.asarray(v, dtype=np.float64)
            if v_mat.ndim != 3 or v_mat.shape[:2] != (n, s):
                raise ValueError(f"value caches must be ({n}, {s}, Dv)")
            dv = v_mat.shape[2]

        head_arange = np.arange(n)[:, None, None]
        k_sel = k_mat[head_arange, selected]  # (N, T, kk, Dk)
        v_sel = v_mat[head_arange, selected]  # (N, T, kk, Dv)
        obs.observe_since("sofa_stage_kv_gather_seconds", t_kv)
        with obs.span(
            "stage.stream",
            attrs={"rows": n * t, "k": kk},
            hist="sofa_stage_stream_seconds",
        ):
            stream = stream_selected(
                q.reshape(n * t, d),
                k_sel.reshape(n * t, kk, dk),
                v_sel.reshape(n * t, kk, dv),
                order=UpdateOrder.DESCENDING if cfg.sufa.descending else UpdateOrder.ASCENDING,
                max_assurance=cfg.sufa.max_assurance,
                tile_cols=cfg.tile_cols,
                kernel=cfg.sufa.kernel,
            )
        outputs = stream.output.reshape(n, t, dv)
        sufa_ops_rows = {
            op: counts.reshape(n, t) for op, counts in stream.op_rows.items()
        }
        triggers = stream.trigger_rows.reshape(n, t).sum(axis=1)

        # ------------------------------- per-head accounting (bookkeeping only)
        per_head: list[SofaAttentionResult] = []
        for i in range(n):
            stage1 = StageTrace(
                "dlzs_prediction", head_ops[i], pred_dram, pred_sram
            )
            sads_ops = OpCounter()
            sads_ops.add_op("compare", float(sads_compare[i].sum()))
            stage2 = StageTrace(
                "sads_topk",
                sads_ops,
                0.0,  # Pre-Atten tiles never leave SRAM in the tiled dataflow
                sads_sram,
            )
            u = int(unique_counts[i])
            kv_ops = matmul_ops(u, h, dk)
            if v is None:
                kv_ops = kv_ops + matmul_ops(u, h, self._wv.shape[2])
            sufa_ops = OpCounter()
            for op, counts in sufa_ops_rows.items():
                sufa_ops.add_op(op, float(counts[i].sum()))
            formal_dram, formal_sram = formal_trace_bytes(cfg, u, h, t, d, dk, dv)
            stage3 = StageTrace(
                "sufa_formal", kv_ops + sufa_ops, formal_dram, formal_sram
            )
            result = SofaAttentionResult(
                output=outputs[i],
                selected=selected[i],
                stages=[stage1, stage2, stage3],
                assurance_triggers=int(triggers[i]),
            )
            result._row_len = s
            per_head.append(result)

        return BatchedSofaResult(
            outputs=outputs, selected=selected, per_head=per_head
        )
