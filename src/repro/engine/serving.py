"""SofaEngine: a continuously-batching serving frontend over the fused pipeline.

The paper accelerates one attention head at a time; a serving deployment
sees a *stream* of independent attention requests (one per head per layer
per active sequence) arriving over time.  This module provides the software
analogue of the accelerator's head-level scheduler:

* **Request queue with continuous admission** - callers
  :meth:`~SofaEngine.submit` independent :class:`AttentionRequest` objects
  and receive an :class:`AttentionFuture` immediately.  Admission is
  *continuous*: a new request joins the not-yet-executed group sharing its
  cross-stage tiling grid (the batch key is ``(S, T, H, Dk, Dv, config)``,
  i.e. requests batch together exactly when they agree on the paper's
  ``(S, tile_cols)`` grid), so groups keep filling between scheduling
  rounds instead of only seeing what was queued before one flush.
* **Starvation-free scheduling** - :meth:`~SofaEngine.step` runs one
  scheduling round: groups execute when full (``max_batch_heads``), when
  they have waited ``max_wait_batches`` rounds, or when any member's
  ``deadline`` has passed - so a request on a rare shape never waits
  forever for batch-mates.  :meth:`~SofaEngine.flush` force-drains
  everything, and :meth:`~SofaEngine.run_until_drained` loops rounds until
  the queue is empty.
* **Pluggable execution backend** - ready chunks run through
  :mod:`repro.engine.executor`: ``backend="sync"`` executes inline,
  ``backend="threads"`` dispatches independent chunks onto a thread pool
  (since the SU-FA core moved to the tile-blocked kernel
  (:mod:`repro.kernels`), chunks spend most of their time in fused
  NumPy/BLAS ops that release the GIL, so thread overlap applies to the
  whole pipeline rather than stopping at the streaming stage).  Outcomes
  are gathered in dispatch order, so statistics, error reporting and -
  thanks to the batch-invariant numerics - every result bit are identical
  across backends.
* **Decode-step cache** - requests carrying a ``cache_key`` reuse their
  quantized ``K_hat``/DLZS prediction state across steps of a growing
  sequence (:mod:`repro.engine.cache`), skipping re-quantization of the
  unchanged token prefix.  Hit/miss/invalidation counters surface in
  :attr:`SofaEngine.stats`.
* **Per-request futures** - every request resolves to the same
  :class:`~repro.core.pipeline.SofaAttentionResult` the sequential operator
  would have produced (bit-for-bit), so downstream accounting code cannot
  tell it was served from a batch, a thread, or a cache hit.

Determinism remains part of the engine's contract: the scheduler and both
backends produce bit-identical results in deterministic arrival order; the
executor and the cache only change *when* work happens, never what it
computes.  Submissions are expected from one caller thread; worker threads
are engine-internal.

This engine is the innermost serving tier.  :class:`repro.cluster.EngineCluster`
shards many of them across worker processes (with supervision, autoscaling
and a choice of local-pipe or socket transport), and
:class:`repro.gateway.SofaGateway` puts an HTTP front door with per-tenant
admission control and deadline-aware shedding in front of a cluster.  The
full request path from HTTP POST down to the fused kernels is walked in
``docs/architecture.md``.
"""

from __future__ import annotations

import hashlib
import math
import threading
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Hashable, Mapping

import numpy as np

from repro.core.config import SofaConfig
from repro.core.pipeline import SofaAttentionResult
from repro.engine.batched import BatchedSofaAttention
from repro.engine.cache import CacheStats, DecodeStepCache, make_decode_cache
from repro.engine.executor import make_executor
from repro.kernels import (
    STAGES,
    resolve_kernel_name,
    resolve_sufa_kernel_name,
    resolved_kernels,
)
from repro.obs import get_telemetry


def config_with_kernels(
    config: SofaConfig, kernel: "str | Mapping[str, str] | None"
) -> SofaConfig:
    """``config`` with per-stage kernel selections applied and validated.

    A bare string keeps the PR-4 meaning (the SU-FA ``"stream"`` stage);
    a mapping pins any subset of :data:`repro.kernels.STAGES`, e.g.
    ``{"predict": "fused", "select": "fused", "stream": "blocked"}``.
    Every name is resolved eagerly so a typo fails at construction (with
    the registry's source-attributed message), not inside the first batch.
    """
    if kernel is None:
        return config
    mapping = {"stream": kernel} if isinstance(kernel, str) else dict(kernel)
    unknown = sorted(set(mapping) - set(STAGES))
    if unknown:
        raise ValueError(f"unknown kernel stages {unknown}; stages: {STAGES}")
    for stage, name in mapping.items():
        if stage == "stream":
            resolve_sufa_kernel_name(name)  # legacy "unknown SU-FA kernel" text
        else:
            resolve_kernel_name(stage, name)
    if "predict" in mapping:
        config = replace(config, dlzs=replace(config.dlzs, kernel=mapping["predict"]))
    if "select" in mapping:
        config = replace(config, sads=replace(config.sads, kernel=mapping["select"]))
    if "stream" in mapping:
        config = replace(config, sufa=replace(config.sufa, kernel=mapping["stream"]))
    return config


@dataclass
class AttentionRequest:
    """One independent attention problem (a head of a layer of a sequence).

    ``wk``/``wv`` are the head's key/value projections (``(H, Dk)`` /
    ``(H, Dv)``); ``tokens`` is ``(S, H)``; ``q`` is ``(T, D)``.  ``v``
    optionally supplies a pre-computed value cache, and ``config`` overrides
    the engine default (requests only batch with compatible configs).

    ``cache_key`` opts the request into the decode-step cache: submit the
    same key every step of a growing sequence (e.g. ``(session, layer,
    head)``) and the DLZS phase-1.1 state of the unchanged token prefix is
    reused.  ``deadline`` (absolute :func:`time.monotonic` seconds) forces
    the request's group to execute at the first scheduling round past it,
    even if the batch is not full.
    """

    tokens: np.ndarray
    q: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    k_scale: float = 1.0
    v_scale: float = 1.0
    v: np.ndarray | None = None
    config: SofaConfig | None = None
    tag: str | None = None
    cache_key: Hashable | None = None
    deadline: float | None = None


class AttentionFuture:
    """Handle to a queued request; resolves when its batch executes.

    ``result()`` triggers a full drain if the request is still queued, so
    callers may simply submit everything and read results in any order.
    """

    def __init__(self, engine: "SofaEngine"):
        # Deliberately does NOT hold the request: retaining a future must
        # not pin the request's token/weight tensors after it is served.
        self._engine = engine
        self._result: SofaAttentionResult | None = None
        self._error: Exception | None = None
        #: monotonic submission stamp - queue-wait accounting reads it
        self.submitted_at = time.monotonic()
        #: open telemetry span for this request (None when telemetry is off)
        self.span = None

    def done(self) -> bool:
        return self._result is not None or self._error is not None

    def set_result(self, result: SofaAttentionResult) -> None:
        self._result = result

    def set_error(self, error: Exception) -> None:
        self._error = error

    def result(self) -> SofaAttentionResult:
        if not self.done():
            try:
                self._engine.flush()
            except Exception:
                # flush re-raises the first batch failure; only propagate it
                # here when it is THIS request's failure - another request's
                # error must not leak into a successfully served result.
                if not self.done():
                    raise
        if self._error is not None:
            raise self._error
        assert self._result is not None, "flush must resolve every queued future"
        return self._result


def validate_request(request: AttentionRequest, default_config: SofaConfig) -> None:
    """Reject a malformed request at submission time.

    Shared by :meth:`SofaEngine.submit` and the cluster frontend
    (:class:`repro.cluster.EngineCluster`), so a bad request fails in the
    caller's process instead of aborting the batch (or the worker) it
    would have joined.
    """
    tokens = np.asarray(request.tokens)
    q = np.asarray(request.q)
    wk = np.asarray(request.wk)
    wv = np.asarray(request.wv)
    if tokens.ndim != 2 or q.ndim != 2 or wk.ndim != 2 or wv.ndim != 2:
        raise ValueError("request tensors must be 2-D per head")
    if tokens.shape[1] != wk.shape[0]:
        raise ValueError("tokens and wk disagree on the hidden dimension")
    if wv.shape[0] != wk.shape[0]:
        raise ValueError("wk and wv disagree on the hidden dimension")
    if q.shape[1] != wk.shape[1]:
        raise ValueError("q and wk disagree on the head dimension")
    if request.v is not None:
        v = np.asarray(request.v)
        if v.ndim != 2 or v.shape[0] != tokens.shape[0]:
            raise ValueError("value cache must be (S, Dv)")
    if request.deadline is not None and not (
        isinstance(request.deadline, (int, float))
        and math.isfinite(request.deadline)
    ):
        # NaN would compare False against every clock reading and
        # silently defeat the starvation bound the deadline provides.
        raise ValueError("deadline must be finite monotonic seconds")
    if request.cache_key is not None:
        try:
            hash(request.cache_key)
        except TypeError as error:
            raise ValueError("cache_key must be hashable") from error
    (request.config or default_config).resolve_top_k(tokens.shape[0])


@dataclass
class BatchRecord:
    """One executed batch: its grid, size, and how long it waited.

    ``queue_wait_s`` is the monotonic-clock span from the *earliest*
    member's submission to the batch starting to execute; ``execute_s``
    the fused call's own duration.  Both are recorded unconditionally
    (two clock reads per batch), independent of the telemetry plane.
    """

    n_heads: int
    seq_len: int
    n_queries: int
    tile_cols: int
    waited_rounds: int = 0
    queue_wait_s: float = 0.0
    execute_s: float = 0.0


@dataclass
class EngineStats:
    """Aggregate serving statistics since engine construction.

    ``cache`` is a live view of the engine's decode-step cache counters
    (hits/misses/invalidations/evictions plus reused/appended row tallies).
    ``batches`` retains only the most recent ``MAX_BATCH_RECORDS`` records
    so a long-lived engine's memory stays bounded; the scalar aggregates
    (``n_requests``/``n_batches``/``mean_batch_heads``) cover the full
    lifetime regardless.
    """

    #: per-batch records kept for inspection; older ones are dropped
    MAX_BATCH_RECORDS = 1024

    n_requests: int = 0
    n_batches: int = 0
    n_steps: int = 0
    batches: list[BatchRecord] = field(default_factory=list)
    cache: CacheStats = field(default_factory=CacheStats)

    def record_batches(self, records: list[BatchRecord]) -> None:
        self.batches.extend(records)
        self.n_batches += len(records)
        if len(self.batches) > self.MAX_BATCH_RECORDS:
            del self.batches[: len(self.batches) - self.MAX_BATCH_RECORDS]

    @property
    def mean_batch_heads(self) -> float:
        return self.n_requests / self.n_batches if self.n_batches else 0.0

    @property
    def cache_hits(self) -> int:
        return self.cache.hits

    @property
    def cache_misses(self) -> int:
        return self.cache.misses

    @property
    def cache_expirations(self) -> int:
        """Decode-cache entries dropped by the idle TTL (abandoned sequences)."""
        return self.cache.expirations

    def register_metrics(self, registry, prefix: str = "sofa_engine") -> None:
        """Expose these counters through a metrics registry (callback gauges).

        Part of the :mod:`repro.obs` plane: the registry reads the live
        attributes at export time (weakref-held, so a retired engine's
        stats decay to 0), and the engine's decode-cache counters register
        alongside under ``<prefix>_cache_*``.
        """
        from repro.obs import register_stats_gauges

        register_stats_gauges(
            registry, prefix, self,
            ("n_requests", "n_batches", "n_steps", "mean_batch_heads"),
        )
        self.cache.register_metrics(registry, prefix=f"{prefix}_cache")


@dataclass
class _Group:
    """A not-yet-executed shape group: members in arrival order plus age."""

    members: list[tuple[AttentionRequest, AttentionFuture]] = field(
        default_factory=list
    )
    age: int = 0

    def earliest_deadline(self) -> float | None:
        deadlines = [r.deadline for r, _ in self.members if r.deadline is not None]
        return min(deadlines) if deadlines else None


class SofaEngine:
    """Serving frontend: continuous batching scheduler, backends, futures.

    Parameters
    ----------
    config:
        Default :class:`SofaConfig` for requests that carry none.
    max_batch_heads:
        Fused-call width; a group executes as soon as it can fill one chunk.
    backend / max_workers:
        ``"sync"`` (inline) or ``"threads"`` (thread-pool chunk overlap).
    max_wait_batches:
        Starvation bound: a group executes after waiting this many
        scheduling rounds even if under-full.  ``None`` means groups wait
        for a full chunk, a deadline, or an explicit :meth:`flush`.
    kernel:
        Stage-kernel selection for this engine's default config.  A bare
        string picks the SU-FA ``"stream"`` kernel (the PR-4 meaning:
        ``"blocked"``/``"reference"``/registered name); a mapping pins any
        subset of the stages, e.g. ``{"predict": "fused", "select":
        "fused"}`` to engage the fused predict+select kernel (see
        :mod:`repro.kernels`).  ``None`` keeps the config's own selections
        (``"auto"`` = per-stage env var, then registry default).  Kernels
        are bit-for-bit interchangeable, so this only moves wall-clock
        time; requests carrying an explicit ``config`` keep their config's
        kernels.
    cache / cache_kind / cache_entries / cache_ttl_s:
        Pass ``cache`` to share a decode-step cache between engines, or
        let the engine build (and own) one via
        :func:`~repro.engine.cache.make_decode_cache`:
        ``cache_kind="paged"`` (default) is the block-pool store with
        prefix sharing and disk spill, ``"flat"`` the whole-entry LRU.
        ``cache_ttl_s`` bounds how long an *idle* entry (an abandoned
        decode sequence that never invalidated itself) stays resident;
        on top of the cache's own lazy sweeping the engine sweeps inside
        every :meth:`step`/:meth:`flush`, so idle expiry happens even
        when the surviving traffic never touches the cache
        (``stats.cache_expirations`` counts drops).
    cache_bytes / cache_block_tokens / cache_spill_dir:
        Paged-store knobs: RAM budget (cold blocks spill to disk under
        it), rows per block, and the spill/persistence directory (a
        temporary one is created when needed).  ``cache_bytes`` also
        bounds the flat store (which *evicts* under byte pressure instead
        of spilling); the other two are paged-only.
    """

    #: cached pre-converted operators kept per (weights, config) identity
    _OPERATOR_CACHE_SIZE = 16

    def __init__(
        self,
        config: SofaConfig | None = None,
        max_batch_heads: int = 64,
        backend: str = "sync",
        max_workers: int | None = None,
        max_wait_batches: int | None = None,
        kernel: "str | Mapping[str, str] | None" = None,
        cache: DecodeStepCache | None = None,
        cache_kind: str = "paged",
        cache_entries: int = 256,
        cache_ttl_s: float | None = None,
        cache_bytes: int | None = None,
        cache_block_tokens: int = 32,
        cache_spill_dir: str | None = None,
    ):
        if max_batch_heads < 1:
            raise ValueError("max_batch_heads must be >= 1")
        if max_wait_batches is not None and max_wait_batches < 0:
            raise ValueError("max_wait_batches must be >= 0 (or None)")
        self.config = config_with_kernels(config or SofaConfig(), kernel)
        self.max_batch_heads = max_batch_heads
        self.max_wait_batches = max_wait_batches
        self.executor = make_executor(backend, max_workers=max_workers)
        self._owns_cache = cache is None
        self.cache = (
            cache
            if cache is not None
            else make_decode_cache(
                cache_kind,
                max_entries=cache_entries,
                max_bytes=cache_bytes,
                ttl_s=cache_ttl_s,
                block_tokens=cache_block_tokens,
                spill_dir=cache_spill_dir,
            )
        )
        self.stats = EngineStats(cache=self.cache.stats)
        self._groups: OrderedDict[Hashable, _Group] = OrderedDict()
        self._operators: OrderedDict[Hashable, BatchedSofaAttention] = OrderedDict()
        self._op_lock = threading.Lock()  # worker threads share the LRU
        obs = get_telemetry()
        if obs.enabled:
            self.stats.register_metrics(obs.registry)
            engine_ref = weakref.ref(self)
            obs.register_gauge(
                "sofa_engine_pending_requests",
                lambda: float(e.pending) if (e := engine_ref()) else 0.0,
            )

    @property
    def backend(self) -> str:
        return self.executor.name

    def shutdown(self) -> None:
        """Release backend resources (idle engines hold none).

        An engine-owned cache is closed too (dropping an owned temporary
        spill directory); a shared ``cache=`` instance is left alone for
        its other users.
        """
        self.executor.shutdown()
        if self._owns_cache:
            self.cache.close()

    def sweep_cache(self) -> int:
        """Drop idle-past-TTL decode-cache entries; returns how many.

        Called from every scheduling round and by the cluster worker's
        idle loop, so abandoned sequences expire on wall-clock time even
        when no surviving request touches the cache (lazy sweeping alone
        would pin them until the next cache operation).
        """
        if self.cache.ttl_s is None:
            return 0
        return self.cache.sweep_expired()

    def resolved_kernels(self) -> dict[str, str]:
        """Per-stage kernel names the engine's default config resolves to.

        Resolution happens *here and now* - in this process, against this
        environment - so a cluster worker reporting this through its stats
        snapshot proves which kernels its engine actually runs (the env-var
        propagation coverage of the kernel-matrix CI job).
        """
        return resolved_kernels(self.config)

    def __enter__(self) -> "SofaEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------- submission
    def submit(self, request: AttentionRequest) -> AttentionFuture:
        """Admit one request into its shape group; returns its future.

        Shapes and the top-k budget are validated here, so a malformed
        request fails at submission instead of aborting the batch it would
        have joined.  Admission is continuous: the request joins the open
        group for its grid, including groups formed in earlier rounds that
        have not executed yet.
        """
        obs = get_telemetry()
        t0 = obs.clock()
        validate_request(request, self.config)
        obs.observe_since("sofa_engine_validate_seconds", t0)
        future = AttentionFuture(self)
        if obs.enabled:
            obs.inc("sofa_engine_requests_total")
            tokens = np.asarray(request.tokens)
            future.span = obs.start_span(
                "engine.request",
                attrs={"s": int(tokens.shape[0]),
                       "t": int(np.asarray(request.q).shape[0]),
                       "tag": request.tag or ""},
            )
        key = self._batch_key(request)
        group = self._groups.get(key)
        if group is None:
            group = _Group()
            self._groups[key] = group
        group.members.append((request, future))
        return future

    def submit_many(self, requests: list[AttentionRequest]) -> list[AttentionFuture]:
        return [self.submit(r) for r in requests]

    @property
    def pending(self) -> int:
        return sum(len(g.members) for g in self._groups.values())

    def invalidate_cache(self, key: Hashable) -> int:
        """Explicitly drop a sequence's decode-cache state (session ended).

        Drops both the exact-key entries and - for tuple keys - entries
        namespaced under ``key`` as their first element; returns how many
        entries were removed.
        """
        removed = self.cache.invalidate_prefix(key)
        # Raw keys are namespaced (user_key, config, weight_digest) by the
        # predictor, so prefix matching on the user key is the droppable set.
        return removed

    # -------------------------------------------------------------- scheduling
    def _batch_key(self, request: AttentionRequest) -> Hashable:
        """Requests batch together iff they share one cross-stage grid."""
        cfg = request.config or self.config
        tokens = np.asarray(request.tokens)
        q = np.asarray(request.q)
        # Dv comes from the value cache when one is supplied - caches of
        # different widths must not share a stack.  wv's own width still
        # joins the key: the projection stacks even when a cache overrides
        # it, so mismatched wv shapes must not group either.
        wv_cols = np.asarray(request.wv).shape[1]
        if request.v is not None:
            dv = np.asarray(request.v).shape[1]
        else:
            dv = wv_cols
        return (
            tokens.shape[0],  # S: the tiled key axis
            q.shape[0],  # T
            tokens.shape[1],  # H
            q.shape[1],  # Dk
            dv,
            wv_cols,
            request.v is not None,
            cfg,  # frozen dataclass: hashable; carries tile_cols & stage knobs
        )

    def _ready(self, group: _Group, now: float) -> bool:
        if len(group.members) >= self.max_batch_heads:
            return True
        if self.max_wait_batches is not None and group.age >= self.max_wait_batches:
            return True
        deadline = group.earliest_deadline()
        return deadline is not None and deadline <= now

    def step(self, now: float | None = None) -> list[BatchRecord]:
        """One scheduling round: execute every ready group, age the rest.

        A group is *ready* when it can fill a chunk (``max_batch_heads``
        members), has waited ``max_wait_batches`` rounds, or holds a request
        whose deadline has passed.  Groups that stay behind gain one round
        of age, so with a finite ``max_wait_batches`` no request waits more
        than that many rounds - the starvation bound.
        """
        now = time.monotonic() if now is None else now
        self.sweep_cache()
        ready = [k for k, g in self._groups.items() if self._ready(g, now)]
        try:
            return self._execute_keys(ready)
        finally:
            # Age even when a ready batch raised: the starvation bound must
            # hold for the groups left waiting regardless of neighbours'
            # failures (their own futures already carry the error).
            for group in self._groups.values():
                group.age += 1
            self.stats.n_steps += 1

    def flush(self) -> list[BatchRecord]:
        """Force-drain every group regardless of readiness.

        Returns the batch records executed by this drain.  A batch that
        raises resolves its own futures with the error and does not block
        the remaining batches; the first error is re-raised once the queue
        has fully drained.
        """
        self.sweep_cache()
        return self._execute_keys(list(self._groups.keys()))

    def run_until_drained(self, max_rounds: int | None = None) -> list[BatchRecord]:
        """Run scheduling rounds until no request is pending.

        With a finite ``max_wait_batches`` every group ages into readiness,
        so the loop terminates on rounds alone; otherwise (or when
        ``max_rounds`` is hit) the remainder is force-flushed.  Returns all
        batch records executed, in execution order.

        Like :meth:`flush`, a failing batch never aborts the drain: its own
        futures carry the error, every other group still executes, and the
        first error is re-raised once nothing is pending (a failing round's
        successful records remain visible in ``stats.batches``).
        """
        records: list[BatchRecord] = []
        first_error: Exception | None = None
        rounds = 0
        while self.pending:
            try:
                if max_rounds is not None and rounds >= max_rounds:
                    records.extend(self.flush())
                    break
                if self.max_wait_batches is None and not any(
                    self._ready(g, time.monotonic()) for g in self._groups.values()
                ):
                    records.extend(self.flush())
                    break
                stepped = self.step()
                records.extend(stepped)
                if not stepped:
                    # The caller is blocked in this loop, so no new request
                    # can join a waiting group: aging one round at a time
                    # only burns no-op rounds.  Fast-forward every group to
                    # the starvation bound; the next round executes them
                    # with the same waited_rounds accounting.
                    for group in self._groups.values():
                        group.age = max(group.age, self.max_wait_batches)
            except Exception as error:  # noqa: BLE001 - re-raised after the drain
                if first_error is None:
                    first_error = error
            rounds += 1
        if first_error is not None:
            raise first_error
        return records

    # -------------------------------------------------------------- execution
    def _execute_keys(self, keys: list[Hashable]) -> list[BatchRecord]:
        """Chunk and execute the named groups through the backend.

        Chunks are dispatched together (one backend round) and their
        outcomes gathered in dispatch order, so statistics and the
        first-error choice are identical for every backend.
        """
        chunks: list[tuple[list[tuple[AttentionRequest, AttentionFuture]], int]] = []
        for key in keys:
            group = self._groups.pop(key, None)
            if group is None or not group.members:
                continue
            cfg = group.members[0][0].config or self.config
            # A misprediction under max_assurance=False aborts a fused call
            # for every head in it; serve such requests unbatched so the
            # failure stays confined to the offending request.
            limit = self.max_batch_heads if cfg.sufa.max_assurance else 1
            for lo in range(0, len(group.members), limit):
                chunks.append((group.members[lo : lo + limit], group.age))
        if not chunks:
            return []

        tasks = [
            (lambda chunk=chunk, age=age: self._execute(chunk, age))
            for chunk, age in chunks
        ]
        outcomes = self.executor.run(tasks)

        records: list[BatchRecord] = []
        first_error: Exception | None = None
        obs = get_telemetry()
        for (chunk, _age), outcome in zip(chunks, outcomes):
            if isinstance(outcome, Exception):
                for _, future in chunk:
                    future.set_error(outcome)
                    obs.end_span(future.span, error=repr(outcome))
                    future.span = None
                if first_error is None:
                    first_error = outcome
            else:
                records.append(outcome)
                self.stats.n_requests += len(chunk)
        self.stats.record_batches(records)
        if first_error is not None:
            raise first_error
        return records

    def _operator(
        self, wk: np.ndarray, wv: np.ndarray, cfg: SofaConfig
    ) -> BatchedSofaAttention:
        """Build (or reuse) the pre-converted operator for a weight stack.

        Weight pre-conversion is the offline model-preparation step; serving
        loops resubmit the same projections every forward pass, so operators
        are cached under a digest of the weight bytes plus the config.
        """
        key = (
            cfg,
            wk.shape,
            wv.shape,
            hashlib.sha1(wk.tobytes()).hexdigest(),
            hashlib.sha1(wv.tobytes()).hexdigest(),
        )
        with self._op_lock:
            op = self._operators.get(key)
            if op is None:
                op = BatchedSofaAttention(wk, wv, cfg)
                self._operators[key] = op
                while len(self._operators) > self._OPERATOR_CACHE_SIZE:
                    self._operators.popitem(last=False)
            else:
                self._operators.move_to_end(key)
            return op

    def _execute(
        self,
        chunk: list[tuple[AttentionRequest, AttentionFuture]],
        waited_rounds: int = 0,
    ) -> BatchRecord:
        start = time.monotonic()
        requests = [r for r, _ in chunk]
        cfg = requests[0].config or self.config
        wk = np.stack([np.asarray(r.wk, dtype=np.float64) for r in requests])
        wv = np.stack([np.asarray(r.wv, dtype=np.float64) for r in requests])
        tokens = np.stack([np.asarray(r.tokens, dtype=np.float64) for r in requests])
        q = np.stack([np.asarray(r.q, dtype=np.float64) for r in requests])
        k_scales = np.array([r.k_scale for r in requests], dtype=np.float64)
        v_scales = np.array([r.v_scale for r in requests], dtype=np.float64)
        v = None
        if requests[0].v is not None:
            v = np.stack([np.asarray(r.v, dtype=np.float64) for r in requests])
        cache_keys = None
        if any(r.cache_key is not None for r in requests):
            cache_keys = [r.cache_key for r in requests]

        op = self._operator(wk, wv, cfg)
        obs = get_telemetry()
        with obs.span(
            "engine.batch",
            attrs={"n_heads": len(chunk), "s": int(tokens.shape[1]),
                   "waited_rounds": waited_rounds},
        ):
            result = op(
                tokens,
                q,
                k_scale=k_scales,
                v_scale=v_scales,
                v=v,
                cache=self.cache if cache_keys is not None else None,
                cache_keys=cache_keys,
            )
        end = time.monotonic()
        for (_, future), head_result in zip(chunk, result.per_head):
            future.set_result(head_result)
            obs.end_span(future.span)
            future.span = None
        queue_wait = max(
            0.0, start - min(f.submitted_at for _, f in chunk)
        )
        if obs.enabled:
            obs.inc("sofa_engine_batches_total")
            obs.observe("sofa_engine_queue_wait_seconds", queue_wait)
            obs.observe("sofa_engine_execute_seconds", end - start)
            for _, future in chunk:
                obs.observe(
                    "sofa_engine_request_latency_seconds",
                    max(0.0, end - future.submitted_at),
                )
        return BatchRecord(
            n_heads=len(chunk),
            seq_len=tokens.shape[1],
            n_queries=q.shape[1],
            tile_cols=cfg.tile_cols,
            waited_rounds=waited_rounds,
            queue_wait_s=queue_wait,
            execute_s=end - start,
        )

    # ------------------------------------------------------------ convenience
    def run(self, requests: list[AttentionRequest]) -> list[SofaAttentionResult]:
        """Submit, drain, and return results in request order."""
        futures = self.submit_many(requests)
        self.run_until_drained()
        return [f.result() for f in futures]
