"""SofaEngine: a batching serving frontend over the fused SOFA pipeline.

The paper accelerates one attention head at a time; a serving deployment
sees a *stream* of independent attention requests (one per head per layer
per active sequence).  This module provides the software analogue of the
accelerator's head-level scheduler:

* **Request queue** - callers :meth:`~SofaEngine.submit` independent
  :class:`AttentionRequest` objects and receive an :class:`AttentionFuture`
  immediately.
* **Greedy batch scheduler** - :meth:`~SofaEngine.flush` walks the queue in
  arrival order and greedily groups requests whose shapes share one
  cross-stage tiling grid: the batch key is ``(S, T, H, Dk, Dv, config)``,
  i.e. requests batch together exactly when they agree on the paper's
  ``(S, tile_cols)`` grid (plus the tensor shapes needed to stack them).
  Each group is executed as one :class:`BatchedSofaAttention` call of at
  most ``max_batch_heads`` heads.
* **Per-request futures** - every request resolves to the same
  :class:`~repro.core.pipeline.SofaAttentionResult` the sequential operator
  would have produced (bit-for-bit), so downstream accounting code cannot
  tell it was served from a batch.

The scheduler is deliberately synchronous (flush-driven): the repository's
execution model is deterministic NumPy, and determinism is part of the
engine's contract.  Wall-clock wins come from fusing the per-head NumPy
work, not from thread concurrency.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from repro.core.config import SofaConfig
from repro.core.pipeline import SofaAttentionResult
from repro.engine.batched import BatchedSofaAttention


@dataclass
class AttentionRequest:
    """One independent attention problem (a head of a layer of a sequence).

    ``wk``/``wv`` are the head's key/value projections (``(H, Dk)`` /
    ``(H, Dv)``); ``tokens`` is ``(S, H)``; ``q`` is ``(T, D)``.  ``v``
    optionally supplies a pre-computed value cache, and ``config`` overrides
    the engine default (requests only batch with compatible configs).
    """

    tokens: np.ndarray
    q: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    k_scale: float = 1.0
    v_scale: float = 1.0
    v: np.ndarray | None = None
    config: SofaConfig | None = None
    tag: str | None = None


class AttentionFuture:
    """Handle to a queued request; resolves when its batch executes.

    ``result()`` triggers a flush if the request is still queued, so callers
    may simply submit everything and read results in any order.
    """

    def __init__(self, engine: "SofaEngine", request: AttentionRequest):
        self._engine = engine
        self._request = request
        self._result: SofaAttentionResult | None = None
        self._error: Exception | None = None

    def done(self) -> bool:
        return self._result is not None or self._error is not None

    def set_result(self, result: SofaAttentionResult) -> None:
        self._result = result

    def set_error(self, error: Exception) -> None:
        self._error = error

    def result(self) -> SofaAttentionResult:
        if not self.done():
            try:
                self._engine.flush()
            except Exception:
                # flush re-raises the first batch failure; only propagate it
                # here when it is THIS request's failure - another request's
                # error must not leak into a successfully served result.
                if not self.done():
                    raise
        if self._error is not None:
            raise self._error
        assert self._result is not None, "flush must resolve every queued future"
        return self._result


@dataclass
class BatchRecord:
    """One executed batch: its grid and how many heads rode it."""

    n_heads: int
    seq_len: int
    n_queries: int
    tile_cols: int


@dataclass
class EngineStats:
    """Aggregate serving statistics since engine construction."""

    n_requests: int = 0
    n_batches: int = 0
    batches: list[BatchRecord] = field(default_factory=list)

    @property
    def mean_batch_heads(self) -> float:
        return self.n_requests / self.n_batches if self.n_batches else 0.0


class SofaEngine:
    """Serving frontend: queue, greedy shape-batching scheduler, futures."""

    #: cached pre-converted operators kept per (weights, config) identity
    _OPERATOR_CACHE_SIZE = 16

    def __init__(self, config: SofaConfig | None = None, max_batch_heads: int = 64):
        if max_batch_heads < 1:
            raise ValueError("max_batch_heads must be >= 1")
        self.config = config or SofaConfig()
        self.max_batch_heads = max_batch_heads
        self.stats = EngineStats()
        self._queue: list[tuple[AttentionRequest, AttentionFuture]] = []
        self._operators: OrderedDict[Hashable, BatchedSofaAttention] = OrderedDict()

    # ------------------------------------------------------------- submission
    def submit(self, request: AttentionRequest) -> AttentionFuture:
        """Queue one request; returns immediately with its future.

        Shapes and the top-k budget are validated here, so a malformed
        request fails at submission instead of aborting the batch it would
        have joined.
        """
        tokens = np.asarray(request.tokens)
        q = np.asarray(request.q)
        wk = np.asarray(request.wk)
        wv = np.asarray(request.wv)
        if tokens.ndim != 2 or q.ndim != 2 or wk.ndim != 2 or wv.ndim != 2:
            raise ValueError("request tensors must be 2-D per head")
        if tokens.shape[1] != wk.shape[0]:
            raise ValueError("tokens and wk disagree on the hidden dimension")
        if wv.shape[0] != wk.shape[0]:
            raise ValueError("wk and wv disagree on the hidden dimension")
        if q.shape[1] != wk.shape[1]:
            raise ValueError("q and wk disagree on the head dimension")
        if request.v is not None:
            v = np.asarray(request.v)
            if v.ndim != 2 or v.shape[0] != tokens.shape[0]:
                raise ValueError("value cache must be (S, Dv)")
        (request.config or self.config).resolve_top_k(tokens.shape[0])
        future = AttentionFuture(self, request)
        self._queue.append((request, future))
        return future

    def submit_many(self, requests: list[AttentionRequest]) -> list[AttentionFuture]:
        return [self.submit(r) for r in requests]

    @property
    def pending(self) -> int:
        return len(self._queue)

    # -------------------------------------------------------------- execution
    def _batch_key(self, request: AttentionRequest) -> Hashable:
        """Requests batch together iff they share one cross-stage grid."""
        cfg = request.config or self.config
        tokens = np.asarray(request.tokens)
        q = np.asarray(request.q)
        # Dv comes from the value cache when one is supplied - caches of
        # different widths must not share a stack.
        if request.v is not None:
            dv = np.asarray(request.v).shape[1]
        else:
            dv = np.asarray(request.wv).shape[1]
        return (
            tokens.shape[0],  # S: the tiled key axis
            q.shape[0],  # T
            tokens.shape[1],  # H
            q.shape[1],  # Dk
            dv,
            request.v is not None,
            cfg,  # frozen dataclass: hashable; carries tile_cols & stage knobs
        )

    def flush(self) -> list[BatchRecord]:
        """Drain the queue: greedy grouping in arrival order, fused execution.

        Returns the batch records executed by this flush.  A batch that
        raises resolves its own futures with the error and does not block
        the remaining batches; the first error is re-raised once the queue
        has fully drained.
        """
        if not self._queue:
            return []
        queue, self._queue = self._queue, []
        groups: dict[Hashable, list[tuple[AttentionRequest, AttentionFuture]]] = {}
        group_order: list[Hashable] = []
        for item in queue:
            key = self._batch_key(item[0])
            if key not in groups:
                groups[key] = []
                group_order.append(key)
            groups[key].append(item)

        records: list[BatchRecord] = []
        first_error: Exception | None = None
        for key in group_order:
            members = groups[key]
            cfg = members[0][0].config or self.config
            # A misprediction under max_assurance=False aborts a fused call
            # for every head in it; serve such requests unbatched so the
            # failure stays confined to the offending request.
            limit = self.max_batch_heads if cfg.sufa.max_assurance else 1
            for lo in range(0, len(members), limit):
                chunk = members[lo : lo + limit]
                try:
                    records.append(self._execute(chunk))
                    self.stats.n_requests += len(chunk)
                except Exception as error:  # noqa: BLE001 - forwarded to futures
                    for _, future in chunk:
                        future.set_error(error)
                    if first_error is None:
                        first_error = error
        self.stats.batches.extend(records)
        self.stats.n_batches += len(records)
        if first_error is not None:
            raise first_error
        return records

    def _operator(
        self, wk: np.ndarray, wv: np.ndarray, cfg: SofaConfig
    ) -> BatchedSofaAttention:
        """Build (or reuse) the pre-converted operator for a weight stack.

        Weight pre-conversion is the offline model-preparation step; serving
        loops resubmit the same projections every forward pass, so operators
        are cached under a digest of the weight bytes plus the config.
        """
        key = (
            cfg,
            wk.shape,
            wv.shape,
            hashlib.sha1(wk.tobytes()).hexdigest(),
            hashlib.sha1(wv.tobytes()).hexdigest(),
        )
        op = self._operators.get(key)
        if op is None:
            op = BatchedSofaAttention(wk, wv, cfg)
            self._operators[key] = op
            while len(self._operators) > self._OPERATOR_CACHE_SIZE:
                self._operators.popitem(last=False)
        else:
            self._operators.move_to_end(key)
        return op

    def _execute(
        self, chunk: list[tuple[AttentionRequest, AttentionFuture]]
    ) -> BatchRecord:
        requests = [r for r, _ in chunk]
        cfg = requests[0].config or self.config
        wk = np.stack([np.asarray(r.wk, dtype=np.float64) for r in requests])
        wv = np.stack([np.asarray(r.wv, dtype=np.float64) for r in requests])
        tokens = np.stack([np.asarray(r.tokens, dtype=np.float64) for r in requests])
        q = np.stack([np.asarray(r.q, dtype=np.float64) for r in requests])
        k_scales = np.array([r.k_scale for r in requests], dtype=np.float64)
        v_scales = np.array([r.v_scale for r in requests], dtype=np.float64)
        v = None
        if requests[0].v is not None:
            v = np.stack([np.asarray(r.v, dtype=np.float64) for r in requests])

        op = self._operator(wk, wv, cfg)
        result = op(tokens, q, k_scale=k_scales, v_scale=v_scales, v=v)
        for (_, future), head_result in zip(chunk, result.per_head):
            future.set_result(head_result)
        return BatchRecord(
            n_heads=len(chunk),
            seq_len=tokens.shape[1],
            n_queries=q.shape[1],
            tile_cols=cfg.tile_cols,
        )

    # ------------------------------------------------------------ convenience
    def run(self, requests: list[AttentionRequest]) -> list[SofaAttentionResult]:
        """Submit, flush, and return results in request order."""
        futures = self.submit_many(requests)
        self.flush()
        return [f.result() for f in futures]
