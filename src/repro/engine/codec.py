"""Wire codec for attention requests/results crossing a process boundary.

``repro.cluster`` ships :class:`~repro.engine.serving.AttentionRequest`
objects to engine worker processes and
:class:`~repro.core.pipeline.SofaAttentionResult` objects back.  Relying on
whatever ``pickle`` happens to do to those classes would tie the wire format
to their private layout; this module fixes an explicit, versioned payload
instead:

* payloads are plain built-ins (dicts, tuples, ints, floats, bytes), so any
  transport that can move built-ins (``multiprocessing`` queues, a socket
  with its own framing, a disk spill) can carry them;
* ndarrays travel as ``(bytes, dtype-str, shape)`` triples - the decode
  rebuilds the exact dtype and shape, so a round-trip is **bit-identical**
  by construction (the cluster's parity contract stands on this);
* every payload carries :data:`CODEC_VERSION`; decoding a mismatched
  version fails loudly instead of misinterpreting fields.

The deduplication fingerprint also lives here: two requests are duplicates
exactly when their canonical encodings agree byte for byte (metadata that
cannot change the result - the ``tag`` - is excluded).
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import asdict
from typing import Any

import numpy as np

from repro.core.config import DlzsConfig, SadsConfig, SofaConfig, SufaConfig
from repro.core.pipeline import SofaAttentionResult, StageTrace
from repro.engine.serving import AttentionRequest
from repro.numerics.complexity import OpCounter

#: Bump on any payload layout change; decoders reject other versions.
CODEC_VERSION = 1


def _encode_array(a: np.ndarray | None) -> tuple[bytes, str, tuple[int, ...]] | None:
    if a is None:
        return None
    a = np.ascontiguousarray(a)
    return (a.tobytes(), a.dtype.str, a.shape)


def _decode_array(payload: tuple[bytes, str, tuple[int, ...]] | None) -> np.ndarray | None:
    if payload is None:
        return None
    raw, dtype, shape = payload
    return np.frombuffer(raw, dtype=np.dtype(dtype)).reshape(shape).copy()


def encode_config(cfg: SofaConfig | None) -> dict[str, Any] | None:
    """Flatten the (nested, frozen) config into plain dicts."""
    return None if cfg is None else asdict(cfg)


def decode_config(payload: dict[str, Any] | None) -> SofaConfig | None:
    if payload is None:
        return None
    return SofaConfig(
        tile_cols=payload["tile_cols"],
        top_k=payload["top_k"],
        dlzs=DlzsConfig(**payload["dlzs"]),
        sads=SadsConfig(**payload["sads"]),
        sufa=SufaConfig(**payload["sufa"]),
    )


def encode_request(request: AttentionRequest) -> dict[str, Any]:
    """One request as a flat, transport-agnostic payload."""
    if request.cache_key is not None:
        # The key must survive the hop intact (workers namespace their cache
        # with it); pickling here keeps arbitrary hashables working while the
        # rest of the payload stays plain.
        cache_key = pickle.dumps(request.cache_key, protocol=pickle.HIGHEST_PROTOCOL)
    else:
        cache_key = None
    return {
        "v": CODEC_VERSION,
        "tokens": _encode_array(np.asarray(request.tokens)),
        "q": _encode_array(np.asarray(request.q)),
        "wk": _encode_array(np.asarray(request.wk)),
        "wv": _encode_array(np.asarray(request.wv)),
        "k_scale": float(request.k_scale),
        "v_scale": float(request.v_scale),
        "value_cache": _encode_array(
            None if request.v is None else np.asarray(request.v)
        ),
        "config": encode_config(request.config),
        "tag": request.tag,
        "cache_key": cache_key,
        "deadline": request.deadline,
    }


def decode_request(payload: dict[str, Any]) -> AttentionRequest:
    if payload.get("v") != CODEC_VERSION:
        raise ValueError(
            f"request payload version {payload.get('v')!r} != codec {CODEC_VERSION}"
        )
    cache_key = payload["cache_key"]
    return AttentionRequest(
        tokens=_decode_array(payload["tokens"]),
        q=_decode_array(payload["q"]),
        wk=_decode_array(payload["wk"]),
        wv=_decode_array(payload["wv"]),
        k_scale=payload["k_scale"],
        v_scale=payload["v_scale"],
        v=_decode_array(payload["value_cache"]),
        config=decode_config(payload["config"]),
        tag=payload["tag"],
        cache_key=None if cache_key is None else pickle.loads(cache_key),
        deadline=payload["deadline"],
    )


def request_fingerprint(payload: dict[str, Any]) -> str:
    """Digest identifying a request up to bit-identity.

    Everything that can influence the served result (tensors bit for bit,
    scales, config, cache key) feeds the digest; ``tag`` (caller metadata)
    and ``deadline`` (scheduling pressure, not semantics) do not.  Two
    requests with equal fingerprints therefore resolve to bit-identical
    results and may share one execution.
    """
    h = hashlib.sha256()
    for name in ("tokens", "q", "wk", "wv", "value_cache"):
        arr = payload[name]
        h.update(name.encode())
        if arr is None:
            h.update(b"\0none")
        else:
            raw, dtype, shape = arr
            h.update(repr((dtype, shape)).encode())
            h.update(raw)
    h.update(repr((payload["k_scale"], payload["v_scale"], payload["config"])).encode())
    h.update(b"key" + (payload["cache_key"] or b"\0none"))
    return h.hexdigest()


def encode_result(result: SofaAttentionResult) -> dict[str, Any]:
    """One result (output, selections, stage traces) as a plain payload."""
    return {
        "v": CODEC_VERSION,
        "output": _encode_array(result.output),
        "selected": _encode_array(result.selected),
        "stages": [
            {
                "name": st.name,
                "ops": dict(st.ops.counts),
                "dram_bytes": st.dram_bytes,
                "sram_peak_bytes": st.sram_peak_bytes,
            }
            for st in result.stages
        ],
        "assurance_triggers": result.assurance_triggers,
        "row_len": result._row_len,
    }


def decode_result(payload: dict[str, Any]) -> SofaAttentionResult:
    if payload.get("v") != CODEC_VERSION:
        raise ValueError(
            f"result payload version {payload.get('v')!r} != codec {CODEC_VERSION}"
        )
    stages = []
    for st in payload["stages"]:
        ops = OpCounter()
        for op, n in st["ops"].items():
            ops.add_op(op, n)
        stages.append(
            StageTrace(
                name=st["name"],
                ops=ops,
                dram_bytes=st["dram_bytes"],
                sram_peak_bytes=st["sram_peak_bytes"],
            )
        )
    return SofaAttentionResult(
        output=_decode_array(payload["output"]),
        selected=_decode_array(payload["selected"]),
        stages=stages,
        assurance_triggers=payload["assurance_triggers"],
        _row_len=payload["row_len"],
    )
