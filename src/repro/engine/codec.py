"""Wire codec for attention requests/results crossing a process boundary.

``repro.cluster`` ships :class:`~repro.engine.serving.AttentionRequest`
objects to engine worker processes and
:class:`~repro.core.pipeline.SofaAttentionResult` objects back.  Relying on
whatever ``pickle`` happens to do to those classes would tie the wire format
to their private layout; this module fixes an explicit, versioned payload
instead:

* payloads are plain built-ins (dicts, tuples, ints, floats, bytes), so any
  transport that can move built-ins (``multiprocessing`` queues, a socket
  with its own framing, a disk spill) can carry them;
* ndarrays travel as ``(bytes, dtype-str, shape)`` triples - the decode
  rebuilds the exact dtype and shape, so a round-trip is **bit-identical**
  by construction (the cluster's parity contract stands on this);
* every payload carries :data:`CODEC_VERSION`; decoding a mismatched
  version fails loudly instead of misinterpreting fields.

Malformed payloads never crash or hang a serving tier: every decoder
failure is a :class:`CodecError` subclass (:class:`CodecVersionError`,
:class:`TruncatedPayloadError`), which the worker loop and the cluster
frontend both convert into a *failed future* for the offending request.

The module also owns the **byte-stream framing** used by the socket
transport (:mod:`repro.cluster.transport`): :func:`encode_frame` prefixes
each message with a fixed header carrying a magic tag, the frame-format
version, the payload length and a CRC32 checksum, and
:class:`FrameDecoder` incrementally splits a TCP stream back into
messages.  A corrupted, truncated, or version-skewed stream raises the
matching :class:`FrameError` subclass instead of silently desyncing -
the transport converts that into a dead-link signal so the affected
requests re-route rather than hang.

The deduplication fingerprint also lives here: two requests are duplicates
exactly when their canonical encodings agree byte for byte (metadata that
cannot change the result - the ``tag`` - is excluded).
"""

from __future__ import annotations

import hashlib
import pickle
import struct
import zlib
from dataclasses import asdict
from typing import Any

import numpy as np

from repro.core.config import DlzsConfig, SadsConfig, SofaConfig, SufaConfig
from repro.core.pipeline import SofaAttentionResult, StageTrace
from repro.engine.serving import AttentionRequest
from repro.numerics.complexity import OpCounter

#: Bump on any payload layout change; decoders reject other versions.
CODEC_VERSION = 1


class CodecError(ValueError):
    """A payload (or frame) could not be decoded.

    Subclasses :class:`ValueError` so pre-existing ``except ValueError``
    handling keeps working; serving tiers route it to the offending
    request's future instead of letting it abort a batch or a worker.
    """


class CodecVersionError(CodecError):
    """Payload was produced by a different codec version."""


class TruncatedPayloadError(CodecError):
    """An encoded tensor's byte buffer does not match its dtype/shape."""


class FrameError(CodecError):
    """The byte stream does not parse as SOFA frames."""


class FrameVersionError(FrameError):
    """Frame header carries an unsupported frame-format version."""


class FrameChecksumError(FrameError):
    """Frame payload bytes do not match the header checksum."""


class TruncatedFrameError(FrameError):
    """The stream ended (or a buffer was handed over) mid-frame."""


# ----------------------------------------------------------------- framing
#: Bump on any change to the frame header layout below.
FRAME_VERSION = 1

_FRAME_MAGIC = b"SOFA"
#: magic(4) | frame version u16 | flags u16 (reserved) | payload length u32
#: | payload crc32 u32 - big-endian, 16 bytes total.
_FRAME_HEADER = struct.Struct(">4sHHII")
FRAME_HEADER_SIZE = _FRAME_HEADER.size

#: Upper bound accepted for one frame payload (guards a desynced or hostile
#: stream from forcing a huge allocation off four garbage length bytes).
MAX_FRAME_PAYLOAD = 1 << 31


def encode_frame(message: Any) -> bytes:
    """One wire-protocol message as a length-prefixed, checksummed frame.

    ``message`` is a plain-built-ins protocol tuple (request/result
    payloads already encoded via this module), pickled for transit - the
    tensor bytes inside the payload are untouched, so the socket hop is as
    bit-exact as the ``multiprocessing`` queue hop.
    """
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    header = _FRAME_HEADER.pack(
        _FRAME_MAGIC, FRAME_VERSION, 0, len(payload), zlib.crc32(payload)
    )
    return header + payload


class FrameDecoder:
    """Incrementally split a byte stream back into protocol messages.

    Feed arbitrary chunks (as a socket delivers them) with :meth:`feed`;
    complete messages come back in order.  Errors are loud and permanent:
    a bad magic, version, checksum or oversized length poisons the decoder
    (the stream position is unrecoverable once framing is lost).
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._error: FrameError | None = None

    @property
    def buffered_bytes(self) -> int:
        return len(self._buffer)

    def _fail(self, error: FrameError) -> FrameError:
        self._error = error
        return error

    def feed(self, data: bytes) -> list[Any]:
        """Consume ``data``; return every message completed by it."""
        if self._error is not None:
            raise self._error
        self._buffer.extend(data)
        messages: list[Any] = []
        while True:
            if len(self._buffer) < FRAME_HEADER_SIZE:
                return messages
            magic, version, _flags, length, crc = _FRAME_HEADER.unpack_from(
                self._buffer
            )
            if magic != _FRAME_MAGIC:
                raise self._fail(
                    FrameError(
                        f"bad frame magic {bytes(magic)!r}; stream desynced"
                    )
                )
            if version != FRAME_VERSION:
                raise self._fail(
                    FrameVersionError(
                        f"frame version {version} != supported {FRAME_VERSION}"
                    )
                )
            if length > MAX_FRAME_PAYLOAD:
                raise self._fail(
                    FrameError(f"frame length {length} exceeds maximum")
                )
            if len(self._buffer) < FRAME_HEADER_SIZE + length:
                return messages
            payload = bytes(
                self._buffer[FRAME_HEADER_SIZE : FRAME_HEADER_SIZE + length]
            )
            del self._buffer[: FRAME_HEADER_SIZE + length]
            if zlib.crc32(payload) != crc:
                raise self._fail(
                    FrameChecksumError(
                        "frame checksum mismatch (corrupted payload)"
                    )
                )
            try:
                messages.append(pickle.loads(payload))
            except Exception as error:  # noqa: BLE001 - reported, not crashed
                raise self._fail(
                    FrameError(f"frame payload failed to unpickle: {error!r}")
                ) from error

    def close(self) -> None:
        """Declare end-of-stream; raises if a partial frame is buffered."""
        if self._error is None and self._buffer:
            raise self._fail(
                TruncatedFrameError(
                    f"stream ended with {len(self._buffer)} byte(s) of an "
                    "incomplete frame"
                )
            )


def _encode_array(a: np.ndarray | None) -> tuple[bytes, str, tuple[int, ...]] | None:
    if a is None:
        return None
    a = np.ascontiguousarray(a)
    return (a.tobytes(), a.dtype.str, a.shape)


def _decode_array(payload: tuple[bytes, str, tuple[int, ...]] | None) -> np.ndarray | None:
    if payload is None:
        return None
    try:
        raw, dtype, shape = payload
        np_dtype = np.dtype(dtype)
        expected = int(np.prod(shape, dtype=np.int64)) * np_dtype.itemsize
    except (TypeError, ValueError) as error:
        raise CodecError(f"malformed array payload: {error!r}") from error
    if len(raw) != expected:
        raise TruncatedPayloadError(
            f"array payload carries {len(raw)} byte(s) but dtype {dtype} "
            f"with shape {tuple(shape)} needs {expected}"
        )
    return np.frombuffer(raw, dtype=np_dtype).reshape(shape).copy()


def encode_config(cfg: SofaConfig | None) -> dict[str, Any] | None:
    """Flatten the (nested, frozen) config into plain dicts."""
    return None if cfg is None else asdict(cfg)


def decode_config(payload: dict[str, Any] | None) -> SofaConfig | None:
    if payload is None:
        return None
    return SofaConfig(
        tile_cols=payload["tile_cols"],
        top_k=payload["top_k"],
        dlzs=DlzsConfig(**payload["dlzs"]),
        sads=SadsConfig(**payload["sads"]),
        sufa=SufaConfig(**payload["sufa"]),
    )


def encode_request(
    request: AttentionRequest,
    trace: tuple[str, str] | None = None,
) -> dict[str, Any]:
    """One request as a flat, transport-agnostic payload.

    ``trace`` optionally carries the frontend's ``(trace_id, span_id)``
    telemetry context so the worker can parent its spans under the
    submitting request's timeline.  The field is additive and
    observability-only: old decoders ignore unknown keys, frames without
    it decode exactly as before (``CODEC_VERSION`` is unchanged), and
    :func:`request_fingerprint` hashes a fixed key list that excludes it,
    so tracing can never split request dedup.
    """
    if request.cache_key is not None:
        # The key must survive the hop intact (workers namespace their cache
        # with it); pickling here keeps arbitrary hashables working while the
        # rest of the payload stays plain.
        cache_key = pickle.dumps(request.cache_key, protocol=pickle.HIGHEST_PROTOCOL)
    else:
        cache_key = None
    payload = {
        "v": CODEC_VERSION,
        "tokens": _encode_array(np.asarray(request.tokens)),
        "q": _encode_array(np.asarray(request.q)),
        "wk": _encode_array(np.asarray(request.wk)),
        "wv": _encode_array(np.asarray(request.wv)),
        "k_scale": float(request.k_scale),
        "v_scale": float(request.v_scale),
        "value_cache": _encode_array(
            None if request.v is None else np.asarray(request.v)
        ),
        "config": encode_config(request.config),
        "tag": request.tag,
        "cache_key": cache_key,
        "deadline": request.deadline,
    }
    if trace is not None:
        payload["trace"] = (str(trace[0]), str(trace[1]))
    return payload


def request_trace_context(payload: dict[str, Any]) -> tuple[str, str] | None:
    """The ``(trace_id, span_id)`` a request frame carries, if any.

    Defensive on purpose: frames from older encoders have no ``trace``
    key, and a malformed field is treated as absent rather than failing
    a request over telemetry metadata.
    """
    trace = payload.get("trace")
    if (
        isinstance(trace, (tuple, list))
        and len(trace) == 2
        and all(isinstance(part, str) and part for part in trace)
    ):
        return (trace[0], trace[1])
    return None


def decode_request(payload: dict[str, Any]) -> AttentionRequest:
    if payload.get("v") != CODEC_VERSION:
        raise CodecVersionError(
            f"request payload version {payload.get('v')!r} != codec {CODEC_VERSION}"
        )
    cache_key = payload["cache_key"]
    return AttentionRequest(
        tokens=_decode_array(payload["tokens"]),
        q=_decode_array(payload["q"]),
        wk=_decode_array(payload["wk"]),
        wv=_decode_array(payload["wv"]),
        k_scale=payload["k_scale"],
        v_scale=payload["v_scale"],
        v=_decode_array(payload["value_cache"]),
        config=decode_config(payload["config"]),
        tag=payload["tag"],
        cache_key=None if cache_key is None else pickle.loads(cache_key),
        deadline=payload["deadline"],
    )


def request_fingerprint(payload: dict[str, Any]) -> str:
    """Digest identifying a request up to bit-identity.

    Everything that can influence the served result (tensors bit for bit,
    scales, config, cache key) feeds the digest; ``tag`` (caller metadata)
    and ``deadline`` (scheduling pressure, not semantics) do not.  Two
    requests with equal fingerprints therefore resolve to bit-identical
    results and may share one execution.
    """
    h = hashlib.sha256()
    for name in ("tokens", "q", "wk", "wv", "value_cache"):
        arr = payload[name]
        h.update(name.encode())
        if arr is None:
            h.update(b"\0none")
        else:
            raw, dtype, shape = arr
            h.update(repr((dtype, shape)).encode())
            h.update(raw)
    h.update(repr((payload["k_scale"], payload["v_scale"], payload["config"])).encode())
    h.update(b"key" + (payload["cache_key"] or b"\0none"))
    return h.hexdigest()


def encode_result(result: SofaAttentionResult) -> dict[str, Any]:
    """One result (output, selections, stage traces) as a plain payload."""
    return {
        "v": CODEC_VERSION,
        "output": _encode_array(result.output),
        "selected": _encode_array(result.selected),
        "stages": [
            {
                "name": st.name,
                "ops": dict(st.ops.counts),
                "dram_bytes": st.dram_bytes,
                "sram_peak_bytes": st.sram_peak_bytes,
            }
            for st in result.stages
        ],
        "assurance_triggers": result.assurance_triggers,
        "row_len": result._row_len,
    }


def decode_result(payload: dict[str, Any]) -> SofaAttentionResult:
    if payload.get("v") != CODEC_VERSION:
        raise CodecVersionError(
            f"result payload version {payload.get('v')!r} != codec {CODEC_VERSION}"
        )
    stages = []
    for st in payload["stages"]:
        ops = OpCounter()
        for op, n in st["ops"].items():
            ops.add_op(op, n)
        stages.append(
            StageTrace(
                name=st["name"],
                ops=ops,
                dram_bytes=st["dram_bytes"],
                sram_peak_bytes=st["sram_peak_bytes"],
            )
        )
    return SofaAttentionResult(
        output=_decode_array(payload["output"]),
        selected=_decode_array(payload["selected"]),
        stages=stages,
        assurance_triggers=payload["assurance_triggers"],
        _row_len=payload["row_len"],
    )
