"""``repro.engine``: batched multi-head execution and serving for SOFA.

The paper's pipeline is defined per attention head; production traffic is a
stream of many heads from many requests.  This package scales the functional
model along that axis:

:class:`~repro.engine.batched.BatchedSofaAttention`
    Fused DLZS -> SADS -> SU-FA over a ``(batch * heads)`` stack with no
    per-head Python loop in any compute stage, bit-for-bit equal to the
    sequential :class:`~repro.core.pipeline.SofaAttention` per head.
:class:`~repro.engine.serving.SofaEngine`
    A request queue with a greedy shape-batching scheduler and per-request
    futures - the software analogue of the accelerator's head scheduler.
"""

from repro.engine.batched import BatchedSofaAttention, BatchedSofaResult
from repro.engine.serving import (
    AttentionFuture,
    AttentionRequest,
    BatchRecord,
    EngineStats,
    SofaEngine,
)

__all__ = [
    "BatchedSofaAttention",
    "BatchedSofaResult",
    "AttentionFuture",
    "AttentionRequest",
    "BatchRecord",
    "EngineStats",
    "SofaEngine",
]
