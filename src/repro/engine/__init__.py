"""``repro.engine``: batched multi-head execution and serving for SOFA.

The paper's pipeline is defined per attention head; production traffic is a
stream of many heads from many requests arriving over time.  This package
scales the functional model along that axis:

:class:`~repro.engine.batched.BatchedSofaAttention`
    Fused DLZS -> SADS -> SU-FA over a ``(batch * heads)`` stack with no
    per-head Python loop in any compute stage, bit-for-bit equal to the
    sequential :class:`~repro.core.pipeline.SofaAttention` per head.
:class:`~repro.engine.serving.SofaEngine`
    A request queue with a continuously-batching, starvation-free scheduler
    (``max_wait_batches``/deadline admission), per-request futures, and a
    ``backend="sync"|"threads"`` execution switch - the software analogue
    of the accelerator's head scheduler.
:class:`~repro.engine.cache.DecodeStepCache` /
:class:`~repro.engine.paged.PagedDecodeCache`
    Keyed reuse of quantized ``K_hat``/DLZS prediction state across decode
    steps of a growing sequence, with explicit invalidation and exact
    hit/miss accounting.  The flat store is a per-sequence LRU; the paged
    store (the serving default, built via
    :func:`~repro.engine.cache.make_decode_cache`) decomposes entries
    into a refcounted content-addressed block pool with cross-sequence
    prefix sharing, a hard RAM budget enforced by disk spill, and
    restart survival through ``persist()``.
:mod:`repro.engine.executor`
    The execution backends behind the engine's futures API.
:mod:`repro.engine.codec`
    The explicit wire codec (requests/results as plain built-ins,
    bit-exact tensor round-trips) that carries work to ``repro.cluster``
    worker processes.
"""

from repro.engine.batched import BatchedSofaAttention, BatchedSofaResult
from repro.engine.cache import (
    CacheStats,
    DecodeCacheEntry,
    DecodeStepCache,
    make_decode_cache,
    prefix_matches,
)
from repro.engine.codec import (
    decode_request,
    decode_result,
    encode_request,
    encode_result,
    request_fingerprint,
)
from repro.engine.executor import SyncExecutor, ThreadedExecutor, make_executor
from repro.engine.paged import PagedDecodeCache
from repro.engine.serving import (
    AttentionFuture,
    AttentionRequest,
    BatchRecord,
    EngineStats,
    SofaEngine,
    validate_request,
)

__all__ = [
    "BatchedSofaAttention",
    "BatchedSofaResult",
    "AttentionFuture",
    "AttentionRequest",
    "BatchRecord",
    "CacheStats",
    "DecodeCacheEntry",
    "DecodeStepCache",
    "EngineStats",
    "PagedDecodeCache",
    "SofaEngine",
    "SyncExecutor",
    "ThreadedExecutor",
    "decode_request",
    "decode_result",
    "encode_request",
    "encode_result",
    "make_decode_cache",
    "make_executor",
    "prefix_matches",
    "request_fingerprint",
    "validate_request",
]
