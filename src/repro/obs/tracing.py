"""Request-lifecycle tracing: spans, a bounded ring buffer, Chrome export.

**Span model.**  A :class:`Span` is one timed slice of a request's life:
``cluster.request`` (frontend root, submit to resolution) >
``cluster.rpc`` (dispatch to result frame) > ``worker.request`` (the
worker-side wall time of that request) > ``engine.batch`` (the fused call
that served it) > ``stage.predict`` / ``stage.select`` /
``stage.predict_select_fused`` / ``stage.kv_gather`` / ``stage.stream``
(the pipeline stages inside the batch), with cache lookups/spills and
codec encode/decode timed alongside as histogram observations.  Spans
form a tree through ``parent_id``; a per-thread stack makes nesting
automatic for context-manager spans (:meth:`Tracer.span`), while
start/end pairs (:meth:`Tracer.start` / :meth:`Tracer.end`) cross
threads and methods freely (a request span starts on the submit path and
ends on whichever executor thread resolves its future).

**Cross-process stitching.**  Trace and span IDs are random 64-bit hex
strings; the cluster frontend injects its root span's ``(trace_id,
span_id)`` into the request payload (the optional ``trace`` codec field,
:func:`repro.engine.codec.encode_request`), the worker parents its
``worker.request`` span under it, and the worker's finished spans ride
home piggybacked on the stats-snapshot channel where
:meth:`Tracer.ingest` merges them - one timeline, frontend and worker
spans sharing a trace ID across the process (or socket) boundary.
Timestamps anchor on wall-clock ``time.time()`` (durations on the
monotonic ``time.perf_counter()``), so same-host processes line up
exactly and cross-host alignment is as good as NTP.

**Bounded memory.**  Finished spans live in a ``deque(maxlen=capacity)``
ring: a long-lived serving process keeps the most recent ``capacity``
spans and silently drops the oldest - telemetry must never become the
memory leak it is meant to find.

**Export.**  :meth:`Tracer.chrome_trace` renders the buffer as Chrome
trace-event JSON (``chrome://tracing`` / Perfetto): one complete
(``"ph": "X"``) event per span with microsecond timestamps, plus process
metadata naming each pid.  Trace/span/parent IDs travel in ``args``.

Overhead budget: a span is one object, two clock reads and one deque
append; the full plane stays under 3% end-to-end (``BENCH_obs.json``)
and is a no-op when :mod:`repro.obs` is disabled.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterable, Mapping

__all__ = ["Span", "Tracer", "new_trace_id", "new_span_id"]

#: Default ring-buffer capacity (finished spans retained per process).
DEFAULT_CAPACITY = 4096


def new_trace_id() -> str:
    """Random 64-bit trace identifier (hex)."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """Random 64-bit span identifier (hex)."""
    return os.urandom(8).hex()


class Span:
    """One in-progress timed slice; becomes a plain dict when ended."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id",
        "start_wall", "start_perf", "attrs",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        attrs: dict[str, Any] | None,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_wall = time.time()
        self.start_perf = time.perf_counter()
        self.attrs = attrs


class Tracer:
    """Span factory plus the bounded ring buffer of finished spans."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        process_label: str | None = None,
    ):
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        self.process_label = process_label or f"pid-{os.getpid()}"
        self._spans: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------ span stack
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self) -> Span | None:
        """This thread's innermost open context-manager span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -------------------------------------------------------------- lifecycle
    def start(
        self,
        name: str,
        trace_id: str | None = None,
        parent_id: str | None = None,
        attrs: Mapping[str, Any] | None = None,
    ) -> Span:
        """Open a span; defaults parentage to this thread's context stack.

        Explicit ``trace_id``/``parent_id`` override the stack - that is
        the cross-process hook (a worker parents its span under the
        frontend's propagated context).
        """
        if trace_id is None:
            current = self.current_span()
            if current is not None:
                trace_id = current.trace_id
                if parent_id is None:
                    parent_id = current.span_id
            else:
                trace_id = new_trace_id()
        return Span(name, trace_id, new_span_id(), parent_id,
                    dict(attrs) if attrs else None)

    def end(self, span: Span, **extra_attrs: Any) -> dict[str, Any]:
        """Close ``span``; the finished record joins the ring buffer."""
        duration = time.perf_counter() - span.start_perf
        attrs = dict(span.attrs) if span.attrs else {}
        attrs.update(extra_attrs)
        record = {
            "name": span.name,
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "start_wall": span.start_wall,
            "duration_s": duration,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "process": self.process_label,
            "attrs": attrs,
        }
        with self._lock:
            self._spans.append(record)
        return record

    @contextmanager
    def span(
        self,
        name: str,
        trace_id: str | None = None,
        parent_id: str | None = None,
        attrs: Mapping[str, Any] | None = None,
    ):
        """Context-manager span: pushes onto this thread's nesting stack."""
        opened = self.start(name, trace_id=trace_id, parent_id=parent_id,
                            attrs=attrs)
        stack = self._stack()
        stack.append(opened)
        try:
            yield opened
        except BaseException as error:
            stack.pop()
            self.end(opened, error=repr(error))
            raise
        else:
            stack.pop()
            self.end(opened)

    # ---------------------------------------------------------------- buffer
    def ingest(self, records: Iterable[Mapping[str, Any]]) -> int:
        """Merge finished spans from another process (worker piggyback)."""
        n = 0
        with self._lock:
            for record in records:
                if isinstance(record, Mapping) and "name" in record:
                    self._spans.append(dict(record))
                    n += 1
        return n

    def spans(self) -> list[dict[str, Any]]:
        """Finished spans currently buffered (oldest first)."""
        with self._lock:
            return list(self._spans)

    def drain(self) -> list[dict[str, Any]]:
        """Pop and return every buffered span (the piggyback channel)."""
        with self._lock:
            records = list(self._spans)
            self._spans.clear()
        return records

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    # ---------------------------------------------------------------- export
    def chrome_trace(
        self, records: Iterable[Mapping[str, Any]] | None = None
    ) -> dict[str, Any]:
        """The buffered (or given) spans as Chrome trace-event JSON.

        Complete (``"ph": "X"``) events with microsecond wall-clock
        timestamps; one ``process_name`` metadata event per distinct pid.
        Load the serialized dict in ``chrome://tracing`` or Perfetto.
        """
        if records is None:
            records = self.spans()
        events: list[dict[str, Any]] = []
        process_names: dict[int, str] = {}
        for record in records:
            pid = int(record.get("pid", 0))
            process_names.setdefault(
                pid, str(record.get("process") or f"pid-{pid}")
            )
            args = {
                "trace_id": record.get("trace_id"),
                "span_id": record.get("span_id"),
                "parent_id": record.get("parent_id"),
            }
            args.update(record.get("attrs") or {})
            events.append({
                "name": str(record.get("name", "?")),
                "cat": "sofa",
                "ph": "X",
                "ts": float(record.get("start_wall", 0.0)) * 1e6,
                "dur": max(float(record.get("duration_s", 0.0)), 0.0) * 1e6,
                "pid": pid,
                "tid": int(record.get("tid", 0)),
                "args": args,
            })
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": label},
            }
            for pid, label in sorted(process_names.items())
        ]
        return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}
