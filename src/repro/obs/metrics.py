"""Process-local metrics registry: counters, gauges, latency histograms.

The serving stack's stats objects (:class:`~repro.engine.serving.
EngineStats`, :class:`~repro.engine.cache.CacheStats`,
:class:`~repro.cluster.serving.ClusterStats`) *count* events; this module
adds the export surface on top of them: a :class:`MetricsRegistry` that
instruments register into and that renders either a flat JSON snapshot
(:meth:`MetricsRegistry.snapshot` - the shape cluster workers piggyback on
their stats channel) or a Prometheus-style text exposition
(:meth:`MetricsRegistry.render_prometheus` - the shape ROADMAP item 4's
``/metrics`` endpoint serves).

Instrument kinds:

:class:`Counter`
    Monotone event tally (``sofa_engine_requests_total``).
:class:`Gauge`
    Point-in-time value, either set explicitly or **callback-backed**: the
    existing stats dataclasses register their counters as callback gauges
    (via :meth:`~repro.engine.cache.CacheStats.register_metrics` and
    friends), so the registry reads whatever they currently say instead of
    double-counting alongside them.  Callbacks are held through weakrefs
    by the registrars, so a retired engine's gauges decay to 0 instead of
    pinning it.
:class:`Histogram`
    Fixed-bucket latency distribution with p50/p90/p99 estimation by
    linear interpolation inside the landing bucket - the classic
    Prometheus-histogram quantile estimate, honest to within one bucket's
    width.  The default buckets span 50 microseconds to 10 seconds, log-ish
    spaced, which covers everything from one codec encode to a full
    long-selection batch.
:class:`Info`
    A label-set constant (``sofa_kernels{stage="predict",kernel="fused"}
    1``) - which kernels/config a process actually resolved.

Everything is thread-safe (engines time batches on pool threads) and
allocation-light: an ``observe`` is one lock plus one ``bisect``.  The
registry never evaluates gauge callbacks while holding its own lock, so a
callback may take serving-tier locks without deadlocking a concurrent
instrument lookup.

Overhead budget: the whole telemetry plane (this module plus
:mod:`repro.obs.tracing`) must cost < 3% end-to-end throughput when
enabled (``BENCH_obs.json`` is the committed proof) and compile to a
single predicate check when disabled (see :mod:`repro.obs`).
"""

from __future__ import annotations

import bisect
import threading
import weakref
from typing import Any, Callable, Iterable, Mapping

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "Info",
    "MetricsRegistry",
    "merge_snapshots",
    "register_stats_gauges",
    "render_prometheus_snapshot",
]

#: Default histogram bucket upper bounds (seconds): 50us .. 10s, log-ish.
#: An implicit +Inf bucket catches everything above the last bound.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """Monotone event counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {n})")
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Point-in-time value; explicitly set or read through a callback."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._callback: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        self._callback = None
        self._value = float(value)

    def set_callback(self, fn: Callable[[], float]) -> None:
        """Back this gauge with ``fn`` (replacing any previous source).

        Re-registration replaces the callback: serving objects are
        process-singletons in deployment (one engine per worker process),
        so the latest registrant is the live one.
        """
        self._callback = fn

    @property
    def value(self) -> float:
        fn = self._callback
        if fn is not None:
            try:
                return float(fn())
            except Exception:  # noqa: BLE001 - a dead provider reads as 0
                return 0.0
        return self._value


class Histogram:
    """Fixed-bucket distribution with interpolated quantile estimates."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ) or bounds[0] <= 0:
            raise ValueError(
                f"histogram {name} buckets must be positive and strictly "
                f"increasing, got {bounds}"
            )
        self.name = name
        self.help = help
        self.buckets = bounds
        # counts[i] = observations in (bounds[i-1], bounds[i]];
        # counts[-1] = overflow above the last finite bound (the +Inf bucket).
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> list[int]:
        """Per-bucket (non-cumulative) counts; last entry is the overflow."""
        with self._lock:
            return list(self._counts)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (linear interpolation in-bucket).

        Observations landing above the last finite bound clamp to it (the
        +Inf bucket has no width to interpolate across); an empty histogram
        reads 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return 0.0
        target = q * total
        cumulative = 0
        for i, c in enumerate(counts):
            if c == 0:
                continue
            if cumulative + c >= target:
                if i >= len(self.buckets):  # overflow bucket: clamp
                    return self.buckets[-1]
                lo = 0.0 if i == 0 else self.buckets[i - 1]
                hi = self.buckets[i]
                frac = (target - cumulative) / c
                return lo + (hi - lo) * frac
            cumulative += c
        return self.buckets[-1]

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p90(self) -> float:
        return self.quantile(0.90)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)


class Info:
    """A set of string labels exported as a constant-1 sample."""

    kind = "info"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._labels: dict[str, str] = {}
        self._lock = threading.Lock()

    def update(self, labels: Mapping[str, str]) -> None:
        with self._lock:
            for key, value in labels.items():
                self._labels[str(key)] = str(value)

    @property
    def labels(self) -> dict[str, str]:
        with self._lock:
            return dict(self._labels)


class MetricsRegistry:
    """Named instruments plus the two export renderings.

    Lookups are get-or-create and idempotent; asking for an existing name
    with a different instrument kind raises (a histogram and a counter
    sharing one name would export garbage).
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Any:
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls(name, help, **kwargs)
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {inst.kind}, "
                    f"not {cls.kind}"
                )
            return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(
        self,
        name: str,
        help: str = "",
        callback: Callable[[], float] | None = None,
    ) -> Gauge:
        gauge = self._get_or_create(Gauge, name, help)
        if callback is not None:
            gauge.set_callback(callback)
        return gauge

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def info(self, name: str, help: str = "") -> Info:
        return self._get_or_create(Info, name, help)

    def _sorted_instruments(self) -> list[Any]:
        # Snapshot the table under the lock, but evaluate instruments (gauge
        # callbacks may take serving-tier locks) outside it: holding the
        # registry lock across a callback could deadlock against a thread
        # that holds a serving lock and is creating an instrument here.
        with self._lock:
            return [self._instruments[k] for k in sorted(self._instruments)]

    def snapshot(self) -> dict[str, Any]:
        """Flat, JSON-safe view of every instrument.

        This is the wire shape: cluster workers ship it piggybacked on
        their stats-snapshot channel, and :func:`merge_snapshots` folds
        several of them into one cluster-wide view.
        """
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, Any] = {}
        infos: dict[str, dict[str, str]] = {}
        for inst in self._sorted_instruments():
            if isinstance(inst, Counter):
                counters[inst.name] = inst.value
            elif isinstance(inst, Gauge):
                gauges[inst.name] = inst.value
            elif isinstance(inst, Histogram):
                histograms[inst.name] = {
                    "buckets": list(inst.buckets),
                    "counts": inst.bucket_counts(),
                    "count": inst.count,
                    "sum": inst.sum,
                    "p50": inst.p50,
                    "p90": inst.p90,
                    "p99": inst.p99,
                }
            elif isinstance(inst, Info):
                infos[inst.name] = inst.labels
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "infos": infos,
        }

    def render_prometheus(self) -> str:
        """Prometheus text-exposition rendering of every instrument."""
        lines: list[str] = []
        for inst in self._sorted_instruments():
            if inst.help:
                lines.append(f"# HELP {inst.name} {inst.help}")
            if isinstance(inst, Counter):
                lines.append(f"# TYPE {inst.name} counter")
                lines.append(f"{inst.name} {_fmt(inst.value)}")
            elif isinstance(inst, Gauge):
                lines.append(f"# TYPE {inst.name} gauge")
                lines.append(f"{inst.name} {_fmt(inst.value)}")
            elif isinstance(inst, Histogram):
                lines.append(f"# TYPE {inst.name} histogram")
                cumulative = 0
                counts = inst.bucket_counts()
                for bound, c in zip(inst.buckets, counts):
                    cumulative += c
                    lines.append(
                        f'{inst.name}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
                    )
                lines.append(
                    f'{inst.name}_bucket{{le="+Inf"}} {cumulative + counts[-1]}'
                )
                lines.append(f"{inst.name}_sum {_fmt(inst.sum)}")
                lines.append(f"{inst.name}_count {inst.count}")
            elif isinstance(inst, Info):
                lines.append(f"# TYPE {inst.name} gauge")
                labels = ",".join(
                    f'{k}="{v}"' for k, v in sorted(inst.labels.items())
                )
                lines.append(f"{inst.name}{{{labels}}} 1")
        return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    """Shortest faithful float rendering (ints without a trailing .0)."""
    f = float(value)
    return str(int(f)) if f == int(f) and abs(f) < 1e15 else repr(f)


def merge_snapshots(*snapshots: Mapping[str, Any]) -> dict[str, Any]:
    """Fold several :meth:`MetricsRegistry.snapshot` dicts into one.

    Counters and histogram bucket tallies sum (they are per-process event
    counts); gauges sum too - every gauge the stack registers is a counter
    reading or an occupancy, both of which aggregate additively across
    workers.  Histogram quantiles are re-estimated from the merged
    buckets; merging histograms with different bucket layouts raises.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    hists: dict[str, dict[str, Any]] = {}
    infos: dict[str, dict[str, str]] = {}
    for snap in snapshots:
        if not snap:
            continue
        for name, value in (snap.get("counters") or {}).items():
            counters[name] = counters.get(name, 0.0) + float(value)
        for name, value in (snap.get("gauges") or {}).items():
            gauges[name] = gauges.get(name, 0.0) + float(value)
        for name, labels in (snap.get("infos") or {}).items():
            infos.setdefault(name, {}).update(labels)
        for name, h in (snap.get("histograms") or {}).items():
            merged = hists.get(name)
            if merged is None:
                hists[name] = {
                    "buckets": list(h["buckets"]),
                    "counts": list(h["counts"]),
                    "count": int(h["count"]),
                    "sum": float(h["sum"]),
                }
                continue
            if merged["buckets"] != list(h["buckets"]):
                raise ValueError(
                    f"histogram {name!r} bucket layouts differ across "
                    "snapshots; cannot merge"
                )
            merged["counts"] = [
                a + b for a, b in zip(merged["counts"], h["counts"])
            ]
            merged["count"] += int(h["count"])
            merged["sum"] += float(h["sum"])
    for name, h in hists.items():
        scratch = Histogram(name, buckets=h["buckets"])
        scratch._counts = list(h["counts"])
        scratch._count = h["count"]
        scratch._sum = h["sum"]
        h["p50"], h["p90"], h["p99"] = scratch.p50, scratch.p90, scratch.p99
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": hists,
        "infos": infos,
    }


def render_prometheus_snapshot(snapshot: Mapping[str, Any]) -> str:
    """Prometheus text exposition of a :meth:`MetricsRegistry.snapshot`.

    :meth:`MetricsRegistry.render_prometheus` renders one live registry;
    this renders the *wire shape* instead - typically a
    :func:`merge_snapshots` fold of the gateway's own registry, the
    frontend telemetry registry, and every worker's piggybacked snapshot -
    which is exactly what a ``/metrics`` endpoint on a multi-process
    deployment needs to serve.  Names render in sorted order so scrapes
    are deterministic.
    """
    lines: list[str] = []
    for name, value in sorted((snapshot.get("counters") or {}).items()):
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_fmt(value)}")
    for name, value in sorted((snapshot.get("gauges") or {}).items()):
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(value)}")
    for name, h in sorted((snapshot.get("histograms") or {}).items()):
        lines.append(f"# TYPE {name} histogram")
        counts = list(h["counts"])
        cumulative = 0
        for bound, c in zip(h["buckets"], counts):
            cumulative += c
            lines.append(f'{name}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
        lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative + counts[-1]}')
        lines.append(f"{name}_sum {_fmt(h['sum'])}")
        lines.append(f"{name}_count {int(h['count'])}")
    for name, labels in sorted((snapshot.get("infos") or {}).items()):
        lines.append(f"# TYPE {name} gauge")
        rendered = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
        lines.append(f"{name}{{{rendered}}} 1")
    return "\n".join(lines) + "\n"


def register_stats_gauges(
    registry: MetricsRegistry,
    prefix: str,
    obj: Any,
    fields: Iterable[str],
    help: str = "",
) -> None:
    """Register ``obj``'s numeric attributes as callback gauges.

    This is how the existing stats dataclasses plug into the registry
    without double-counting: the gauge reads the live attribute on every
    export.  ``obj`` is held through a weakref - when its owner is
    retired the gauges read 0 instead of pinning the object alive.
    """
    ref = weakref.ref(obj)
    for field_name in fields:

        def read(field_name: str = field_name) -> float:
            target = ref()
            return float(getattr(target, field_name)) if target is not None else 0.0

        registry.gauge(f"{prefix}_{field_name}", help=help, callback=read)
