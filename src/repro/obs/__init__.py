"""``repro.obs``: the telemetry plane for every serving tier.

Two layers plus a switch:

* :mod:`repro.obs.metrics` - a process-local :class:`MetricsRegistry`
  (counters, gauges, fixed-bucket latency histograms with p50/p90/p99
  estimation) exportable as a flat JSON snapshot or Prometheus-style text.
* :mod:`repro.obs.tracing` - per-request lifecycle spans in a bounded
  ring buffer, exportable as Chrome trace-event JSON, with trace IDs
  propagated through the codec so cluster/socket workers stitch their
  spans into the frontend's timeline.
* This module - the process-global :class:`Telemetry` switchboard.

**Default-off, no-op cheap.**  Telemetry is enabled by the
``SOFA_TELEMETRY`` environment variable (``1``/``true``/``yes``/``on``;
inherited by forked local workers and spawned socket workers alike, so
one knob lights up every tier) or programmatically via :func:`enable`.
Every instrumentation hook in the serving stack guards itself with
``if obs.enabled`` (or the equally cheap no-op helpers below), so the
disabled plane costs one attribute read per hook site - the standing
bit-for-bit parity contract holds with telemetry on or off, and the
committed ``BENCH_obs.json`` proves the *enabled* plane stays under a 3%
end-to-end throughput overhead on the long-selection stream.

Typical use::

    from repro import obs

    obs.enable()                       # or SOFA_TELEMETRY=1 in the env
    ... serve traffic ...
    t = obs.get_telemetry()
    t.registry.snapshot()              # flat JSON metrics
    t.registry.render_prometheus()     # /metrics text
    t.tracer.chrome_trace()            # chrome://tracing timeline
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager, nullcontext
from typing import Any, Callable, ContextManager, Mapping

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Info,
    MetricsRegistry,
    merge_snapshots,
    register_stats_gauges,
    render_prometheus_snapshot,
)
from repro.obs.tracing import Span, Tracer, new_span_id, new_trace_id

__all__ = [
    "ENV_VAR",
    "Telemetry",
    "get_telemetry",
    "enable",
    "disable",
    "reset_telemetry",
    "telemetry_env_enabled",
    # re-exports
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Info",
    "DEFAULT_LATENCY_BUCKETS",
    "merge_snapshots",
    "register_stats_gauges",
    "render_prometheus_snapshot",
    "Tracer",
    "Span",
    "new_trace_id",
    "new_span_id",
]

#: The one deployment knob: set to 1/true/yes/on to light up telemetry in
#: this process and every worker process it forks or spawns.
ENV_VAR = "SOFA_TELEMETRY"

_TRUTHY = frozenset({"1", "true", "yes", "on"})

_NULL_CONTEXT: ContextManager[None] = nullcontext()


def telemetry_env_enabled() -> bool:
    """Does the environment ask for telemetry right now?"""
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


class Telemetry:
    """One process's telemetry state: the flag, the registry, the tracer.

    All hot-path helpers collapse to a single predicate check when
    disabled; none of them can raise into serving code paths beyond
    programming errors (bad metric kinds), so instrumentation never
    changes *what* is served - only, minutely, when.
    """

    def __init__(
        self,
        enabled: bool = False,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ):
        self.enabled = enabled
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()

    # ------------------------------------------------------------- metrics
    def clock(self) -> float:
        """A timestamp for :meth:`observe_since` (0.0 when disabled)."""
        return time.perf_counter() if self.enabled else 0.0

    def inc(self, name: str, n: float = 1.0) -> None:
        if self.enabled:
            self.registry.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.registry.gauge(name).set(value)

    def register_gauge(self, name: str, callback: Callable[[], float]) -> None:
        if self.enabled:
            self.registry.gauge(name, callback=callback)

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            self.registry.histogram(name).observe(value)

    def observe_since(self, name: str, t0: float) -> None:
        """Record ``now - t0`` seconds into histogram ``name``."""
        if self.enabled:
            self.registry.histogram(name).observe(time.perf_counter() - t0)

    def set_info(self, name: str, labels: Mapping[str, str]) -> None:
        if self.enabled:
            self.registry.info(name).update(labels)

    # ------------------------------------------------------------- tracing
    def start_span(
        self,
        name: str,
        trace_id: str | None = None,
        parent_id: str | None = None,
        attrs: Mapping[str, Any] | None = None,
    ) -> Span | None:
        """Open a cross-method span, or ``None`` when disabled."""
        if not self.enabled:
            return None
        return self.tracer.start(name, trace_id=trace_id,
                                 parent_id=parent_id, attrs=attrs)

    def end_span(self, span: Span | None, **extra_attrs: Any) -> None:
        """Close a span from :meth:`start_span`; ``None`` is a no-op.

        Deliberately ignores :attr:`enabled` so a span opened before a
        mid-stream ``disable()`` still lands instead of leaking.
        """
        if span is not None:
            self.tracer.end(span, **extra_attrs)

    def span(
        self,
        name: str,
        attrs: Mapping[str, Any] | None = None,
        hist: str | None = None,
    ) -> ContextManager[Any]:
        """Context-manager span (nested via the per-thread stack).

        ``hist`` additionally records the span's duration into the named
        latency histogram - one clock pair serving both exports.
        Disabled telemetry returns a shared null context.
        """
        if not self.enabled:
            return _NULL_CONTEXT
        return self._timed_span(name, attrs, hist)

    @contextmanager
    def _timed_span(
        self,
        name: str,
        attrs: Mapping[str, Any] | None,
        hist: str | None,
    ):
        t0 = time.perf_counter()
        with self.tracer.span(name, attrs=attrs) as opened:
            yield opened
        if hist is not None:
            self.registry.histogram(hist).observe(time.perf_counter() - t0)


_lock = threading.Lock()
_singleton: Telemetry | None = None


def get_telemetry() -> Telemetry:
    """This process's telemetry singleton (created on first use).

    The enabled flag is seeded from ``SOFA_TELEMETRY`` at creation;
    :func:`enable`/:func:`disable` flip it afterwards.
    """
    global _singleton
    instance = _singleton
    if instance is None:
        with _lock:
            instance = _singleton
            if instance is None:
                instance = _singleton = Telemetry(
                    enabled=telemetry_env_enabled()
                )
    return instance


def enable() -> Telemetry:
    """Turn telemetry on (programmatic alternative to ``SOFA_TELEMETRY``)."""
    instance = get_telemetry()
    instance.enabled = True
    return instance


def disable() -> Telemetry:
    """Turn telemetry off; accumulated metrics/spans stay readable."""
    instance = get_telemetry()
    instance.enabled = False
    return instance


def reset_telemetry(enabled: bool | None = None) -> Telemetry:
    """Replace the singleton with a fresh one (registry and tracer empty).

    Worker processes call this at startup: a forked child inherits the
    parent's singleton - its spans and counters included - and must not
    re-ship the frontend's own telemetry back to it.  ``enabled=None``
    re-reads the environment.
    """
    global _singleton
    with _lock:
        _singleton = Telemetry(
            enabled=telemetry_env_enabled() if enabled is None else enabled
        )
        return _singleton
