"""Memory-access-time models of FACT and Energon under scaled parallelism.

Fig. 3 of the paper shows that when SOTA dynamic-sparsity accelerators with
2 MB SRAM scale the number of parallel tokens T, off-chip access time (MAT)
grows to dominate latency (~72% average).  The mechanism is whole-row
processing: the (T, S) Pre-Atten and Atten intermediates stop fitting on
chip and round-trip DRAM, while per-query KV fetches stop being reusable.

This module models that effect analytically from each accelerator's
published compute throughput and the shared DRAM bandwidth model, producing
the Fig. 3 latency-share series.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.specs import ACCELERATOR_SPECS
from repro.hw.dram import DramChannelModel
from repro.model.config import get_model


@dataclass(frozen=True)
class MatBreakdown:
    """Latency split of one (accelerator, model, parallelism) point."""

    accelerator: str
    model: str
    parallelism: int
    compute_s: float
    memory_s: float

    @property
    def mat_share(self) -> float:
        total = self.compute_s + self.memory_s
        return self.memory_s / total if total else 0.0


#: Fraction of peak throughput SOTA sparse accelerators sustain on the
#: fine-grained dynamic-sparsity dataflow (gathered operands, short rows).
SPARSE_COMPUTE_UTILIZATION = 0.5


def mat_breakdown(
    accelerator: str,
    model: str,
    seq_len: int,
    parallelism: int,
    keep: float = 0.25,
    sram_bytes: float = 2 * 2**20,
    dram_bandwidth_gbs: float = 25.6,
) -> MatBreakdown:
    """Compute/memory latency split of a prefill at parallelism T.

    Model: the S-token prefill executes in ``ceil(S/T)`` batches of T
    queries.  Whole-row processing keeps every head's (T, S) Pre-Atten plus
    the (T, k) Atten slice live across the stage barrier; when that live set
    exceeds SRAM it round-trips DRAM each batch, and the K/V working set can
    no longer be retained between batches either - the paper's Fig. 2
    mechanism.  ``dram_bandwidth_gbs`` defaults to the DDR4 figure the paper
    cites for this accelerator class (25.6 GB/s).
    """
    spec = ACCELERATOR_SPECS[accelerator]
    cfg = get_model(model)
    if parallelism < 1:
        raise ValueError("parallelism must be >= 1")
    heads, d = cfg.n_heads, cfg.head_dim
    s, t = seq_len, parallelism
    k = max(int(s * keep), 1)
    n_batches = -(-s // t)

    # Compute: 4-bit prediction (quarter-rate) + formal top-k attention,
    # for all heads over the whole prefill.
    gops = heads * (s * s * d * 0.25 + 2 * 2.0 * s * k * d) / 1e9
    compute_s = gops / (spec.throughput_gops * SPARSE_COMPUTE_UTILIZATION)

    # Memory: the live intermediate set at the top-k stage barrier (scores
    # held at sorting precision, 16-bit accumulators).
    live_inter = heads * (float(t) * s * 2.0 + float(t) * k * 2.0)
    kv_bytes = heads * 2.0 * s * d * 2.0
    stream = float(s) * cfg.hidden * 2.0 + float(s) * d * heads * 2.0  # tokens+Q
    if live_inter > sram_bytes:
        spill = 2.0 * live_inter * n_batches
        kv_traffic = kv_bytes  # K/V streamed once per batch group, evicted
        per_batch_kv = heads * float(min(t * k, s)) * d * 2.0 * 2.0
        kv_traffic = max(kv_bytes, per_batch_kv * n_batches)
    else:
        spill = 0.0
        kv_traffic = kv_bytes
    memory_bytes = spill + kv_traffic + stream
    memory_s = memory_bytes / (dram_bandwidth_gbs * 1e9)
    return MatBreakdown(
        accelerator=accelerator,
        model=model,
        parallelism=parallelism,
        compute_s=compute_s,
        memory_s=memory_s,
    )


#: The four (model, seq_len, max parallelism) panels of Fig. 3.
FIG3_PANELS: tuple[tuple[str, int, int], ...] = (
    ("bert-large", 512, 512),
    ("gpt2", 1024, 256),
    ("bloom-3b", 2048, 128),
    ("llama-13b", 4096, 8),
)


def fig3_series(accelerator: str) -> list[MatBreakdown]:
    """MAT breakdowns at T=1 and T=max for every Fig. 3 panel."""
    rows = []
    for model, seq_len, t_max in FIG3_PANELS:
        for t in (1, t_max):
            rows.append(mat_breakdown(accelerator, model, seq_len, t))
    return rows


def average_mat_share_at_scale() -> float:
    """Mean MAT share across both accelerators at max parallelism (~72%)."""
    shares = []
    for accel in ("fact", "energon"):
        for model, seq_len, t_max in FIG3_PANELS:
            shares.append(mat_breakdown(accel, model, seq_len, t_max).mat_share)
    return float(sum(shares) / len(shares))


_ = DramChannelModel  # re-exported for callers wanting the HBM-class model
