"""Published SOTA accelerator specifications and Table II normalization.

Rows follow the paper's Table II verbatim (accuracy loss, saved computation,
technology, frequency, area, core/IO power, throughput, core energy
efficiency).  Derived columns (device efficiency, area efficiency, latency)
are *computed* by this module through the paper's stated protocol:

* technology normalization to 28 nm / 1.0 V with f ∝ 1/s² and
  P_core ∝ (1/s)(1.0/Vdd)² (see :mod:`repro.hw.scaling`);
* the latency benchmark: the attention part of Llama-7B (137 GOPs), with
  every accelerator scaled to 128 multipliers clocked at 1 GHz (Sec. V-D's
  FACT example: 928 GOPS at 500 MHz with 512 multipliers ->
  latency = 2 x 137 / 928 s = 295 ms).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.scaling import TechnologyNode, scale_area, scale_power

#: The latency benchmark workload: Llama-7B attention part, giga-operations.
LLAMA7B_ATTENTION_GOPS = 137.0
#: Latency protocol normalization: multipliers and clock every design is scaled to.
PROTOCOL_MULTIPLIERS = 128
PROTOCOL_CLOCK_HZ = 1e9


@dataclass(frozen=True)
class AcceleratorSpec:
    """One comparison accelerator's published numbers (Table II row).

    ``sparsity_kind`` is "unstructured"/"structured"; ``io_power_w`` is None
    when the paper lists '-'.  ``n_multipliers`` and ``freq_hz`` feed the
    latency protocol.  ``optimizes`` mirrors Table I's coverage flags.
    """

    name: str
    sparsity_kind: str
    accuracy_loss_pct: float
    saved_computation: float
    tech_nm: float
    freq_hz: float
    area_mm2: float
    core_power_w: float
    io_power_w: float | None
    throughput_gops: float
    core_eff_gops_per_w: float
    n_multipliers: int
    optimizes: tuple[str, ...]


ACCELERATOR_SPECS: dict[str, AcceleratorSpec] = {
    spec.name: spec
    for spec in (
        AcceleratorSpec(
            "a3", "unstructured", 5.3, 0.40, 40, 1e9, 2.08, 0.205, 0.617,
            221, 1863, 128, ("attention-compute",),
        ),
        AcceleratorSpec(
            "elsa", "unstructured", 2.0, 0.73, 40, 1e9, 1.26, 0.969, 0.525,
            1090, 1944, 256, ("attention-compute",),
        ),
        AcceleratorSpec(
            "sanger", "structured", 0.0, 0.76, 55, 500e6, 16.9, 2.76, None,
            2285, 2342, 1024, ("attention-compute",),
        ),
        AcceleratorSpec(
            # n_multipliers back-solved from the paper's 448 ms protocol latency
            "dota", "structured", 0.8, 0.80, 22, 1e9, 4.44, 3.02, None,
            4905, 817, 2048, ("attention-compute",),
        ),
        AcceleratorSpec(
            "energon", "unstructured", 0.9, 0.77, 45, 1e9, 4.2, 0.32, 2.4,
            1153, 7007, 512, ("attention-compute", "attention-memory-low"),
        ),
        AcceleratorSpec(
            # n_multipliers back-solved from the paper's 652 ms protocol latency
            "dtatrans", "unstructured", 0.74, 0.74, 40, 1e9, 1.49, 0.734, None,
            1304, 3071, 800, ("attention-compute",),
        ),
        AcceleratorSpec(
            "spatten", "structured", 0.9, 0.67, 40, 1e9, 1.55, 0.325, 0.617,
            360, 1915, 128, ("qkv-compute", "attention-compute", "attention-memory-low"),
        ),
        AcceleratorSpec(
            "fact", "unstructured", 0.0, 0.79, 28, 500e6, 6.03, 0.337, None,
            928, 2754, 512, ("qkv-compute", "attention-compute"),
        ),
        AcceleratorSpec(
            "sofa", "unstructured", 0.0, 0.82, 28, 1e9, 5.69, 0.95, 2.45,
            24423, 25708, 1024,
            (
                "qkv-compute", "attention-compute",
                "qkv-memory", "attention-memory", "cross-stage",
            ),
        ),
    )
}


def normalize_spec(spec: AcceleratorSpec) -> dict[str, float]:
    """Scale a spec's power/area to 28 nm / 1.0 V (Table II's footnote)."""
    node = TechnologyNode(feature_nm=spec.tech_nm, vdd=1.0)
    return {
        "core_power_w": scale_power(spec.core_power_w, node),
        "area_mm2": scale_area(spec.area_mm2, node),
    }


def device_efficiency_gops_per_w(spec: AcceleratorSpec) -> float | None:
    """Device (core + IO) energy efficiency; None when IO power unpublished."""
    if spec.io_power_w is None:
        return None
    node = TechnologyNode(feature_nm=spec.tech_nm, vdd=1.0)
    core = scale_power(spec.core_power_w, node)
    return spec.throughput_gops / (core + spec.io_power_w)


def area_efficiency_gops_per_mm2(spec: AcceleratorSpec) -> float:
    """Normalized throughput per normalized area (Table II column)."""
    norm = normalize_spec(spec)
    return spec.throughput_gops / norm["area_mm2"]


def protocol_latency_ms(spec: AcceleratorSpec) -> float:
    """Latency to run 137 GOPs of Llama-7B attention, scaled to 128 mults @1GHz.

    The paper's protocol (Sec. V-D): effective throughput is first scaled to
    the common 128-multiplier / 1 GHz budget, then latency = workload /
    scaled throughput.  The worked example (FACT) reads
    ``2 * 137 / 928 s = 295 ms``: 512 multipliers at 500 MHz hold 4x the
    protocol's multiplier-cycles, and moving to 1 GHz doubles the rate, so
    the scale factor is ``(128 / n_mult) * (1 GHz / freq)``.
    """
    scale = (PROTOCOL_MULTIPLIERS / spec.n_multipliers) * (PROTOCOL_CLOCK_HZ / spec.freq_hz)
    scaled_gops = spec.throughput_gops * scale
    return LLAMA7B_ATTENTION_GOPS / scaled_gops * 1e3


def table_i_rows() -> list[tuple[str, bool, bool, bool, bool, bool]]:
    """Table I's qualitative coverage: (name, qkv-c, attn-c, qkv-m, attn-m, cross)."""
    rows = []
    for spec in ACCELERATOR_SPECS.values():
        opts = set(spec.optimizes)
        rows.append(
            (
                spec.name,
                "qkv-compute" in opts,
                "attention-compute" in opts,
                "qkv-memory" in opts,
                "attention-memory" in opts or "attention-memory-low" in opts,
                "cross-stage" in opts,
            )
        )
    return rows
