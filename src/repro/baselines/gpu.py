"""Analytic Nvidia A100 model used as the evaluation denominator.

The model is a roofline with efficiency de-ratings, calibrated so the *dense*
Transformer attention baseline reproduces the paper's measured GPU behaviour
(Sec. V-A/V-C): attention kernels on the A100 achieve a modest fraction of
peak because of low operational intensity, kernel-launch/reshape overheads
(the paper's Fig. 1-adjacent breakdown: matmuls are only ~27% of attention
latency) and softmax/elementwise serialization.

De-rating constants (documented per the DESIGN.md substitution policy):

* ``dense_attention_efficiency`` - fraction of peak FP16 throughput dense
  attention sustains end to end (matmul-fraction x matmul-efficiency).
* ``sparsity_utilization`` - how much of the top-k work reduction the GPU can
  actually convert into speedup; the paper reports LP's 85-92% computation
  cut yields only 1.08-1.78x GPU gain because gather/scatter-style sparse
  attention runs at low utilization.
* ``fa_gain`` / ``fa2_extra`` - measured FlashAttention-1/2 kernel speedups
  on long sequences (paper: FA about 1.5x on top of LP, FA2 a further
  ~1.19x).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuModel:
    """A100-80GB SXM analytic model.

    ``peak_fp16_tflops`` uses the non-sparsity tensor-core peak; ``tdp_w``
    the board power; ``hbm_bandwidth`` feeds the roofline memory bound.
    """

    name: str = "a100"
    peak_fp16_tflops: float = 312.0
    hbm_bandwidth_gbs: float = 2039.0
    tdp_w: float = 400.0
    dense_attention_efficiency: float = 0.22
    sparsity_utilization: float = 0.50
    fa_gain: float = 1.5
    fa2_extra: float = 1.19

    # ------------------------------------------------------------- dense
    def dense_attention_time_s(self, gops: float) -> float:
        """Wall time of a dense attention workload of ``gops`` 1e9-ops."""
        if gops < 0:
            raise ValueError("work cannot be negative")
        eff = self.peak_fp16_tflops * 1e3 * self.dense_attention_efficiency
        return gops / eff

    # ------------------------------------------------------------ sparse
    def lp_speedup(self, computation_reduction: float) -> float:
        """Speedup from running LP top-k sparsity on the GPU.

        ``computation_reduction`` in [0, 1) is the fraction of attention
        work removed.  Utilization losses shrink the realizable gain:
        ``1 / (1 - r*u)``.  At the paper's operating points (r = 0.85-0.93)
        this lands in the reported 1.08-1.78x band.
        """
        if not 0 <= computation_reduction < 1:
            raise ValueError("computation_reduction must be in [0, 1)")
        realized = computation_reduction * self.sparsity_utilization
        return 1.0 / (1.0 - realized)

    def lp_fa_speedup(self, computation_reduction: float, fa2: bool = False) -> float:
        """LP + FlashAttention(-2) combined GPU speedup (Fig. 19(b) bars)."""
        gain = self.lp_speedup(computation_reduction) * self.fa_gain
        if fa2:
            gain *= self.fa2_extra
        return gain

    # ------------------------------------------------------------ energy
    def attention_energy_j(self, gops: float, speedup: float = 1.0) -> float:
        """Dynamic energy of an attention workload at a given speedup.

        The paper measures GPU dynamic power (total minus idle); we model a
        constant dynamic power draw, so energy scales with time.
        """
        dyn_power = 0.65 * self.tdp_w  # dynamic fraction while busy
        return self.dense_attention_time_s(gops) / speedup * dyn_power

    def energy_efficiency_gops_per_w(self, speedup: float = 1.0) -> float:
        """Sustained GOPS/W on attention work (about 100 for dense A100)."""
        eff = self.peak_fp16_tflops * 1e3 * self.dense_attention_efficiency
        return eff * speedup / (0.65 * self.tdp_w)
