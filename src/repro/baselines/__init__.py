"""Device baselines: SOTA accelerator specs, GPU/TPU models, MAT models.

* :mod:`repro.baselines.specs` - published spec records of the 8 comparison
  accelerators plus SOFA (Tables I/II) and the normalization protocol.
* :mod:`repro.baselines.gpu` / :mod:`repro.baselines.tpu` - analytic A100 /
  cloud-TPU models used as the denominators of Figs. 19-21.
* :mod:`repro.baselines.accel_models` - memory-access-time models of FACT
  and Energon under scaled token parallelism (Fig. 3).
"""

from repro.baselines.gpu import GpuModel
from repro.baselines.specs import ACCELERATOR_SPECS, AcceleratorSpec, normalize_spec
from repro.baselines.tpu import TpuModel

__all__ = [
    "AcceleratorSpec",
    "ACCELERATOR_SPECS",
    "normalize_spec",
    "GpuModel",
    "TpuModel",
]
