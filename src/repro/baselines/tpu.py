"""Analytic cloud-TPU model (the paper's second commercial baseline).

The TPU runs dense matmuls extremely well (large systolic MXUs) and XLA's
fusion converts coarse-grained sparsity into time effectively: software-only
SOFA reaches 2.9x on TPU, close to the GPU's 3.16x (the GPU's extra edge is
FlashAttention-2 support).  Where the TPU falls behind is *fine-grained
control*: the paper's engine ablation shows the TPU gaining more than the
GPU from the DLZS (1.82x vs 1.65x), SADS (1.52x vs 1.28x) and RASS (1.3x vs
1.14x) engines, exactly because its limited control instructions handle
logical branching and irregular scheduling poorly.  The constants below
encode that asymmetry.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TpuModel:
    """TPU v3-style analytic model."""

    name: str = "tpu"
    peak_bf16_tflops: float = 123.0
    hbm_bandwidth_gbs: float = 900.0
    tdp_w: float = 220.0
    dense_attention_efficiency: float = 0.30
    sparsity_utilization: float = 0.61  # XLA fuses coarse sparsity well
    fa_gain: float = 1.35

    def dense_attention_time_s(self, gops: float) -> float:
        if gops < 0:
            raise ValueError("work cannot be negative")
        eff = self.peak_bf16_tflops * 1e3 * self.dense_attention_efficiency
        return gops / eff

    def lp_speedup(self, computation_reduction: float) -> float:
        if not 0 <= computation_reduction < 1:
            raise ValueError("computation_reduction must be in [0, 1)")
        realized = computation_reduction * self.sparsity_utilization
        return 1.0 / (1.0 - realized)

    def attention_energy_j(self, gops: float, speedup: float = 1.0) -> float:
        dyn_power = 0.6 * self.tdp_w
        return self.dense_attention_time_s(gops) / speedup * dyn_power
