"""Minimal ASCII table rendering for experiment reports.

Every experiment module prints its rows through :func:`format_table` so the
regenerated tables share one look and are easy to diff against EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def _cell(value: object, spec: str | None) -> str:
    if spec is not None and isinstance(value, (int, float)) and not isinstance(value, bool):
        return format(value, spec)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    formats: Sequence[str | None] | None = None,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table.

    Parameters
    ----------
    headers:
        Column titles.
    rows:
        Iterable of row sequences; each row must have ``len(headers)`` cells.
    formats:
        Optional per-column format specs (e.g. ``".2f"``) applied to numeric
        cells; ``None`` entries fall back to ``str``.
    title:
        Optional title printed above the table.
    """
    if formats is None:
        formats = [None] * len(headers)
    if len(formats) != len(headers):
        raise ValueError("formats must match headers length")

    rendered = [[_cell(v, fmt) for v, fmt in zip(row, formats, strict=True)] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")

    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths, strict=True))

    sep = "-+-".join("-" * w for w in widths)
    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(sep)
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)
