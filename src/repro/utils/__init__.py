"""Shared utilities: deterministic RNG construction and ASCII table rendering."""

from repro.utils.rng import make_rng
from repro.utils.tables import format_table

__all__ = ["make_rng", "format_table"]
