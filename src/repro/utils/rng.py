"""Deterministic random-number generation for every experiment.

All stochastic code in the repository funnels through :func:`make_rng` so that
experiments are reproducible given a seed, and so tests can derive independent
but stable streams with :func:`derive_rng`.
"""

from __future__ import annotations

import zlib

import numpy as np

DEFAULT_SEED = 20240715
"""Default seed; chosen from the paper's arXiv submission date (2024-07-15)."""


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a numpy ``Generator`` seeded deterministically.

    Parameters
    ----------
    seed:
        Integer seed.  ``None`` selects :data:`DEFAULT_SEED` (it never selects
        OS entropy - experiments must be reproducible by default).
    """
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, *keys: int | str) -> np.random.Generator:
    """Derive an independent child generator from ``rng`` and a key path.

    Deriving (rather than sharing) generators keeps experiment components
    independent: changing how many draws one stage makes does not perturb the
    random stream of another stage.
    """
    material = [int(rng.integers(0, 2**31 - 1))]
    for key in keys:
        if isinstance(key, str):
            # zlib.crc32 is stable across processes (Python's str hash is
            # salted per interpreter run, which would break reproducibility).
            material.append(zlib.crc32(key.encode("utf-8")) % (2**31 - 1))
        else:
            material.append(int(key) % (2**31 - 1))
    return np.random.default_rng(np.random.SeedSequence(material))
