"""Worker supervision: heartbeats, backoff respawn/reconnect, autoscaling.

The cluster frontend detects a worker that *exits* for free (dead process,
socket EOF); what it cannot see without help is a worker that is alive but
wedged, or a slot that should be brought back after a failure.  This
module owns both decisions as a pure state machine - the frontend
(:class:`~repro.cluster.serving.EngineCluster`) performs the actual IO
(pings over the worker's transport link, respawns via the transport) and
feeds observations back in, which keeps every policy here unit-testable
with a fake clock:

* **Heartbeats** - each ready worker is pinged every
  ``heartbeat_interval_s``; *any* message from the worker (pong, result,
  control reply) counts as proof of life.  A worker that stays silent for
  ``heartbeat_timeout_s`` after a ping went unanswered is declared
  unresponsive; the frontend then drains already-delivered results first
  (a result racing the timeout still counts), kills the link, and
  re-routes the remainder.
* **Respawn/reconnect with bounded exponential backoff** - a dead slot is
  retried after ``backoff_initial_s``, doubling per consecutive failure up
  to ``backoff_max_s``, at most ``max_attempts`` times before the slot is
  abandoned.  A successful recovery (the new worker reports ready) resets
  the slot's budget.  Local slots are *respawned* (new child process);
  remote socket slots are *reconnected* (the standalone worker survives
  the session and accepts again); both count separately in
  :class:`~repro.cluster.serving.ClusterStats`.

While a slot is down and recoverable, in-flight requests that cannot be
re-routed (no other live worker) are *parked* by the frontend instead of
failed, then replayed once a recovery succeeds - requests fail only when
every slot has been abandoned.

Beyond *healing* the pool, this module also lets the frontend *scale* it:
:class:`PoolAutoscaler` is the serving-time analogue of the paper's RASS
lane balancing - where RASS redistributes attention heads across fixed
hardware lanes, the autoscaler changes the number of lanes.  It watches
queue depth (in-flight requests per live worker) and tail latency (the
frontend's p99 over a recent window) and decides when to spawn a new
worker or retire an idle one, with hysteresis (a signal must *persist*
for a hold period before acting), a cooldown between consecutive actions
(so one burst cannot flap the pool), and hard ``min_workers``/
``max_workers`` bounds.  Like the supervisor it is a pure state machine:
the cluster feeds it observations and performs the IO, so the
no-flapping guarantees are unit-testable with a fake clock.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs for :class:`WorkerSupervisor` (see module docstring).

    ``heartbeat_timeout_s`` must cover the longest *serving* stall a
    healthy worker can hit: a worker answers pings between scheduling
    rounds, not mid-batch, so set it above the slowest expected batch.
    ``heartbeat_interval_s <= 0`` disables heartbeats (respawn-only
    supervision); ``max_attempts = 0`` disables respawn (heartbeat-only).
    ``ready_timeout_s`` bounds how long a respawned/reconnected worker may
    hold its link open without reporting ready before the attempt is
    declared failed (a wedged engine construction, or a reachable host
    whose worker process hangs) - without it such a slot would block its
    own retries forever.
    """

    heartbeat_interval_s: float = 1.0
    heartbeat_timeout_s: float = 10.0
    max_attempts: int = 5
    backoff_initial_s: float = 0.05
    backoff_max_s: float = 2.0
    ready_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        if self.heartbeat_interval_s > 0 and self.heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be > 0")
        if self.max_attempts < 0:
            raise ValueError("max_attempts must be >= 0")
        if self.max_attempts and self.backoff_initial_s <= 0:
            raise ValueError("backoff_initial_s must be > 0")
        if self.backoff_max_s < self.backoff_initial_s:
            raise ValueError("backoff_max_s must be >= backoff_initial_s")
        if self.ready_timeout_s <= 0:
            raise ValueError("ready_timeout_s must be > 0")


@dataclass
class _SlotState:
    """Supervision state of one worker slot (stable across incarnations)."""

    # -- heartbeat bookkeeping (current incarnation)
    last_seen: float = 0.0  # any message from the worker
    last_ping: float = float("-inf")
    ping_outstanding: bool = False
    # -- recovery bookkeeping
    down: bool = False
    attempts: int = 0  # consecutive failed recoveries
    next_retry_at: float = 0.0
    recovering: bool = False  # a respawn/reconnect awaits its "ready"
    abandoned: bool = False
    #: retired by the autoscaler: intentionally stopped, never pinged,
    #: never respawned, and excluded from the recoverable set.
    retired: bool = False


class WorkerSupervisor:
    """Pure supervision state over worker slots (IO stays in the cluster)."""

    def __init__(self, config: SupervisorConfig, n_slots: int, now: float):
        self.config = config
        # last_ping starts at "now": a fresh worker owes its first pong one
        # interval after start, not immediately.
        self._slots = [
            _SlotState(last_seen=now, last_ping=now) for _ in range(n_slots)
        ]

    # -------------------------------------------------------------- topology
    def add_slot(self, now: float) -> int:
        """Register a new worker slot (autoscale-up); returns its index."""
        self._slots.append(_SlotState(last_seen=now, last_ping=now))
        return len(self._slots) - 1

    def note_retired(self, slot: int) -> None:
        """The slot's worker was *intentionally* stopped (autoscale-down).

        A retired slot owes no pongs, is never respawned, and does not
        count as recoverable - it is simply no longer part of the pool.
        """
        state = self._slots[slot]
        state.retired = True
        state.down = True
        state.recovering = False
        state.ping_outstanding = False

    # ------------------------------------------------------------ heartbeats
    def note_seen(self, slot: int, now: float) -> None:
        """Any message from the slot's worker proves it alive."""
        state = self._slots[slot]
        state.last_seen = now
        state.ping_outstanding = False

    def ping_due(self, slot: int, now: float) -> bool:
        """One probe at a time: no new ping while one is unanswered.

        (Re-pinging while outstanding would keep advancing ``last_ping``,
        and the timeout - anchored to the outstanding ping - could then
        never fire for intervals shorter than the timeout.)
        """
        if self.config.heartbeat_interval_s <= 0:
            return False
        state = self._slots[slot]
        return (
            not state.down
            and not state.ping_outstanding
            and now - state.last_ping >= self.config.heartbeat_interval_s
        )

    def note_ping(self, slot: int, now: float) -> None:
        state = self._slots[slot]
        state.last_ping = now
        state.ping_outstanding = True

    def timed_out(self, slot: int, now: float) -> bool:
        """True when a ping has gone unanswered beyond the timeout.

        The clock runs from when the *outstanding ping was sent* (not from
        the last message seen): a worker that sat idle through a long pump
        gap owes nothing until a probe reaches it, so stale ``last_seen``
        alone must never kill a healthy worker.
        """
        if self.config.heartbeat_interval_s <= 0:
            return False
        state = self._slots[slot]
        return (
            not state.down
            and state.ping_outstanding
            and now - state.last_ping > self.config.heartbeat_timeout_s
        )

    # -------------------------------------------------------------- recovery
    def note_down(self, slot: int, now: float) -> None:
        """The slot's worker died (process exit, EOF, heartbeat timeout).

        A death while a recovery was pending (the respawned worker died
        before reporting ready) consumes one attempt and doubles the
        backoff - the "dies during respawn" path.
        """
        state = self._slots[slot]
        if state.down and state.recovering:
            self._attempt_failed(state, now)
            return
        if state.down:
            return  # already accounted
        state.down = True
        state.recovering = False
        state.next_retry_at = now + self._backoff(state.attempts)
        if state.attempts >= self.config.max_attempts:
            state.abandoned = True

    def _backoff(self, attempts: int) -> float:
        return min(
            self.config.backoff_initial_s * (2.0 ** attempts),
            self.config.backoff_max_s,
        )

    def _attempt_failed(self, state: _SlotState, now: float) -> None:
        state.attempts += 1
        state.recovering = False
        if state.attempts >= self.config.max_attempts:
            state.abandoned = True
            return
        state.next_retry_at = now + self._backoff(state.attempts)

    def note_start_failed(self, slot: int, now: float) -> None:
        """A respawn/reconnect attempt itself failed (spawn error, refused
        connection): consume an attempt, back off further."""
        self._attempt_failed(self._slots[slot], now)

    def retry_due(self, slot: int, now: float) -> bool:
        state = self._slots[slot]
        return (
            state.down
            and not state.retired
            and not state.recovering
            and not state.abandoned
            and self.config.max_attempts > 0
            and now >= state.next_retry_at
        )

    def note_recovery_started(self, slot: int, now: float) -> None:
        state = self._slots[slot]
        state.recovering = True
        # Heartbeat clock restarts with the incarnation: the new worker is
        # only on the hook for pings sent after it reported ready.
        state.last_seen = now
        state.last_ping = now
        state.ping_outstanding = False

    def note_ready(self, slot: int, now: float) -> None:
        """The recovered worker reported ready: the slot is healthy again."""
        state = self._slots[slot]
        state.down = False
        state.recovering = False
        state.attempts = 0
        state.abandoned = False
        state.last_seen = now
        state.last_ping = now
        state.ping_outstanding = False

    # ------------------------------------------------------------- aggregate
    def can_recover(self) -> bool:
        """True while any down slot still has recovery attempts left."""
        if self.config.max_attempts == 0:
            return False
        return any(
            s.down and not s.abandoned and not s.retired for s in self._slots
        )

    def abandoned_slots(self) -> list[int]:
        return [i for i, s in enumerate(self._slots) if s.abandoned]


@dataclass
class SupervisionStats:
    """Counters the frontend surfaces in ``ClusterStats``."""

    respawns: int = 0
    reconnects: int = 0
    heartbeat_timeouts: int = 0
    scale_ups: int = 0
    scale_downs: int = 0


# --------------------------------------------------------------- autoscaling
@dataclass(frozen=True)
class AutoscalerConfig:
    """Knobs for :class:`PoolAutoscaler` (see module docstring).

    The two pressure signals are *per-live-worker queue depth* (in-flight
    requests divided by live workers - the backlog one more lane would
    absorb) and, optionally, the frontend's recent *p99 request latency*.
    Scale-up needs either signal above its high threshold continuously
    for ``hold_up_s``; scale-down needs queue depth below ``queue_low``
    (and latency below the high bar) continuously for ``hold_down_s``.
    ``hold_down_s`` should sit well above ``hold_up_s``: adding capacity
    is cheap to regret (retire it later), dropping capacity under
    oscillating load is how pools flap.  ``cooldown_s`` further separates
    *consecutive* actions so one long burst grows the pool one worker at
    a time, observing each addition's effect before the next.
    """

    min_workers: int = 1
    max_workers: int = 4
    queue_high: float = 4.0
    queue_low: float = 0.5
    p99_high_s: float | None = None
    hold_up_s: float = 0.25
    hold_down_s: float = 2.0
    cooldown_s: float = 1.0

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if self.queue_high <= self.queue_low:
            raise ValueError("queue_high must be > queue_low")
        if self.p99_high_s is not None and self.p99_high_s <= 0:
            raise ValueError("p99_high_s must be > 0")
        if self.hold_up_s < 0 or self.hold_down_s < 0:
            raise ValueError("hold periods must be >= 0")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")


class PoolAutoscaler:
    """Pure scaling policy: observations in, spawn/retire decisions out.

    The serving-time analogue of RASS lane balancing: instead of
    redistributing heads across a fixed lane count, the pool itself grows
    under sustained pressure and shrinks when idle.  All hysteresis lives
    here (hold periods, cooldown, min/max bounds), so the cluster
    frontend only has to act on the returned decision - and tests can
    drive the whole state machine with a fake clock.
    """

    def __init__(self, config: AutoscalerConfig, now: float):
        self.config = config
        self._high_since: float | None = None
        self._low_since: float | None = None
        self._last_action_at = now  # startup counts as an action: no
        # scale verdict before one full hold period of real observation.

    def decide(
        self,
        now: float,
        live_workers: int,
        inflight: int,
        p99_s: float | None = None,
    ) -> int:
        """One observation tick; returns +1 (spawn), -1 (retire), or 0.

        ``live_workers`` counts workers that can take routed traffic
        (ready, not draining); ``inflight`` the requests dispatched or
        queued against them.  A pool that is mid-recovery (zero live
        workers) never scales - supervision owns that state.
        """
        cfg = self.config
        if live_workers <= 0:
            self._high_since = self._low_since = None
            return 0
        depth = inflight / live_workers
        hot = depth >= cfg.queue_high or (
            cfg.p99_high_s is not None
            and p99_s is not None
            and p99_s >= cfg.p99_high_s
        )
        cold = depth <= cfg.queue_low and not hot
        self._high_since = (self._high_since or now) if hot else None
        self._low_since = (self._low_since or now) if cold else None
        if now - self._last_action_at < cfg.cooldown_s:
            return 0
        if (
            hot
            and live_workers < cfg.max_workers
            and now - self._high_since >= cfg.hold_up_s
        ):
            self._note_action(now)
            return 1
        if (
            cold
            and live_workers > cfg.min_workers
            and now - self._low_since >= cfg.hold_down_s
        ):
            self._note_action(now)
            return -1
        return 0

    def _note_action(self, now: float) -> None:
        self._last_action_at = now
        self._high_since = None
        self._low_since = None
