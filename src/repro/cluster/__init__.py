"""``repro.cluster``: the sharded multi-process serving tier.

Scaling past one process is the ROADMAP's next rung: even with the
tile-blocked SU-FA kernel (:mod:`repro.kernels`), a single
:class:`~repro.engine.serving.SofaEngine` caps at one core's compute and
one decode-cache budget regardless of batching.  This package shards
the request stream across worker processes - the software analogue of the
paper's parallel hardware lanes (RASS balancing heads across lanes, STAR
tiling across spatial lanes, Occamy partitioning across chiplets):

:class:`~repro.cluster.serving.EngineCluster`
    N engine workers behind one frontend: pluggable routing
    (``round_robin`` / ``shape_affinity`` / ``cache_affinity`` /
    ``least_loaded``), cross-request dedup of bit-identical requests,
    aggregated :class:`~repro.cluster.serving.ClusterStats`, graceful
    worker-failure handling (in-flight requests re-route, never drop),
    and opt-in supervision (heartbeats, auto-respawn/reconnect).
:mod:`repro.cluster.transport`
    The pluggable transports: ``local`` (``multiprocessing`` children)
    and ``socket`` (length-prefixed TCP frames to standalone workers,
    on this host or others - multi-host sharding).
:class:`~repro.cluster.supervisor.WorkerSupervisor`
    Heartbeat liveness plus bounded-exponential-backoff respawn (local
    workers) / reconnect (remote workers), with in-flight replay.
:class:`~repro.cluster.supervisor.PoolAutoscaler`
    Opt-in autoscaling (``EngineCluster(autoscaler=...)``): the pool
    grows under sustained queue-depth/p99 pressure and drains idle
    workers back down, with hysteresis and min/max bounds.
:class:`~repro.cluster.aio.AsyncSofaClient`
    ``async``/``await`` over the same futures, for asyncio serving loops.
:mod:`repro.cluster.routing`
    The routing policies (rendezvous-hashed affinity, RASS lane
    balancing) over a dynamic worker-id set.
:mod:`repro.cluster.worker`
    The worker entrypoint (queue child or ``python -m
    repro.cluster.worker --listen HOST:PORT``) and wire protocol.

The engine's parity contract crosses the process boundary intact: every
result is bit-identical - outputs, selections, op counts - to the same
request served by a single sequential engine, regardless of transport,
which worker served it, how it was routed, or whether a worker died
mid-stream (and was respawned).
"""

from repro.cluster.aio import AsyncSofaClient
from repro.cluster.routing import POLICIES, RequestInfo, make_policy
from repro.cluster.serving import (
    ClusterError,
    ClusterFuture,
    ClusterStats,
    EngineCluster,
    WorkerStats,
    WorkerUnavailableError,
)
from repro.cluster.supervisor import (
    AutoscalerConfig,
    PoolAutoscaler,
    SupervisorConfig,
    WorkerSupervisor,
)
from repro.cluster.transport import (
    TRANSPORTS,
    ClusterTransport,
    LocalTransport,
    SocketTransport,
    make_transport,
)

__all__ = [
    "AsyncSofaClient",
    "AutoscalerConfig",
    "ClusterError",
    "ClusterFuture",
    "ClusterStats",
    "ClusterTransport",
    "EngineCluster",
    "LocalTransport",
    "POLICIES",
    "PoolAutoscaler",
    "RequestInfo",
    "SocketTransport",
    "SupervisorConfig",
    "TRANSPORTS",
    "WorkerStats",
    "WorkerSupervisor",
    "WorkerUnavailableError",
    "make_policy",
    "make_transport",
]
