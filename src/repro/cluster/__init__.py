"""``repro.cluster``: the sharded multi-process serving tier.

Scaling past one process is the ROADMAP's next rung: even with the
tile-blocked SU-FA kernel (:mod:`repro.kernels`), a single
:class:`~repro.engine.serving.SofaEngine` caps at one core's compute and
one decode-cache budget regardless of batching.  This package shards
the request stream across worker processes - the software analogue of the
paper's parallel hardware lanes (RASS balancing heads across lanes, STAR
tiling across spatial lanes, Occamy partitioning across chiplets):

:class:`~repro.cluster.serving.EngineCluster`
    N engine worker processes behind one frontend: pluggable routing
    (``round_robin`` / ``shape_affinity`` / ``cache_affinity`` /
    ``least_loaded``), cross-request dedup of bit-identical requests,
    aggregated :class:`~repro.cluster.serving.ClusterStats`, and graceful
    worker-failure handling (in-flight requests re-route, never drop).
:class:`~repro.cluster.aio.AsyncSofaClient`
    ``async``/``await`` over the same futures, for asyncio serving loops.
:mod:`repro.cluster.routing`
    The routing policies (rendezvous-hashed affinity, RASS lane
    balancing).
:mod:`repro.cluster.worker`
    The worker-process entrypoint and wire protocol.

The engine's parity contract crosses the process boundary intact: every
result is bit-identical - outputs, selections, op counts - to the same
request served by a single sequential engine, regardless of which worker
served it, how it was routed, or whether a worker died mid-stream.
"""

from repro.cluster.aio import AsyncSofaClient
from repro.cluster.routing import POLICIES, RequestInfo, make_policy
from repro.cluster.serving import (
    ClusterError,
    ClusterFuture,
    ClusterStats,
    EngineCluster,
    WorkerStats,
    WorkerUnavailableError,
)

__all__ = [
    "AsyncSofaClient",
    "ClusterError",
    "ClusterFuture",
    "ClusterStats",
    "EngineCluster",
    "POLICIES",
    "RequestInfo",
    "WorkerStats",
    "WorkerUnavailableError",
    "make_policy",
]
