"""EngineCluster: a sharded multi-process serving tier over ``SofaEngine``.

One :class:`~repro.engine.serving.SofaEngine` is continuously batched,
and since the kernel layer (:mod:`repro.kernels`) its SU-FA streaming
core is tile-blocked rather than per-key Python-bound - but a single
process still caps at one core's compute and one cache budget.  The
cluster shards the request stream across ``n_workers`` workers - each
running its own engine (own fused operators, own decode-step cache, own
kernel selection from the shared registry) behind the message loop of
:mod:`repro.cluster.worker` - the software shape of the paper's parallel
hardware lanes.

Workers are reached through a pluggable **transport**
(:mod:`repro.cluster.transport`): ``transport="local"`` keeps the
original ``multiprocessing`` children on this host, ``transport="socket"``
speaks length-prefixed checksummed frames (:mod:`repro.engine.codec`) to
standalone worker processes - spawned on localhost or listening on other
hosts (``worker_addresses=[...]``, multi-host sharding).  The frontend
logic is transport-blind, which is what lets the parity sweep assert
bit-identical serving across transports.

Responsibilities of this frontend:

* **Routing** - every submitted request is encoded once
  (:mod:`repro.engine.codec`) and routed by a pluggable policy
  (:mod:`repro.cluster.routing`): ``round_robin``, ``shape_affinity``
  (same tiling grid -> same worker -> same fused batch), ``cache_affinity``
  (decode ``cache_key`` sticks to the worker holding its cached state) or
  ``least_loaded`` (RASS lane balancing over processes).
* **Cross-request dedup** - bit-identical requests (equal codec
  fingerprints; ``tag``/``deadline`` excluded) submitted while the first
  copy is still in flight share one execution: the duplicates' futures
  resolve from the same result payload, each decoding its own tensors.
  The *routing window* of the dedup is exactly that in-flight span - once
  a result is delivered the fingerprint is forgotten.
* **Failure handling** - a worker that dies (crash, kill, fault drill)
  is detected during the pump; results it already shipped still count,
  and every request still in flight on it is **re-routed** to a live
  worker (affinity policies use rendezvous hashing, so survivors keep
  their keys).  Requests are only failed when no worker is left - and
  with supervision enabled, not even then (see below).
* **Supervision** (opt-in: ``supervisor=SupervisorConfig(...)`` or
  ``supervisor=True``) - a :class:`~repro.cluster.supervisor.
  WorkerSupervisor` heartbeats every worker over its transport link
  (pings answered between scheduling rounds; any message counts as proof
  of life), declares silent workers dead after a timeout, **auto-respawns**
  dead local workers and **reconnects** remote ones with bounded
  exponential backoff, and replays re-routed in-flight requests.  When no
  live worker remains but recovery is still possible, requests *park*
  instead of failing and replay once a worker comes back.  Reconnected
  remote workers register under a fresh worker id (their engine state
  did not survive); rendezvous-hashed affinity keeps every surviving
  worker's keys in place.  ``respawns`` / ``reconnects`` /
  ``heartbeat_timeouts`` surface in :class:`ClusterStats`.
* **Autoscaling** (opt-in: ``autoscaler=AutoscalerConfig(...)`` or
  ``autoscaler=True``; requires nothing else, composes with
  supervision) - a :class:`~repro.cluster.supervisor.PoolAutoscaler`
  watches per-live-worker queue depth (optionally widened by a
  frontend's admission backlog via :meth:`EngineCluster.
  set_queue_depth_hook`) and the recent request p99, and under
  sustained pressure **spawns** extra workers in fresh slots - the
  serving-time analogue of RASS lane balancing - up to
  ``max_workers``; when load stays low it **retires** the
  least-loaded worker by draining it (no new traffic, finishes its
  in-flight work, then stops - never a failure).  All hysteresis
  (hold periods, cooldown, min/max bounds) lives in the pure policy;
  ``n_scale_ups`` / ``n_scale_downs`` / ``request_p99_s`` surface in
  :class:`ClusterStats`.
* **Aggregated statistics** - every result piggybacks the worker's
  engine counters; :attr:`EngineCluster.stats` merges them with the
  frontend's own (submitted/deduped/rerouted/failures) into a
  :class:`ClusterStats` snapshot.

The parity contract of the engine extends across the process boundary:
each worker's engine is bit-identical to the sequential operator, the
codec round-trips tensors bit-exactly over queues and frames alike, and
routing/supervision only choose *where and when* a request runs - so
every result is bit-identical to single-engine serving regardless of
transport, policy, worker count, dedup, or mid-stream failures.

The cluster is a drop-in engine for the call surface
``submit / submit_many / flush / run_until_drained / run /
invalidate_cache / stats / shutdown`` - e.g.
:class:`~repro.model.inference.SparseInferenceRunner` and
:class:`~repro.model.inference.SparseDecodeSession` accept one via their
``engine`` parameter.  Submissions are expected from one caller thread
(mirroring the engine's contract); :class:`~repro.cluster.aio.
AsyncSofaClient` layers ``async``/``await`` on top for asyncio servers -
most prominently :class:`repro.gateway.SofaGateway`, the repo's HTTP
front door, which adds per-tenant admission control and deadline-aware
shedding in front of this frontend and feeds its admission backlog into
the autoscaler.  The full request path is walked in
``docs/architecture.md``.
"""

from __future__ import annotations

import pickle
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Mapping

from repro.core.config import SofaConfig
from repro.core.pipeline import SofaAttentionResult
from repro.engine.cache import CacheStats
from repro.engine.codec import (
    decode_result,
    encode_config,
    encode_request,
    request_fingerprint,
)
from repro.engine.serving import (
    AttentionRequest,
    config_with_kernels,
    validate_request,
)
from repro.obs import get_telemetry
from repro.cluster.routing import POLICIES, RequestInfo, make_policy
from repro.cluster.supervisor import (
    AutoscalerConfig,
    PoolAutoscaler,
    SupervisionStats,
    SupervisorConfig,
    WorkerSupervisor,
)
from repro.cluster.transport import (
    TRANSPORTS,
    ClusterTransport,
    WorkerLink,
    make_transport,
)


class ClusterError(RuntimeError):
    """Cluster-level serving failure."""


class WorkerUnavailableError(ClusterError):
    """No live worker is left to (re-)route a request to."""


class ClusterFuture:
    """Handle to a request submitted to the cluster.

    Mirrors :class:`~repro.engine.serving.AttentionFuture`: ``result()``
    blocks (pumping worker results) until this request resolves, so
    callers may submit everything and read results in any order.
    """

    def __init__(self, cluster: "EngineCluster"):
        self._cluster = cluster
        self._result: SofaAttentionResult | None = None
        self._error: Exception | None = None

    def done(self) -> bool:
        return self._result is not None or self._error is not None

    def set_result(self, result: SofaAttentionResult) -> None:
        self._result = result

    def set_error(self, error: Exception) -> None:
        self._error = error

    def result(self) -> SofaAttentionResult:
        if not self.done():
            self._cluster._drain_until(self.done)
        if self._error is not None:
            raise self._error
        assert self._result is not None, "drain must resolve every in-flight future"
        return self._result


@dataclass
class WorkerStats:
    """Last known engine counters of one worker (piggybacked on results).

    ``kernels`` maps each pipeline stage to the kernel name the worker's
    engine resolved *in its own process* (explicit selection, its
    environment's ``SOFA_<STAGE>_KERNEL``, or the registry default) - the
    observable that proves env-driven kernel selection crossed the
    process/socket boundary.

    ``snapshot_received`` distinguishes "this worker has genuinely served
    nothing" from "no snapshot has arrived yet": every counter below
    defaults to zero, so without the flag a freshly started (or
    never-routed-to) worker was indistinguishable from an idle one.
    ``telemetry`` carries the worker's own metrics-registry snapshot when
    the telemetry plane is enabled (merge across workers with
    :func:`repro.obs.merge_snapshots`), else ``None``.
    """

    worker_id: int
    alive: bool
    n_requests: int = 0
    n_batches: int = 0
    cache: CacheStats = field(default_factory=CacheStats)
    kernels: dict[str, str] = field(default_factory=dict)
    snapshot_received: bool = False
    telemetry: dict[str, Any] | None = None
    #: autoscale-down in progress: the worker finishes its in-flight
    #: requests but takes no new routed traffic, then stops.
    draining: bool = False


@dataclass
class ClusterStats:
    """Point-in-time aggregate of the cluster (see :attr:`EngineCluster.stats`).

    Frontend counters (``n_submitted``/``n_deduped``/``n_rerouted``/
    ``n_worker_failures`` and the supervision tallies ``n_respawns``/
    ``n_reconnects``/``n_heartbeat_timeouts``) are exact; per-worker
    engine counters are the latest piggybacked snapshots, so they are
    exact whenever the cluster is drained (every result has been
    received).  ``workers`` lists every worker identity the cluster ever
    ran, dead incarnations included (a reconnected remote worker appears
    as a fresh id).
    """

    n_workers: int
    routing: str
    transport: str = "local"
    n_submitted: int = 0
    n_deduped: int = 0
    n_rerouted: int = 0
    n_worker_failures: int = 0
    n_completed: int = 0
    n_errors: int = 0
    pending: int = 0
    n_respawns: int = 0
    n_reconnects: int = 0
    n_heartbeat_timeouts: int = 0
    n_scale_ups: int = 0
    n_scale_downs: int = 0
    #: p99 of the frontend's submit-to-resolve latency over a recent
    #: window (``None`` until enough requests resolved) - the signal the
    #: autoscaler reads, surfaced for dashboards and the gateway.
    request_p99_s: float | None = None
    workers: list[WorkerStats] = field(default_factory=list)

    @property
    def n_requests(self) -> int:
        """Requests actually executed by worker engines (dedup excluded)."""
        return sum(w.n_requests for w in self.workers)

    @property
    def n_batches(self) -> int:
        return sum(w.n_batches for w in self.workers)

    @property
    def mean_batch_heads(self) -> float:
        return self.n_requests / self.n_batches if self.n_batches else 0.0

    @property
    def cache(self) -> CacheStats:
        """Merged decode-step-cache counters across every worker."""
        merged = CacheStats()
        for worker in self.workers:
            merged = merged.merge(worker.cache)
        return merged

    @property
    def cache_expirations(self) -> int:
        """Cluster-wide decode-cache TTL drops (idle/abandoned sequences).

        Workers sweep their engine cache between scheduling rounds *and*
        from their idle loop, so this advances on wall-clock time even on
        a quiet cluster - the snapshot still rides on result traffic, so
        an idle cluster reports the update with its next completed
        request.
        """
        return self.cache.expirations

    @property
    def live_workers(self) -> int:
        return sum(1 for w in self.workers if w.alive)


@dataclass
class _InFlight:
    """Parent-side record of one dispatched request (until it resolves).

    The encoded payload is retained so the request can be re-routed if its
    worker dies; ``futures`` holds the primary plus any deduped followers.
    ``worker is None`` means *parked*: no live worker existed but
    supervision can still recover one - the request replays on recovery.
    """

    payload: dict[str, Any]
    info: RequestInfo
    fingerprint: str
    worker: int | None
    futures: list[ClusterFuture] = field(default_factory=list)
    rerouted: int = 0
    #: monotonic submission stamp; resolve time minus this feeds the
    #: frontend's latency window (the autoscaler's p99 signal).
    submitted_at: float = 0.0
    #: telemetry: the frontend root span (cluster.request, submit to
    #: resolution) and the per-dispatch cluster.rpc span - both ``None``
    #: with the plane disabled.
    span: Any = None
    rpc_span: Any = None


class _WorkerHandle:
    """One worker incarnation: its transport link plus frontend-side state.

    ``slot`` is the stable position (supervision retries per slot);
    ``worker_id`` the routing identity of this incarnation - equal to the
    slot for the initial workers, fresh for reconnected remote ones.
    """

    def __init__(self, slot: int, worker_id: int, link: WorkerLink,
                 recovered: str | None = None):
        self.slot = slot
        self.worker_id = worker_id
        self.link = link
        self.alive = True
        self.ready = False
        #: autoscale-down: draining takes no new traffic; once its
        #: in-flight requests resolve it is stopped and marked retired.
        self.draining = False
        self.stop_sent = False
        self.retired = False
        #: None for initial workers; "respawn"/"reconnect" when this
        #: incarnation was brought up by supervision (counted on ready).
        self.recovered = recovered
        self.started_at = time.monotonic()
        self.snapshot: dict[str, Any] | None = None

    def stats(self) -> WorkerStats:
        # "No snapshot yet" must not masquerade as an idle worker's zeros:
        # the flag is the only honest signal before the first result frame.
        received = self.snapshot is not None
        snap = self.snapshot or {}
        cache = snap.get("cache") or {}
        return WorkerStats(
            worker_id=self.worker_id,
            alive=self.alive,
            n_requests=snap.get("n_requests", 0),
            n_batches=snap.get("n_batches", 0),
            cache=CacheStats(**cache),
            kernels=dict(snap.get("kernels") or {}),
            snapshot_received=received,
            telemetry=snap.get("telemetry"),
            draining=self.draining,
        )


class EngineCluster:
    """Sharded multi-process serving frontend (see module docstring).

    Parameters
    ----------
    n_workers:
        Engine worker slots (ignored when ``worker_addresses`` pins them).
    config:
        Default :class:`SofaConfig` for every worker engine.
    routing:
        One of :data:`~repro.cluster.routing.POLICIES`.
    dedup:
        Share one execution among bit-identical in-flight requests.
    transport:
        ``"local"`` (``multiprocessing`` children), ``"socket"``
        (standalone workers over length-prefixed TCP frames), or a
        :class:`~repro.cluster.transport.ClusterTransport` instance.
    worker_addresses:
        Socket transport only: one ``"host:port"`` per slot attaches to an
        externally started worker (``python -m repro.cluster.worker
        --listen host:port``); ``None`` entries (or omitting the list)
        spawn localhost workers.  Overrides ``n_workers`` with its length.
    supervisor:
        ``None``/``False`` disables supervision (a dead worker's requests
        re-route once, then fail when no worker is left - the pre-existing
        behaviour).  ``True`` enables it with default
        :class:`~repro.cluster.supervisor.SupervisorConfig`; pass an
        instance to tune heartbeat cadence and respawn backoff.
    autoscaler:
        ``None``/``False`` keeps the pool fixed at ``n_workers``.
        ``True`` enables autoscaling with default
        :class:`~repro.cluster.supervisor.AutoscalerConfig`; pass an
        instance to tune thresholds, hold periods and ``min_workers`` /
        ``max_workers`` bounds (``n_workers`` must not exceed
        ``max_workers``).  Scaled-up workers get fresh identities in new
        slots; scale-downs drain before stopping.  See the module
        docstring's autoscaling bullet and
        :meth:`EngineCluster.set_queue_depth_hook`.
    start_method:
        ``multiprocessing`` start method for the local transport (default:
        ``fork`` where available, else ``spawn``).
    max_batch_heads / max_wait_batches / backend / kernel /
    cache_kind / cache_entries / cache_ttl_s / cache_bytes /
    cache_block_tokens / cache_spill_dir:
        Forwarded to every worker's :class:`SofaEngine` - including the
        decode-cache parameterization (``cache_kind="paged"`` block pool
        with prefix sharing and disk spill by default; ``cache_bytes``
        is each worker's RAM budget).  ``cache_spill_dir`` is namespaced
        per worker id on the worker side, so co-hosted workers never
        share spill files.  (``kernel`` selects stage kernels from the
        :mod:`repro.kernels` registries - a bare string picks the SU-FA
        ``"stream"`` kernel, a mapping pins any of
        ``predict``/``select``/``stream``; kernels are bit-for-bit
        interchangeable, so it only moves wall-clock time).  The
        registries are per-process: built-in kernels resolve everywhere,
        but a custom-registered kernel reaches the workers only when they
        inherit the parent's registry (``fork`` start method, the Linux
        default) or register it at import time of a module the worker
        imports - under ``spawn`` (and for socket workers, which are
        independent processes), a parent-only registration will fail
        worker engine construction at startup.
    startup_timeout_s:
        How long to wait for all workers to report ready.
    """

    def __init__(
        self,
        n_workers: int = 2,
        config: SofaConfig | None = None,
        routing: str = "shape_affinity",
        dedup: bool = True,
        start_method: str | None = None,
        transport: str | ClusterTransport = "local",
        worker_addresses: list[str | None] | None = None,
        supervisor: SupervisorConfig | bool | None = None,
        autoscaler: "AutoscalerConfig | bool | None" = None,
        max_batch_heads: int = 64,
        max_wait_batches: int | None = None,
        backend: str = "sync",
        kernel: "str | Mapping[str, str] | None" = None,
        cache_kind: str = "paged",
        cache_entries: int = 256,
        cache_ttl_s: float | None = None,
        cache_bytes: int | None = None,
        cache_block_tokens: int = 32,
        cache_spill_dir: str | None = None,
        startup_timeout_s: float = 60.0,
    ):
        if worker_addresses is not None:
            if isinstance(transport, ClusterTransport):
                raise ValueError(
                    "worker_addresses cannot combine with a transport "
                    "instance - construct SocketTransport(addresses) instead"
                )
            if transport != "socket":
                raise ValueError(
                    "worker_addresses requires transport='socket'"
                )
            n_workers = len(worker_addresses)
        if isinstance(transport, ClusterTransport):
            slots = getattr(transport, "n_slots", None)
            if slots is not None and slots != n_workers:
                raise ValueError(
                    f"transport instance has {slots} worker slot(s) but "
                    f"n_workers={n_workers}"
                )
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if routing not in POLICIES:
            raise ValueError(f"unknown routing policy {routing!r}; expected {POLICIES}")
        if kernel is not None:
            # Fail a typo here, in the caller's process, instead of
            # spawning N workers that all die on engine construction.
            config_with_kernels(config or SofaConfig(), kernel)
        self.config = config or SofaConfig()
        self.routing = routing
        self.dedup = dedup
        self._policy = make_policy(routing, n_workers)
        if isinstance(transport, ClusterTransport):
            self._transport = transport
        elif transport in TRANSPORTS:
            self._transport = make_transport(
                transport,
                n_workers,
                start_method=start_method,
                worker_addresses=worker_addresses,
            )
        else:
            raise ValueError(
                f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
            )
        if supervisor is True:
            supervisor = SupervisorConfig()
        elif supervisor is False:
            supervisor = None
        self._supervisor: WorkerSupervisor | None = None
        self._supervisor_config = supervisor
        self._sup_stats = SupervisionStats()
        if autoscaler is True:
            autoscaler = AutoscalerConfig()
        elif autoscaler is False:
            autoscaler = None
        if autoscaler is not None and n_workers > autoscaler.max_workers:
            raise ValueError(
                f"n_workers={n_workers} exceeds the autoscaler's "
                f"max_workers={autoscaler.max_workers}"
            )
        # Constructed only after startup (the ready drain below pumps
        # _supervise/_autoscale, which must see a quiet scaler until the
        # initial pool is actually up).
        self._autoscaler: PoolAutoscaler | None = None
        self._autoscaler_config = autoscaler
        #: recent submit-to-resolve latencies; the autoscaler's p99 signal.
        self._latencies: deque[float] = deque(maxlen=512)
        self._queue_depth_hook: "Callable[[], int] | None" = None

        self._lock = threading.RLock()
        self._inflight: dict[int, _InFlight] = {}
        self._dedup_window: dict[str, int] = {}
        self._next_req_id = 0
        self._next_ctl_id = 0
        self._ctl_replies: dict[int, int] = {}
        self._pending_ctl: set[int] = set()
        self._n_submitted = 0
        self._n_deduped = 0
        self._n_rerouted = 0
        self._n_failures = 0
        self._n_completed = 0
        self._n_errors = 0
        self._shut_down = False

        obs = get_telemetry()
        if obs.enabled:
            self._register_metrics(obs)

        self._engine_kwargs = {
            "config": encode_config(self.config),
            "max_batch_heads": max_batch_heads,
            "max_wait_batches": max_wait_batches,
            "backend": backend,
            # Every worker engine resolves its stage kernels (predict/
            # select/stream) through the same repro.kernels registries as
            # in-process serving, so the cross-process parity contract
            # shares one implementation per stage too.
            "kernel": dict(kernel) if isinstance(kernel, Mapping) else kernel,
            "cache_kind": cache_kind,
            "cache_entries": cache_entries,
            "cache_ttl_s": cache_ttl_s,
            "cache_bytes": cache_bytes,
            "cache_block_tokens": cache_block_tokens,
            "cache_spill_dir": cache_spill_dir,
        }
        self._slots: list[_WorkerHandle] = []
        self._workers: dict[int, _WorkerHandle] = {}
        self._next_worker_id = n_workers
        self._ready: set[int] = set()
        try:
            for slot in range(n_workers):
                link = self._transport.start_worker(
                    slot, slot, self._engine_kwargs
                )
                handle = _WorkerHandle(slot, slot, link)
                self._slots.append(handle)
                self._workers[slot] = handle
        except Exception:
            self.shutdown()
            raise

        if supervisor is not None:
            self._supervisor = WorkerSupervisor(
                supervisor, n_workers, time.monotonic()
            )

        try:
            self._drain_until(
                lambda: len(self._ready) + self._dead_count() >= n_workers,
                timeout=startup_timeout_s,
            )
        except Exception:
            self.shutdown()
            raise
        if self._dead_count():
            self.shutdown()
            raise ClusterError("one or more cluster workers failed to start")
        if autoscaler is not None:
            self._autoscaler = PoolAutoscaler(autoscaler, time.monotonic())

    def _register_metrics(self, obs) -> None:
        """Frontend counters as weakref-backed callback gauges.

        A retired cluster reads 0 instead of being pinned by telemetry;
        gauge callbacks run outside the registry lock (see
        :meth:`repro.obs.MetricsRegistry.snapshot`), so taking this
        cluster's re-entrant lock here cannot deadlock against metric
        updates made while it is held.
        """
        ref = weakref.ref(self)

        def gauge(name: str, read: Callable[["EngineCluster"], float]) -> None:
            def callback() -> float:
                cluster = ref()
                return float(read(cluster)) if cluster is not None else 0.0

            obs.register_gauge(name, callback)

        def locked_pending(cluster: "EngineCluster") -> float:
            with cluster._lock:
                return sum(len(r.futures) for r in cluster._inflight.values())

        gauge("sofa_cluster_submitted_total", lambda c: c._n_submitted)
        gauge("sofa_cluster_deduped_total", lambda c: c._n_deduped)
        gauge("sofa_cluster_rerouted_total", lambda c: c._n_rerouted)
        gauge("sofa_cluster_worker_failures_total", lambda c: c._n_failures)
        gauge("sofa_cluster_completed_total", lambda c: c._n_completed)
        gauge("sofa_cluster_errors_total", lambda c: c._n_errors)
        gauge("sofa_cluster_pending_requests", locked_pending)
        gauge(
            "sofa_cluster_live_workers",
            lambda c: sum(1 for w in c._slots if w.alive and w.ready),
        )

    # ---------------------------------------------------------------- topology
    def _dead_count(self) -> int:
        return sum(1 for w in self._slots if not w.alive)

    def _live_ids(self) -> list[int]:
        """Workers that can take routed traffic: link up, engine ready,
        and not draining toward autoscale retirement."""
        return [
            w.worker_id
            for w in self._slots
            if w.alive and w.ready and not w.draining
        ]

    @property
    def n_workers(self) -> int:
        return len(self._slots)

    @property
    def transport(self) -> str:
        return self._transport.name

    @property
    def live_workers(self) -> list[int]:
        with self._lock:
            self._reap_dead_workers()
            return self._live_ids()

    @property
    def pending(self) -> int:
        with self._lock:
            return sum(len(rec.futures) for rec in self._inflight.values())

    # -------------------------------------------------------------- submission
    def submit(self, request: AttentionRequest) -> ClusterFuture:
        """Encode, dedup, route and dispatch one request; returns its future."""
        with self._lock:
            if self._shut_down:
                raise ClusterError("cluster is shut down")
            validate_request(request, self.config)
            obs = get_telemetry()
            span = None
            if obs.enabled:
                # The root span's identity rides in the frame's optional
                # "trace" field so the worker can stitch its spans under
                # this request's timeline (fingerprints exclude it - see
                # encode_request - so tracing never splits dedup).
                span = obs.start_span(
                    "cluster.request", attrs={"tag": request.tag or ""}
                )
                t_enc = obs.clock()
                payload = encode_request(
                    request, trace=(span.trace_id, span.span_id)
                )
                obs.observe_since("sofa_codec_encode_seconds", t_enc)
            else:
                payload = encode_request(request)
            # The fingerprint hashes every tensor byte - only worth it when
            # dedup can use it (sha256 digests are never empty, so "" can
            # not collide with a real fingerprint).
            fingerprint = request_fingerprint(payload) if self.dedup else ""
            future = ClusterFuture(self)
            self._n_submitted += 1

            if self.dedup and fingerprint in self._dedup_window:
                primary = self._dedup_window[fingerprint]
                self._inflight[primary].futures.append(future)
                self._n_deduped += 1
                # This submission shares the primary's execution; its own
                # span ends here as the dedup-hit marker.
                obs.end_span(span, deduped=True)
                return future

            info = self._request_info(payload, fingerprint)
            self._reap_dead_workers()
            self._supervise()
            self._autoscale()
            live = self._live_ids()
            if not live and not self._can_park():
                raise WorkerUnavailableError("no live worker to route to")
            req_id = self._next_req_id
            self._next_req_id += 1
            record = _InFlight(
                payload=payload,
                info=info,
                fingerprint=fingerprint,
                worker=None,
                submitted_at=time.monotonic(),
            )
            record.futures.append(future)
            record.span = span
            self._inflight[req_id] = record
            if self.dedup:
                self._dedup_window[fingerprint] = req_id
            if live:
                record.worker = self._policy.route(info, live)
                record.rpc_span = self._start_rpc_span(record)
                self._workers[record.worker].link.send(("req", req_id, payload))
            # else: parked - replayed when supervision recovers a worker
            return future

    def submit_many(self, requests: list[AttentionRequest]) -> list[ClusterFuture]:
        return [self.submit(r) for r in requests]

    def _can_park(self) -> bool:
        """May a request wait for supervision instead of failing?"""
        return (
            self._supervisor is not None
            and self._supervisor.can_recover()
        )

    def _start_rpc_span(self, record: _InFlight) -> Any:
        """Open one cluster.rpc span for the record's current dispatch."""
        if record.span is None:
            return None
        return get_telemetry().start_span(
            "cluster.rpc",
            trace_id=record.span.trace_id,
            parent_id=record.span.span_id,
            attrs={"worker": record.worker, "rerouted": record.rerouted},
        )

    def _finish_record_spans(self, record: _InFlight, error: str | None = None) -> None:
        """Close a resolved (or failed) record's rpc and root spans."""
        obs = get_telemetry()
        extra = {} if error is None else {"error": error}
        obs.end_span(record.rpc_span, **extra)
        obs.end_span(record.span, **extra)
        record.rpc_span = None
        record.span = None

    def _request_info(self, payload: dict[str, Any], fingerprint: str) -> RequestInfo:
        """Build the routing view: shape key, cache key, S*T cost."""
        s, h = payload["tokens"][2]
        t, dk = payload["q"][2]
        wv_cols = payload["wv"][2][1]
        has_v = payload["value_cache"] is not None
        dv = payload["value_cache"][2][1] if has_v else wv_cols
        shape_key = repr(
            (s, t, h, dk, dv, wv_cols, has_v, payload["config"])
        ).encode()
        return RequestInfo(
            shape_key=shape_key,
            cache_key=payload["cache_key"],
            cost=float(s) * float(t),
        )

    # ------------------------------------------------------------------ pumping
    def poll(self, timeout: float = 0.0) -> int:
        """Process any available worker messages; returns how many.

        Non-blocking with ``timeout=0`` - the asyncio client calls this
        between ``await`` points so the event loop never blocks on IPC.
        Supervision (heartbeats, respawn/reconnect attempts) also advances
        here, so any pumping caller keeps the cluster healthy.
        """
        with self._lock:
            n = self._drain_available()
            if n == 0 and timeout > 0:
                n += self._drain_some(timeout)
            self._reap_dead_workers()
            self._supervise()
            self._autoscale()
            return n

    def _drain_available(self) -> int:
        n = 0
        while True:
            message = self._transport.recv_nowait()
            if message is None:
                return n
            self._handle_message(message)
            n += 1

    def _drain_some(self, timeout: float) -> int:
        message = self._transport.recv(timeout)
        if message is None:
            return 0
        self._handle_message(message)
        return 1 + self._drain_available()

    def _drain_until(
        self, predicate: Callable[[], bool], timeout: float | None = None
    ) -> Exception | None:
        """Pump messages until ``predicate`` holds; returns the first
        request error seen (the caller decides whether to re-raise it)."""
        first_error: Exception | None = None
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while not predicate():
                message = self._transport.recv(0.05)
                if message is None:
                    reap_error = self._reap_dead_workers()
                    if reap_error is not None and first_error is None:
                        first_error = reap_error
                    self._supervise()
                    self._autoscale()
                    if deadline is not None and time.monotonic() > deadline:
                        raise TimeoutError(
                            "cluster drain timed out with "
                            f"{len(self._inflight)} request(s) in flight"
                        )
                    continue
                error = self._handle_message(message)
                if error is not None and first_error is None:
                    first_error = error
        return first_error

    def _handle_message(self, message: tuple) -> Exception | None:
        kind = message[0]
        worker_id = message[1]
        handle = self._workers.get(worker_id)
        if (
            self._supervisor is not None
            and handle is not None
            and self._slots[handle.slot] is handle
        ):
            # Any traffic from the current incarnation is proof of life.
            self._supervisor.note_seen(handle.slot, time.monotonic())
        if kind == "ready":
            if handle is not None:
                handle.ready = True
                if handle.recovered == "respawn":
                    self._sup_stats.respawns += 1
                elif handle.recovered == "reconnect":
                    self._sup_stats.reconnects += 1
                handle.recovered = None
                if self._supervisor is not None:
                    self._supervisor.note_ready(handle.slot, time.monotonic())
            self._ready.add(worker_id)
            self._dispatch_parked()
            return None
        if kind == "pong":
            return None  # note_seen above is the whole point
        if kind == "result":
            _, _, req_id, result_payload, snapshot = message
            obs = get_telemetry()
            # The worker's finished spans ride home piggybacked on the
            # snapshot; pop them regardless of the local enabled flag so
            # they never linger in the stored stats dict.
            spans = snapshot.pop("spans", None) if isinstance(snapshot, dict) else None
            if spans and obs.enabled:
                obs.tracer.ingest(spans)
            if handle is not None:
                handle.snapshot = snapshot
            record = self._inflight.pop(req_id, None)
            if record is None:  # resolved by a re-route race; stats still count
                return None
            if record.submitted_at:
                self._latencies.append(time.monotonic() - record.submitted_at)
            obs.end_span(record.rpc_span)
            record.rpc_span = None
            self._dedup_window.pop(record.fingerprint, None)
            if record.worker is not None:
                self._policy.retire(record.worker, record.info.cost)
            first_decode_error: Exception | None = None
            for future in record.futures:
                # Each future decodes its own tensors so callers never
                # share (and can never cross-mutate) result arrays.
                try:
                    t_dec = obs.clock()
                    result = decode_result(result_payload)
                    obs.observe_since("sofa_codec_decode_seconds", t_dec)
                    future.set_result(result)
                except Exception as error:  # noqa: BLE001 - codec failure
                    # A result payload this frontend cannot decode (codec
                    # skew, corruption) fails the future instead of
                    # crashing the pump or hanging the request.
                    future.set_error(error)
                    self._n_errors += 1
                    if first_decode_error is None:
                        first_decode_error = error
                else:
                    self._n_completed += 1
            self._finish_record_spans(
                record,
                error=None if first_decode_error is None else repr(first_decode_error),
            )
            return first_decode_error
        if kind == "error":
            _, _, req_id, error_bytes = message
            record = self._inflight.pop(req_id, None)
            if record is None:
                return None
            self._dedup_window.pop(record.fingerprint, None)
            if record.worker is not None:
                self._policy.retire(record.worker, record.info.cost)
            error = pickle.loads(error_bytes)
            self._finish_record_spans(record, error=repr(error))
            for future in record.futures:
                future.set_error(error)
                self._n_errors += 1
            return error
        if kind == "invalidated":
            _, _, ctl_id, dropped = message
            if ctl_id in self._pending_ctl:  # late replies of a finished
                self._ctl_replies[ctl_id] = dropped  # round are dropped,
            return None  # never accumulated
        if kind == "stopped":
            if handle is not None:
                handle.alive = False
                handle.ready = False
            self._ready.discard(worker_id)
            return None
        raise ClusterError(f"unknown worker message {kind!r}")

    # ----------------------------------------------------------------- failure
    def _reap_dead_workers(self) -> Exception | None:
        """Detect dead workers and re-route (or park) their requests."""
        first_error: Exception | None = None
        for handle in list(self._slots):
            if not handle.alive or handle.link.is_alive():
                continue
            error = self._on_worker_down(handle)
            if error is not None and first_error is None:
                first_error = error
        return first_error

    def _on_worker_down(self, handle: _WorkerHandle) -> Exception | None:
        """One worker is gone: account it and recover its in-flight work.

        Results a dying worker managed to ship are drained *first*, so
        only genuinely unresolved requests move.  Affinity policies
        re-route via rendezvous hashing over the survivors; with
        supervision able to recover, stranded requests park instead of
        failing; otherwise a request fails only when no live worker
        remains - the first such failure is returned so a surrounding
        drain can re-raise it.
        """
        handle.alive = False
        handle.ready = False
        self._ready.discard(handle.worker_id)
        if self._shut_down:
            return None  # a stopping worker's exit is not a failure
        if handle.draining or handle.retired:
            # A retiring worker going away is lifecycle, not failure: the
            # supervisor must not respawn its slot.  Stragglers it still
            # held (it crashed mid-drain) are recovered below as usual.
            if self._supervisor is not None:
                self._supervisor.note_retired(handle.slot)
        else:
            self._n_failures += 1
            if self._supervisor is not None:
                self._supervisor.note_down(handle.slot, time.monotonic())
        orphans = [
            (req_id, rec)
            for req_id, rec in self._inflight.items()
            if rec.worker == handle.worker_id
        ]
        if not orphans:
            return None
        self._drain_available()  # late results beat re-execution
        live = self._live_ids()
        first_error: Exception | None = None
        for req_id, record in orphans:
            if req_id not in self._inflight:
                continue  # its result arrived in the drain above
            assert record.worker is not None
            self._policy.retire(record.worker, record.info.cost)
            if record.rpc_span is not None:
                get_telemetry().end_span(record.rpc_span, error="worker_died")
                record.rpc_span = None
            if live:
                record.worker = self._policy.route(record.info, live)
                record.rerouted += 1
                self._n_rerouted += 1
                record.rpc_span = self._start_rpc_span(record)
                self._workers[record.worker].link.send(
                    ("req", req_id, record.payload)
                )
            elif self._can_park():
                record.worker = None  # parked: replayed on recovery
            else:
                self._inflight.pop(req_id)
                self._dedup_window.pop(record.fingerprint, None)
                error = WorkerUnavailableError(
                    f"worker {handle.worker_id} died and no live worker "
                    "is left to re-route to"
                )
                if handle.link.error is not None:
                    error.__cause__ = handle.link.error
                if first_error is None:
                    first_error = error
                self._finish_record_spans(record, error=repr(error))
                for future in record.futures:
                    future.set_error(error)
                    self._n_errors += 1
        return first_error

    def _dispatch_parked(self) -> None:
        """Replay parked requests onto the (newly) live worker set."""
        live = self._live_ids()
        if not live:
            return
        for req_id, record in self._inflight.items():
            if record.worker is not None:
                continue
            record.worker = self._policy.route(record.info, live)
            record.rerouted += 1
            self._n_rerouted += 1
            record.rpc_span = self._start_rpc_span(record)
            self._workers[record.worker].link.send(
                ("req", req_id, record.payload)
            )

    def _fail_parked(self) -> None:
        """Supervision gave up with no worker left: fail parked requests."""
        parked = [
            (req_id, rec)
            for req_id, rec in self._inflight.items()
            if rec.worker is None
        ]
        for req_id, record in parked:
            self._inflight.pop(req_id)
            self._dedup_window.pop(record.fingerprint, None)
            error = WorkerUnavailableError(
                "supervision exhausted its recovery attempts with no live "
                "worker left"
            )
            self._finish_record_spans(record, error=repr(error))
            for future in record.futures:
                future.set_error(error)
                self._n_errors += 1

    # ------------------------------------------------------------- supervision
    def _supervise(self) -> None:
        """One supervision pass: heartbeats, timeouts, due recoveries.

        Runs inside every pump (poll / drains / submit), so supervision
        advances exactly when the caller is interacting with the cluster -
        no background thread, no cross-thread locking subtleties.
        """
        sup = self._supervisor
        if sup is None or self._shut_down:
            return
        now = time.monotonic()
        for handle in list(self._slots):
            if not handle.alive:
                continue
            if (
                not handle.ready
                and handle.recovered is not None
                and now - handle.started_at > sup.config.ready_timeout_s
            ):
                # A recovery incarnation holding its link open without ever
                # reporting ready (wedged engine build, hung remote worker)
                # would otherwise block its slot's retries forever: fail the
                # attempt so the bounded backoff keeps making progress.
                handle.link.kill()
                self._on_worker_down(handle)
                continue
            if handle.ready and sup.ping_due(handle.slot, now):
                # Liveness is proved by ANY message from the worker (the
                # pong included), so the probe needs no correlation token.
                sup.note_ping(handle.slot, now)
                handle.link.send(("ping", 0))
            if sup.timed_out(handle.slot, now):
                # Scoop anything the silent worker already shipped - a
                # result racing the timeout must count, and also proves
                # the worker alive (cancelling the verdict).
                self._drain_available()
                if handle.alive and sup.timed_out(handle.slot, now):
                    self._sup_stats.heartbeat_timeouts += 1
                    handle.link.kill()
                    self._on_worker_down(handle)
        for slot, handle in enumerate(list(self._slots)):
            if not handle.alive and sup.retry_due(slot, now):
                self._attempt_recovery(slot, now)
        if not self._live_ids() and not sup.can_recover() and not any(
            h.alive for h in self._slots
        ):
            self._fail_parked()

    def _attempt_recovery(self, slot: int, now: float) -> None:
        """Respawn (local) or reconnect (remote) one dead worker slot."""
        sup = self._supervisor
        assert sup is not None
        kind = "respawn" if self._transport.owns_process(slot) else "reconnect"
        worker_id = (
            self._slots[slot].worker_id
            if self._transport.reuses_worker_ids
            else self._alloc_worker_id()
        )
        sup.note_recovery_started(slot, now)
        try:
            link = self._transport.start_worker(
                slot, worker_id, self._engine_kwargs
            )
        except Exception:  # noqa: BLE001 - any start failure just backs off
            sup.note_start_failed(slot, now)
            return
        self._slots[slot].link.close()  # old incarnation's parent-side end
        handle = _WorkerHandle(slot, worker_id, link, recovered=kind)
        self._slots[slot] = handle
        self._workers[worker_id] = handle
        # Not ready yet: it joins the live set when its "ready" arrives
        # (or is reaped as a died-during-respawn if the link drops first).

    def _alloc_worker_id(self) -> int:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        return worker_id

    # ------------------------------------------------------------- autoscaling
    def _autoscale(self) -> None:
        """One autoscaler tick: finish pending drains, act on the verdict.

        Runs right after every supervision pass (submit / poll / drains),
        so the pool reacts exactly as fast as callers pump the cluster -
        the same no-background-thread design as supervision itself.
        """
        scaler = self._autoscaler
        if scaler is None or self._shut_down:
            return
        self._finish_drains()
        now = time.monotonic()
        live = self._live_ids()
        backlog = len(self._inflight)
        hook = self._queue_depth_hook
        if hook is not None:
            try:
                backlog += int(hook())
            except Exception:
                pass  # a dead frontend must not take supervision down
        decision = scaler.decide(now, len(live), backlog, self._request_p99())
        if decision > 0:
            self._scale_up(now)
        elif decision < 0:
            self._scale_down(live)

    def set_queue_depth_hook(self, hook: "Callable[[], int] | None") -> None:
        """Fold a frontend's queue depth into the autoscaling signal.

        A frontend that bounds its own concurrency (the gateway's
        ``max_inflight``) hides demand from the cluster: in-flight count
        saturates at the cap no matter how deep the admission queue
        grows.  ``hook`` (a zero-argument callable returning the number
        of admitted-but-undispatched requests) restores visibility - the
        autoscaler's queue-depth signal becomes in-flight plus frontend
        backlog, so the pool grows on real demand, not just on what the
        frontend happened to dispatch.  Pass ``None`` to detach.
        """
        self._queue_depth_hook = hook

    def _request_p99(self) -> float | None:
        """p99 of the recent submit-to-resolve window, or ``None`` while
        the window is too small for a tail to mean anything."""
        n = len(self._latencies)
        if n < 8:
            return None
        ordered = sorted(self._latencies)
        return ordered[min(n - 1, int(0.99 * n))]

    def _scale_up(self, now: float) -> None:
        """Provision a new slot and spawn a fresh-identity worker in it."""
        assert self._autoscaler is not None
        provisioned = sum(1 for w in self._slots if w.alive and not w.draining)
        if provisioned >= self._autoscaler.config.max_workers:
            return  # an earlier spawn is still warming up toward ready
        slot = len(self._slots)
        n_slots = getattr(self._transport, "n_slots", None)
        if n_slots is None or slot >= n_slots:
            self._transport.add_slot()
        # Scaled-up workers always get a fresh id: slot-indexed ids are
        # only safe for the initial pool (reconnects may already have
        # allocated past it).
        worker_id = self._alloc_worker_id()
        try:
            link = self._transport.start_worker(
                slot, worker_id, self._engine_kwargs
            )
        except Exception:  # noqa: BLE001 - a later tick simply retries
            return
        handle = _WorkerHandle(slot, worker_id, link)
        self._slots.append(handle)
        self._workers[worker_id] = handle
        if self._supervisor is not None:
            self._supervisor.add_slot(now)
        self._sup_stats.scale_ups += 1
        # Joins the routable set when its "ready" arrives; until then the
        # provisioned-count guard above stops repeat spawns.

    def _scale_down(self, live: list[int]) -> None:
        """Drain the least-loaded live worker toward retirement."""
        if not live:
            return
        counts: dict[int, int] = {wid: 0 for wid in live}
        for record in self._inflight.values():
            if record.worker in counts:
                counts[record.worker] += 1
        # Fewest in-flight first; ties prefer the youngest identity (the
        # most recently scaled-up worker is the natural one to retire).
        victim = min(live, key=lambda wid: (counts[wid], -wid))
        handle = self._workers[victim]
        handle.draining = True
        self._sup_stats.scale_downs += 1
        self._maybe_stop_drained(handle)

    def _finish_drains(self) -> None:
        """Stop any draining worker whose in-flight work has resolved."""
        for handle in self._slots:
            if handle.draining and handle.alive and not handle.stop_sent:
                self._maybe_stop_drained(handle)

    def _maybe_stop_drained(self, handle: _WorkerHandle) -> None:
        """If nothing is in flight on ``handle``, stop and retire it."""
        if any(
            rec.worker == handle.worker_id for rec in self._inflight.values()
        ):
            return  # still draining; checked again on the next tick
        handle.stop_sent = True
        handle.retired = True
        handle.link.send(("stop",))
        if self._supervisor is not None:
            self._supervisor.note_retired(handle.slot)

    # ------------------------------------------------------------------ drains
    def flush(self) -> None:
        """Block until every in-flight request resolved; re-raise the first
        error seen during this drain (each failed future also carries its
        own), matching :meth:`SofaEngine.flush` semantics."""
        first_error = self._drain_until(lambda: not self._inflight)
        if first_error is not None:
            raise first_error

    def run_until_drained(self) -> None:
        self.flush()

    def run(self, requests: list[AttentionRequest]) -> list[SofaAttentionResult]:
        """Submit, drain, and return results in request order."""
        futures = self.submit_many(requests)
        self.flush()
        return [f.result() for f in futures]

    # ------------------------------------------------------------------- cache
    def invalidate_cache(self, key: Hashable) -> int:
        """Drop a sequence's decode-cache state on every worker.

        Broadcasts the invalidation (workers apply it after their queued
        work) and returns the total number of entries dropped cluster-wide.
        A worker that dies before replying contributes zero.
        """
        with self._lock:
            if self._shut_down:
                return 0
            self._reap_dead_workers()
            key_bytes = pickle.dumps(key, protocol=pickle.HIGHEST_PROTOCOL)
            ctl_targets: dict[int, int] = {}
            for worker_id in self._live_ids():
                ctl_id = self._next_ctl_id
                self._next_ctl_id += 1
                ctl_targets[ctl_id] = worker_id
                self._pending_ctl.add(ctl_id)
                self._workers[worker_id].link.send(("invalidate", ctl_id, key_bytes))

            def all_replied() -> bool:
                # A worker that died before replying contributes nothing;
                # reaping (inside the drain) flips its alive bit.
                return all(
                    c in self._ctl_replies or not self._workers[w].alive
                    for c, w in ctl_targets.items()
                )

            self._drain_until(all_replied)
            # Scoop replies a dying worker shipped just before its death was
            # detected (the reply can trail the liveness flip through the
            # outbox); anything later than this is dropped via _pending_ctl.
            self._drain_available()
            self._pending_ctl.difference_update(ctl_targets)
            return sum(self._ctl_replies.pop(c, 0) for c in ctl_targets)

    # ------------------------------------------------------------------- stats
    @property
    def stats(self) -> ClusterStats:
        """A point-in-time :class:`ClusterStats` snapshot (exact once drained)."""
        with self._lock:
            return ClusterStats(
                n_workers=self.n_workers,
                routing=self.routing,
                transport=self._transport.name,
                n_submitted=self._n_submitted,
                n_deduped=self._n_deduped,
                n_rerouted=self._n_rerouted,
                n_worker_failures=self._n_failures,
                n_completed=self._n_completed,
                n_errors=self._n_errors,
                pending=sum(len(r.futures) for r in self._inflight.values()),
                n_respawns=self._sup_stats.respawns,
                n_reconnects=self._sup_stats.reconnects,
                n_heartbeat_timeouts=self._sup_stats.heartbeat_timeouts,
                n_scale_ups=self._sup_stats.scale_ups,
                n_scale_downs=self._sup_stats.scale_downs,
                request_p99_s=self._request_p99(),
                workers=[
                    handle.stats()
                    for _, handle in sorted(self._workers.items())
                ],
            )

    # ---------------------------------------------------------------- lifetime
    def stall_worker(self, worker_id: int, seconds: float) -> None:
        """Fault-injection hook: make one worker sleep before its next read.

        Lets tests/drills queue submissions behind a crash point
        deterministically (stall, submit, crash - the stalled worker never
        serves what arrived during the stall).
        """
        handle = self._workers[worker_id]
        if handle.alive:
            handle.link.send(("sleep", seconds))

    def crash_worker(self, worker_id: int, hard: bool = True, wait: bool = True) -> None:
        """Fault-injection hook (tests, failure drills): kill one worker.

        ``hard=True`` kills the worker's process where this side owns it
        (local children, spawned socket workers); for a purely remote
        worker it severs the link instead (the standalone process loops
        back to ``accept``, which is what reconnection drills want).
        ``hard=False`` asks the worker to ``os._exit`` at its next message
        read (a clean crash point, so queues are never corrupted
        mid-write).  Either way the cluster treats it as a real failure:
        in-flight requests are re-routed on detection.  ``wait=False``
        returns without joining (the crash lands whenever the worker
        reaches it).
        """
        handle = self._workers[worker_id]
        if not handle.alive:
            return
        if hard:
            handle.link.kill()
        else:
            handle.link.send(("exit", 1))
        if wait:
            handle.link.join(timeout=30.0)

    def shutdown(self, timeout_s: float = 10.0) -> None:
        """Stop every worker and release transport resources.

        In-flight requests that never resolved fail with
        :class:`ClusterError` (their futures stop blocking).  Safe to call
        twice.
        """
        with self._lock:
            if self._shut_down:
                return
            self._shut_down = True
            for handle in self._slots:
                if handle.alive and handle.link.is_alive():
                    if not handle.link.send(("stop",)):
                        # Undeliverable stop (torn-down queue/socket): don't
                        # spin the drain timeout waiting for its "stopped".
                        handle.alive = False
            try:
                self._drain_until(
                    lambda: all(
                        not w.alive or not w.link.is_alive()
                        for w in self._slots
                    ),
                    timeout=timeout_s,
                )
            except TimeoutError:
                pass
            error = ClusterError("cluster shut down with requests in flight")
            for record in self._inflight.values():
                self._finish_record_spans(record, error=repr(error))
                for future in record.futures:
                    if not future.done():
                        future.set_error(error)
            self._inflight.clear()
            self._dedup_window.clear()
            for handle in self._workers.values():
                handle.link.join(timeout=timeout_s)
                if handle.link.is_alive():
                    handle.link.kill()
                    handle.link.join(timeout=timeout_s)
                handle.alive = False
                handle.ready = False
                handle.link.close()
            self._transport.close()

    def __enter__(self) -> "EngineCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
