"""EngineCluster: a sharded multi-process serving tier over ``SofaEngine``.

One :class:`~repro.engine.serving.SofaEngine` is continuously batched,
and since the kernel layer (:mod:`repro.kernels`) its SU-FA streaming
core is tile-blocked rather than per-key Python-bound - but a single
process still caps at one core's compute and one cache budget.  The
cluster shards the request stream across ``n_workers`` child processes -
each running its own engine (own fused operators, own decode-step cache,
own kernel selection from the shared registry) behind the message loop of
:mod:`repro.cluster.worker` - the software shape of the paper's parallel
hardware lanes.

Responsibilities of this frontend:

* **Routing** - every submitted request is encoded once
  (:mod:`repro.engine.codec`) and routed by a pluggable policy
  (:mod:`repro.cluster.routing`): ``round_robin``, ``shape_affinity``
  (same tiling grid -> same worker -> same fused batch), ``cache_affinity``
  (decode ``cache_key`` sticks to the worker holding its cached state) or
  ``least_loaded`` (RASS lane balancing over processes).
* **Cross-request dedup** - bit-identical requests (equal codec
  fingerprints; ``tag``/``deadline`` excluded) submitted while the first
  copy is still in flight share one execution: the duplicates' futures
  resolve from the same result payload, each decoding its own tensors.
  The *routing window* of the dedup is exactly that in-flight span - once
  a result is delivered the fingerprint is forgotten.
* **Failure handling** - a worker that dies (crash, kill, fault drill)
  is detected during the pump; results it already shipped still count,
  and every request still in flight on it is **re-routed** to a live
  worker (affinity policies use rendezvous hashing, so survivors keep
  their keys).  Requests are only failed when no worker is left.
* **Aggregated statistics** - every result piggybacks the worker's
  engine counters; :attr:`EngineCluster.stats` merges them with the
  frontend's own (submitted/deduped/rerouted/failures) into a
  :class:`ClusterStats` snapshot.

The parity contract of the engine extends across the process boundary:
each worker's engine is bit-identical to the sequential operator, the
codec round-trips tensors bit-exactly, and routing only chooses *where* a
request runs - so every result is bit-identical to single-engine serving
regardless of policy, worker count, dedup, or mid-stream failures.

The cluster is a drop-in engine for the call surface
``submit / submit_many / flush / run_until_drained / run /
invalidate_cache / stats / shutdown`` - e.g.
:class:`~repro.model.inference.SparseInferenceRunner` and
:class:`~repro.model.inference.SparseDecodeSession` accept one via their
``engine`` parameter.  Submissions are expected from one caller thread
(mirroring the engine's contract); :class:`~repro.cluster.aio.
AsyncSofaClient` layers ``async``/``await`` on top for asyncio servers.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from repro.core.config import SofaConfig
from repro.core.pipeline import SofaAttentionResult
from repro.engine.cache import CacheStats
from repro.engine.codec import (
    decode_result,
    encode_config,
    encode_request,
    request_fingerprint,
)
from repro.engine.serving import AttentionRequest, validate_request
from repro.kernels import resolve_sufa_kernel_name
from repro.cluster.routing import POLICIES, RequestInfo, make_policy
from repro.cluster.worker import worker_main


class ClusterError(RuntimeError):
    """Cluster-level serving failure."""


class WorkerUnavailableError(ClusterError):
    """No live worker is left to (re-)route a request to."""


class ClusterFuture:
    """Handle to a request submitted to the cluster.

    Mirrors :class:`~repro.engine.serving.AttentionFuture`: ``result()``
    blocks (pumping worker results) until this request resolves, so
    callers may submit everything and read results in any order.
    """

    def __init__(self, cluster: "EngineCluster"):
        self._cluster = cluster
        self._result: SofaAttentionResult | None = None
        self._error: Exception | None = None

    def done(self) -> bool:
        return self._result is not None or self._error is not None

    def set_result(self, result: SofaAttentionResult) -> None:
        self._result = result

    def set_error(self, error: Exception) -> None:
        self._error = error

    def result(self) -> SofaAttentionResult:
        if not self.done():
            self._cluster._drain_until(self.done)
        if self._error is not None:
            raise self._error
        assert self._result is not None, "drain must resolve every in-flight future"
        return self._result


@dataclass
class WorkerStats:
    """Last known engine counters of one worker (piggybacked on results)."""

    worker_id: int
    alive: bool
    n_requests: int = 0
    n_batches: int = 0
    cache: CacheStats = field(default_factory=CacheStats)


@dataclass
class ClusterStats:
    """Point-in-time aggregate of the cluster (see :attr:`EngineCluster.stats`).

    Frontend counters (``n_submitted``/``n_deduped``/``n_rerouted``/
    ``n_worker_failures``) are exact; per-worker engine counters are the
    latest piggybacked snapshots, so they are exact whenever the cluster
    is drained (every result has been received).
    """

    n_workers: int
    routing: str
    n_submitted: int = 0
    n_deduped: int = 0
    n_rerouted: int = 0
    n_worker_failures: int = 0
    n_completed: int = 0
    n_errors: int = 0
    pending: int = 0
    workers: list[WorkerStats] = field(default_factory=list)

    @property
    def n_requests(self) -> int:
        """Requests actually executed by worker engines (dedup excluded)."""
        return sum(w.n_requests for w in self.workers)

    @property
    def n_batches(self) -> int:
        return sum(w.n_batches for w in self.workers)

    @property
    def mean_batch_heads(self) -> float:
        return self.n_requests / self.n_batches if self.n_batches else 0.0

    @property
    def cache(self) -> CacheStats:
        """Merged decode-step-cache counters across every worker."""
        merged = CacheStats()
        for worker in self.workers:
            merged = merged.merge(worker.cache)
        return merged

    @property
    def live_workers(self) -> int:
        return sum(1 for w in self.workers if w.alive)


@dataclass
class _InFlight:
    """Parent-side record of one dispatched request (until it resolves).

    The encoded payload is retained so the request can be re-routed if its
    worker dies; ``futures`` holds the primary plus any deduped followers.
    """

    payload: dict[str, Any]
    info: RequestInfo
    fingerprint: str
    worker: int
    futures: list[ClusterFuture] = field(default_factory=list)
    rerouted: int = 0


class _WorkerHandle:
    """One child process plus its inbox and last stats snapshot."""

    def __init__(self, worker_id: int, process, inbox):
        self.worker_id = worker_id
        self.process = process
        self.inbox = inbox
        self.alive = True
        self.snapshot: dict[str, Any] | None = None

    def stats(self) -> WorkerStats:
        snap = self.snapshot or {}
        cache = snap.get("cache") or {}
        return WorkerStats(
            worker_id=self.worker_id,
            alive=self.alive,
            n_requests=snap.get("n_requests", 0),
            n_batches=snap.get("n_batches", 0),
            cache=CacheStats(**cache),
        )


class EngineCluster:
    """Sharded multi-process serving frontend (see module docstring).

    Parameters
    ----------
    n_workers:
        Engine worker processes to spawn.
    config:
        Default :class:`SofaConfig` for every worker engine.
    routing:
        One of :data:`~repro.cluster.routing.POLICIES`.
    dedup:
        Share one execution among bit-identical in-flight requests.
    start_method:
        ``multiprocessing`` start method (default: ``fork`` where
        available, else ``spawn``).
    max_batch_heads / max_wait_batches / backend / kernel /
    cache_entries / cache_ttl_s:
        Forwarded to every worker's :class:`SofaEngine` (``kernel``
        selects the SU-FA streaming kernel from the
        :mod:`repro.kernels` registry; kernels are bit-for-bit
        interchangeable, so it only moves wall-clock time).  The registry
        is per-process: built-in kernels resolve everywhere, but a
        custom-registered kernel reaches the workers only when they
        inherit the parent's registry (``fork`` start method, the Linux
        default) or register it at import time of a module the worker
        imports - under ``spawn``, a parent-only registration will fail
        worker engine construction at startup.
    startup_timeout_s:
        How long to wait for all workers to report ready.
    """

    def __init__(
        self,
        n_workers: int = 2,
        config: SofaConfig | None = None,
        routing: str = "shape_affinity",
        dedup: bool = True,
        start_method: str | None = None,
        max_batch_heads: int = 64,
        max_wait_batches: int | None = None,
        backend: str = "sync",
        kernel: str | None = None,
        cache_entries: int = 256,
        cache_ttl_s: float | None = None,
        startup_timeout_s: float = 60.0,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if routing not in POLICIES:
            raise ValueError(f"unknown routing policy {routing!r}; expected {POLICIES}")
        if kernel is not None:
            # Fail a typo here, in the caller's process, instead of
            # spawning N workers that all die on engine construction.
            resolve_sufa_kernel_name(kernel)
        self.config = config or SofaConfig()
        self.routing = routing
        self.dedup = dedup
        self._policy = make_policy(routing, n_workers)
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(start_method)
        self._outbox = self._ctx.Queue()
        self._lock = threading.RLock()
        self._inflight: dict[int, _InFlight] = {}
        self._dedup_window: dict[str, int] = {}
        self._next_req_id = 0
        self._next_ctl_id = 0
        self._ctl_replies: dict[int, int] = {}
        self._pending_ctl: set[int] = set()
        self._n_submitted = 0
        self._n_deduped = 0
        self._n_rerouted = 0
        self._n_failures = 0
        self._n_completed = 0
        self._n_errors = 0
        self._shut_down = False

        engine_kwargs = {
            "config": encode_config(self.config),
            "max_batch_heads": max_batch_heads,
            "max_wait_batches": max_wait_batches,
            "backend": backend,
            # Every worker engine resolves its SU-FA streaming kernel
            # through the same repro.kernels registry as in-process
            # serving, so the cross-process parity contract shares one
            # streaming implementation too.
            "kernel": kernel,
            "cache_entries": cache_entries,
            "cache_ttl_s": cache_ttl_s,
        }
        self._workers: list[_WorkerHandle] = []
        for worker_id in range(n_workers):
            inbox = self._ctx.Queue()
            process = self._ctx.Process(
                target=worker_main,
                args=(worker_id, inbox, self._outbox, engine_kwargs),
                name=f"sofa-cluster-worker-{worker_id}",
                daemon=True,
            )
            process.start()
            self._workers.append(_WorkerHandle(worker_id, process, inbox))

        self._ready: set[int] = set()
        try:
            self._drain_until(
                lambda: len(self._ready) + self._dead_count() >= n_workers,
                timeout=startup_timeout_s,
            )
        except Exception:
            self.shutdown()
            raise
        if self._dead_count():
            self.shutdown()
            raise ClusterError("one or more cluster workers failed to start")

    # ---------------------------------------------------------------- topology
    def _dead_count(self) -> int:
        return sum(1 for w in self._workers if not w.alive)

    def _live_ids(self) -> list[int]:
        return [w.worker_id for w in self._workers if w.alive]

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    @property
    def live_workers(self) -> list[int]:
        with self._lock:
            self._reap_dead_workers()
            return self._live_ids()

    @property
    def pending(self) -> int:
        with self._lock:
            return sum(len(rec.futures) for rec in self._inflight.values())

    # -------------------------------------------------------------- submission
    def submit(self, request: AttentionRequest) -> ClusterFuture:
        """Encode, dedup, route and dispatch one request; returns its future."""
        with self._lock:
            if self._shut_down:
                raise ClusterError("cluster is shut down")
            validate_request(request, self.config)
            payload = encode_request(request)
            # The fingerprint hashes every tensor byte - only worth it when
            # dedup can use it (sha256 digests are never empty, so "" can
            # not collide with a real fingerprint).
            fingerprint = request_fingerprint(payload) if self.dedup else ""
            future = ClusterFuture(self)
            self._n_submitted += 1

            if self.dedup and fingerprint in self._dedup_window:
                primary = self._dedup_window[fingerprint]
                self._inflight[primary].futures.append(future)
                self._n_deduped += 1
                return future

            info = self._request_info(payload, fingerprint)
            self._reap_dead_workers()
            live = self._live_ids()
            if not live:
                raise WorkerUnavailableError("no live worker to route to")
            worker = self._policy.route(info, live)
            req_id = self._next_req_id
            self._next_req_id += 1
            record = _InFlight(
                payload=payload, info=info, fingerprint=fingerprint, worker=worker
            )
            record.futures.append(future)
            self._inflight[req_id] = record
            if self.dedup:
                self._dedup_window[fingerprint] = req_id
            self._workers[worker].inbox.put(("req", req_id, payload))
            return future

    def submit_many(self, requests: list[AttentionRequest]) -> list[ClusterFuture]:
        return [self.submit(r) for r in requests]

    def _request_info(self, payload: dict[str, Any], fingerprint: str) -> RequestInfo:
        """Build the routing view: shape key, cache key, S*T cost."""
        s, h = payload["tokens"][2]
        t, dk = payload["q"][2]
        wv_cols = payload["wv"][2][1]
        has_v = payload["value_cache"] is not None
        dv = payload["value_cache"][2][1] if has_v else wv_cols
        shape_key = repr(
            (s, t, h, dk, dv, wv_cols, has_v, payload["config"])
        ).encode()
        return RequestInfo(
            shape_key=shape_key,
            cache_key=payload["cache_key"],
            cost=float(s) * float(t),
        )

    # ------------------------------------------------------------------ pumping
    def poll(self, timeout: float = 0.0) -> int:
        """Process any available worker messages; returns how many.

        Non-blocking with ``timeout=0`` - the asyncio client calls this
        between ``await`` points so the event loop never blocks on IPC.
        """
        with self._lock:
            n = self._drain_available()
            if n == 0 and timeout > 0:
                n += self._drain_some(timeout)
            self._reap_dead_workers()
            return n

    def _drain_available(self) -> int:
        n = 0
        while True:
            try:
                message = self._outbox.get_nowait()
            except queue.Empty:
                return n
            self._handle_message(message)
            n += 1

    def _drain_some(self, timeout: float) -> int:
        try:
            message = self._outbox.get(timeout=timeout)
        except queue.Empty:
            return 0
        self._handle_message(message)
        return 1 + self._drain_available()

    def _drain_until(
        self, predicate: Callable[[], bool], timeout: float | None = None
    ) -> Exception | None:
        """Pump messages until ``predicate`` holds; returns the first
        request error seen (the caller decides whether to re-raise it)."""
        first_error: Exception | None = None
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while not predicate():
                try:
                    message = self._outbox.get(timeout=0.05)
                except queue.Empty:
                    reap_error = self._reap_dead_workers()
                    if reap_error is not None and first_error is None:
                        first_error = reap_error
                    if deadline is not None and time.monotonic() > deadline:
                        raise TimeoutError(
                            "cluster drain timed out with "
                            f"{len(self._inflight)} request(s) in flight"
                        )
                    continue
                error = self._handle_message(message)
                if error is not None and first_error is None:
                    first_error = error
        return first_error

    def _handle_message(self, message: tuple) -> Exception | None:
        kind = message[0]
        if kind == "ready":
            self._ready.add(message[1])
            return None
        if kind == "result":
            _, worker_id, req_id, result_payload, snapshot = message
            self._workers[worker_id].snapshot = snapshot
            record = self._inflight.pop(req_id, None)
            if record is None:  # resolved by a re-route race; stats still count
                return None
            self._dedup_window.pop(record.fingerprint, None)
            self._policy.retire(record.worker, record.info.cost)
            for future in record.futures:
                # Each future decodes its own tensors so callers never
                # share (and can never cross-mutate) result arrays.
                future.set_result(decode_result(result_payload))
                self._n_completed += 1
            return None
        if kind == "error":
            _, worker_id, req_id, error_bytes = message
            record = self._inflight.pop(req_id, None)
            if record is None:
                return None
            self._dedup_window.pop(record.fingerprint, None)
            self._policy.retire(record.worker, record.info.cost)
            error = pickle.loads(error_bytes)
            for future in record.futures:
                future.set_error(error)
                self._n_errors += 1
            return error
        if kind == "invalidated":
            _, worker_id, ctl_id, dropped = message
            if ctl_id in self._pending_ctl:  # late replies of a finished
                self._ctl_replies[ctl_id] = dropped  # round are dropped,
            return None  # never accumulated
        if kind == "stopped":
            self._workers[message[1]].alive = False
            return None
        raise ClusterError(f"unknown worker message {kind!r}")

    def _reap_dead_workers(self) -> Exception | None:
        """Detect dead workers and re-route their in-flight requests.

        Results a dying worker managed to ship are drained *first* (the
        caller pumps the outbox before reaping), so only genuinely
        unresolved requests move.  Affinity policies re-route via
        rendezvous hashing over the survivors; a request is failed only
        when no live worker remains - the first such failure is returned
        so a surrounding drain can re-raise it.
        """
        first_error: Exception | None = None
        for handle in self._workers:
            if not handle.alive or handle.process.is_alive():
                continue
            handle.alive = False
            if self._shut_down:
                continue  # a stopping worker's exit is not a failure
            self._n_failures += 1
            orphans = [
                (req_id, rec)
                for req_id, rec in self._inflight.items()
                if rec.worker == handle.worker_id
            ]
            if not orphans:
                continue
            self._drain_available()  # late results beat re-execution
            live = self._live_ids()
            for req_id, record in orphans:
                if req_id not in self._inflight:
                    continue  # its result arrived in the drain above
                self._policy.retire(record.worker, record.info.cost)
                if not live:
                    self._inflight.pop(req_id)
                    self._dedup_window.pop(record.fingerprint, None)
                    error = WorkerUnavailableError(
                        f"worker {handle.worker_id} died and no live worker "
                        "is left to re-route to"
                    )
                    if first_error is None:
                        first_error = error
                    for future in record.futures:
                        future.set_error(error)
                        self._n_errors += 1
                    continue
                new_worker = self._policy.route(record.info, live)
                record.worker = new_worker
                record.rerouted += 1
                self._n_rerouted += 1
                self._workers[new_worker].inbox.put(
                    ("req", req_id, record.payload)
                )
        return first_error

    # ------------------------------------------------------------------ drains
    def flush(self) -> None:
        """Block until every in-flight request resolved; re-raise the first
        error seen during this drain (each failed future also carries its
        own), matching :meth:`SofaEngine.flush` semantics."""
        first_error = self._drain_until(lambda: not self._inflight)
        if first_error is not None:
            raise first_error

    def run_until_drained(self) -> None:
        self.flush()

    def run(self, requests: list[AttentionRequest]) -> list[SofaAttentionResult]:
        """Submit, drain, and return results in request order."""
        futures = self.submit_many(requests)
        self.flush()
        return [f.result() for f in futures]

    # ------------------------------------------------------------------- cache
    def invalidate_cache(self, key: Hashable) -> int:
        """Drop a sequence's decode-cache state on every worker.

        Broadcasts the invalidation (workers apply it after their queued
        work) and returns the total number of entries dropped cluster-wide.
        A worker that dies before replying contributes zero.
        """
        with self._lock:
            if self._shut_down:
                return 0
            self._reap_dead_workers()
            key_bytes = pickle.dumps(key, protocol=pickle.HIGHEST_PROTOCOL)
            ctl_targets: dict[int, int] = {}
            for worker_id in self._live_ids():
                ctl_id = self._next_ctl_id
                self._next_ctl_id += 1
                ctl_targets[ctl_id] = worker_id
                self._pending_ctl.add(ctl_id)
                self._workers[worker_id].inbox.put(("invalidate", ctl_id, key_bytes))

            def all_replied() -> bool:
                # A worker that died before replying contributes nothing;
                # reaping (inside the drain) flips its alive bit.
                return all(
                    c in self._ctl_replies or not self._workers[w].alive
                    for c, w in ctl_targets.items()
                )

            self._drain_until(all_replied)
            # Scoop replies a dying worker shipped just before its death was
            # detected (the reply can trail the liveness flip through the
            # outbox); anything later than this is dropped via _pending_ctl.
            self._drain_available()
            self._pending_ctl.difference_update(ctl_targets)
            return sum(self._ctl_replies.pop(c, 0) for c in ctl_targets)

    # ------------------------------------------------------------------- stats
    @property
    def stats(self) -> ClusterStats:
        """A point-in-time :class:`ClusterStats` snapshot (exact once drained)."""
        with self._lock:
            return ClusterStats(
                n_workers=self.n_workers,
                routing=self.routing,
                n_submitted=self._n_submitted,
                n_deduped=self._n_deduped,
                n_rerouted=self._n_rerouted,
                n_worker_failures=self._n_failures,
                n_completed=self._n_completed,
                n_errors=self._n_errors,
                pending=sum(len(r.futures) for r in self._inflight.values()),
                workers=[handle.stats() for handle in self._workers],
            )

    # ---------------------------------------------------------------- lifetime
    def stall_worker(self, worker_id: int, seconds: float) -> None:
        """Fault-injection hook: make one worker sleep before its next read.

        Lets tests/drills queue submissions behind a crash point
        deterministically (stall, submit, crash - the stalled worker never
        serves what arrived during the stall).
        """
        handle = self._workers[worker_id]
        if handle.alive:
            handle.inbox.put(("sleep", seconds))

    def crash_worker(self, worker_id: int, hard: bool = True, wait: bool = True) -> None:
        """Fault-injection hook (tests, failure drills): kill one worker.

        ``hard=True`` SIGKILLs the process; ``hard=False`` asks it to
        ``os._exit`` at its next message read (a clean crash point, so
        queues are never corrupted mid-write).  Either way the cluster
        treats it as a real failure: in-flight requests are re-routed on
        detection.  ``wait=False`` returns without joining (the crash
        lands whenever the worker reaches it).
        """
        handle = self._workers[worker_id]
        if not handle.alive:
            return
        if hard:
            handle.process.kill()
        else:
            handle.inbox.put(("exit", 1))
        if wait:
            handle.process.join(timeout=30.0)

    def shutdown(self, timeout_s: float = 10.0) -> None:
        """Stop every worker and release IPC resources.

        In-flight requests that never resolved fail with
        :class:`ClusterError` (their futures stop blocking).  Safe to call
        twice.
        """
        with self._lock:
            if self._shut_down:
                return
            self._shut_down = True
            for handle in self._workers:
                if handle.alive and handle.process.is_alive():
                    try:
                        handle.inbox.put(("stop",))
                    except (OSError, ValueError):  # queue already broken
                        handle.alive = False
            try:
                self._drain_until(
                    lambda: all(
                        not w.alive or not w.process.is_alive()
                        for w in self._workers
                    ),
                    timeout=timeout_s,
                )
            except TimeoutError:
                pass
            error = ClusterError("cluster shut down with requests in flight")
            for record in self._inflight.values():
                for future in record.futures:
                    if not future.done():
                        future.set_error(error)
            self._inflight.clear()
            self._dedup_window.clear()
            for handle in self._workers:
                handle.process.join(timeout=timeout_s)
                if handle.process.is_alive():
                    handle.process.kill()
                    handle.process.join(timeout=timeout_s)
                handle.alive = False
                handle.inbox.close()
                handle.inbox.cancel_join_thread()
            self._outbox.close()
            self._outbox.cancel_join_thread()

    def __enter__(self) -> "EngineCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
