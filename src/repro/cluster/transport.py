"""Pluggable transports: how the cluster frontend reaches its workers.

:class:`~repro.cluster.serving.EngineCluster` speaks one wire protocol
(:mod:`repro.cluster.worker`) over an abstract transport:

``local``  (:class:`LocalTransport`)
    The original topology: ``multiprocessing`` child processes on this
    host, one inbox queue per worker plus one shared outbox - zero-copy
    of nothing, but zero setup and automatic teardown.
``socket`` (:class:`SocketTransport`)
    Workers are standalone processes behind a TCP listener
    (``python -m repro.cluster.worker --listen HOST:PORT``), on this host
    or any other.  Messages travel as length-prefixed, checksummed frames
    (:func:`repro.engine.codec.encode_frame`) carrying the same versioned
    codec payloads the queues carry, so the hop is bit-exact either way
    and the frontend cannot tell the transports apart - which is exactly
    what the cross-transport parity sweep asserts.  When no address is
    supplied for a slot the transport spawns the worker itself on
    ``127.0.0.1`` (tests, CI, single-host dev); addressed slots attach to
    externally managed workers (multi-host sharding).

Both present the same two surfaces:

* :meth:`ClusterTransport.start_worker` - (re)establish one worker and
  return its :class:`WorkerLink` (send messages, probe liveness, kill);
* :meth:`ClusterTransport.recv` - the merged stream of worker->frontend
  messages, whichever link they arrived on.

A link that dies - process exit, socket EOF, or a framing error
(:class:`~repro.engine.codec.FrameError`: truncation, checksum or version
mismatch) - simply stops being alive; the frontend's reaping/supervision
logic (:mod:`repro.cluster.supervisor`) decides whether to re-route,
respawn, or reconnect.  Framing errors are preserved on
:attr:`WorkerLink.error` so the failure surfaces in the requests' futures
instead of hanging them.
"""

from __future__ import annotations

import os
import queue
import select
import subprocess
import sys
import threading
import time
from typing import Any

import multiprocessing as mp

from repro.engine.codec import FrameDecoder, FrameError, encode_frame
from repro.obs import get_telemetry


class TransportError(RuntimeError):
    """A transport could not establish or operate a worker link."""


#: Worker subprocesses spawned by any SocketTransport in this process -
#: the test suite's leak guard sweeps this after every test.
_SPAWNED_WORKERS: list[subprocess.Popen] = []


def reap_spawned_workers(timeout_s: float = 5.0) -> list[subprocess.Popen]:
    """Kill and return any spawned socket workers still running.

    The returned list is the *leak evidence*: a clean shutdown leaves it
    empty.  Exited processes are pruned from the registry either way.
    """
    leaked = []
    for proc in list(_SPAWNED_WORKERS):
        if proc.poll() is None:
            proc.kill()
            try:
                proc.wait(timeout=timeout_s)
            except subprocess.TimeoutExpired:  # pragma: no cover - kill failed
                pass
            leaked.append(proc)
        _SPAWNED_WORKERS.remove(proc)
    return leaked


class WorkerLink:
    """Parent-side handle to one worker incarnation (one link session)."""

    worker_id: int
    slot: int

    def send(self, message: tuple) -> bool:
        """Ship one protocol message; False (not an exception) if the link
        is already down - the caller's reaping logic owns the recovery."""
        raise NotImplementedError

    def is_alive(self) -> bool:
        raise NotImplementedError

    def kill(self) -> None:
        """Hard-stop the session (and the process, where this side owns it)."""
        raise NotImplementedError

    def join(self, timeout: float | None = None) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release parent-side resources of this link."""
        raise NotImplementedError

    @property
    def error(self) -> Exception | None:
        """The framing/IO error that killed the link, when one did."""
        return None


class ClusterTransport:
    """Factory for worker links plus the merged worker->frontend stream."""

    name: str
    #: True when a respawned slot keeps its worker id (local processes);
    #: False when a reconnected slot registers as a fresh identity
    #: (remote workers - their engine state did not survive anyway).
    reuses_worker_ids: bool

    def start_worker(
        self, slot: int, worker_id: int, engine_kwargs: dict[str, Any]
    ) -> WorkerLink:
        raise NotImplementedError

    def add_slot(self) -> None:
        """Provision one more worker slot (autoscale-up).

        The local transport needs no bookkeeping (any slot index spawns a
        child); the socket transport appends a spawn-on-localhost slot.
        Externally addressed workers cannot be conjured, so socket
        clusters pinned to ``worker_addresses`` grow with spawned
        localhost workers beyond their addressed set.
        """

    def owns_process(self, slot: int) -> bool:
        """True when this side can (re)spawn the slot's worker process."""
        raise NotImplementedError

    def recv(self, timeout: float) -> tuple | None:
        """Next worker->frontend message from any link, or None on timeout."""
        raise NotImplementedError

    def recv_nowait(self) -> tuple | None:
        return self.recv(0.0)

    def close(self) -> None:
        raise NotImplementedError


# ------------------------------------------------------------------- local
def _crash_before_ready(worker_id, inbox, outbox, engine_kwargs) -> None:
    """Fault-injection worker body: die before reporting ready.

    Stands in for a worker whose host/process fails *during* a respawn -
    the supervisor must observe the death and back off, not hang.
    """
    os._exit(1)


class _LocalWorkerLink(WorkerLink):
    def __init__(self, slot: int, worker_id: int, process, inbox):
        self.slot = slot
        self.worker_id = worker_id
        self.process = process
        self.inbox = inbox

    def send(self, message: tuple) -> bool:
        if not self.process.is_alive():
            return False
        try:
            self.inbox.put(message)
        except (OSError, ValueError):  # queue torn down under us
            return False
        return True

    def is_alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.kill()

    def join(self, timeout: float | None = None) -> None:
        self.process.join(timeout=timeout)

    def close(self) -> None:
        self.inbox.close()
        self.inbox.cancel_join_thread()


class LocalTransport(ClusterTransport):
    """The in-host topology: ``multiprocessing`` children and queues."""

    name = "local"
    reuses_worker_ids = True

    def __init__(self, start_method: str | None = None):
        if start_method is None:
            start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._ctx = mp.get_context(start_method)
        self._outbox = self._ctx.Queue()
        #: test hook - the next N spawns produce a worker that dies before
        #: reporting ready (a failure *during* respawn).
        self.spawn_fault_budget = 0

    def start_worker(
        self, slot: int, worker_id: int, engine_kwargs: dict[str, Any]
    ) -> WorkerLink:
        # Imported lazily so ``python -m repro.cluster.worker`` can execute
        # the worker module as __main__ without runpy's re-import warning.
        from repro.cluster.worker import worker_main

        inbox = self._ctx.Queue()
        target = worker_main
        if self.spawn_fault_budget > 0:
            self.spawn_fault_budget -= 1
            target = _crash_before_ready
        process = self._ctx.Process(
            target=target,
            args=(worker_id, inbox, self._outbox, engine_kwargs),
            name=f"sofa-cluster-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        return _LocalWorkerLink(slot, worker_id, process, inbox)

    def owns_process(self, slot: int) -> bool:
        return True

    def recv(self, timeout: float) -> tuple | None:
        try:
            if timeout <= 0:
                return self._outbox.get_nowait()
            return self._outbox.get(timeout=timeout)
        except queue.Empty:
            return None

    def close(self) -> None:
        self._outbox.close()
        self._outbox.cancel_join_thread()


# ------------------------------------------------------------------ socket
def parse_address(address: str) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` with loud failure modes."""
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"worker address {address!r} is not host:port")
    try:
        return host, int(port)
    except ValueError as error:
        raise ValueError(f"worker address {address!r} has a non-integer port") from error


#: Announce line a listening worker prints (port resolved after binding, so
#: ``--listen 127.0.0.1:0`` still tells the spawner where to connect).
ANNOUNCE_PREFIX = "SOFA-WORKER-LISTENING "


class _SocketWorkerLink(WorkerLink):
    def __init__(
        self,
        slot: int,
        worker_id: int,
        sock,
        deliveries: "queue.Queue[tuple]",
        process: subprocess.Popen | None,
    ):
        self.slot = slot
        self.worker_id = worker_id
        self.process = process
        self._sock = sock
        self._deliveries = deliveries
        self._send_lock = threading.Lock()
        self._alive = True
        self._error: Exception | None = None
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"sofa-link-reader-{worker_id}",
            daemon=True,
        )
        self._reader.start()

    @property
    def error(self) -> Exception | None:
        return self._error

    def _read_loop(self) -> None:
        decoder = FrameDecoder()
        while True:
            try:
                data = self._sock.recv(1 << 16)
            except OSError:
                break  # link closed under the reader - a plain death
            if not data:
                try:
                    decoder.close()
                except FrameError as error:
                    self._error = error
                break
            obs = get_telemetry()
            if obs.enabled:
                obs.inc("sofa_transport_bytes_received_total", float(len(data)))
            try:
                messages = decoder.feed(data)
            except FrameError as error:
                self._error = error
                break
            if messages and obs.enabled:
                obs.inc("sofa_transport_frames_received_total", float(len(messages)))
            for message in messages:
                self._deliveries.put(message)
        self._alive = False

    def send(self, message: tuple) -> bool:
        if not self.is_alive():
            return False
        frame = encode_frame(message)
        obs = get_telemetry()
        t0 = obs.clock()
        try:
            with self._send_lock:
                self._sock.sendall(frame)
        except OSError:
            self._alive = False
            return False
        if obs.enabled:
            obs.observe_since("sofa_transport_send_seconds", t0)
            obs.inc("sofa_transport_frames_sent_total")
            obs.inc("sofa_transport_bytes_sent_total", float(len(frame)))
        return True

    def is_alive(self) -> bool:
        if self.process is not None and self.process.poll() is not None:
            return False
        return self._alive

    def kill(self) -> None:
        # Owning the process means a real hard kill; a purely remote worker
        # only loses its session (it loops back to accept, by design - that
        # is what reconnection attaches to).
        if self.process is not None and self.process.poll() is None:
            self.process.kill()
        self._alive = False
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close on a dead socket
            pass

    def join(self, timeout: float | None = None) -> None:
        if self.process is not None:
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                return
        else:
            self._reader.join(timeout=timeout)

    def close(self) -> None:
        self._alive = False
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass


class SocketTransport(ClusterTransport):
    """Length-prefixed TCP frames to standalone worker processes.

    Parameters
    ----------
    addresses:
        One entry per worker slot: ``"host:port"`` attaches to an already
        listening worker (started via ``python -m repro.cluster.worker
        --listen host:port``); ``None`` spawns a localhost worker
        subprocess for that slot (and respawns it on supervision).  A
        plain integer worker count may be passed instead of a list.
    connect_timeout_s:
        Bound on one TCP connect plus the spawned worker's announce.
    """

    name = "socket"
    reuses_worker_ids = False

    def __init__(
        self,
        addresses: list[str | None] | int,
        connect_timeout_s: float = 30.0,
    ):
        import socket as _socket  # local alias keeps module-level deps light

        self._socket = _socket
        if isinstance(addresses, int):
            addresses = [None] * addresses
        if not addresses:
            raise ValueError("socket transport needs at least one worker slot")
        self._slot_addresses: list[tuple[str, int] | None] = [
            None if addr is None else parse_address(addr) for addr in addresses
        ]
        self._external = [addr is not None for addr in self._slot_addresses]
        self._procs: dict[int, subprocess.Popen] = {}
        self.connect_timeout_s = connect_timeout_s
        self._deliveries: queue.Queue[tuple] = queue.Queue()

    @property
    def n_slots(self) -> int:
        return len(self._slot_addresses)

    def add_slot(self) -> None:
        self._slot_addresses.append(None)  # spawned on localhost on start
        self._external.append(False)

    def owns_process(self, slot: int) -> bool:
        return not self._external[slot]

    # ------------------------------------------------------------- spawning
    def _spawn_slot(self, slot: int) -> tuple[str, int]:
        """Launch a localhost worker for ``slot``; returns its address."""
        proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.cluster.worker",
             "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE,
            # stderr inherits: a dying worker's traceback should reach the
            # operator's terminal/CI log, not vanish into a closed pipe.
        )
        _SPAWNED_WORKERS.append(proc)
        self._procs[slot] = proc
        deadline = time.monotonic() + self.connect_timeout_s
        line = b""
        while time.monotonic() < deadline:
            ready, _, _ = select.select([proc.stdout], [], [], 0.1)
            if ready:
                line = proc.stdout.readline()
                break
            if proc.poll() is not None:
                break
        text = line.decode(errors="replace").strip()
        if not text.startswith(ANNOUNCE_PREFIX):
            proc.kill()
            raise TransportError(
                f"spawned worker for slot {slot} never announced its port "
                f"(got {text!r}, returncode {proc.poll()})"
            )
        return parse_address(text[len(ANNOUNCE_PREFIX):])

    def _slot_target(self, slot: int) -> tuple[str, int]:
        address = self._slot_addresses[slot]
        if self._external[slot]:
            assert address is not None
            return address
        proc = self._procs.get(slot)
        if address is not None and proc is not None and proc.poll() is None:
            return address  # still-running spawned worker: reconnect to it
        address = self._spawn_slot(slot)
        self._slot_addresses[slot] = address
        return address

    # ------------------------------------------------------------- lifecycle
    def start_worker(
        self, slot: int, worker_id: int, engine_kwargs: dict[str, Any]
    ) -> WorkerLink:
        host, port = self._slot_target(slot)
        try:
            sock = self._socket.create_connection(
                (host, port), timeout=self.connect_timeout_s
            )
        except OSError as error:
            raise TransportError(
                f"could not reach worker slot {slot} at {host}:{port}: {error}"
            ) from error
        sock.settimeout(None)
        link = _SocketWorkerLink(
            slot, worker_id, sock, self._deliveries, self._procs.get(slot)
        )
        if not link.send(("init", worker_id, engine_kwargs)):
            link.kill()
            raise TransportError(
                f"worker slot {slot} at {host}:{port} dropped the init frame"
            )
        return link

    def recv(self, timeout: float) -> tuple | None:
        try:
            if timeout <= 0:
                return self._deliveries.get_nowait()
            return self._deliveries.get(timeout=timeout)
        except queue.Empty:
            return None

    def close(self) -> None:
        for slot, proc in list(self._procs.items()):
            if proc.poll() is None:
                proc.kill()
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    pass
            if proc in _SPAWNED_WORKERS:
                _SPAWNED_WORKERS.remove(proc)
            self._procs.pop(slot, None)


#: Transport names accepted by ``EngineCluster(transport=...)``.
TRANSPORTS = ("local", "socket")


def make_transport(
    name: str,
    n_workers: int,
    start_method: str | None = None,
    worker_addresses: list[str | None] | None = None,
) -> ClusterTransport:
    """Build the named transport for an ``n_workers``-slot cluster."""
    if name == "local":
        if worker_addresses is not None:
            raise ValueError("worker_addresses only applies to transport='socket'")
        return LocalTransport(start_method=start_method)
    if name == "socket":
        if start_method is not None:
            raise ValueError("start_method only applies to transport='local'")
        if worker_addresses is None:
            return SocketTransport(n_workers)
        if len(worker_addresses) != n_workers:
            raise ValueError(
                f"worker_addresses has {len(worker_addresses)} entries "
                f"for n_workers={n_workers}"
            )
        return SocketTransport(list(worker_addresses))
    raise ValueError(f"unknown transport {name!r}; expected one of {TRANSPORTS}")
