"""AsyncSofaClient: ``async``/``await`` serving over the same futures.

An asyncio server (one coroutine per connection, thousands of concurrent
requests) needs to *await* attention results without blocking its event
loop on engine work or worker IPC.  :class:`AsyncSofaClient` wraps either
an :class:`~repro.cluster.serving.EngineCluster` (the intended production
shape: the loop thread only encodes/routes/polls, worker processes
compute) or a plain :class:`~repro.engine.serving.SofaEngine` (useful for
tests and single-process deployments; engine batches then execute inline
on the loop thread between awaits).

The client is a thin cooperative pump over the underlying futures API:

* :meth:`submit` dispatches a request and returns an awaitable that
  resolves to the exact :class:`~repro.core.pipeline.SofaAttentionResult`
  the synchronous path produces (the parity contract is untouched -
  ``async`` changes *when* the caller regains control, never a bit of the
  result);
* while any coroutine waits, the client polls the backend between
  ``await asyncio.sleep(poll_interval)`` points, so concurrent
  submissions from many coroutines interleave naturally and batch/dedup
  inside the backend exactly as a synchronous burst would.  For a
  cluster, each poll also advances its supervision (heartbeats,
  respawn/reconnect attempts - :mod:`repro.cluster.supervisor`), so an
  asyncio server keeps its workers healthy just by awaiting results -
  over either transport (:mod:`repro.cluster.transport`).
"""

from __future__ import annotations

import asyncio

from repro.core.pipeline import SofaAttentionResult
from repro.engine.serving import AttentionRequest, SofaEngine
from repro.cluster.serving import EngineCluster


class AsyncSofaClient:
    """Async frontend over an :class:`EngineCluster` or :class:`SofaEngine`.

    Parameters
    ----------
    backend:
        The cluster (preferred) or engine to drive.
    poll_interval:
        Seconds between backend polls while awaiting (the latency floor
        of one result under no load).
    """

    def __init__(
        self,
        backend: EngineCluster | SofaEngine,
        poll_interval: float = 0.001,
    ):
        if poll_interval <= 0:
            raise ValueError("poll_interval must be > 0")
        self.backend = backend
        self.poll_interval = poll_interval

    # ---------------------------------------------------------------- dispatch
    def submit_nowait(self, request: AttentionRequest):
        """Dispatch without awaiting; returns the backend's future."""
        return self.backend.submit(request)

    async def submit(self, request: AttentionRequest) -> SofaAttentionResult:
        """Dispatch one request and await its result."""
        return await self.result(self.submit_nowait(request))

    async def result(self, future) -> SofaAttentionResult:
        """Await a future from :meth:`submit_nowait`."""
        while not future.done():
            self._drive()
            if future.done():
                break
            await asyncio.sleep(self.poll_interval)
        return future.result()

    async def run(self, requests: list[AttentionRequest]) -> list[SofaAttentionResult]:
        """Submit a burst, await all results in request order.

        Everything is dispatched *before* the first await, so the burst
        reaches the backend's scheduler together and batches/dedups the
        same way a synchronous ``run`` would.
        """
        futures = [self.submit_nowait(r) for r in requests]
        return [await self.result(f) for f in futures]

    async def map(self, requests: list[AttentionRequest]) -> list[SofaAttentionResult]:
        """Like :meth:`run` but via one coroutine per request
        (``asyncio.gather``), exercising real coroutine concurrency."""
        return list(await asyncio.gather(*(self.submit(r) for r in requests)))

    def _drive(self) -> None:
        """One non-blocking pump of the backend.

        A cluster exposes :meth:`~EngineCluster.poll` (drain worker
        results without blocking); a plain engine executes its pending
        groups inline - that work happens on the loop thread, which is
        exactly the single-process trade the caller opted into.
        """
        if hasattr(self.backend, "poll"):
            self.backend.poll(0.0)
        elif self.backend.pending:
            self.backend.flush()

    # ---------------------------------------------------------------- lifetime
    async def __aenter__(self) -> "AsyncSofaClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        self.backend.shutdown()
