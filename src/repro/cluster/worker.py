"""Engine worker: one :class:`SofaEngine` behind a message loop.

A cluster worker runs the same serving core over either transport
(:mod:`repro.cluster.transport`):

* **local** - a ``multiprocessing`` child executing :func:`worker_main`
  (inbox queue in, shared outbox queue out);
* **socket** - a standalone process (``python -m repro.cluster.worker
  --listen HOST:PORT``, this module's CLI) accepting one frontend
  connection at a time and speaking length-prefixed frames
  (:func:`repro.engine.codec.encode_frame`).  When the connection drops
  without a ``stop`` the worker loops back to ``accept`` - that is the
  hook reconnection (and multi-host supervision) attaches to.  A
  reconnected session builds a **fresh engine** (the previous session's
  decode-cache state is gone with its frontend), which is why the
  frontend registers reconnected workers under a fresh worker id.

Either way the loop drains its input *greedily* before executing, so
requests that arrive together join the engine's shape groups together and
batch into fused calls - per-worker continuous batching, the same
behaviour a single in-process engine gives.

Wire protocol (plain tuples of built-ins, payloads via
:mod:`repro.engine.codec`):

frontend -> worker
    ``("init", worker_id, engine_kwargs)``  socket only: identity + engine
                                            parameterization for this
                                            session (queues pass these to
                                            :func:`worker_main` directly)
    ``("req", req_id, payload)``    serve one request
    ``("invalidate", ctl_id, key)`` drop decode-cache state for a key
    ``("ping", token)``             health probe; answered with a pong
                                    before any queued compute executes
    ``("stop",)``                   acknowledge and exit cleanly
    ``("exit", code)``              die *without* acknowledging - a fault
                                    hook for tests/drills simulating a
                                    crashed worker (``os._exit``; anything
                                    queued behind it is lost, exactly like
                                    a SIGKILL)
    ``("sleep", seconds)``          stall before reading further messages -
                                    a fault hook that lets tests queue work
                                    behind a crash point deterministically

worker -> frontend
    ``("ready", worker_id)``
    ``("result", worker_id, req_id, result_payload, stats)``
    ``("error", worker_id, req_id, pickled_exception)``
    ``("invalidated", worker_id, ctl_id, n_dropped)``
    ``("pong", worker_id, token)``
    ``("stopped", worker_id)``

A request payload that fails to decode (truncated tensor bytes, codec
version skew - :class:`~repro.engine.codec.CodecError`) is answered with
an ``error`` message like any other per-request failure, so the frontend
fails that future instead of hanging it or losing the worker.

Every result message piggybacks a tiny engine-stats snapshot (plain dict),
so the frontend's :class:`~repro.cluster.serving.ClusterStats` stays
current without a separate control round-trip.
"""

from __future__ import annotations

import pickle
import queue
from typing import Any, Callable

from repro.engine.codec import (
    decode_config,
    decode_request,
    encode_result,
    request_trace_context,
)
from repro.engine.serving import SofaEngine
from repro.obs import get_telemetry, reset_telemetry


def stats_snapshot(engine: SofaEngine) -> dict[str, Any]:
    """The piggybacked per-worker counters, as plain built-ins.

    ``kernels`` is resolved by the worker's own engine against the
    worker's own environment - it is the frontend-visible proof of which
    per-stage kernels (env vars included) this process actually runs.

    With telemetry enabled the snapshot additionally carries this
    worker's metrics registry (``"telemetry"``) and *drains* its finished
    spans (``"spans"``) - the piggyback channel that stitches worker
    spans into the frontend's trace without a separate control
    round-trip.
    """
    cache = engine.stats.cache
    snap: dict[str, Any] = {
        "n_requests": engine.stats.n_requests,
        "n_batches": engine.stats.n_batches,
        "n_steps": engine.stats.n_steps,
        "kernels": engine.resolved_kernels(),
        "cache": {
            "hits": cache.hits,
            "misses": cache.misses,
            "invalidations": cache.invalidations,
            "evictions": cache.evictions,
            "expirations": cache.expirations,
            "rows_reused": cache.rows_reused,
            "rows_appended": cache.rows_appended,
            "resident_bytes": cache.resident_bytes,
            "resident_blocks": cache.resident_blocks,
            "shared_blocks": cache.shared_blocks,
            "spilled_blocks": cache.spilled_blocks,
            "spilled_bytes": cache.spilled_bytes,
            "spill_loads": cache.spill_loads,
        },
    }
    obs = get_telemetry()
    if obs.enabled:
        snap["telemetry"] = obs.registry.snapshot()
        snap["spans"] = obs.tracer.drain()
    return snap


def _pickle_exception(error: Exception) -> bytes:
    try:
        return pickle.dumps(error, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:  # noqa: BLE001 - unpicklable errors degrade to repr
        return pickle.dumps(RuntimeError(repr(error)), protocol=pickle.HIGHEST_PROTOCOL)


class EngineMessageServer:
    """Transport-agnostic serving core: protocol messages -> one engine.

    The surrounding loop feeds one greedy batch of messages through
    :meth:`handle`, then calls :meth:`finish_round` to execute everything
    the batch submitted and ship results.  ``send`` is the only
    transport-facing dependency.
    """

    def __init__(
        self, worker_id: int, engine: SofaEngine, send: Callable[[tuple], Any]
    ):
        self.worker_id = worker_id
        self.engine = engine
        self.send = send
        self.running = True
        self._served: list[tuple[int, Any, Any]] = []

    def handle(self, message: tuple) -> None:
        kind = message[0]
        if kind == "req":
            _, req_id, payload = message
            obs = get_telemetry()
            span = None
            if obs.enabled:
                # Parent this worker's span under the frontend's propagated
                # (trace_id, span_id) context when the frame carries one.
                ctx = request_trace_context(payload)
                span = obs.start_span(
                    "worker.request",
                    trace_id=ctx[0] if ctx else None,
                    parent_id=ctx[1] if ctx else None,
                    attrs={"worker": self.worker_id, "req_id": req_id},
                )
            try:
                # decode_request raises CodecError on truncated/skewed
                # payloads - reported per request, never loop-fatal.
                future = self.engine.submit(decode_request(payload))
            except Exception as error:  # noqa: BLE001 - reported per request
                obs.end_span(span, error=repr(error))
                self.send(
                    ("error", self.worker_id, req_id, _pickle_exception(error))
                )
                return
            self._served.append((req_id, future, span))
        elif kind == "invalidate":
            _, ctl_id, key_bytes = message
            dropped = self.engine.invalidate_cache(pickle.loads(key_bytes))
            self.send(("invalidated", self.worker_id, ctl_id, dropped))
        elif kind == "ping":
            # Answered at message-scan time, before this round's compute -
            # a ping behind queued requests does not wait out the batch.
            self.send(("pong", self.worker_id, message[1]))
        elif kind == "stop":
            self.running = False
        elif kind == "exit":
            import os

            os._exit(message[1])
        elif kind == "sleep":
            import time

            time.sleep(message[1])
        else:  # pragma: no cover - protocol bug guard
            raise RuntimeError(f"worker {self.worker_id}: unknown message {kind!r}")

    def finish_round(self) -> None:
        """Execute everything this round submitted; ship results/errors."""
        served, self._served = self._served, []
        if not served:
            return
        try:
            self.engine.run_until_drained()
        except Exception:  # noqa: BLE001 - per-future errors carry it
            # run_until_drained re-raises the first batch error after the
            # drain; each failed future already holds its own.
            pass
        obs = get_telemetry()
        for req_id, future, span in served:
            try:
                result = future.result()
            except Exception as error:  # noqa: BLE001 - reported per request
                obs.end_span(span, error=repr(error))
                self.send(
                    ("error", self.worker_id, req_id, _pickle_exception(error))
                )
            else:
                # End before the snapshot below so this request's own span
                # rides home in the very result frame that resolves it.
                obs.end_span(span)
                self.send(
                    (
                        "result",
                        self.worker_id,
                        req_id,
                        encode_result(result),
                        stats_snapshot(self.engine),
                    )
                )


#: seconds an idle worker waits for traffic before sweeping its cache's
#: idle TTL (satisfying the TTL on wall-clock time, not on the next
#: request - lazy-only expiry would pin abandoned context payloads on a
#: quiet worker indefinitely).
IDLE_SWEEP_INTERVAL_S = 0.5


def _build_engine(engine_kwargs: dict[str, Any], worker_id: int | None = None) -> SofaEngine:
    """Engine from the plain-built-ins parameterization the frontend ships.

    A frontend-supplied ``cache_spill_dir`` is namespaced per worker id:
    co-hosted workers each get their own spill/persistence subdirectory
    instead of clobbering one another's manifests.
    """
    # Fresh telemetry first: a forked local worker inherits the frontend's
    # singleton - its spans and counters included - and must not re-ship
    # the frontend's own telemetry back to it.  (Socket sessions get a
    # clean registry per engine/session for the same reason.)  The engine
    # constructed below registers its gauges into this fresh singleton.
    reset_telemetry()
    kwargs = dict(engine_kwargs)
    kwargs["config"] = decode_config(kwargs.get("config"))
    if worker_id is not None and kwargs.get("cache_spill_dir"):
        import os

        kwargs["cache_spill_dir"] = os.path.join(
            kwargs["cache_spill_dir"], f"worker-{worker_id}"
        )
    return SofaEngine(**kwargs)


def worker_main(worker_id: int, inbox, outbox, engine_kwargs: dict[str, Any]) -> None:
    """The local (queue) worker body (top-level so every start method can
    spawn it)."""
    engine = _build_engine(engine_kwargs, worker_id)
    server = EngineMessageServer(worker_id, engine, outbox.put)
    outbox.put(("ready", worker_id))
    while server.running:
        try:
            batch = [inbox.get(timeout=IDLE_SWEEP_INTERVAL_S)]
        except queue.Empty:
            # Idle tick: nothing to serve, so expire idle decode-cache
            # entries on wall-clock time (no request will sweep lazily).
            engine.sweep_cache()
            continue
        # Greedy drain: everything already queued joins this round's shape
        # groups, so co-arriving requests batch exactly as they would in a
        # single in-process engine.
        while True:
            try:
                batch.append(inbox.get_nowait())
            except queue.Empty:
                break
        for message in batch:
            server.handle(message)
        server.finish_round()
    outbox.put(("stopped", worker_id))
    engine.shutdown()


# ----------------------------------------------------------- socket serving
def _recv_greedy(conn, decoder, on_idle: Callable[[], Any] | None = None
                 ) -> list[tuple] | None:
    """Block for at least one message, then drain whatever is buffered.

    Returns ``None`` on EOF (frontend gone).  Framing errors propagate -
    the session is unrecoverable once stream sync is lost, and the caller
    drops the connection (the frontend sees a dead link and re-routes).
    ``on_idle`` is invoked whenever no traffic arrives for
    :data:`IDLE_SWEEP_INTERVAL_S` - the socket worker's idle-loop hook
    (TTL sweeping on a quiet connection).
    """
    import select as _select

    messages: list[tuple] = []
    while not messages:
        if on_idle is not None:
            ready, _, _ = _select.select([conn], [], [], IDLE_SWEEP_INTERVAL_S)
            if not ready:
                on_idle()
                continue
        data = conn.recv(1 << 16)
        if not data:
            decoder.close()  # raises TruncatedFrameError on a partial frame
            return None
        messages.extend(decoder.feed(data))
    # Greedy tail: pull everything already queued on the socket so
    # co-arriving requests join one scheduling round (continuous batching
    # across the network hop too).
    while True:
        ready, _, _ = _select.select([conn], [], [], 0)
        if not ready:
            return messages
        data = conn.recv(1 << 16)
        if not data:
            return messages  # EOF after real messages: serve them first
        messages.extend(decoder.feed(data))


def _serve_connection(conn) -> bool:
    """One frontend session over ``conn``; True = loop back to accept.

    The first frame must be ``("init", worker_id, engine_kwargs)``; the
    engine lives exactly as long as the session (a reconnecting frontend
    re-inits, so worker-side state never outlives the frontend that
    routed for it).
    """
    from repro.engine.codec import FrameDecoder, FrameError, encode_frame

    decoder = FrameDecoder()

    def send(message: tuple) -> None:
        frame = encode_frame(message)
        obs = get_telemetry()
        if obs.enabled:
            obs.inc("sofa_transport_frames_sent_total")
            obs.inc("sofa_transport_bytes_sent_total", float(len(frame)))
        conn.sendall(frame)

    try:
        first = _recv_greedy(conn, decoder)
        if not first:
            return True
        init, rest = first[0], first[1:]
        if init[0] != "init":
            return True  # not a SOFA frontend; drop the session
        _, worker_id, engine_kwargs = init
        engine = _build_engine(engine_kwargs, worker_id)
        try:
            server = EngineMessageServer(worker_id, engine, send)
            send(("ready", worker_id))
            messages: list[tuple] | None = list(rest)
            while server.running:
                if messages:
                    for message in messages:
                        server.handle(message)
                        if not server.running:
                            break
                    server.finish_round()
                if not server.running:
                    break
                messages = _recv_greedy(conn, decoder, on_idle=engine.sweep_cache)
                if messages is None:
                    return True  # frontend vanished: await a reconnect
            send(("stopped", worker_id))
            return False
        finally:
            engine.shutdown()
    except (FrameError, OSError):
        # Corrupt stream or dropped pipe: abandon this session; the
        # frontend side observes a dead link and re-routes/reconnects.
        return True
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


def main(argv: list[str] | None = None) -> None:
    """Standalone socket worker: ``python -m repro.cluster.worker --listen
    HOST:PORT`` (port 0 picks a free one; the bound address is announced
    on stdout for spawners)."""
    import argparse
    import socket as _socket

    from repro.cluster.transport import ANNOUNCE_PREFIX, parse_address

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument(
        "--listen",
        required=True,
        metavar="HOST:PORT",
        help="address to bind (port 0 = pick a free port)",
    )
    args = parser.parse_args(argv)
    host, port = parse_address(args.listen)
    listener = _socket.create_server((host, port))
    bound_host, bound_port = listener.getsockname()[:2]
    print(f"{ANNOUNCE_PREFIX}{bound_host}:{bound_port}", flush=True)
    while True:
        conn, _peer = listener.accept()
        if not _serve_connection(conn):
            break
    listener.close()


if __name__ == "__main__":
    main()
