"""Engine worker process: one :class:`SofaEngine` behind a message loop.

Each cluster worker is a child process running :func:`worker_main`: it
builds its own engine (own operators, own decode-step cache), pulls encoded
requests off its inbox queue, serves them, and ships encoded results back
on the shared outbox.  The loop drains its inbox *greedily* before
executing, so requests that arrive together join the engine's shape groups
together and batch into fused calls - per-worker continuous batching, the
same behaviour a single in-process engine gives.

Wire protocol (plain tuples of built-ins, payloads via
:mod:`repro.engine.codec`):

parent -> worker (inbox)
    ``("req", req_id, payload)``    serve one request
    ``("invalidate", ctl_id, key)`` drop decode-cache state for a key
    ``("stop",)``                   acknowledge and exit cleanly
    ``("exit", code)``              die *without* acknowledging - a fault
                                    hook for tests/drills simulating a
                                    crashed worker (``os._exit``; anything
                                    queued behind it is lost, exactly like
                                    a SIGKILL)
    ``("sleep", seconds)``          stall before reading further messages -
                                    a fault hook that lets tests queue work
                                    behind a crash point deterministically

worker -> parent (outbox)
    ``("ready", worker_id)``
    ``("result", worker_id, req_id, result_payload, stats)``
    ``("error", worker_id, req_id, pickled_exception)``
    ``("invalidated", worker_id, ctl_id, n_dropped)``
    ``("stopped", worker_id)``

Every result message piggybacks a tiny engine-stats snapshot (plain dict),
so the parent's :class:`~repro.cluster.serving.ClusterStats` stays current
without a separate control round-trip.
"""

from __future__ import annotations

import pickle
import queue
from typing import Any

from repro.engine.codec import decode_config, decode_request, encode_result
from repro.engine.serving import SofaEngine


def stats_snapshot(engine: SofaEngine) -> dict[str, Any]:
    """The piggybacked per-worker counters, as plain built-ins."""
    cache = engine.stats.cache
    return {
        "n_requests": engine.stats.n_requests,
        "n_batches": engine.stats.n_batches,
        "n_steps": engine.stats.n_steps,
        "cache": {
            "hits": cache.hits,
            "misses": cache.misses,
            "invalidations": cache.invalidations,
            "evictions": cache.evictions,
            "expirations": cache.expirations,
            "rows_reused": cache.rows_reused,
            "rows_appended": cache.rows_appended,
            "resident_bytes": cache.resident_bytes,
        },
    }


def _pickle_exception(error: Exception) -> bytes:
    try:
        return pickle.dumps(error, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:  # noqa: BLE001 - unpicklable errors degrade to repr
        return pickle.dumps(RuntimeError(repr(error)), protocol=pickle.HIGHEST_PROTOCOL)


def worker_main(worker_id: int, inbox, outbox, engine_kwargs: dict[str, Any]) -> None:
    """The worker process body (top-level so every start method can spawn it).

    ``engine_kwargs`` is the plain-built-ins engine parameterization
    assembled by the parent (``config`` travels as a codec payload).
    """
    kwargs = dict(engine_kwargs)
    kwargs["config"] = decode_config(kwargs.get("config"))
    engine = SofaEngine(**kwargs)
    outbox.put(("ready", worker_id))
    running = True
    while running:
        batch = [inbox.get()]
        # Greedy drain: everything already queued joins this round's shape
        # groups, so co-arriving requests batch exactly as they would in a
        # single in-process engine.
        while True:
            try:
                batch.append(inbox.get_nowait())
            except queue.Empty:
                break

        served: list[tuple[int, Any]] = []
        for message in batch:
            kind = message[0]
            if kind == "req":
                _, req_id, payload = message
                try:
                    future = engine.submit(decode_request(payload))
                except Exception as error:  # noqa: BLE001 - reported per request
                    outbox.put(("error", worker_id, req_id, _pickle_exception(error)))
                    continue
                served.append((req_id, future))
            elif kind == "invalidate":
                _, ctl_id, key_bytes = message
                dropped = engine.invalidate_cache(pickle.loads(key_bytes))
                outbox.put(("invalidated", worker_id, ctl_id, dropped))
            elif kind == "stop":
                running = False
            elif kind == "exit":
                import os

                os._exit(message[1])
            elif kind == "sleep":
                import time

                time.sleep(message[1])
            else:  # pragma: no cover - protocol bug guard
                raise RuntimeError(f"worker {worker_id}: unknown message {kind!r}")

        if served:
            try:
                engine.run_until_drained()
            except Exception:  # noqa: BLE001 - per-future errors carry it
                # run_until_drained re-raises the first batch error after
                # the drain; each failed future already holds its own.
                pass
            for req_id, future in served:
                try:
                    result = future.result()
                except Exception as error:  # noqa: BLE001 - reported per request
                    outbox.put(("error", worker_id, req_id, _pickle_exception(error)))
                else:
                    outbox.put(
                        (
                            "result",
                            worker_id,
                            req_id,
                            encode_result(result),
                            stats_snapshot(engine),
                        )
                    )
    outbox.put(("stopped", worker_id))
    engine.shutdown()
