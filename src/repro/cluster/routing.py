"""Routing policies: which engine worker serves which request.

The cluster's routing decision is the software twin of RASS's head-to-lane
assignment: the accelerator balances head-level work across parallel
compute lanes, the cluster balances request-level work across engine
worker processes.  Four policies are provided:

``round_robin``
    Cycle over the live workers.  Baseline fairness, no affinity.
``shape_affinity``
    Requests sharing one cross-stage tiling grid - the engine batch key
    ``(S, T, H, Dk, Dv, config)`` - land on the same worker, so they join
    the same shape group there and execute as one fused call (the paper's
    Fig. 6 grid reuse, preserved across the process boundary).
``cache_affinity``
    Requests carrying a ``cache_key`` stick to the worker holding their
    decode-step-cache state; keyless requests fall back to shape affinity.
    Decode streams hit their cached ``K_hat`` prefix this way, and the
    aggregate cache capacity of the cluster becomes the *sum* of the
    workers' caches instead of one process's bound.
``least_loaded``
    Greedy least-outstanding-work assignment, reusing the exact
    :class:`~repro.hw.scheduler.rass.LaneLoadBalancer` accounting the
    hardware scheduler model applies to lanes (cost unit: ``S * T``, the
    tile-grid area a request covers).

Affinity policies use rendezvous (highest-random-weight) hashing over the
*live* worker set: when a worker dies, only the keys it owned remap - the
survivors keep their assignments, so a failure does not cold-start every
cache in the cluster.  The same property covers supervision's recovery
path: a reconnected remote worker registers under a **fresh** worker id
(its engine state did not survive the session), and rendezvous hashing
guarantees the new id only takes keys from the dead one plus a fair
share - every key a survivor owned stays put.  Worker ids are therefore
*dynamic*: policies accept any live id set, not a fixed ``range(n)``.
All policies are deterministic (hashes are content digests, not Python's
salted ``hash``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.hw.scheduler.rass import LaneLoadBalancer

#: Names accepted by :func:`make_policy` / ``EngineCluster(routing=...)``.
POLICIES = ("round_robin", "shape_affinity", "cache_affinity", "least_loaded")


@dataclass(frozen=True)
class RequestInfo:
    """The routing-relevant view of one encoded request.

    ``shape_key`` is a canonical byte encoding of the engine batch key
    (requests with equal ``shape_key`` would batch together inside one
    engine); ``cache_key`` the encoded decode-cache key (``None`` when the
    request is uncached); ``cost`` the ``S * T`` work estimate.
    """

    shape_key: bytes
    cache_key: bytes | None
    cost: float


def _rendezvous(key: bytes, live: list[int]) -> int:
    """Highest-random-weight choice of a worker for ``key`` among ``live``."""
    if not live:
        raise ValueError("no live worker to route to")
    best, best_score = live[0], b""
    for worker in live:
        score = hashlib.sha256(b"%d|" % worker + key).digest()
        if score > best_score:
            best, best_score = worker, score
    return best


class RoundRobinPolicy:
    """Cycle over the live ids in ascending order.

    The cursor remembers the last id handed out, so the cycle is stable
    under membership churn (deaths, respawns, fresh ids from reconnects):
    the next pick is always the smallest live id above the cursor,
    wrapping to the smallest overall.
    """

    name = "round_robin"

    def __init__(self, n_workers: int):
        self.n_workers = n_workers
        self._last = -1

    def route(self, info: RequestInfo, live: list[int]) -> int:
        if not live:
            raise ValueError("no live worker to route to")
        ordered = sorted(live)
        for worker in ordered:
            if worker > self._last:
                self._last = worker
                return worker
        self._last = ordered[0]
        return ordered[0]

    def retire(self, worker: int, cost: float) -> None:
        """Round-robin tracks no outstanding load."""


class ShapeAffinityPolicy:
    name = "shape_affinity"

    def __init__(self, n_workers: int):
        self.n_workers = n_workers

    def route(self, info: RequestInfo, live: list[int]) -> int:
        return _rendezvous(info.shape_key, live)

    def retire(self, worker: int, cost: float) -> None:
        """Affinity policies track no outstanding load."""


class CacheAffinityPolicy:
    name = "cache_affinity"

    def __init__(self, n_workers: int):
        self.n_workers = n_workers

    def route(self, info: RequestInfo, live: list[int]) -> int:
        if info.cache_key is not None:
            return _rendezvous(info.cache_key, live)
        return _rendezvous(info.shape_key, live)

    def retire(self, worker: int, cost: float) -> None:
        """Affinity policies track no outstanding load."""


class LeastLoadedPolicy:
    """RASS lane balancing applied to worker processes.

    Outstanding load per worker is tracked in ``S * T`` cost units by the
    shared :class:`LaneLoadBalancer`; the cluster retires a request's cost
    when its result (or error) arrives.
    """

    name = "least_loaded"

    def __init__(self, n_workers: int):
        self.balancer = LaneLoadBalancer(n_lanes=n_workers)

    def route(self, info: RequestInfo, live: list[int]) -> int:
        # Reconnected workers join under fresh ids past the original
        # range; grow the lane accounting to cover them (new lanes start
        # at zero outstanding load, which is exactly true of a fresh
        # worker).
        self.balancer.ensure_lanes(max(live) + 1)
        return self.balancer.pick(info.cost, eligible=live)

    def retire(self, worker: int, cost: float) -> None:
        self.balancer.ensure_lanes(worker + 1)
        self.balancer.retire(worker, cost)


def make_policy(name: str, n_workers: int):
    """Build the named routing policy for an ``n_workers``-wide cluster."""
    table = {
        "round_robin": RoundRobinPolicy,
        "shape_affinity": ShapeAffinityPolicy,
        "cache_affinity": CacheAffinityPolicy,
        "least_loaded": LeastLoadedPolicy,
    }
    if name not in table:
        raise ValueError(f"unknown routing policy {name!r}; expected one of {POLICIES}")
    return table[name](n_workers)
