"""Routing policies: which engine worker serves which request.

The cluster's routing decision is the software twin of RASS's head-to-lane
assignment: the accelerator balances head-level work across parallel
compute lanes, the cluster balances request-level work across engine
worker processes.  Four policies are provided:

``round_robin``
    Cycle over the live workers.  Baseline fairness, no affinity.
``shape_affinity``
    Requests sharing one cross-stage tiling grid - the engine batch key
    ``(S, T, H, Dk, Dv, config)`` - land on the same worker, so they join
    the same shape group there and execute as one fused call (the paper's
    Fig. 6 grid reuse, preserved across the process boundary).
``cache_affinity``
    Requests carrying a ``cache_key`` stick to the worker holding their
    decode-step-cache state; keyless requests fall back to shape affinity.
    Decode streams hit their cached ``K_hat`` prefix this way, and the
    aggregate cache capacity of the cluster becomes the *sum* of the
    workers' caches instead of one process's bound.
``least_loaded``
    Greedy least-outstanding-work assignment, reusing the exact
    :class:`~repro.hw.scheduler.rass.LaneLoadBalancer` accounting the
    hardware scheduler model applies to lanes (cost unit: ``S * T``, the
    tile-grid area a request covers).

Affinity policies use rendezvous (highest-random-weight) hashing over the
*live* worker set: when a worker dies, only the keys it owned remap - the
survivors keep their assignments, so a failure does not cold-start every
cache in the cluster.  All policies are deterministic (hashes are content
digests, not Python's salted ``hash``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.hw.scheduler.rass import LaneLoadBalancer

#: Names accepted by :func:`make_policy` / ``EngineCluster(routing=...)``.
POLICIES = ("round_robin", "shape_affinity", "cache_affinity", "least_loaded")


@dataclass(frozen=True)
class RequestInfo:
    """The routing-relevant view of one encoded request.

    ``shape_key`` is a canonical byte encoding of the engine batch key
    (requests with equal ``shape_key`` would batch together inside one
    engine); ``cache_key`` the encoded decode-cache key (``None`` when the
    request is uncached); ``cost`` the ``S * T`` work estimate.
    """

    shape_key: bytes
    cache_key: bytes | None
    cost: float


def _rendezvous(key: bytes, live: list[int]) -> int:
    """Highest-random-weight choice of a worker for ``key`` among ``live``."""
    if not live:
        raise ValueError("no live worker to route to")
    best, best_score = live[0], b""
    for worker in live:
        score = hashlib.sha256(b"%d|" % worker + key).digest()
        if score > best_score:
            best, best_score = worker, score
    return best


class RoundRobinPolicy:
    name = "round_robin"

    def __init__(self, n_workers: int):
        self._next = 0
        self.n_workers = n_workers

    def route(self, info: RequestInfo, live: list[int]) -> int:
        if not live:
            raise ValueError("no live worker to route to")
        live_set = set(live)
        # Advance the cursor over the full id space so the cycle stays
        # stable when a dead worker later matters for determinism.
        for _ in range(self.n_workers):
            worker = self._next % self.n_workers
            self._next += 1
            if worker in live_set:
                return worker
        return live[0]

    def retire(self, worker: int, cost: float) -> None:
        """Round-robin tracks no outstanding load."""


class ShapeAffinityPolicy:
    name = "shape_affinity"

    def __init__(self, n_workers: int):
        self.n_workers = n_workers

    def route(self, info: RequestInfo, live: list[int]) -> int:
        return _rendezvous(info.shape_key, live)

    def retire(self, worker: int, cost: float) -> None:
        """Affinity policies track no outstanding load."""


class CacheAffinityPolicy:
    name = "cache_affinity"

    def __init__(self, n_workers: int):
        self.n_workers = n_workers

    def route(self, info: RequestInfo, live: list[int]) -> int:
        if info.cache_key is not None:
            return _rendezvous(info.cache_key, live)
        return _rendezvous(info.shape_key, live)

    def retire(self, worker: int, cost: float) -> None:
        """Affinity policies track no outstanding load."""


class LeastLoadedPolicy:
    """RASS lane balancing applied to worker processes.

    Outstanding load per worker is tracked in ``S * T`` cost units by the
    shared :class:`LaneLoadBalancer`; the cluster retires a request's cost
    when its result (or error) arrives.
    """

    name = "least_loaded"

    def __init__(self, n_workers: int):
        self.balancer = LaneLoadBalancer(n_lanes=n_workers)

    def route(self, info: RequestInfo, live: list[int]) -> int:
        return self.balancer.pick(info.cost, eligible=live)

    def retire(self, worker: int, cost: float) -> None:
        self.balancer.retire(worker, cost)


def make_policy(name: str, n_workers: int):
    """Build the named routing policy for an ``n_workers``-wide cluster."""
    table = {
        "round_robin": RoundRobinPolicy,
        "shape_affinity": ShapeAffinityPolicy,
        "cache_affinity": CacheAffinityPolicy,
        "least_loaded": LeastLoadedPolicy,
    }
    if name not in table:
        raise ValueError(f"unknown routing policy {name!r}; expected one of {POLICIES}")
    return table[name](n_workers)
