"""Leading-zero counting circuits and the log-domain (LZ) encoding.

The DLZS paradigm (paper Sec. III-A, Fig. 7) replaces one operand of every
multiplication with its leading-zero count: for a signed integer ``x`` with
bit width ``W``,

    x = sign(x) * M * 2**(W - LZ(x)),   M in [0.5, 1)   (x != 0)

so ``x * y ≈ sign(x)sign(y) * |x| * 2**(W - LZ(y))`` when only ``y`` is
converted.  The hardware building block is an 8-bit leading-zero counter
(LZC); the configurable LZE of Fig. 12 chains two 8-bit LZCs to cover the
16-bit mode needed by attention prediction.

Everything here is bit-accurate and pure-integer so it can double as a golden
model for the RTL the paper synthesized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def leading_zeros(values: np.ndarray | int, width: int) -> np.ndarray:
    """Count leading zeros of ``abs(values)`` in a ``width``-bit field.

    ``0`` maps to ``width`` (an all-zero field).  Magnitudes that do not fit
    in ``width`` bits raise ``ValueError`` - a real LZC cannot see beyond its
    input width, and silently wrapping would corrupt the DLZS exponent.
    """
    mags = np.abs(np.asarray(values, dtype=np.int64))
    if mags.size and int(mags.max()) >= (1 << width):
        raise ValueError(f"magnitude {int(mags.max())} does not fit in {width} bits")
    # bit_length(m) == width - lz  =>  lz = width - bit_length(m)
    bit_length = np.zeros_like(mags)
    nonzero = mags > 0
    bit_length[nonzero] = np.floor(np.log2(mags[nonzero])).astype(np.int64) + 1
    return (width - bit_length).astype(np.int64)


def lz_encode(values: np.ndarray | int, width: int) -> tuple[np.ndarray, np.ndarray]:
    """Encode integers into (sign, leading-zero count) pairs.

    This is the storage format for pre-converted weights: the paper stores a
    4-bit LZ code plus the sign bit instead of the full 8-bit weight,
    halving prediction-stage memory traffic (Fig. 7(b) "less memory access").
    """
    vals = np.asarray(values, dtype=np.int64)
    signs = np.sign(vals).astype(np.int64)
    return signs, leading_zeros(vals, width)


def lz_decode_magnitude(lz: np.ndarray | int, width: int) -> np.ndarray:
    """Reconstruct the power-of-two magnitude ``2**(width - lz)`` (0 if lz==width).

    This is the *vanilla* leading-zero decode: both DLZS and the vanilla
    scheme use it for the converted operand; vanilla additionally applies it
    to the second operand, doubling the error (Fig. 7(c)).
    """
    lz_arr = np.asarray(lz, dtype=np.int64)
    exponent = width - lz_arr
    mag = np.where(lz_arr >= width, 0, 1 << np.clip(exponent, 0, 62))
    return mag.astype(np.int64)


def shift_by_exponent(values: np.ndarray, lz: np.ndarray, width: int) -> np.ndarray:
    """Apply the DLZS shift: ``values << (width - lz)`` with lz==width -> 0.

    ``values`` stays exact (the "differential" in DLZS); only the shift amount
    comes from the log-domain operand.
    """
    vals = np.asarray(values, dtype=np.int64)
    lz_arr = np.asarray(lz, dtype=np.int64)
    exponent = np.clip(width - lz_arr, 0, 62)
    shifted = vals << exponent
    return np.where(lz_arr >= width, 0, shifted).astype(np.int64)


@dataclass(frozen=True)
class LzcReport:
    """Output of one LZC evaluation: the count plus the all-zero flag wire."""

    count: np.ndarray
    all_zero: np.ndarray


def lzc8(values: np.ndarray | int) -> LzcReport:
    """Model the modular 8-bit LZC cell [Milenkovic'15] used by the LZE.

    Returns the 3-bit count (0-7 when a one is present) and the all-zero flag
    ``a`` that the 16-bit composition consumes.
    """
    mags = np.abs(np.asarray(values, dtype=np.int64))
    if mags.size and int(mags.max()) > 0xFF:
        raise ValueError("lzc8 input exceeds 8 bits")
    lz = leading_zeros(mags, 8)
    return LzcReport(count=np.where(lz == 8, 7, lz), all_zero=(mags == 0))


class ConfigurableLZE:
    """The configurable 8/16-bit leading-zero encoder of the DLZS engine.

    Two 8-bit LZCs are chained (paper Fig. 12): in 8-bit mode each lane works
    independently; in 16-bit mode lane #1 sees the upper byte and lane #0 the
    lower byte, the upper lane's all-zero flag selects between ``lz_hi`` and
    ``8 + lz_lo``, and both flags AND together into the 16-bit all-zero flag.

    The class model mirrors the wiring so tests can check the composition
    equals a flat 16-bit count.
    """

    def __init__(self, mode_bits: int = 8):
        if mode_bits not in (8, 16):
            raise ValueError("LZE supports 8- or 16-bit mode only")
        self.mode_bits = mode_bits

    def encode(self, values: np.ndarray | int) -> tuple[np.ndarray, np.ndarray]:
        """Return (sign, lz-count) under the configured mode.

        In 16-bit mode the count is the 5-bit value fed to the shift array
        (paper: "the generated 5-bit LZs").
        """
        vals = np.asarray(values, dtype=np.int64)
        signs = np.sign(vals).astype(np.int64)
        mags = np.abs(vals)
        if self.mode_bits == 8:
            report = lzc8(mags)
            count = np.where(report.all_zero, 8, report.count)
            return signs, count.astype(np.int64)
        if mags.size and int(mags.max()) > 0xFFFF:
            raise ValueError("16-bit LZE input exceeds 16 bits")
        hi = lzc8(mags >> 8)
        lo = lzc8(mags & 0xFF)
        lz_hi = np.where(hi.all_zero, 8, hi.count)
        lz_lo = np.where(lo.all_zero, 8, lo.count)
        # upper all-zero flag selects the low lane and offsets it by 8
        count = np.where(hi.all_zero, 8 + lz_lo, lz_hi)
        return signs, count.astype(np.int64)
