"""Numeric substrate: quantization, leading-zero circuits, softmax, complexity.

These are the building blocks that every SOFA stage shares:

* :mod:`repro.numerics.fixed_point` - INT quantization with explicit bit
  widths (the paper uses 8-bit tokens, 4-bit LZ weights, 16-bit formal data).
* :mod:`repro.numerics.leading_zero` - bit-accurate models of the leading-zero
  counter (LZC) circuits and the configurable 8/16-bit leading-zero encoder
  (LZE) from the DLZS engine (paper Fig. 12).
* :mod:`repro.numerics.softmax` - exact and streaming softmax references used
  to validate every attention implementation.
* :mod:`repro.numerics.complexity` - the arithmetic complexity model
  (Brent-Zimmermann style weights) used to normalize operation counts across
  multiplications, exponentials, comparisons, shifts and additions.
"""

from repro.numerics.complexity import OpCounter, OpWeights, DEFAULT_WEIGHTS
from repro.numerics.fixed_point import QuantizedTensor, quantize, dequantize
from repro.numerics.leading_zero import (
    ConfigurableLZE,
    leading_zeros,
    lz_encode,
    lz_decode_magnitude,
)
from repro.numerics.softmax import softmax, streaming_softmax_row

__all__ = [
    "OpCounter",
    "OpWeights",
    "DEFAULT_WEIGHTS",
    "QuantizedTensor",
    "quantize",
    "dequantize",
    "ConfigurableLZE",
    "leading_zeros",
    "lz_encode",
    "lz_decode_magnitude",
    "softmax",
    "streaming_softmax_row",
]
