"""Deterministic (batch-invariant) linear algebra primitives.

The batched engine (``repro.engine``) promises *bit-for-bit* parity with the
single-head :class:`~repro.core.pipeline.SofaAttention`: stacking eight heads
into one call must produce exactly the float64 bit patterns the eight
individual calls produce.  BLAS-backed ``@`` breaks that promise - gemm/gemv
pick different blocking (and therefore different summation orders) depending
on the operand shapes, so a row's result can change when unrelated rows are
appended.

Two families of primitives restore the invariance:

* the ``det_matmul`` / ``det_gathered_project`` / ``det_rowdot`` helpers
  implement matmul as an explicit broadcast-multiply followed by ``np.sum``
  over the contraction axis - NumPy's pairwise reduction over a fixed-length
  axis of a freshly-allocated C-contiguous product is a pure function of
  that row's data (the cost is a materialized ``(rows, K, N)`` product per
  chunk; callers keep ``chunk_rows`` small enough to stay cache-friendly);
* the SU-FA hot-path primitives (``det_stack_scores``, ``det_pv_contract``,
  ``det_tile_mass``) are *stacked fixed-shape* contractions: each row is its
  own ``(kk, D) @ (D, 1)``-style BLAS call whose operand shapes - and hence
  whose internal reduction order - do not depend on the stack size, so rows
  stay batch-invariant at full BLAS speed.  What IS forbidden remains one
  fused gemm over the whole stack, whose blocking would couple rows.

Either way, every row's output is independent of how many other rows share
the call and of any chunking used to bound memory.
"""

from __future__ import annotations

import numpy as np

#: Rows processed per chunk: bounds the (chunk, K, N) product temporary.
_DEFAULT_CHUNK_ROWS = 256


def det_matmul(
    a: np.ndarray, b: np.ndarray, chunk_rows: int = _DEFAULT_CHUNK_ROWS
) -> np.ndarray:
    """Deterministic ``(M, K) @ (K, N)`` float64 matmul.

    Row ``i`` of the result is bit-identical for any ``M`` and any chunking,
    which is what lets the sequential pipeline and the batched engine share
    exact outputs.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} x {b.shape}")
    m, n = a.shape[0], b.shape[1]
    out = np.empty((m, n), dtype=np.float64)
    for lo in range(0, m, max(chunk_rows, 1)):
        hi = min(lo + max(chunk_rows, 1), m)
        prod = a[lo:hi, :, None] * b[None, :, :]  # fresh C-contiguous (c, K, N)
        out[lo:hi] = prod.sum(axis=1)
    if m == 0:
        out = out.reshape(0, n)
    return out


def det_gathered_project(
    x: np.ndarray,
    w: np.ndarray,
    row_matrix: np.ndarray,
    chunk_rows: int = _DEFAULT_CHUNK_ROWS,
) -> np.ndarray:
    """Per-row projection ``out[i] = x[i] @ w[row_matrix[i]]``.

    ``x`` is ``(R, K)``, ``w`` is a stack ``(N_mats, K, N)`` and
    ``row_matrix`` maps each row to its matrix (the engine maps selected
    tokens back to their head's projection weights).  Row results are
    bit-identical to ``det_matmul(x[i:i+1], w[row_matrix[i]])`` because the
    per-chunk product has the same ``(c, K, N)`` layout and the same
    ``axis=1`` pairwise reduction.
    """
    x = np.asarray(x, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    row_matrix = np.asarray(row_matrix, dtype=np.int64)
    if x.ndim != 2 or w.ndim != 3 or x.shape[1] != w.shape[1]:
        raise ValueError(f"incompatible shapes {x.shape} x {w.shape}")
    if row_matrix.shape != (x.shape[0],):
        raise ValueError("row_matrix must map every row of x to a matrix")
    r, n = x.shape[0], w.shape[2]
    out = np.empty((r, n), dtype=np.float64)
    if r == 0:
        return out
    step = max(chunk_rows, 1)
    # Process runs of a constant matrix index (the engine's rows arrive
    # head-sorted) with a broadcast instead of a per-row gather copy; the
    # product layout and reduction are unchanged, so results stay identical.
    boundaries = np.flatnonzero(np.diff(row_matrix)) + 1
    starts = np.concatenate(([0], boundaries))
    stops = np.concatenate((boundaries, [r]))
    for start, stop in zip(starts, stops):
        mat = w[int(row_matrix[start])]
        for lo in range(int(start), int(stop), step):
            hi = min(lo + step, int(stop))
            prod = x[lo:hi, :, None] * mat[None, :, :]  # (c, K, N)
            out[lo:hi] = prod.sum(axis=1)
    return out


def det_rowdot(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Deterministic dot product over the last axis with broadcasting.

    The product is materialized C-contiguously and reduced over the final
    axis, so each entry depends only on its own ``D`` elements regardless of
    what else shares the call.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    prod = np.ascontiguousarray(a * b)
    return prod.sum(axis=-1)


def det_stack_scores(k_sel: np.ndarray, q_rows: np.ndarray) -> np.ndarray:
    """Batch-invariant score gather ``scores[r, j] = k_sel[r, j] . q_rows[r]``.

    ``k_sel`` is ``(R, kk, D)``, ``q_rows`` is ``(R, D)``; returns ``(R,
    kk)``.  Implemented as a stacked matrix-vector product: every row ``r``
    is its own ``(kk, D) @ (D,)`` BLAS call whose operand shapes - and
    therefore whose reduction order - do not depend on how many rows share
    the stack, so row results are bit-identical whether one row or ten
    thousand are gathered together (the same guarantee the materialized
    :func:`det_rowdot` gives, an order of magnitude faster on the SU-FA
    hot path; ``tests/test_engine_batched.py``'s parity sweep and the
    kernel differential suite enforce the invariance on real payloads).
    """
    k_sel = np.asarray(k_sel, dtype=np.float64)
    q_rows = np.asarray(q_rows, dtype=np.float64)
    if k_sel.ndim != 3 or q_rows.ndim != 2 or k_sel.shape[0::2] != q_rows.shape:
        raise ValueError(f"incompatible shapes {k_sel.shape} x {q_rows.shape}")
    return np.matmul(k_sel, q_rows[:, :, None])[:, :, 0]


def det_pv_contract(p_tile: np.ndarray, v_tile: np.ndarray) -> np.ndarray:
    """Batch-invariant tile contraction ``out[r] = sum_j p_tile[r, j] * v_tile[r, j]``.

    ``p_tile`` is ``(R, B)`` softmax weights of one SU-FA tile, ``v_tile``
    is ``(R, B, Dv)``; returns the ``(R, Dv)`` tile partial the streaming
    core merges into its carried output at the tile boundary.  Like
    :func:`det_stack_scores`, each row is its own fixed-shape
    ``(1, B) @ (B, Dv)`` BLAS contraction, so a row's partial is
    bit-identical whether one row or the whole engine stack shares the
    call - and because **every** SU-FA kernel funnels its tile merges
    through this one primitive, the blocked/reference bit-parity contract
    holds no matter how the BLAS orders the ``B`` products internally.

    Callers must pass the whole streaming stack with each row's ``(B,
    Dv)`` value slice laid out contiguously (true for every tile slice of
    a gathered ``(R, kk, Dv)`` stack); tiny-shape matmuls take
    layout-dependent internal paths, so the kernel layer keeps every call
    site on this one canonical layout rather than contracting row subsets.
    """
    p_tile = np.asarray(p_tile, dtype=np.float64)
    v_tile = np.asarray(v_tile, dtype=np.float64)
    if (
        p_tile.ndim != 2
        or v_tile.ndim != 3
        or v_tile.shape[:2] != p_tile.shape
    ):
        raise ValueError(f"incompatible shapes {p_tile.shape} x {v_tile.shape}")
    return np.matmul(p_tile[:, None, :], v_tile)[:, 0, :]


def det_tile_mass(p_tile: np.ndarray) -> np.ndarray:
    """Batch-invariant normalizer mass ``out[r] = sum_j p_tile[r, j]``.

    The ``(R,)`` tile partial the streaming core adds to its carried
    softmax normalizer at the tile boundary.  ``np.sum`` over the
    contiguous last axis reduces each row's ``B`` weights with a pairwise
    tree that depends only on ``B``, so - as with :func:`det_pv_contract`
    - a row's mass is independent of its batch-mates, and all kernels
    sharing this primitive stay bit-identical.
    """
    p_tile = np.ascontiguousarray(p_tile, dtype=np.float64)
    if p_tile.ndim != 2:
        raise ValueError(f"p_tile must be (R, B), got {p_tile.shape}")
    return p_tile.sum(axis=1)
