"""Deterministic (batch-invariant) linear algebra primitives.

The batched engine (``repro.engine``) promises *bit-for-bit* parity with the
single-head :class:`~repro.core.pipeline.SofaAttention`: stacking eight heads
into one call must produce exactly the float64 bit patterns the eight
individual calls produce.  BLAS-backed ``@`` breaks that promise - gemm/gemv
pick different blocking (and therefore different summation orders) depending
on the operand shapes, so a row's result can change when unrelated rows are
appended.

These helpers implement matmul as an explicit broadcast-multiply followed by
``np.sum`` over the contraction axis.  NumPy's pairwise reduction over a
fixed-length axis of a freshly-allocated C-contiguous product is a pure
function of that row's data, so every row's output is independent of how many
other rows share the call and of the chunking used to bound memory.

The cost is a materialized ``(rows, K, N)`` product per chunk; callers keep
``chunk_rows`` small enough that the temporary stays cache-friendly.
"""

from __future__ import annotations

import numpy as np

#: Rows processed per chunk: bounds the (chunk, K, N) product temporary.
_DEFAULT_CHUNK_ROWS = 256


def det_matmul(
    a: np.ndarray, b: np.ndarray, chunk_rows: int = _DEFAULT_CHUNK_ROWS
) -> np.ndarray:
    """Deterministic ``(M, K) @ (K, N)`` float64 matmul.

    Row ``i`` of the result is bit-identical for any ``M`` and any chunking,
    which is what lets the sequential pipeline and the batched engine share
    exact outputs.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} x {b.shape}")
    m, n = a.shape[0], b.shape[1]
    out = np.empty((m, n), dtype=np.float64)
    for lo in range(0, m, max(chunk_rows, 1)):
        hi = min(lo + max(chunk_rows, 1), m)
        prod = a[lo:hi, :, None] * b[None, :, :]  # fresh C-contiguous (c, K, N)
        out[lo:hi] = prod.sum(axis=1)
    if m == 0:
        out = out.reshape(0, n)
    return out


def det_gathered_project(
    x: np.ndarray,
    w: np.ndarray,
    row_matrix: np.ndarray,
    chunk_rows: int = _DEFAULT_CHUNK_ROWS,
) -> np.ndarray:
    """Per-row projection ``out[i] = x[i] @ w[row_matrix[i]]``.

    ``x`` is ``(R, K)``, ``w`` is a stack ``(N_mats, K, N)`` and
    ``row_matrix`` maps each row to its matrix (the engine maps selected
    tokens back to their head's projection weights).  Row results are
    bit-identical to ``det_matmul(x[i:i+1], w[row_matrix[i]])`` because the
    per-chunk product has the same ``(c, K, N)`` layout and the same
    ``axis=1`` pairwise reduction.
    """
    x = np.asarray(x, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    row_matrix = np.asarray(row_matrix, dtype=np.int64)
    if x.ndim != 2 or w.ndim != 3 or x.shape[1] != w.shape[1]:
        raise ValueError(f"incompatible shapes {x.shape} x {w.shape}")
    if row_matrix.shape != (x.shape[0],):
        raise ValueError("row_matrix must map every row of x to a matrix")
    r, n = x.shape[0], w.shape[2]
    out = np.empty((r, n), dtype=np.float64)
    if r == 0:
        return out
    step = max(chunk_rows, 1)
    # Process runs of a constant matrix index (the engine's rows arrive
    # head-sorted) with a broadcast instead of a per-row gather copy; the
    # product layout and reduction are unchanged, so results stay identical.
    boundaries = np.flatnonzero(np.diff(row_matrix)) + 1
    starts = np.concatenate(([0], boundaries))
    stops = np.concatenate((boundaries, [r]))
    for start, stop in zip(starts, stops):
        mat = w[int(row_matrix[start])]
        for lo in range(int(start), int(stop), step):
            hi = min(lo + step, int(stop))
            prod = x[lo:hi, :, None] * mat[None, :, :]  # (c, K, N)
            out[lo:hi] = prod.sum(axis=1)
    return out


def det_rowdot(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Deterministic dot product over the last axis with broadcasting.

    Used for the SU-FA score gather ``scores[r, j] = k_sel[r, j] . q[r]``:
    the product is materialized C-contiguously and reduced over the final
    axis, so each ``(r, j)`` entry depends only on its own ``D`` elements.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    prod = np.ascontiguousarray(a * b)
    return prod.sum(axis=-1)
