"""Fixed-point (INT) quantization with explicit bit widths.

SOFA's pre-compute stage runs on narrow integers: 8-bit tokens, 4-bit
leading-zero encoded weights, and 16-bit values in the formal stage.  This
module provides symmetric per-tensor quantization so the algorithm code can
move between float space (model substrate) and integer space (accelerator
datapath) explicitly.

All quantizers are symmetric around zero (sign + magnitude view matches the
DLZS hardware, which extracts the sign bit and works on ``abs``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def int_range(bits: int) -> tuple[int, int]:
    """Return the (min, max) representable values of a signed ``bits``-wide INT."""
    if bits < 2:
        raise ValueError(f"need at least 2 bits for signed int, got {bits}")
    hi = (1 << (bits - 1)) - 1
    return -hi, hi  # symmetric: we do not use the most negative code


@dataclass(frozen=True)
class QuantizedTensor:
    """An integer tensor together with its dequantization scale.

    Attributes
    ----------
    values:
        Integer payload (``np.int64`` storage regardless of logical width, so
        intermediate shift-add arithmetic cannot overflow).
    scale:
        Float scale such that ``float ≈ values * scale``.
    bits:
        Logical bit width of each element.
    """

    values: np.ndarray
    scale: float
    bits: int

    @property
    def shape(self) -> tuple[int, ...]:
        return self.values.shape

    def dequantize(self) -> np.ndarray:
        """Map back to float space."""
        return self.values.astype(np.float64) * self.scale


def quantize_with_scale(
    x: np.ndarray, scale: float | np.ndarray, bits: int
) -> np.ndarray:
    """Round and saturate float64 ``x`` at a fixed symmetric ``scale``.

    This is THE rounding rule of the package: :func:`quantize`,
    :func:`quantize_stack` and the decode-step cache's incremental
    re-quantization all call it, so bit-for-bit parity between full and
    incremental paths rests on a single formula.
    """
    lo, hi = int_range(bits)
    return np.clip(np.rint(x / scale), lo, hi).astype(np.int64)


def quantize(x: np.ndarray, bits: int) -> QuantizedTensor:
    """Symmetrically quantize ``x`` to a signed ``bits``-wide integer tensor.

    The scale is chosen so the max-magnitude element saturates the integer
    range; an all-zero tensor gets scale 1.0.  A tensor whose maximum is so
    small that ``max_abs / hi`` underflows to zero (subnormal inputs) falls
    back to scale 1.0 the same way - every element then rounds to 0, which
    is the closest representable code, instead of dividing by zero.
    """
    x = np.asarray(x, dtype=np.float64)
    _, hi = int_range(bits)
    max_abs = float(np.max(np.abs(x))) if x.size else 0.0
    scale = max_abs / hi
    if scale <= 0.0:
        scale = 1.0
    q = quantize_with_scale(x, scale, bits)
    return QuantizedTensor(values=q, scale=scale, bits=bits)


@dataclass(frozen=True)
class StackQuantizedTensor:
    """A stack of independently-quantized tensors sharing one bit width.

    ``values[i]`` and ``scales[i]`` are bit-identical to
    ``quantize(x[i], bits)`` - the per-slice maxima, scales and rounding all
    use the same float operations, so the batched engine's per-head
    quantization matches the per-head :func:`quantize` calls exactly.
    """

    values: np.ndarray
    scales: np.ndarray
    bits: int

    @property
    def shape(self) -> tuple[int, ...]:
        return self.values.shape

    def dequantize(self) -> np.ndarray:
        shape = (-1,) + (1,) * (self.values.ndim - 1)
        return self.values.astype(np.float64) * self.scales.reshape(shape)


def quantize_stack(x: np.ndarray, bits: int) -> StackQuantizedTensor:
    """Quantize each slice along axis 0 with its own symmetric scale.

    Equivalent to ``[quantize(x[i], bits) for i in range(len(x))]`` but
    vectorized; each slice saturates its own max-magnitude element.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim < 2:
        raise ValueError("quantize_stack needs a stack of tensors (ndim >= 2)")
    _, hi = int_range(bits)
    reduce_axes = tuple(range(1, x.ndim))
    max_abs = np.max(np.abs(x), axis=reduce_axes)
    # Same fallback rule as quantize() - including for slices whose scale
    # underflows to zero - so per-slice bits stay identical to it.
    raw_scales = max_abs / hi
    scales = np.where(raw_scales > 0, raw_scales, 1.0)
    bshape = (-1,) + (1,) * (x.ndim - 1)
    q = quantize_with_scale(x, scales.reshape(bshape), bits)
    return StackQuantizedTensor(values=q, scales=scales, bits=bits)


def dequantize(q: QuantizedTensor) -> np.ndarray:
    """Functional alias of :meth:`QuantizedTensor.dequantize`."""
    return q.dequantize()


def requantize(q: QuantizedTensor, bits: int) -> QuantizedTensor:
    """Narrow (or widen) an integer tensor to ``bits`` by rescaling.

    Used where the accelerator truncates: e.g. the DLZS K-prediction output is
    truncated to at most 16 bits before attention prediction.
    """
    return quantize(q.dequantize(), bits)


def saturating_add(a: np.ndarray, b: np.ndarray, bits: int) -> np.ndarray:
    """Add with saturation at the signed ``bits`` range (accumulator model)."""
    lo, hi = int_range(bits)
    return np.clip(a + b, lo, hi)
