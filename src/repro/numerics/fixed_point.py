"""Fixed-point (INT) quantization with explicit bit widths.

SOFA's pre-compute stage runs on narrow integers: 8-bit tokens, 4-bit
leading-zero encoded weights, and 16-bit values in the formal stage.  This
module provides symmetric per-tensor quantization so the algorithm code can
move between float space (model substrate) and integer space (accelerator
datapath) explicitly.

All quantizers are symmetric around zero (sign + magnitude view matches the
DLZS hardware, which extracts the sign bit and works on ``abs``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def int_range(bits: int) -> tuple[int, int]:
    """Return the (min, max) representable values of a signed ``bits``-wide INT."""
    if bits < 2:
        raise ValueError(f"need at least 2 bits for signed int, got {bits}")
    hi = (1 << (bits - 1)) - 1
    return -hi, hi  # symmetric: we do not use the most negative code


@dataclass(frozen=True)
class QuantizedTensor:
    """An integer tensor together with its dequantization scale.

    Attributes
    ----------
    values:
        Integer payload (``np.int64`` storage regardless of logical width, so
        intermediate shift-add arithmetic cannot overflow).
    scale:
        Float scale such that ``float ≈ values * scale``.
    bits:
        Logical bit width of each element.
    """

    values: np.ndarray
    scale: float
    bits: int

    @property
    def shape(self) -> tuple[int, ...]:
        return self.values.shape

    def dequantize(self) -> np.ndarray:
        """Map back to float space."""
        return self.values.astype(np.float64) * self.scale


def quantize(x: np.ndarray, bits: int) -> QuantizedTensor:
    """Symmetrically quantize ``x`` to a signed ``bits``-wide integer tensor.

    The scale is chosen so the max-magnitude element saturates the integer
    range; an all-zero tensor gets scale 1.0.
    """
    x = np.asarray(x, dtype=np.float64)
    lo, hi = int_range(bits)
    max_abs = float(np.max(np.abs(x))) if x.size else 0.0
    scale = (max_abs / hi) if max_abs > 0 else 1.0
    q = np.clip(np.rint(x / scale), lo, hi).astype(np.int64)
    return QuantizedTensor(values=q, scale=scale, bits=bits)


def dequantize(q: QuantizedTensor) -> np.ndarray:
    """Functional alias of :meth:`QuantizedTensor.dequantize`."""
    return q.dequantize()


def requantize(q: QuantizedTensor, bits: int) -> QuantizedTensor:
    """Narrow (or widen) an integer tensor to ``bits`` by rescaling.

    Used where the accelerator truncates: e.g. the DLZS K-prediction output is
    truncated to at most 16 bits before attention prediction.
    """
    return quantize(q.dequantize(), bits)


def saturating_add(a: np.ndarray, b: np.ndarray, bits: int) -> np.ndarray:
    """Add with saturation at the signed ``bits`` range (accumulator model)."""
    lo, hi = int_range(bits)
    return np.clip(a + b, lo, hi)
