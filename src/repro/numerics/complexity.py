"""Arithmetic complexity model for normalized operation counting.

The paper normalizes heterogeneous operations (multiplications, exponentials,
comparisons, shifts, additions) with an arithmetic complexity model in the
style of Brent & Zimmermann, *Modern Computer Arithmetic* [40].  Every stage
of this reproduction counts its raw operations in an :class:`OpCounter` and
converts to a single normalized-complexity scalar through one shared weight
table, so ablations (Fig. 17) compare like with like.

Weight rationale (units: cost of one W-bit addition = 1):

* ``add`` / ``sub`` / ``compare`` / ``max`` - linear in bit width: 1.
* ``shift`` - a barrel shifter is cheaper than an adder in both area and
  energy; modeled at 0.5.
* ``mul`` - schoolbook multiplication is O(W) additions; for the W=16 datapath
  we charge 16.
* ``exp`` / ``div`` - implemented by piecewise/iterative units; Brent and
  Zimmermann put elementary functions at O(M(W) log W); charged 48 (= 16 * 3)
  for exp and 32 for div.
* ``lzc`` - a leading-zero counter is a small priority encoder: 0.5.
* ``xor`` (sign logic) - negligible but tracked: 0.1.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class OpWeights:
    """Normalized cost of each primitive operation (1.0 == one addition)."""

    add: float = 1.0
    compare: float = 1.0
    shift: float = 0.5
    mul: float = 16.0
    exp: float = 48.0
    div: float = 32.0
    lzc: float = 0.5
    xor: float = 0.1
    mem_read: float = 0.0
    mem_write: float = 0.0

    def cost(self, op: str) -> float:
        try:
            return getattr(self, op)
        except AttributeError:
            raise KeyError(f"unknown operation kind: {op!r}") from None


DEFAULT_WEIGHTS = OpWeights()

_KNOWN_OPS = frozenset(
    ("add", "compare", "shift", "mul", "exp", "div", "lzc", "xor", "mem_read", "mem_write")
)


@dataclass
class OpCounter:
    """A tally of primitive operations with weighted-total reduction.

    Stages add raw counts (``counter.add_op("exp", 128)``); reports reduce via
    :meth:`normalized` using a shared :class:`OpWeights`.  Counters support
    ``+`` so per-tile counters can roll up into per-layer and per-model ones.
    """

    counts: Counter = field(default_factory=Counter)

    def add_op(self, op: str, n: float = 1) -> None:
        if op not in _KNOWN_OPS:
            raise KeyError(f"unknown operation kind: {op!r}")
        if n < 0:
            raise ValueError("operation count cannot be negative")
        self.counts[op] += n

    def __getitem__(self, op: str) -> float:
        if op not in _KNOWN_OPS:
            raise KeyError(f"unknown operation kind: {op!r}")
        return self.counts.get(op, 0)

    def __add__(self, other: "OpCounter") -> "OpCounter":
        merged = Counter(self.counts)
        merged.update(other.counts)
        return OpCounter(counts=merged)

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(sorted(self.counts.items()))

    def total_raw(self) -> float:
        """Unweighted total number of primitive operations."""
        return float(sum(self.counts.values()))

    def normalized(self, weights: OpWeights = DEFAULT_WEIGHTS) -> float:
        """Weighted total complexity under ``weights``."""
        return float(sum(weights.cost(op) * n for op, n in self.counts.items()))

    def scaled(self, factor: float) -> "OpCounter":
        """Return a copy with every count multiplied by ``factor``.

        Used to extrapolate a sampled row/tile measurement to a full matrix.
        """
        if factor < 0:
            raise ValueError("scale factor cannot be negative")
        return OpCounter(counts=Counter({op: n * factor for op, n in self.counts.items()}))


def matmul_ops(m: int, k: int, n: int) -> OpCounter:
    """Counter for a dense ``(m,k) @ (k,n)`` integer/float matmul."""
    counter = OpCounter()
    counter.add_op("mul", m * k * n)
    counter.add_op("add", m * max(k - 1, 0) * n)
    return counter


def softmax_ops(rows: int, row_len: int) -> OpCounter:
    """Counter for a row-wise stable softmax over a ``(rows, row_len)`` block.

    Per row: ``row_len - 1`` comparisons for the max, ``row_len`` exps,
    ``row_len - 1`` adds for the sum and ``row_len`` divisions.
    """
    counter = OpCounter()
    counter.add_op("compare", rows * max(row_len - 1, 0))
    counter.add_op("exp", rows * row_len)
    counter.add_op("add", rows * max(row_len - 1, 0))
    counter.add_op("div", rows * row_len)
    return counter
