"""Softmax references used to validate every attention implementation.

Two views are provided:

* :func:`softmax` - the numerically stable batch softmax (subtract rowmax).
* :func:`streaming_softmax_row` - the online (running max / running sum)
  formulation that FlashAttention tiles; used as the golden model for the
  FA-1/FA-2 simulators and for SU-FA.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def softmax(scores: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    scores = np.asarray(scores, dtype=np.float64)
    shifted = scores - np.max(scores, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


@dataclass
class StreamingState:
    """Running (max, normalizer, weighted-value) triple of online softmax.

    This is the (m, l, O) state of FlashAttention: the invariant is that at
    any point ``o / l`` equals attention restricted to the scores seen so far.
    """

    m: float
    l: float
    o: np.ndarray

    def merge(self, score: float, value: np.ndarray) -> None:
        """Fold one (score, value) pair into the state (classic FA update)."""
        new_m = max(self.m, score)
        correction = np.exp(self.m - new_m)
        p = np.exp(score - new_m)
        self.l = self.l * correction + p
        self.o = self.o * correction + p * value
        self.m = new_m


def streaming_softmax_row(
    scores: np.ndarray, values: np.ndarray, order: np.ndarray | None = None
) -> np.ndarray:
    """Compute ``softmax(scores) @ values`` one element at a time.

    Parameters
    ----------
    scores:
        ``(S,)`` attention scores for one query row.
    values:
        ``(S, D)`` value vectors.
    order:
        Optional permutation in which to stream elements; the result is
        order-invariant (a property test pins this down), which is exactly
        what makes FlashAttention tiling and SU-FA reordering legal.
    """
    scores = np.asarray(scores, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if scores.ndim != 1 or values.ndim != 2 or scores.shape[0] != values.shape[0]:
        raise ValueError("scores must be (S,) and values (S, D)")
    if order is None:
        order = np.arange(scores.shape[0])
    state = StreamingState(m=-np.inf, l=0.0, o=np.zeros(values.shape[1]))
    for idx in order:
        state.merge(float(scores[idx]), values[idx])
    if state.l == 0.0:
        raise ValueError("empty score stream")
    return state.o / state.l


def log_sum_exp(scores: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable ``log(sum(exp(scores)))``; used by fidelity metrics."""
    scores = np.asarray(scores, dtype=np.float64)
    m = np.max(scores, axis=axis, keepdims=True)
    return np.squeeze(m, axis=axis) + np.log(np.sum(np.exp(scores - m), axis=axis))
