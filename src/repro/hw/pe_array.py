"""Output-stationary systolic array timing model.

Both the KV-generation array and the two SU-FA arrays (Fig. 14) are modeled
as output-stationary systolic grids: an ``R x C`` array computes an
``(M, K) @ (K, N)`` product by tiling outputs into ``ceil(M/R) * ceil(N/C)``
passes, each streaming the K dimension plus a fill/drain latency of
``R + C - 2`` cycles.  Utilization reports how much of the array the tile
shapes actually occupied, which drives the PE-utilization claims of Sec. V-C.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MatmulTiming:
    """Cycle estimate of one matmul pass through a systolic array."""

    cycles: float
    macs: float
    utilization: float


@dataclass(frozen=True)
class SystolicArray:
    """An R x C output-stationary multiply-accumulate grid."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("array dimensions must be positive")

    @property
    def n_pes(self) -> int:
        return self.rows * self.cols

    def matmul_cycles(self, m: int, k: int, n: int) -> MatmulTiming:
        """Cycles to compute ``(m,k) @ (k,n)`` with output tiling.

        Each output tile of shape ``(<=rows, <=cols)`` streams ``k`` operand
        pairs; consecutive tiles overlap their skew (pipelined streaming), so
        the fill/drain latency ``rows + cols - 2`` is paid once per call.
        """
        if min(m, k, n) < 1:
            raise ValueError("matmul dimensions must be positive")
        row_tiles = -(-m // self.rows)
        col_tiles = -(-n // self.cols)
        cycles = float(row_tiles * col_tiles * k + self.rows + self.cols - 2)
        macs = float(m) * k * n
        peak_macs = cycles * self.n_pes
        return MatmulTiming(cycles=cycles, macs=macs, utilization=macs / peak_macs)

    def stream_cycles(self, n_elements: int, elements_per_cycle: float | None = None) -> float:
        """Cycles to stream ``n_elements`` through the array one-per-lane.

        Used for elementwise phases (shift-add streams in the DLZS array)
        where each of the ``rows`` lanes consumes ``elements_per_cycle``
        (default: ``cols``, the row width) items per cycle.
        """
        if n_elements < 0:
            raise ValueError("element count cannot be negative")
        per_cycle = elements_per_cycle if elements_per_cycle is not None else float(self.cols)
        lanes = float(self.rows) * per_cycle
        return n_elements / lanes if lanes else float("inf")
