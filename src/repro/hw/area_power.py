"""Area and power accounting for the SOFA accelerator (Tables III and IV).

Table III's module inventory is encoded as spec records; the totals and the
Table IV power split (core / memory interface / DRAM at the 59.8 GB/s
operating point) are derived from them plus the DRAM model.  The records
also drive the per-module energy attribution of the accelerator reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.dram import DramChannelModel


@dataclass(frozen=True)
class ModuleSpec:
    """One row of Table III: a hardware module's parameters, area and power."""

    name: str
    parameters: str
    area_mm2: float
    power_w: float


#: Table III rows (TSMC 28 nm @ 1 GHz).
SOFA_MODULES: tuple[ModuleSpec, ...] = (
    ModuleSpec("dlzs_prediction", "128x32 shift PEs + 128 LZEs", 0.351, 0.02905),
    ModuleSpec("sads", "128 16-4 sort cores + 128 clipping units", 0.679, 0.11279),
    ModuleSpec("kv_generation", "128x4 16-bit PEs", 0.875, 0.14621),
    ModuleSpec("sufa", "128x4 16-bit PEs + 128 EXP + 128 DIV", 3.012, 0.48512),
    ModuleSpec("memory", "192KB token + 96KB weight + 28KB temp SRAM", 0.497, 0.17023),
    ModuleSpec("scheduler_others", "RASS FSM, controller, routers", 0.280, 0.00645),
)

#: Table IV operating point.
TABLE_IV_BANDWIDTH_BYTES_PER_S = 59.8e9


def total_area_mm2() -> float:
    """Total core area (paper: 5.69 mm^2)."""
    return sum(m.area_mm2 for m in SOFA_MODULES)


def total_core_power_w() -> float:
    """Total core power (paper: ~0.95 W)."""
    return sum(m.power_w for m in SOFA_MODULES)


def module_power_shares() -> dict[str, float]:
    """Fraction of core power per module."""
    total = total_core_power_w()
    return {m.name: m.power_w / total for m in SOFA_MODULES}


def lp_area_fraction() -> float:
    """Area share of the LP mechanism (DLZS + SADS); paper: ~18%."""
    lp = sum(m.area_mm2 for m in SOFA_MODULES if m.name in ("dlzs_prediction", "sads"))
    return lp / total_area_mm2()


def lp_power_fraction() -> float:
    """Power share of the LP mechanism; paper: ~15%."""
    lp = sum(m.power_w for m in SOFA_MODULES if m.name in ("dlzs_prediction", "sads"))
    return lp / total_core_power_w()


def table_iv_power_breakdown() -> dict[str, float]:
    """Core / interface / DRAM / overall watts at 59.8 GB/s (Table IV)."""
    dram = DramChannelModel()
    split = dram.power_at_bandwidth(TABLE_IV_BANDWIDTH_BYTES_PER_S)
    core = total_core_power_w()
    return {
        "core_w": core,
        "interface_w": split["interface_w"],
        "dram_w": split["dram_w"],
        "overall_w": core + split["interface_w"] + split["dram_w"],
    }
