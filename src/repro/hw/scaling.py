"""Technology scaling rules used to normalize published accelerator numbers.

Table II of the paper scales every comparison point to 28 nm / 1.0 V CMOS
using the classical Dennard-style relations cited from [61], [65]:

    s = tech_nm / 28
    frequency   scales as  f * s**2        (f ∝ 1/s²)
    core power  scales as  P * (1/s) * (1.0 / Vdd)**2
    area        scales as  A / s**2

(i.e. a 40 nm design at 1 GHz is credited with the frequency it would reach
at 28 nm, its power shrinks linearly with feature size and quadratically
with voltage, and its area shrinks with the square of feature size).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TechnologyNode:
    """A CMOS process point: feature size in nm and supply voltage."""

    feature_nm: float
    vdd: float = 1.0

    def __post_init__(self) -> None:
        if self.feature_nm <= 0:
            raise ValueError("feature size must be positive")
        if self.vdd <= 0:
            raise ValueError("Vdd must be positive")


REFERENCE_NODE = TechnologyNode(feature_nm=28.0, vdd=1.0)


def scale_factor(node: TechnologyNode, target: TechnologyNode = REFERENCE_NODE) -> float:
    """The paper's ``s`` = source feature size over target feature size."""
    return node.feature_nm / target.feature_nm


def scale_frequency(freq_hz: float, node: TechnologyNode,
                    target: TechnologyNode = REFERENCE_NODE) -> float:
    """Frequency normalization: f ∝ 1/s² (faster at smaller nodes)."""
    s = scale_factor(node, target)
    return freq_hz * s**2


def scale_power(power_w: float, node: TechnologyNode,
                target: TechnologyNode = REFERENCE_NODE) -> float:
    """Core power normalization: P ∝ (1/s)(1/Vdd²) toward the target node."""
    s = scale_factor(node, target)
    return power_w * (1.0 / s) * (target.vdd / node.vdd) ** 2


def scale_area(area_mm2: float, node: TechnologyNode,
               target: TechnologyNode = REFERENCE_NODE) -> float:
    """Area normalization: A ∝ s² (shrinks quadratically)."""
    s = scale_factor(node, target)
    return area_mm2 / s**2


def scale_energy_per_op(energy_j: float, node: TechnologyNode,
                        target: TechnologyNode = REFERENCE_NODE) -> float:
    """Energy/op scaling: E = P/f ∝ (1/s)(1/Vdd²) / (1/s²) = s³... simplified.

    Following the same relations, energy per operation scales as
    ``power_scale / frequency_scale``; for the default voltages that is
    ``1/s³`` moving from a larger node to 28 nm.
    """
    s = scale_factor(node, target)
    power_scale = (1.0 / s) * (target.vdd / node.vdd) ** 2
    freq_scale = s**2
    return energy_j * power_scale / freq_scale


def scale_to_28nm(
    *, freq_hz: float, power_w: float, area_mm2: float, node: TechnologyNode
) -> dict[str, float]:
    """Normalize a (frequency, power, area) triple to 28 nm / 1.0 V."""
    return {
        "freq_hz": scale_frequency(freq_hz, node),
        "power_w": scale_power(power_w, node),
        "area_mm2": scale_area(area_mm2, node),
    }
