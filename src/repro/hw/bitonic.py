"""Bit-accurate model of the iterative 16-to-4 bitonic sorting core (Fig. 13).

The SADS engine's sorter is a fully parallel 16-input bitonic network pruned
to produce only the top-4 in order (the 3rd..k-th order is inconsequential,
so the final ordering stages for the losing lanes are removed).  Streaming
works iteratively: each round takes 12 fresh inputs, merges them with the 4
best values carried from the previous round, and emits a new best-4.

This module executes the network comparator by comparator, so it serves as a
golden model for the RTL: the comparator count is exact (not an estimate),
and tests cross-validate the streamed result against a software sort.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _bitonic_sort_network(n: int) -> list[tuple[int, int]]:
    """Comparator list (i, j) of a full bitonic sorting network for n = 2^m.

    Standard construction: for each stage k = 2, 4, ..., n and substage
    j = k/2, k/4, ..., 1, lanes i and i^j compare; direction follows
    ``i & k`` (ascending blocks alternate), normalized here to sort
    descending overall by swapping the emit order at the call site.
    """
    if n & (n - 1) or n < 2:
        raise ValueError("bitonic network size must be a power of two >= 2")
    comparators: list[tuple[int, int]] = []
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            for i in range(n):
                partner = i ^ j
                if partner > i:
                    if (i & k) == 0:
                        comparators.append((i, partner))
                    else:
                        comparators.append((partner, i))
            j //= 2
        k *= 2
    return comparators


@dataclass
class SortStep:
    """Result of one streaming round."""

    best: np.ndarray
    best_indices: np.ndarray
    comparators_fired: int


class IterativeBitonicSorter:
    """The 16-to-4 streaming sorter: 12 fresh inputs + 4 carried per round.

    Parameters
    ----------
    width:
        Network width (paper: 16); must be a power of two.
    keep:
        Values carried between rounds and emitted at the end (paper: 4).
    """

    def __init__(self, width: int = 16, keep: int = 4):
        if keep >= width:
            raise ValueError("keep must be smaller than the network width")
        self.width = width
        self.keep = keep
        self._network = _bitonic_sort_network(width)
        self.reset()

    @property
    def fresh_per_round(self) -> int:
        return self.width - self.keep

    @property
    def comparators_per_round(self) -> int:
        """Exact comparator count of the (unpruned) network per round."""
        return len(self._network)

    def reset(self) -> None:
        self._best = np.full(self.keep, -np.inf)
        self._best_idx = np.full(self.keep, -1, dtype=np.int64)
        self.total_comparators = 0

    def _sort_round(self, values: np.ndarray, indices: np.ndarray) -> SortStep:
        """Run one pass of the network (descending order at lane 0)."""
        vals = values.copy()
        idxs = indices.copy()
        fired = 0
        for lo, hi in self._network:
            fired += 1
            if vals[lo] < vals[hi]:  # keep the larger value in the low lane
                vals[lo], vals[hi] = vals[hi], vals[lo]
                idxs[lo], idxs[hi] = idxs[hi], idxs[lo]
        self.total_comparators += fired
        return SortStep(
            best=vals[: self.keep],
            best_indices=idxs[: self.keep],
            comparators_fired=fired,
        )

    def push(self, values: np.ndarray, indices: np.ndarray) -> SortStep:
        """Stream up to ``fresh_per_round`` new (value, index) pairs.

        Short final rounds pad with -inf (the hardware feeds the clipper's
        zero-substituted lanes, which can never win).
        """
        values = np.asarray(values, dtype=np.float64)
        indices = np.asarray(indices, dtype=np.int64)
        if values.shape != indices.shape or values.ndim != 1:
            raise ValueError("values and indices must be matching 1-D arrays")
        if values.size > self.fresh_per_round:
            raise ValueError(
                f"at most {self.fresh_per_round} fresh inputs per round"
            )
        lane_vals = np.full(self.width, -np.inf)
        lane_idx = np.full(self.width, -1, dtype=np.int64)
        lane_vals[: self.keep] = self._best
        lane_idx[: self.keep] = self._best_idx
        lane_vals[self.keep : self.keep + values.size] = values
        lane_idx[self.keep : self.keep + values.size] = indices
        step = self._sort_round(lane_vals, lane_idx)
        self._best = step.best.copy()
        self._best_idx = step.best_indices.copy()
        return step

    def top(self) -> tuple[np.ndarray, np.ndarray]:
        """Current best-``keep`` (values, original indices), descending."""
        valid = self._best_idx >= 0
        return self._best[valid], self._best_idx[valid]

    def stream_topk(self, values: np.ndarray) -> tuple[np.ndarray, int]:
        """Convenience: stream a whole vector, return top-``keep`` indices.

        Returns the winning original indices (descending value order) and
        the total comparators fired - the exact hardware cost the SADS
        engine's analytic model approximates.
        """
        values = np.asarray(values, dtype=np.float64)
        self.reset()
        for start in range(0, values.size, self.fresh_per_round):
            chunk = values[start : start + self.fresh_per_round]
            self.push(chunk, np.arange(start, start + chunk.size))
        _, idx = self.top()
        return idx, self.total_comparators
