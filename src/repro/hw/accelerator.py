"""Top-level SOFA accelerator model (paper Fig. 11).

:class:`SofaAccelerator` executes one attention workload through the engine
models under the cross-stage tiled pipeline, producing an
:class:`AcceleratorReport` with cycles, per-module energy, DRAM traffic and
PE utilization.  :meth:`run_whole_row_baseline` executes the same workload
the pre-SOFA way (serial stages, Pre-Atten/Atten spilled to DRAM, full KV
generation, classic FA in the formal stage) so every speedup/energy ratio in
the experiments comes from two runs of the *same* machinery with different
dataflows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SofaConfig
from repro.hw.dram import DramChannelModel
from repro.hw.energy import EnergyModel
from repro.hw.scheduler.controller import StageLatencies, TiledPipelineController
from repro.hw.scheduler.rass import naive_schedule, rass_schedule
from repro.hw.sram import sofa_srams
from repro.hw.units import DlzsEngine, KvGenerationUnit, SadsEngine, SufaEngine


@dataclass
class WorkloadShape:
    """Geometry of one attention-head workload fed to the accelerator.

    ``selected_per_row`` is the top-k count; ``unique_selected`` the number
    of distinct tokens selected across the T parallel queries (drives
    on-demand KV generation); ``assurance_fraction`` the measured SU-FA
    Max-Ensuring trigger rate from the functional pipeline.
    """

    n_queries: int
    seq_len: int
    hidden: int
    head_dim: int
    selected_per_row: int
    unique_selected: int
    assurance_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.unique_selected > self.seq_len:
            raise ValueError("unique selected tokens cannot exceed the sequence length")
        if not 0 < self.selected_per_row <= self.seq_len:
            raise ValueError("selected_per_row out of range")


@dataclass
class AcceleratorReport:
    """Cycles/energy/traffic accounting of one accelerator run.

    Units: cycles (at ``clock_hz``), joules, bytes.  ``energy_core_j`` maps
    module name -> compute energy; memory energy is reported separately as
    SRAM and DRAM (interface + device).
    """

    cycles: float
    clock_hz: float
    energy_core_j: dict[str, float]
    sram_energy_j: float
    dram_interface_energy_j: float
    dram_device_energy_j: float
    dram_bytes: float
    kv_vector_loads: int
    pipeline_speedup: float
    effective_gops: float

    @property
    def latency_s(self) -> float:
        return self.cycles / self.clock_hz

    @property
    def total_energy_j(self) -> float:
        return (
            sum(self.energy_core_j.values())
            + self.sram_energy_j
            + self.dram_interface_energy_j
            + self.dram_device_energy_j
        )

    @property
    def throughput_gops(self) -> float:
        """Dense-equivalent throughput: credited work over latency."""
        return self.effective_gops / self.latency_s if self.latency_s else 0.0

    @property
    def average_power_w(self) -> float:
        return self.total_energy_j / self.latency_s if self.latency_s else 0.0

    @property
    def energy_efficiency_gops_per_w(self) -> float:
        power = self.average_power_w
        return self.throughput_gops / power if power else 0.0


def _effective_gops_of(shape: WorkloadShape) -> float:
    """Dense-equivalent giga-operations of the attention computation.

    Following the paper's throughput convention, effective work is the dense
    attention the accelerator *replaces*: 2 matmuls of (T x S x D) at 2 ops
    per MAC.  Sparse execution does less raw work but gets credited with the
    dense total - that is how ">1 PE-peak" effective GOPS arise in Table II.
    """
    t, s, d = shape.n_queries, shape.seq_len, shape.head_dim
    return 2 * 2.0 * t * s * d / 1e9


class SofaAccelerator:
    """The SOFA accelerator with Table III configuration.

    ``query_parallelism`` is the hardware lane count (paper: 128 queries in
    parallel); workloads with more queries execute in waves, which is what
    keeps the per-wave tile state inside the 28 KB temp SRAM.
    """

    QUERY_PARALLELISM = 128

    def __init__(
        self,
        clock_hz: float = 1e9,
        config: SofaConfig | None = None,
        energy: EnergyModel | None = None,
    ):
        self.clock_hz = clock_hz
        self.config = config or SofaConfig()
        energy = energy or EnergyModel()
        self.dlzs = DlzsEngine(energy=energy)
        self.sads = SadsEngine(energy=energy)
        self.kv_gen = KvGenerationUnit(energy=energy)
        self.sufa = SufaEngine(energy=energy)
        self.controller = TiledPipelineController()
        self.energy = energy

    # ------------------------------------------------------------------ SOFA
    def run(
        self,
        shape: WorkloadShape,
        kv_requirements: list[set[int]] | None = None,
        kv_buffer_pairs: int = 64,
    ) -> AcceleratorReport:
        """Execute one workload through the cross-stage tiled pipeline.

        ``kv_requirements`` (per-query selected KV id sets) activates the
        RASS scheduler for KV load counting; when omitted, each unique
        selected KV pair is charged one load (the RASS ideal).
        """
        cfg = self.config
        bc = cfg.tile_cols
        n_tiles = -(-shape.seq_len // bc)
        total_queries = shape.n_queries
        n_waves = -(-total_queries // self.QUERY_PARALLELISM)
        t = min(total_queries, self.QUERY_PARALLELISM)  # queries per wave
        d, h = shape.head_dim, shape.hidden
        k_per_tile = max(shape.selected_per_row // n_tiles, 1)

        srams = sofa_srams()
        dram = DramChannelModel(clock_hz=self.clock_hz)

        # Per-tile stage latencies (one wave of <=128 queries) ---------------------
        pred_keys = self.dlzs.predict_keys(bc, h, d)
        pred_attn = self.dlzs.predict_attention(t, d, bc)
        sort_rep = self.sads.sort_tile(t, bc)
        exch_rep = self.sads.exchange_rounds(t, cfg.sads.adjust_rounds, bc)
        # On-demand KV generation batches all selected tokens through the
        # 128-row array (per-tile trickles would idle most rows); its cycles
        # and energy amortize evenly across tiles.
        kv_total = self.kv_gen.generate(shape.unique_selected, h, d)
        kv_rep = type(kv_total)(
            cycles=kv_total.cycles / n_tiles,
            energy_j=kv_total.energy_j / n_tiles,
            ops=kv_total.ops,
        )
        sufa_rep = self.sufa.attend_tile(
            t, k_per_tile, d,
            assurance_fraction=shape.assurance_fraction,
            descending=cfg.sufa.descending,
        )

        # Wave amortization: key prediction and on-demand KV generation run
        # once (keys are shared by all query waves); attention prediction,
        # sorting and SU-FA repeat every wave.
        first_wave = StageLatencies(
            predict=pred_keys.cycles + pred_attn.cycles,
            sort=sort_rep.cycles + exch_rep.cycles,
            formal=kv_rep.cycles + sufa_rep.cycles,
        )
        steady_wave = StageLatencies(
            predict=pred_attn.cycles,
            sort=sort_rep.cycles + exch_rep.cycles,
            formal=sufa_rep.cycles,
        )
        timing = self.controller.uniform_timing(first_wave, n_tiles)
        steady = self.controller.uniform_timing(steady_wave, n_tiles)
        epi = self.sufa.epilogue(t, d)
        cycles = (
            timing.pipelined_cycles
            + (n_waves - 1) * steady.pipelined_cycles
            + n_waves * epi.cycles
        )

        # SRAM residency & traffic -------------------------------------------------
        srams["token"].allocate("tile_tokens", bc * h)  # 8-bit tokens
        srams["weight"].allocate("wk_lz", int(h * d * 0.5))  # 4-bit LZ codes
        srams["weight"].allocate("wv", h * d)
        # Pre-Atten tiles are stored at prediction precision (8-bit estimates).
        srams["temp"].allocate("pre_atten_tile", t * bc * 1)
        srams["temp"].allocate("sufa_state", t * (d + 2) * 2)
        srams["token"].read(n_tiles * bc * h)
        srams["temp"].write(n_tiles * t * bc * 1)
        srams["temp"].read(n_tiles * t * bc * 1)

        # DRAM traffic: tokens in (8-bit), Wk LZ codes, Wv, Q in, O out.
        dram.transfer(shape.seq_len * h * 1.0)
        dram.transfer(h * d * 0.5 + h * d * 1.0)
        dram.transfer(total_queries * d * 2.0)
        dram.transfer(total_queries * d * 2.0)

        # KV scheduling ------------------------------------------------------------
        if kv_requirements is not None:
            schedule = rass_schedule(kv_requirements, kv_buffer_pairs)
            kv_loads = schedule.vector_loads
        else:
            kv_loads = 2 * shape.unique_selected
        # selected tokens re-read for on-demand generation (8-bit rows)
        dram.transfer(shape.unique_selected * h * 1.0)

        energy_core = {
            "dlzs_prediction": n_tiles
            * (pred_keys.energy_j + n_waves * pred_attn.energy_j),
            "sads": n_waves * n_tiles * (sort_rep.energy_j + exch_rep.energy_j),
            "kv_generation": n_tiles * kv_rep.energy_j,
            "sufa": n_waves * (n_tiles * sufa_rep.energy_j + epi.energy_j),
        }
        sram_energy = sum(b.total_energy_j for b in srams.values())
        return AcceleratorReport(
            cycles=cycles,
            clock_hz=self.clock_hz,
            energy_core_j=energy_core,
            sram_energy_j=sram_energy,
            dram_interface_energy_j=dram.interface_energy_j,
            dram_device_energy_j=dram.dram_energy_j,
            dram_bytes=dram.transferred_bytes,
            kv_vector_loads=kv_loads,
            pipeline_speedup=timing.speedup,
            effective_gops=_effective_gops_of(shape),
        )

    # -------------------------------------------------------------- baseline
    def run_whole_row_baseline(
        self,
        shape: WorkloadShape,
        kv_requirements: list[set[int]] | None = None,
        kv_buffer_pairs: int = 64,
        sram_budget_bytes: float = 2 * 2**20,
    ) -> AcceleratorReport:
        """The pre-SOFA dataflow on the same hardware resources.

        Differences from :meth:`run`: (1) stages serialize across the whole
        row; (2) the (T, S) Pre-Atten matrix spills to DRAM when it exceeds
        the SRAM budget, and the formal-stage Atten matrix round-trips as
        well; (3) KV generation is *not* on demand - every token is
        projected; (4) the formal stage pays classic-FA max bookkeeping
        (modeled as a 100% assurance fraction); (5) naive KV scheduling.
        """
        cfg = self.config
        bc = cfg.tile_cols
        n_tiles = -(-shape.seq_len // bc)
        total_queries = shape.n_queries
        n_waves = -(-total_queries // self.QUERY_PARALLELISM)
        t = min(total_queries, self.QUERY_PARALLELISM)
        d, h = shape.head_dim, shape.hidden
        k_per_tile = max(shape.selected_per_row // n_tiles, 1)

        dram = DramChannelModel(clock_hz=self.clock_hz)
        srams = sofa_srams()

        pred_keys = self.dlzs.predict_keys(bc, h, d)
        pred_attn = self.dlzs.predict_attention(t, d, bc)
        sort_rep = self.sads.sort_tile(t, shape.seq_len)  # whole-row sort
        # Full (not on-demand) KV generation for every token, batched.
        kv_total = self.kv_gen.generate(shape.seq_len, h, d)
        kv_rep = type(kv_total)(
            cycles=kv_total.cycles / n_tiles,
            energy_j=kv_total.energy_j / n_tiles,
            ops=kv_total.ops,
        )
        sufa_rep = self.sufa.attend_tile(
            t, k_per_tile, d, assurance_fraction=1.0, descending=False
        )
        epi = self.sufa.epilogue(t, d)

        # Serial stage execution: every stage completes over all tiles before
        # the next starts; key prediction and full KV generation amortize
        # across waves, everything else repeats per wave.
        cycles = (
            n_tiles * pred_keys.cycles
            + n_waves * n_tiles * pred_attn.cycles
            + n_waves * sort_rep.cycles
            + n_tiles * kv_rep.cycles
            + n_waves * (n_tiles * sufa_rep.cycles + epi.cycles)
        )

        # DRAM: inputs as in SOFA ...
        dram.transfer(shape.seq_len * h * 1.0)
        dram.transfer(2 * h * d * 1.0)  # full-precision Wk and Wv (no LZ codes)
        dram.transfer(total_queries * d * 2.0)
        dram.transfer(total_queries * d * 2.0)
        # ... plus the whole-row intermediates when they exceed SRAM:
        pre_atten_bytes = float(total_queries) * shape.seq_len * 1.0  # 8-bit
        atten_bytes = float(total_queries) * shape.selected_per_row * 2.0
        if pre_atten_bytes + atten_bytes > sram_budget_bytes:
            dram.transfer(2 * pre_atten_bytes)
            dram.transfer(2 * atten_bytes)
        # Full KV generation streams every token's K and V at 16-bit.
        dram.transfer(2 * shape.seq_len * d * 2.0)

        if kv_requirements is not None:
            schedule = naive_schedule(kv_requirements, kv_buffer_pairs)
            kv_loads = schedule.vector_loads
        else:
            kv_loads = 2 * total_queries * shape.selected_per_row  # no reuse
        # Traditional flow: selected K/V vectors are fetched from DRAM per
        # query (16-bit), with reuse limited to the naive schedule's buffer.
        dram.transfer(float(kv_loads) * d * 2.0)

        cycles += dram.transferred_bytes / 64.0  # serialized spill traffic stalls

        energy_core = {
            "dlzs_prediction": n_tiles
            * (pred_keys.energy_j + n_waves * pred_attn.energy_j),
            "sads": n_waves * sort_rep.energy_j,
            "kv_generation": n_tiles * kv_rep.energy_j,
            "sufa": n_waves * (n_tiles * sufa_rep.energy_j + epi.energy_j),
        }
        srams["token"].read(n_tiles * bc * h)
        sram_energy = sum(b.total_energy_j for b in srams.values())
        return AcceleratorReport(
            cycles=cycles,
            clock_hz=self.clock_hz,
            energy_core_j=energy_core,
            sram_energy_j=sram_energy,
            dram_interface_energy_j=dram.interface_energy_j,
            dram_device_energy_j=dram.dram_energy_j,
            dram_bytes=dram.transferred_bytes,
            kv_vector_loads=kv_loads,
            pipeline_speedup=1.0,
            effective_gops=_effective_gops_of(shape),
        )


def shape_from_pipeline(
    n_queries: int,
    seq_len: int,
    hidden: int,
    head_dim: int,
    selected: np.ndarray,
    assurance_triggers: int,
) -> WorkloadShape:
    """Build a :class:`WorkloadShape` from a functional pipeline result."""
    selected = np.asarray(selected)
    total_steps = selected.size if selected.size else 1
    return WorkloadShape(
        n_queries=n_queries,
        seq_len=seq_len,
        hidden=hidden,
        head_dim=head_dim,
        selected_per_row=selected.shape[1],
        unique_selected=int(np.unique(selected).size),
        assurance_fraction=min(assurance_triggers / total_steps, 1.0),
    )
