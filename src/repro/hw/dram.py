"""Off-chip DRAM channel model with the paper's interface/DRAM power split.

SOFA uses HBM2 with 16 channels @ 2 GHz (Table III).  Table IV anchors the
power model: streaming at 59.8 GB/s draws 0.53 W in the memory interface and
1.92 W in the DRAM devices - i.e. ~8.9 pJ/B interface and ~32.1 pJ/B DRAM,
squarely inside the 5-20 pJ/bit DRAM range the paper cites from [44].

The model converts byte counts into transfer cycles (bandwidth-limited) and
energy (per-byte), and reports the two power rails separately so Table IV is
reproducible from first principles.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Table IV anchor: power at 59.8 GB/s streaming.
_ANCHOR_BW_BYTES_PER_S = 59.8e9
_ANCHOR_INTERFACE_W = 0.53
_ANCHOR_DRAM_W = 1.92


@dataclass
class DramChannelModel:
    """An aggregate off-chip memory with fixed peak bandwidth.

    Attributes
    ----------
    peak_bandwidth_bytes_per_s:
        Aggregate sustained bandwidth (HBM2 x16 channels; the paper's traffic
        runs far below peak, at the 59.8 GB/s operating point).
    clock_hz:
        Accelerator clock used to convert transfer time to cycles.
    """

    peak_bandwidth_bytes_per_s: float = 256e9
    clock_hz: float = 1e9
    transferred_bytes: float = 0.0

    @property
    def interface_energy_per_byte(self) -> float:
        return _ANCHOR_INTERFACE_W / _ANCHOR_BW_BYTES_PER_S

    @property
    def dram_energy_per_byte(self) -> float:
        return _ANCHOR_DRAM_W / _ANCHOR_BW_BYTES_PER_S

    def transfer(self, n_bytes: float) -> float:
        """Record a transfer; returns the cycles it occupies the channel."""
        if n_bytes < 0:
            raise ValueError("transfer size cannot be negative")
        self.transferred_bytes += n_bytes
        seconds = n_bytes / self.peak_bandwidth_bytes_per_s
        return seconds * self.clock_hz

    # -------------------------------------------------------------- reports
    @property
    def interface_energy_j(self) -> float:
        return self.transferred_bytes * self.interface_energy_per_byte

    @property
    def dram_energy_j(self) -> float:
        return self.transferred_bytes * self.dram_energy_per_byte

    @property
    def total_energy_j(self) -> float:
        return self.interface_energy_j + self.dram_energy_j

    def power_at_bandwidth(self, bytes_per_s: float) -> dict[str, float]:
        """Steady-state power split at a given streaming rate (Table IV)."""
        return {
            "interface_w": bytes_per_s * self.interface_energy_per_byte,
            "dram_w": bytes_per_s * self.dram_energy_per_byte,
        }

    def reset_counters(self) -> None:
        self.transferred_bytes = 0.0
