"""Per-operation energy tables with technology scaling.

Baseline energies follow the widely-cited 45 nm figures from Horowitz's
ISSCC'14 survey (the paper cites the same source [44] for its DRAM-vs-SRAM
energy argument): integer adds cost fractions of a picojoule, multiplies a
few picojoules, SRAM ~0.1 pJ/bit, DRAM 5-20 pJ/bit.  Exponential and divide
units are charged as small multiples of a multiply, consistent with the
iterative/piecewise implementations accelerators ship.

The :class:`EnergyModel` scales everything to a target node via
:mod:`repro.hw.scaling` and exposes one method - :meth:`op_energy` - used by
all engine models, so relative energies stay consistent across modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.scaling import TechnologyNode, scale_energy_per_op
from repro.numerics.complexity import OpCounter

#: 45 nm reference energies in joules per operation (INT datapath widths as
#: deployed by SOFA: 8-bit prediction ops, 16-bit formal ops).
_BASE_45NM: dict[str, float] = {
    "add": 0.05e-12,       # 16-bit integer add
    "compare": 0.05e-12,   # comparator ~ subtractor
    "shift": 0.02e-12,     # barrel shift, cheaper than an add
    "mul": 1.0e-12,        # 16-bit multiply
    "exp": 3.0e-12,        # piecewise exp unit ~ 3 multiplies
    "div": 2.0e-12,        # iterative divider ~ 2 multiplies
    "lzc": 0.02e-12,       # priority encoder
    "xor": 0.005e-12,      # single gate level
    "mem_read": 0.0,       # memory charged by SRAM/DRAM models instead
    "mem_write": 0.0,
}

_REFERENCE_45NM = TechnologyNode(feature_nm=45.0, vdd=1.0)


@dataclass(frozen=True)
class EnergyModel:
    """Energy per primitive operation at a given technology node.

    Parameters
    ----------
    node:
        Target process (default: the paper's TSMC 28 nm at 1.0 V).
    overrides:
        Optional per-op energy overrides in joules *at the target node* -
        used by calibration tests.
    """

    node: TechnologyNode = field(default_factory=lambda: TechnologyNode(28.0, 1.0))
    overrides: dict[str, float] = field(default_factory=dict)

    def op_energy(self, op: str) -> float:
        """Energy in joules of one ``op`` at the model's node."""
        if op in self.overrides:
            return self.overrides[op]
        try:
            base = _BASE_45NM[op]
        except KeyError:
            raise KeyError(f"unknown operation kind: {op!r}") from None
        return scale_energy_per_op(base, _REFERENCE_45NM, self.node)

    def counter_energy(self, ops: OpCounter) -> float:
        """Total joules of an operation tally."""
        return float(sum(self.op_energy(op) * n for op, n in ops))


#: Convenience singleton at the paper's node.
ENERGY_28NM = EnergyModel()
