"""The tiled & out-of-order computation controller (paper Fig. 11 block 8).

The controller turns per-tile stage latencies into end-to-end timing.  SOFA's
cross-stage tiling makes the three stages a classic 3-deep pipeline over Tc
tiles: while tile j runs the formal stage, tile j+1 sorts and tile j+2
predicts.  The whole-row baseline instead serializes the stages (each needs
the *entire* previous stage's output), so its latency is the plain sum.

The pipeline model:

    latency = fill + drain + sum over tiles of the bottleneck-stage latency

which reduces pipeline filling/draining to the first/last partial tiles -
the "reduced pipeline filling time" annotation of Fig. 6(b).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StageLatencies:
    """Per-tile latencies (cycles) of the three stages for one tile."""

    predict: float
    sort: float
    formal: float

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.predict, self.sort, self.formal)


@dataclass(frozen=True)
class PipelineTiming:
    """End-to-end timing report of a tiled execution.

    ``pipelined_cycles`` is the cross-stage tiled schedule; ``serial_cycles``
    is the whole-row baseline (stage barriers across *all* tiles).
    """

    pipelined_cycles: float
    serial_cycles: float
    n_tiles: int

    @property
    def speedup(self) -> float:
        return self.serial_cycles / self.pipelined_cycles if self.pipelined_cycles else 1.0


class TiledPipelineController:
    """Schedules per-tile stage work as a 3-stage pipeline."""

    def timing(self, tiles: list[StageLatencies]) -> PipelineTiming:
        """Compute pipelined vs serial cycles for a tile stream.

        The pipelined schedule is evaluated exactly with a dependency
        recurrence: stage s of tile j starts when stage s-1 of tile j and
        stage s of tile j-1 both finished (in-order, one unit per stage).
        """
        if not tiles:
            raise ValueError("need at least one tile")
        n_stages = 3
        finish = [[0.0] * n_stages for _ in range(len(tiles))]
        for j, tile in enumerate(tiles):
            lat = tile.as_tuple()
            for s in range(n_stages):
                ready_dep = finish[j][s - 1] if s > 0 else 0.0
                ready_unit = finish[j - 1][s] if j > 0 else 0.0
                finish[j][s] = max(ready_dep, ready_unit) + lat[s]
        pipelined = finish[-1][-1]

        serial = sum(sum(t.as_tuple()) for t in tiles)
        return PipelineTiming(
            pipelined_cycles=pipelined, serial_cycles=serial, n_tiles=len(tiles)
        )

    def uniform_timing(self, per_tile: StageLatencies, n_tiles: int) -> PipelineTiming:
        """Shortcut for identical tiles (the common steady-state case)."""
        if n_tiles < 1:
            raise ValueError("need at least one tile")
        return self.timing([per_tile] * n_tiles)
