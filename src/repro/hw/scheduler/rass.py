"""RASS: reuse-aware schedule scheme with KV out-of-order execution (Fig. 15).

Under dynamic sparsity, different queries select overlapping K/V sets.  A
naive execution walks each query's keys in index order through a small KV
buffer, reloading shared vectors that were evicted between phases.  RASS
instead groups KV pairs into phases greedily:

1. rank pending KV ids by how many *unscheduled* queries need them (most
   shared first) and seed the phase with them;
2. then pull in KV ids that are *exclusive* to the remaining unscheduled
   queries so those queries finish instead of lingering;
3. repeat until every (query, kv) requirement is covered.

Out-of-order accumulation is what makes this legal: SU-FA's streaming
softmax state is permutation-invariant, so a query can consume its KV pairs
in whatever order the phases provide.

The hardware realization (an FSM walking an ID buffer indexed by query
bitmasks) is modeled by :func:`build_id_buffer` so the paper's worked
example (bitmask 1000 -> {5, 6}) is checkable.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class ScheduleReport:
    """Outcome of a KV scheduling run.

    Attributes
    ----------
    phases:
        Per-phase lists of KV ids loaded in that phase.
    vector_loads:
        Total K *and* V vector loads (2 per KV pair load) - the Fig. 15
        metric ("24 vectors" naive vs "16 vectors" RASS).
    """

    phases: list[list[int]]
    vector_loads: int

    @property
    def kv_pair_loads(self) -> int:
        return self.vector_loads // 2


def _validate_requirements(requirements: list[set[int]]) -> None:
    if not requirements:
        raise ValueError("need at least one query")
    for i, req in enumerate(requirements):
        if not req:
            raise ValueError(f"query {i} selects no KV pairs")
        if any(kv < 0 for kv in req):
            raise ValueError("KV ids must be non-negative")


def naive_schedule(
    requirements: list[set[int]], capacity: int, retain_buffer: bool = False
) -> ScheduleReport:
    """Query-major execution through a ``capacity``-pair KV buffer.

    The default (``retain_buffer=False``) models the double-buffered
    streaming execution of Fig. 15's left panel: the next unfinished query's
    *complete* KV list is loaded fresh into the buffer (the previous phase's
    contents are consumed by the in-flight compute and not retained), while
    any other query's outstanding pairs that happen to be resident are served
    opportunistically.  On the paper's example this yields 12 pair loads
    (24 vectors).  Lists longer than ``capacity`` split into chunks.

    ``retain_buffer=True`` models a FIFO cache instead (pairs survive across
    queries until evicted), a stronger baseline that still loses to RASS.
    """
    _validate_requirements(requirements)
    if capacity < 1:
        raise ValueError("capacity must be >= 1")

    if retain_buffer:
        buffer: OrderedDict[int, None] = OrderedDict()
        phases: list[list[int]] = []
        current: list[int] = []
        loads = 0
        for req in requirements:
            for kv in sorted(req):
                if kv in buffer:
                    buffer.move_to_end(kv)
                    continue
                if len(buffer) >= capacity:
                    buffer.popitem(last=False)
                    phases.append(current)
                    current = []
                buffer[kv] = None
                current.append(kv)
                loads += 1
        if current:
            phases.append(current)
        return ScheduleReport(phases=phases, vector_loads=2 * loads)

    outstanding = [set(req) for req in requirements]
    phases = []
    loads = 0
    for i, req in enumerate(requirements):
        if not outstanding[i]:
            continue  # fully served by earlier phases
        pairs = sorted(req)
        for chunk_start in range(0, len(pairs), capacity):
            chunk = pairs[chunk_start : chunk_start + capacity]
            phases.append(list(chunk))
            loads += len(chunk)
            resident = set(chunk)
            for out in outstanding:
                out -= resident
    return ScheduleReport(phases=phases, vector_loads=2 * loads)


def rass_schedule(requirements: list[set[int]], capacity: int) -> ScheduleReport:
    """The greedy reuse-aware schedule of Fig. 15.

    Each KV id is loaded exactly once; phases are packed so shared ids go
    first and exclusive ids of pending queries complete them.  The schedule
    is valid by construction (every requirement is covered by the phase that
    contains its KV id) - a property test asserts this.
    """
    _validate_requirements(requirements)
    if capacity < 1:
        raise ValueError("capacity must be >= 1")

    pending: set[int] = set()
    for req in requirements:
        pending |= req
    remaining_queries = {i: set(req) for i, req in enumerate(requirements)}

    phases: list[list[int]] = []
    while pending:
        phase: list[int] = []

        def share_count(kv: int) -> tuple[int, int]:
            users = sum(1 for req in remaining_queries.values() if kv in req)
            return (-users, kv)  # most shared first, id for determinism

        # Step 1: seed with the most-shared pending ids.
        for kv in sorted(pending, key=share_count):
            if len(phase) >= capacity:
                break
            users = sum(1 for req in remaining_queries.values() if kv in req)
            if users >= 2:
                phase.append(kv)

        # Step 2: fill with ids exclusive to still-unscheduled queries.
        if len(phase) < capacity:
            for kv in sorted(pending, key=share_count):
                if len(phase) >= capacity:
                    break
                if kv in phase:
                    continue
                phase.append(kv)

        phase = phase[:capacity]
        for kv in phase:
            pending.discard(kv)
            for req in remaining_queries.values():
                req.discard(kv)
        remaining_queries = {i: req for i, req in remaining_queries.items() if req}
        phases.append(sorted(phase))

    loads = sum(len(p) for p in phases)
    return ScheduleReport(phases=phases, vector_loads=2 * loads)


#: The worked example of Fig. 15, as drawn in the naive-execution panel:
#: four queries over eight KV pairs with the overlap pattern that makes
#: naive execution load 12 pairs (24 vectors) and RASS only 8 (16 vectors).
FIG15_REQUIREMENTS: list[set[int]] = [
    {0, 1, 2, 3, 4, 5},
    {2, 3, 4, 5, 6, 7},
    {2, 3, 5, 6},
    {0, 1, 4, 7},
]
FIG15_BUFFER_CAPACITY = 6

#: The ID-buffer illustration of Fig. 15's scheduler panel uses a different
#: requirement pattern whose bitmask table is spelled out in the figure
#: (e.g. pairs {5, 6} are exclusive to q3, stored under bitmask "1000").
FIG15_ID_BUFFER_REQUIREMENTS: list[set[int]] = [
    {4, 7},
    {2, 3, 4, 7},
    {0, 1, 2, 3},
    {2, 3, 4, 5, 6, 7},
]


def build_id_buffer(requirements: list[set[int]]) -> dict[str, list[int]]:
    """The RASS ID buffer: query bitmask -> KV ids required by exactly it.

    Matches the hardware structure of Fig. 15: e.g. with 4 queries, buffer
    entry ``"1000"`` holds the ids needed exclusively by query 3 (MSB-first
    bitmask, as drawn in the paper).
    """
    _validate_requirements(requirements)
    n = len(requirements)
    table: dict[str, list[int]] = {}
    all_ids: set[int] = set()
    for req in requirements:
        all_ids |= req
    for kv in sorted(all_ids):
        bits = ["1" if kv in requirements[q] else "0" for q in range(n)]
        mask = "".join(reversed(bits))  # MSB = highest query index
        table.setdefault(mask, []).append(kv)
    return table


def schedule_is_valid(requirements: list[set[int]], report: ScheduleReport) -> bool:
    """Every (query, kv) requirement must appear in some phase's load set."""
    loaded: set[int] = set()
    for phase in report.phases:
        loaded |= set(phase)
    return all(req <= loaded for req in requirements)


@dataclass
class LaneLoadBalancer:
    """Greedy least-loaded assignment of work items to parallel lanes.

    RASS balances head-level work across the accelerator's parallel
    compute lanes: each incoming unit of work (a head's KV phase list)
    goes to the lane with the least outstanding work, and a lane's load
    drains as its phases retire.  This object is that accounting in
    isolation, so software consumers (``repro.cluster``'s
    ``least_loaded`` routing policy shards a request stream over engine
    worker processes with it) reuse the exact same rule the hardware
    scheduler applies to lanes.

    ``loads[i]`` is the outstanding (assigned minus retired) work of
    lane ``i`` in caller-chosen cost units.  Ties break toward the
    lowest lane index, so assignment is deterministic.
    """

    n_lanes: int
    loads: list[float] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.n_lanes < 1:
            raise ValueError("need at least one lane")
        if self.loads is None:
            self.loads = [0.0] * self.n_lanes
        elif len(self.loads) != self.n_lanes:
            raise ValueError("loads must have one entry per lane")

    def pick(self, cost: float, eligible: list[int] | None = None) -> int:
        """Assign ``cost`` units to the least-loaded (eligible) lane.

        ``eligible`` restricts the choice (the cluster excludes dead
        workers); ``None`` means every lane.  Returns the chosen lane.
        """
        if cost < 0:
            raise ValueError("cost must be non-negative")
        lanes = range(self.n_lanes) if eligible is None else eligible
        if not lanes:
            raise ValueError("no eligible lane")
        lane = min(lanes, key=lambda i: (self.loads[i], i))
        self.loads[lane] += cost
        return lane

    def retire(self, lane: int, cost: float) -> None:
        """Retire ``cost`` units previously assigned to ``lane``."""
        self.loads[lane] -= cost
        if self.loads[lane] < 0:
            # Guard against drift from mismatched assign/retire costs.
            self.loads[lane] = 0.0

    def ensure_lanes(self, n_lanes: int) -> None:
        """Grow the lane set to at least ``n_lanes`` (new lanes start idle).

        Software consumers with dynamic membership (the cluster's
        ``least_loaded`` routing registers reconnected workers under fresh
        ids) grow the accounting instead of rebuilding it, so surviving
        lanes keep their outstanding-load history.
        """
        if n_lanes > self.n_lanes:
            self.loads.extend([0.0] * (n_lanes - self.n_lanes))
            self.n_lanes = n_lanes

    @property
    def imbalance(self) -> float:
        """Max minus min outstanding load (0 = perfectly balanced)."""
        return max(self.loads) - min(self.loads)
