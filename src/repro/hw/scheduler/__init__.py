"""Scheduling layer: RASS KV reuse scheduling + the tiled pipeline controller."""

from repro.hw.scheduler.controller import PipelineTiming, TiledPipelineController
from repro.hw.scheduler.rass import (
    LaneLoadBalancer,
    naive_schedule,
    rass_schedule,
    ScheduleReport,
)

__all__ = [
    "LaneLoadBalancer",
    "naive_schedule",
    "rass_schedule",
    "ScheduleReport",
    "TiledPipelineController",
    "PipelineTiming",
]
