"""Cycle-approximate hardware model of the SOFA accelerator.

The package mirrors the block diagram of paper Fig. 11:

* :mod:`repro.hw.scaling` - technology scaling rules (Table II footnote).
* :mod:`repro.hw.energy` - per-operation energy tables (Horowitz-style,
  scaled to the target node).
* :mod:`repro.hw.sram` / :mod:`repro.hw.dram` - on-chip buffers and the
  HBM2 off-chip channel with interface/DRAM power split (Table IV).
* :mod:`repro.hw.pe_array` - output-stationary systolic array timing.
* :mod:`repro.hw.units` - the four engines: DLZS prediction, iterative SADS,
  KV generation and SU-FA.
* :mod:`repro.hw.scheduler` - RASS reuse-aware KV scheduling plus the tiled
  out-of-order pipeline controller.
* :mod:`repro.hw.accelerator` - the top-level :class:`SofaAccelerator`.
* :mod:`repro.hw.area_power` - Table III/IV area and power accounting.
"""

from repro.hw.accelerator import AcceleratorReport, SofaAccelerator
from repro.hw.energy import EnergyModel
from repro.hw.scaling import TechnologyNode, scale_to_28nm

__all__ = [
    "SofaAccelerator",
    "AcceleratorReport",
    "EnergyModel",
    "TechnologyNode",
    "scale_to_28nm",
]
