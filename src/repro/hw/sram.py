"""On-chip SRAM buffer model with capacity enforcement and energy accounting.

SOFA's buffers (Table III): 192 KB token SRAM, 96 KB weight SRAM, 28 KB temp
SRAM.  The model charges a CACTI-like per-byte access energy that grows with
the square root of capacity (bitline/wordline length scaling) anchored at the
paper's cited ~0.1 pJ/bit for small arrays, and enforces capacity: the tiled
dataflow argument of Fig. 6 is that per-tile working sets *fit*, and a model
that silently exceeded capacity would hide exactly the failure SOFA avoids.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class SramCapacityError(RuntimeError):
    """Raised when an allocation exceeds the buffer capacity."""


@dataclass
class SramBuffer:
    """A single on-chip buffer.

    Attributes
    ----------
    name / capacity_bytes:
        Identity and size.
    bytes_per_cycle:
        Port bandwidth (reads or writes per cycle).
    """

    name: str
    capacity_bytes: int
    bytes_per_cycle: float = 64.0
    _allocations: dict[str, int] = field(default_factory=dict)
    reads_bytes: float = 0.0
    writes_bytes: float = 0.0

    def access_energy_per_byte(self) -> float:
        """CACTI-style fit: 0.1 pJ/bit at 8 KB, growing with sqrt(capacity)."""
        base = 0.1e-12 * 8  # J per byte at the 8 KB anchor
        return base * float(np.sqrt(self.capacity_bytes / 8192.0))

    # ------------------------------------------------------------ allocation
    def allocate(self, tag: str, n_bytes: int) -> None:
        """Reserve ``n_bytes`` under ``tag``; raises when over capacity."""
        if n_bytes < 0:
            raise ValueError("allocation size cannot be negative")
        current = sum(self._allocations.values()) - self._allocations.get(tag, 0)
        if current + n_bytes > self.capacity_bytes:
            raise SramCapacityError(
                f"{self.name}: allocating {n_bytes} B under {tag!r} exceeds "
                f"capacity {self.capacity_bytes} B (in use: {current} B)"
            )
        self._allocations[tag] = n_bytes

    def free(self, tag: str) -> None:
        self._allocations.pop(tag, None)

    @property
    def bytes_in_use(self) -> int:
        return sum(self._allocations.values())

    # ---------------------------------------------------------------- access
    def read(self, n_bytes: float) -> float:
        """Record a read; returns the cycles it occupies the port."""
        if n_bytes < 0:
            raise ValueError("read size cannot be negative")
        self.reads_bytes += n_bytes
        return n_bytes / self.bytes_per_cycle

    def write(self, n_bytes: float) -> float:
        if n_bytes < 0:
            raise ValueError("write size cannot be negative")
        self.writes_bytes += n_bytes
        return n_bytes / self.bytes_per_cycle

    @property
    def total_energy_j(self) -> float:
        return (self.reads_bytes + self.writes_bytes) * self.access_energy_per_byte()

    def reset_counters(self) -> None:
        self.reads_bytes = 0.0
        self.writes_bytes = 0.0


def sofa_srams() -> dict[str, SramBuffer]:
    """The three buffers of Table III."""
    return {
        "token": SramBuffer("token", 192 * 1024),
        "weight": SramBuffer("weight", 96 * 1024),
        "temp": SramBuffer("temp", 28 * 1024),
    }
