"""The SU-FA engine: two systolic arrays, AP module, O-updating (Fig. 14).

Hardware configuration (Table III): 128 x 4 16-bit PEs (split across two
output-stationary systolic arrays), 128 EXP units and 128 DIV units.  The
folded auxiliary-process (AP) module sits between the arrays and operates in
two modes:

* **mode 0 (compute)** - subtract the cached Max and evaluate exp;
* **mode 1 (max update)** - compare the incoming score against the cached
  Max and update the register (activated at tile switches and on the first
  phase of a tile - the Max-Ensuring behaviour covering DLZS misprediction).

Per selected key the datapath performs: QK^T dot product (SA-1), one AP exp,
a P*V multiply-accumulate (SA-2) and the O-update; the epilogue divides by
the normalizer through the 128 DIV units.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.energy import EnergyModel
from repro.hw.pe_array import SystolicArray
from repro.hw.units.dlzs_engine import EngineReport
from repro.numerics.complexity import OpCounter


@dataclass
class SufaEngine:
    """Timing/energy model of the sorted-updating FlashAttention unit."""

    qk_array: SystolicArray = field(default_factory=lambda: SystolicArray(128, 2))
    sv_array: SystolicArray = field(default_factory=lambda: SystolicArray(128, 2))
    n_exp_units: int = 128
    n_div_units: int = 128
    energy: EnergyModel = field(default_factory=EnergyModel)

    def attend_tile(
        self,
        n_queries: int,
        keys_in_tile: int,
        head_dim: int,
        assurance_fraction: float = 0.0,
        descending: bool = True,
    ) -> EngineReport:
        """Process one tile: ``keys_in_tile`` selected keys per query row.

        ``assurance_fraction`` is the share of steps on which the
        Max-Ensuring circuit fired (mode 1 rescans); each such step pays one
        classic-FA rescale (1 exp + (1+D) muls + 1 compare).
        """
        if not 0.0 <= assurance_fraction <= 1.0:
            raise ValueError("assurance_fraction must be in [0, 1]")
        if keys_in_tile == 0:
            return EngineReport(cycles=0.0, energy_j=0.0, ops=OpCounter())
        t, kk, d = n_queries, keys_in_tile, head_dim

        qk = self.qk_array.matmul_cycles(t, d, kk)
        sv = self.sv_array.matmul_cycles(t, kk, d)
        exp_cycles = float(t) * kk / self.n_exp_units

        ops = OpCounter()
        macs = float(t) * d * kk
        ops.add_op("mul", 2 * macs)  # QK^T and P*V
        ops.add_op("add", 2 * macs)
        ops.add_op("exp", float(t) * kk)
        ops.add_op("add", float(t) * kk)  # l accumulation
        if not descending:
            ops.add_op("mul", float(t) * kk)  # ascending rescale of l
        assured = float(t) * kk * assurance_fraction
        ops.add_op("exp", assured)
        ops.add_op("mul", assured * (1 + d))
        ops.add_op("compare", assured)

        cycles = qk.cycles + exp_cycles + sv.cycles
        return EngineReport(cycles=cycles, energy_j=self.energy.counter_energy(ops), ops=ops)

    def epilogue(self, n_queries: int, head_dim: int) -> EngineReport:
        """Final ``O = diag(l)^-1 O`` divide through the DIV units."""
        ops = OpCounter()
        ops.add_op("div", float(n_queries) * head_dim)
        cycles = float(n_queries) * head_dim / self.n_div_units
        return EngineReport(cycles=cycles, energy_j=self.energy.counter_energy(ops), ops=ops)
