"""Engine models of the four SOFA compute units (paper Figs. 12-14).

Each engine converts a unit of algorithmic work (tile prediction, tile sort,
selected-KV generation, SU-FA tile update) into cycles + energy, using the
Table III hardware parameters (array shapes, unit counts) and the shared
:class:`~repro.hw.energy.EnergyModel`.
"""

from repro.hw.units.dlzs_engine import DlzsEngine
from repro.hw.units.kv_gen import KvGenerationUnit
from repro.hw.units.sads_engine import SadsEngine
from repro.hw.units.sufa_engine import SufaEngine

__all__ = ["DlzsEngine", "SadsEngine", "KvGenerationUnit", "SufaEngine"]
