"""The high-parallel flexible-input SADS sorting engine (paper Fig. 13).

Hardware configuration (Table III): 128 iterative 16-to-4 bitonic sort cores
plus 128 clipping units - one (sorter, clipper) lane per parallel query row.
Each round a core accepts 12 fresh inputs, merges them with the 4 best
carried values, and emits 4 sorted outputs; the clipping module suppresses
candidates below ``max(top_margin, low_bound)`` where ``top_margin =
running_max - r`` and ``low_bound`` is the current minimum of the output
buffer.  Clipped values are zero-substituted, removing comparator switching
activity - the engine charges them a single threshold comparison only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hw.energy import EnergyModel
from repro.hw.units.dlzs_engine import EngineReport
from repro.numerics.complexity import OpCounter


@dataclass
class SadsEngine:
    """Timing/energy model of the iterative SADS unit."""

    n_cores: int = 128
    sorter_width: int = 16
    sorter_keep: int = 4
    energy: EnergyModel = field(default_factory=EnergyModel)

    @property
    def fresh_per_round(self) -> int:
        return self.sorter_width - self.sorter_keep

    def comparators_per_round(self) -> int:
        """Pruned bitonic comparator count (only top-4 need full order)."""
        stages = int(np.log2(self.sorter_width))
        full = (self.sorter_width // 2) * stages * (stages + 1) // 2
        return max(full * stages // (stages + 1), 1)

    def sort_tile(
        self,
        n_rows: int,
        tile_cols: int,
        survivors_fraction: float = 1.0,
    ) -> EngineReport:
        """Sort one (T x Bc) prediction tile across the core array.

        ``survivors_fraction`` is the post-clipping share of candidates that
        actually enter the bitonic network (the clipper's power win); every
        element still pays its threshold comparison.
        """
        if not 0.0 <= survivors_fraction <= 1.0:
            raise ValueError("survivors_fraction must be in [0, 1]")
        survivors = tile_cols * survivors_fraction
        rounds_per_row = -(-int(np.ceil(survivors)) // self.fresh_per_round) if survivors else 0
        waves = -(-n_rows // self.n_cores)  # rows beyond 128 serialize
        cycles = float(waves * max(rounds_per_row, 1))

        ops = OpCounter()
        ops.add_op("compare", float(n_rows) * tile_cols)  # clip threshold checks
        ops.add_op(
            "compare", float(n_rows) * rounds_per_row * self.comparators_per_round()
        )
        return EngineReport(cycles=cycles, energy_j=self.energy.counter_energy(ops), ops=ops)

    def exchange_rounds(self, n_rows: int, rounds: int, candidates: int) -> EngineReport:
        """Adjustive-exchange passes after the distributed selection."""
        ops = OpCounter()
        ops.add_op("compare", float(n_rows) * rounds * candidates)
        waves = -(-n_rows // self.n_cores)
        return EngineReport(
            cycles=float(waves * rounds),
            energy_j=self.energy.counter_energy(ops),
            ops=ops,
        )
