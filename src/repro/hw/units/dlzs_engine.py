"""The reusable & configurable DLZS prediction engine (paper Fig. 12).

Hardware configuration (Table III): a 128 x 32 systolic shift-adder array
plus 128 configurable LZEs, preceded by a zero-eliminator.  The same array is
reused across the two phases:

* **K-estimation datapath** - 8-bit tokens stream against pre-converted 4-bit
  LZ weights; no LZE activity (weights were converted offline).
* **QxK^T datapath** - 16-bit queries pass through the LZE array (16-bit
  mode) and their 5-bit LZ codes shift the cached K estimates.

The zero-eliminator removes products whose converted operand is zero; its
benefit is workload-dependent, so the engine takes the measured nonzero
fraction as an input rather than assuming one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.energy import EnergyModel
from repro.hw.pe_array import SystolicArray
from repro.numerics.complexity import OpCounter


@dataclass(frozen=True)
class EngineReport:
    """Cycles and energy of one engine invocation."""

    cycles: float
    energy_j: float
    ops: OpCounter


@dataclass
class DlzsEngine:
    """Timing/energy model of the DLZS prediction unit."""

    array: SystolicArray = field(default_factory=lambda: SystolicArray(128, 32))
    n_lze: int = 128
    energy: EnergyModel = field(default_factory=EnergyModel)

    def predict_keys(
        self, n_tokens: int, hidden: int, head_dim: int, nonzero_fraction: float = 1.0
    ) -> EngineReport:
        """Phase 1.1: estimate K for ``n_tokens`` tokens.

        Work: ``n_tokens * hidden * head_dim`` shift-adds, thinned by the
        zero-eliminator to ``nonzero_fraction``.
        """
        if not 0.0 <= nonzero_fraction <= 1.0:
            raise ValueError("nonzero_fraction must be in [0, 1]")
        products = n_tokens * hidden * head_dim * nonzero_fraction
        timing = self.array.matmul_cycles(n_tokens, hidden, head_dim)
        ops = OpCounter()
        ops.add_op("shift", products)
        ops.add_op("xor", products)
        ops.add_op("add", products)
        return EngineReport(
            cycles=timing.cycles,
            energy_j=self.energy.counter_energy(ops),
            ops=ops,
        )

    def predict_attention(
        self,
        n_queries: int,
        head_dim: int,
        tile_cols: int,
        nonzero_fraction: float = 1.0,
    ) -> EngineReport:
        """Phase 1.2: estimate one (T x Bc) tile of the attention matrix.

        Queries go through the LZE array first (one LZC op per element, the
        128 LZEs convert 128 values per cycle), then shift the cached K tile.
        """
        products = n_queries * head_dim * tile_cols * nonzero_fraction
        lze_elems = n_queries * head_dim
        lze_cycles = lze_elems / self.n_lze
        timing = self.array.matmul_cycles(n_queries, head_dim, tile_cols)
        ops = OpCounter()
        ops.add_op("lzc", lze_elems)
        ops.add_op("shift", products)
        ops.add_op("xor", products)
        ops.add_op("add", products)
        return EngineReport(
            cycles=lze_cycles + timing.cycles,
            energy_j=self.energy.counter_energy(ops),
            ops=ops,
        )
