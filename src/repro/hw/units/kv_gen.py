"""On-demand KV generation unit (paper Fig. 11 block 6, Table III row 3).

Hardware configuration: a 128 x 4 array of 16-bit PEs.  The unit projects
*only the selected tokens* into K and V (``K_i = x_i W_k``, ``V_i = x_i
W_v``) - the on-demand strategy of Sec. III-A that avoids generating KV rows
destined to be pruned.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.energy import EnergyModel
from repro.hw.pe_array import SystolicArray
from repro.hw.units.dlzs_engine import EngineReport
from repro.numerics.complexity import OpCounter


@dataclass
class KvGenerationUnit:
    """Timing/energy model of the selected-token KV projection."""

    array: SystolicArray = field(default_factory=lambda: SystolicArray(128, 4))
    energy: EnergyModel = field(default_factory=EnergyModel)

    def generate(self, n_selected: int, hidden: int, head_dim: int) -> EngineReport:
        """Project ``n_selected`` tokens into both K and V."""
        if n_selected == 0:
            return EngineReport(cycles=0.0, energy_j=0.0, ops=OpCounter())
        k_t = self.array.matmul_cycles(n_selected, hidden, head_dim)
        v_t = self.array.matmul_cycles(n_selected, hidden, head_dim)
        ops = OpCounter()
        macs = 2.0 * n_selected * hidden * head_dim
        ops.add_op("mul", macs)
        ops.add_op("add", macs)
        return EngineReport(
            cycles=k_t.cycles + v_t.cycles,
            energy_j=self.energy.counter_energy(ops),
            ops=ops,
        )
