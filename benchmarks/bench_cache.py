"""Decode-cache bench: paged block pool vs flat LRU under byte pressure.

One measurement, one artifact (``BENCH_cache.json`` / ``_quick``): a
many-sequences decode stream where every sequence shares a long system
prompt (the global max-magnitude token sits inside it, so all sequences
quantize with one scale and their prefix state is bit-identical), served
under a **fixed byte budget** that cannot hold every sequence's state as
monolithic entries:

* the **flat** store can only evict whole entries, and the round-robin
  sequence scan revisits each key right after byte pressure dropped it -
  steady state is ~0% hits, every step re-runs phase 1.1 over the full
  context;
* the **paged** store shares the prompt's blocks across all sequences
  (one resident copy) and spills rather than drops, so the same budget
  holds the whole working set - steady state is ~100% hits and each step
  only computes its one appended row.

The recorded steady-state hit rates are deterministic (they count cache
decisions, not time); requests/sec additionally records the wall-clock
win.  Both paths - and an uncached reference - must stay bit-identical,
the same parity predicate as every other bench in this directory.

Run as a script to record:

    PYTHONPATH=src python benchmarks/bench_cache.py [--quick]

``--quick`` (or ``SOFA_BENCH_QUICK=1``) shrinks shapes for CI smoke runs
and records to ``BENCH_cache_quick.json`` (a regression-gate baseline:
see ``check_bench_regression.py``).
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

import numpy as np
import pytest

from repro.core.config import SofaConfig
from repro.engine import AttentionRequest, SofaEngine
from repro.utils.rng import make_rng

CONFIG = SofaConfig(tile_cols=64, top_k=0.1)

#: Shared-prefix decode workload (full / --quick).
N_SEQ = {False: 24, True: 8}
PREFIX_LEN = {False: 384, True: 256}
HIDDEN = {False: 128, True: 128}
HEAD_DIM = {False: 64, True: 64}
STEPS = {False: 6, True: 3}
REPEATS = 3
BLOCK_TOKENS = 32


def _entry_nbytes(quick: bool) -> int:
    """Bytes of one sequence's full cache entry (tokens + codes + K_hat)."""
    return PREFIX_LEN[quick] * (HIDDEN[quick] * 16 + HEAD_DIM[quick] * 8)


def _budget(quick: bool) -> int:
    """The byte budget: two monolithic entries out of N_SEQ.

    Far below the flat working set (N_SEQ entries -> the LRU thrashes on
    the round-robin scan) yet comfortably above the paged store's
    *unique* footprint (one shared prompt copy + per-sequence tails).
    """
    return 2 * _entry_nbytes(quick)


def _workload(quick: bool, seed: int = 71):
    rng = make_rng(seed)
    h, dk = HIDDEN[quick], HEAD_DIM[quick]
    wk = rng.normal(size=(h, dk))
    wv = rng.normal(size=(h, dk))
    prefix = rng.integers(-100, 100, size=(PREFIX_LEN[quick], h)).astype(np.float64)
    prefix[1, 2] = 125.0  # pin the quantization max inside the shared prompt
    tokens = [prefix.copy() for _ in range(N_SEQ[quick])]
    return wk, wv, tokens


def _decode_stream(engine, quick: bool, tokens, wk, wv, seed_base: int,
                   use_keys: bool = True):
    """Drive STEPS decode rounds over every sequence; returns all results.

    Appended tokens are quieter than the prompt's pinned maximum, so the
    cached quantization scale stays valid and growth is the hit path.
    ``tokens`` is mutated (sequences grow) - callers own the copies.
    """
    h, dk = HIDDEN[quick], HEAD_DIM[quick]
    results = []
    for step in range(STEPS[quick]):
        futures = []
        for i in range(len(tokens)):
            step_rng = make_rng(seed_base + step * len(tokens) + i)
            tokens[i] = np.concatenate(
                [tokens[i], step_rng.integers(-60, 60, size=(1, h)).astype(np.float64)]
            )
            futures.append(
                engine.submit(
                    AttentionRequest(
                        tokens=tokens[i],
                        q=step_rng.normal(size=(1, dk)),
                        wk=wk,
                        wv=wv,
                        cache_key=f"seq-{i}" if use_keys else None,
                    )
                )
            )
        engine.flush()
        results.extend(f.result() for f in futures)
    return results


def _bit_identical(a_results, b_results) -> bool:
    return len(a_results) == len(b_results) and all(
        a.output.tobytes() == b.output.tobytes()
        and np.array_equal(a.selected, b.selected)
        for a, b in zip(a_results, b_results)
    )


def _measure_store(engine, quick: bool, wk, wv) -> dict:
    """Steady-state hit rate and requests/sec of one engine's store.

    A warm pass populates the cache; the timed repeats then serve the
    same growth schedule every engine gets (identical seeds -> identical
    tokens), counting cache decisions around the timed region only.
    """
    tokens = [t.copy() for t in _workload(quick)[2]]
    _decode_stream(engine, quick, tokens, wk, wv, seed_base=20_000)  # warm
    lookups = N_SEQ[quick] * STEPS[quick] * REPEATS
    hits0 = engine.stats.cache.hits
    best = float("inf")
    for repeat in range(REPEATS):
        t0 = time.perf_counter()
        _decode_stream(
            engine, quick, tokens, wk, wv, seed_base=30_000 + repeat * 10_000
        )
        best = min(best, time.perf_counter() - t0)
    cache = engine.stats.cache
    return {
        "requests_per_sec": N_SEQ[quick] * STEPS[quick] / best,
        "steady_hit_rate": (cache.hits - hits0) / lookups,
        "evictions": cache.evictions,
        "resident_bytes": cache.resident_bytes,
        "shared_blocks": cache.shared_blocks,
        "spilled_bytes": cache.spilled_bytes,
        "spill_loads": cache.spill_loads,
    }


def measure_cache(quick: bool = False) -> dict:
    """Flat vs paged under one byte budget, parity-checked against uncached."""
    wk, wv, base_tokens = _workload(quick)
    budget = _budget(quick)
    uncached = SofaEngine(CONFIG, max_batch_heads=16)
    flat = SofaEngine(
        CONFIG, max_batch_heads=16, cache_kind="flat", cache_bytes=budget
    )
    paged = SofaEngine(
        CONFIG, max_batch_heads=16, cache_kind="paged", cache_bytes=budget,
        cache_block_tokens=BLOCK_TOKENS,
    )
    try:
        # Parity pass: identical seeds -> identical token streams per engine.
        ref = _decode_stream(
            uncached, quick, [t.copy() for t in base_tokens], wk, wv,
            seed_base=10_000, use_keys=False,
        )
        flat_results = _decode_stream(
            flat, quick, [t.copy() for t in base_tokens], wk, wv, seed_base=10_000
        )
        paged_results = _decode_stream(
            paged, quick, [t.copy() for t in base_tokens], wk, wv, seed_base=10_000
        )
        exact = _bit_identical(ref, flat_results) and _bit_identical(
            ref, paged_results
        )
        flat_point = _measure_store(flat, quick, wk, wv)
        paged_point = _measure_store(paged, quick, wk, wv)
    finally:
        for engine in (uncached, flat, paged):
            engine.shutdown()
    return {
        "bench": "decode_cache_paged",
        "quick": quick,
        "mechanism": (
            "shared-prefix sequences under a byte budget 2 entries wide: "
            "the flat LRU thrashes on the round-robin scan (whole-entry "
            "eviction), the paged pool holds one shared copy of the prompt "
            "blocks and spills instead of dropping"
        ),
        "workload": {
            "n_sequences": N_SEQ[quick],
            "prefix_len": PREFIX_LEN[quick],
            "steps_per_pass": STEPS[quick],
            "hidden": HIDDEN[quick],
            "head_dim": HEAD_DIM[quick],
            "block_tokens": BLOCK_TOKENS,
            "cache_bytes": budget,
            "entry_nbytes": _entry_nbytes(quick),
        },
        "flat": flat_point,
        "paged": paged_point,
        "paged_vs_flat_requests_per_sec": (
            paged_point["requests_per_sec"] / flat_point["requests_per_sec"]
        ),
        "paged_vs_flat_hit_rate_delta": (
            paged_point["steady_hit_rate"] - flat_point["steady_hit_rate"]
        ),
        "bit_identical": exact,
    }


# ------------------------------------------------------- acceptance assertions
@pytest.mark.paged_cache
def test_cache_stores_stay_bit_identical_and_paged_hits_quick():
    """Paged and flat both serve the stream bit-identically to uncached;
    under the byte budget only the paged store keeps its hit rate."""
    record = measure_cache(quick=True)
    assert record["bit_identical"]
    # Hit rates count cache decisions, not time: deterministic on any host.
    assert record["paged"]["steady_hit_rate"] > 0.9
    assert record["flat"]["steady_hit_rate"] < 0.2
    assert record["paged"]["shared_blocks"] > 0  # the prompt is pooled once
    assert record["paged"]["evictions"] == 0  # spill/share, never drop
    assert record["flat"]["evictions"] > 0  # the budget really binds
    # The wall-clock claim only gates uncontended local runs (CI runners
    # jitter); the recorded JSON is the evidence there.
    if not os.environ.get("CI"):
        assert record["paged_vs_flat_requests_per_sec"] > 1.0


def main() -> None:
    quick = "--quick" in sys.argv[1:] or os.environ.get("SOFA_BENCH_QUICK") == "1"
    record = measure_cache(quick=quick)
    if not record["bit_identical"]:
        raise SystemExit("cache stores diverged from the uncached engine")
    if record["paged"]["steady_hit_rate"] <= record["flat"]["steady_hit_rate"]:
        raise SystemExit("paged store failed to beat the flat LRU's hit rate")
    here = pathlib.Path(__file__).resolve().parent
    out = here / ("BENCH_cache_quick.json" if quick else "BENCH_cache.json")
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
