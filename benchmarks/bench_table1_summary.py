"""Table I bench: qualitative optimization-coverage catalogue.

Asserts SOFA is the only design covering all five optimization axes.
"""

from repro.baselines.specs import table_i_rows


def test_table1_coverage(benchmark, experiment):
    rows = benchmark(table_i_rows)
    full = [name for name, *flags in rows if all(flags)]
    assert full == ["sofa"]

    result = experiment("table1")
    assert result.headline["designs_covering_all_axes"] == 1.0
