"""Table II bench: normalized SOTA accelerator comparison.

Asserts the paper's aggregate advantages: ~15.8x device energy efficiency,
~10.3x area efficiency, ~9.3x latency, and the worked FACT latency example
(295 ms) plus SOFA's 45 ms.
"""

from repro.baselines.specs import ACCELERATOR_SPECS, protocol_latency_ms


def _all_latencies():
    return {name: protocol_latency_ms(spec) for name, spec in ACCELERATOR_SPECS.items()}


def test_table2_sota_comparison(benchmark, experiment):
    latencies = benchmark(_all_latencies)
    assert min(latencies, key=latencies.get) == "sofa"
    assert abs(latencies["fact"] - 295.3) < 1.0

    result = experiment("table2")
    h = result.headline
    assert abs(h["mean_device_eff_advantage"] - 15.8) / 15.8 < 0.15
    assert abs(h["mean_area_eff_advantage"] - 10.3) / 10.3 < 0.15
    assert abs(h["mean_latency_advantage"] - 9.3) / 9.3 < 0.15
