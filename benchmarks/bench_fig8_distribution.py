"""Fig. 8 bench: attention-row taxonomy classification throughput + shares.

Shape assertions: Type-I + Type-II cover >90% of rows for every model family
(the Distributed Cluster Effect premise), with Type-II predominant.
"""

from repro.model.distribution import RowType, classify_rows
from repro.model.workloads import synthetic_scores
from repro.utils.rng import make_rng


def _classify_batch():
    rng = make_rng(88)
    scores = synthetic_scores(rng, 256, 512, "nlp-decoder")
    return classify_rows(scores)


def test_fig8_classification(benchmark, experiment):
    shares = benchmark(_classify_batch)
    assert shares[RowType.TYPE_II] > shares[RowType.TYPE_I]
    assert shares[RowType.TYPE_I] + shares[RowType.TYPE_II] > 0.9

    result = experiment("fig8")
    assert result.headline["min_type12_share_pct"] > 90.0
