"""DSE bench: Bayesian-optimization tiling search (Alg. 1).

Benchmarks one search on a synthetic landscape and asserts convergence
behaviour: the incumbent improves past the random-initialization phase and
lands near the uniform-grid oracle.
"""

from repro.core.dse import BayesianDse, DsePoint, grid_search


def _loss(point: DsePoint) -> float:
    tc_term = sum((tc - 16) ** 2 for tc in point.tc_per_layer) / 400.0
    return tc_term + (point.top_k - 0.25) ** 2 * 8


def _search():
    dse = BayesianDse(_loss, n_layers=3, seq_len=512, alpha=0.1, beta=0.1, seed=17)
    return dse, dse.search(n_iterations=24, n_init=6, n_candidates=96)


def test_dse_search(benchmark):
    dse, result = benchmark.pedantic(_search, rounds=2, iterations=1)
    curve = result.best_so_far
    assert curve[-1] <= curve[5]
    oracle = grid_search(dse.objective, n_layers=3, tc_choices=(8, 16, 24),
                         topk_choices=(0.15, 0.25, 0.35))
    assert result.best_objective <= oracle.best_objective + 0.1
