"""Fig. 18 bench: LP computation reduction across loss budgets.

Asserts the operating-curve shape: attention reduction grows with the loss
budget (paper: 81.3% -> 87.7% -> 92.6%) and QKV+attention reduction stays
below the attention-only number (on-demand KV cannot save the Q projection).
"""

from repro.experiments.suite import measure_case


def _reductions():
    return [measure_case("llama-7b/wikitext2", b).atten_reduction for b in (0.0, 1.0, 2.0)]


def test_fig18_lp_reduction(benchmark, experiment):
    reds = benchmark(_reductions)
    assert reds[0] < reds[1] < reds[2]

    result = experiment("fig18")
    h = result.headline
    assert h["atten_reduction_pct_loss2"] > 80
    for budget in ("0", "1", "2"):
        assert (
            h[f"qkv_atten_reduction_pct_loss{budget}"]
            < h[f"atten_reduction_pct_loss{budget}"]
        )
