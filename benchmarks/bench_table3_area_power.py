"""Table III bench: SOFA area/power breakdown accounting.

Asserts the published totals (5.69 mm^2, ~0.95 W) and the LP mechanism's
small footprint (~18% area, ~15% power).
"""

from repro.hw.area_power import lp_area_fraction, total_area_mm2, total_core_power_w


def _totals():
    return total_area_mm2(), total_core_power_w(), lp_area_fraction()


def test_table3_area_power(benchmark, experiment):
    area, power, lp_frac = benchmark(_totals)
    assert abs(area - 5.69) < 0.01
    assert abs(power - 0.9498) < 0.001
    assert abs(lp_frac - 0.18) < 0.01

    result = experiment("table3")
    assert abs(result.headline["lp_power_fraction_pct"] - 15.0) < 1.0
