"""SU-FA kernel bench: blocked vs reference vs the seed per-key loop.

Three implementations of the streaming core are measured on pre-gathered
long-selection stacks (the exact input every serving tier feeds it):

* ``seed_loop`` - a faithful reconstruction of the pre-kernel-layer
  ``stream_selected`` (v0..PR3): ``det_rowdot`` score gather plus one
  Python iteration per selected key doing the softmax-state update *and*
  the P*V multiply-accumulate.  This is the loop the cluster docs called
  out as the single-process throughput cap, and the honest "before" of
  this PR.
* ``reference`` - :func:`repro.core.sufa.stream_selected_reference`, the
  shipped golden model: still one Python iteration per key, but with the
  kernel layer's shared tile-boundary merges and matmul score gather
  (which alone make the per-key path ~3-4x faster than the seed loop).
* ``blocked`` - the tile-blocked kernel (``repro.kernels``): O(kk /
  tile_cols) Python steps.

Recorded per workload: wall time of each implementation,
``blocked_vs_seed_loop`` (the headline: the speedup over the per-key loop
this PR replaces - the acceptance bar is >= 5x on the long-selection
workload kk >= 512, R >= 256) and ``blocked_vs_reference`` (the honest
residual gap to the already-accelerated golden model).  Parity is asserted
in-line: blocked must equal reference bit for bit, and the seed loop must
agree within float tolerance (its accumulation order predates the
tile-synchronized semantics).

An end-to-end section serves one request stream through ``SofaEngine``
pinned to each kernel and records requests/sec - the measurable engine
win - plus a bit-parity confirmation across kernels.

Two fused sections cover the predict+select stages (PR 7).  The micro
section times ``DlzsPredictor.predict`` -> ``SadsSorter.select_stack``
against the fused streaming kernel (``repro.kernels`` stage registries,
``{"predict": "fused", "select": "fused"}``) on the same head, asserting
bit parity in-line, and records ``fused_vs_unfused`` per workload -
including an honest small-shape row where per-segment dispatch overhead
makes fusion *slower*.  The end-to-end section serves a long-selection
stream (kk >= 512 on the full shapes) through ``SofaEngine`` under the
default kernels and under the fused mapping; the acceptance bar is
``fused_vs_default >= 1.15`` on that stream, with outputs bit-identical.

Run as a script to record ``BENCH_sufa.json``:

    PYTHONPATH=src python benchmarks/bench_kernel_sufa.py [--quick]

``--quick`` (or ``SOFA_BENCH_QUICK=1``) shrinks shapes for CI smoke runs
and records to ``BENCH_sufa_quick.json`` so the committed full-shape
evidence stays untouched.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

import numpy as np

from repro.core.config import SofaConfig
from repro.core.dlzs import DlzsPredictor
from repro.core.sads import SadsSorter
from repro.core.sufa import SufaStackResult, UpdateOrder, stream_selected_reference
from repro.engine import AttentionRequest, SofaEngine
from repro.kernels import FUSED, register_sufa_kernel, stream_selected_blocked
from repro.numerics.linalg import det_rowdot
from repro.utils.rng import make_rng

#: (R, kk, D, Dv, tile_cols) micro-workload grid.  The first row is the
#: acceptance workload: a long selection (kk >= 512) over a full stack
#: (R >= 256) on the default tile width.
GRID = {
    False: [
        (256, 512, 32, 32, 64),
        (256, 512, 16, 16, 64),
        (256, 1024, 16, 16, 128),
        (256, 2048, 8, 8, 256),
        (512, 512, 32, 32, 64),
        (64, 512, 32, 32, 64),
    ],
    True: [(64, 128, 8, 8, 32), (32, 96, 8, 8, 16)],
}
REPEATS = {False: 7, True: 2}

#: End-to-end serving workload (full / --quick): long selections and many
#: query rows per head, so the SU-FA stage carries a realistic share of
#: the fused-batch cost (prediction and sorting are per-token, streaming
#: is per-query-row x selected-key).
E2E_SEQ_LEN = {False: 512, True: 96}
E2E_QUERIES = {False: 32, True: 8}
E2E_REQUESTS = {False: 16, True: 6}
E2E_CONFIG = {
    False: SofaConfig(tile_cols=64, top_k=0.5),
    True: SofaConfig(tile_cols=32, top_k=0.25),
}

#: (T, S, H, DK, top_k, tile_cols) fused predict+select micro grid.  The
#: win is the float64-BLAS score matmul (exact: the operands sit far
#: inside the 2**53 window) plus never materializing the (T, S) score
#: matrix; it grows with T*S*DK.  The full grid keeps one small-shape row
#: where per-segment dispatch overhead makes fusion *slower* - recorded
#: on purpose so the crossover stays visible.
FUSED_GRID = {
    False: [
        (64, 4096, 64, 64, 0.125, 64),
        (64, 2048, 64, 64, 0.125, 64),
        (32, 4096, 32, 32, 0.0625, 64),
        (32, 1024, 32, 32, 0.125, 32),  # below the crossover: fused loses
    ],
    True: [(64, 2048, 64, 64, 0.125, 64)],
}

#: Fused end-to-end serving workload: a long-selection stream (kk = 512
#: selected keys per row on the full shapes - the same bar the SU-FA
#: acceptance workload uses) where the prediction matmul and selection
#: carry a realistic share of the batch cost.  The acceptance bar for
#: ``fused_vs_default`` is 1.15x (observed ~1.3x).
E2E_FUSED = {
    False: dict(s=4096, t=128, n=4, h=64, dk=64, top_k=0.125, tile_cols=64),
    True: dict(s=1024, t=32, n=4, h=64, dk=64, top_k=0.125, tile_cols=64),
}
FUSED_ACCEPTANCE_SPEEDUP = 1.15


def stream_selected_seed(
    q_rows,
    k_sel,
    v_sel,
    order=UpdateOrder.DESCENDING,
    max_assurance: bool = True,
    tile_cols: int = 64,
):
    """The pre-kernel-layer streaming core (v0..PR3), reconstructed.

    One Python iteration per selected key: violation check, exp, and the
    per-key P*V multiply-accumulate, on top of the materialized
    ``det_rowdot`` score gather - the loop the cluster docs called the
    single-process throughput cap.  Implements the full kernel contract
    (and is registered as the ``"seed-loop"`` kernel below), so the engine
    can serve a stream through it for an honest before/after; its
    accumulation order predates the tile-synchronized semantics, so its
    outputs agree with the shipped kernels to float tolerance, not bits.
    """
    q_rows = np.asarray(q_rows, dtype=np.float64)
    k_sel = np.asarray(k_sel, dtype=np.float64)
    v_sel = np.asarray(v_sel, dtype=np.float64)
    r, d = q_rows.shape
    kk = k_sel.shape[1]
    dv = v_sel.shape[2]
    scores = det_rowdot(k_sel, q_rows[:, None, :]) * (1.0 / np.sqrt(d))
    if order is UpdateOrder.ASCENDING:
        scores = scores[:, ::-1]
        values = v_sel[:, ::-1, :]
    else:
        values = v_sel
    op_rows = {
        "mul": np.full(r, float(d * kk)),
        "add": np.full(r, float(max(d - 1, 0) * kk)),
        "compare": np.zeros(r),
        "exp": np.zeros(r),
        "div": np.zeros(r),
    }
    warmup = min(4, kk)
    m = np.max(scores[:, :warmup], axis=1)
    op_rows["compare"] += warmup - 1
    l = np.zeros(r)
    o = np.zeros((r, dv))
    triggers = np.zeros(r, dtype=np.int64)
    for j in range(kk):
        x = scores[:, j]
        viol = x > m
        if viol.any():
            if not max_assurance:
                raise RuntimeError("running max violated (seed loop)")
            corr = np.exp(np.where(viol, m - x, 0.0))
            l = l * corr
            o = o * corr[:, None]
            op_rows["exp"] += viol
            op_rows["mul"] += viol * (1 + dv)
            op_rows["compare"] += viol
            m = np.where(viol, x, m)
            triggers += viol
        p = np.exp(x - m)
        op_rows["exp"] += 1
        if order is UpdateOrder.ASCENDING and j > 0:
            op_rows["mul"] += 1
        l = l + p
        op_rows["add"] += 1
        o = o + p[:, None] * values[:, j, :]
        op_rows["mul"] += dv
        op_rows["add"] += dv
    n_tiles = -(-kk // tile_cols) if tile_cols >= 1 else 1
    op_rows["compare"] += n_tiles
    o = o / l[:, None]
    op_rows["div"] += dv
    return SufaStackResult(output=o, op_rows=op_rows, trigger_rows=triggers)


# The bench drives the seed loop through the public registry - both to
# serve whole engine streams with it (the end-to-end before/after) and as
# a live example of registering a custom kernel.
register_sufa_kernel("seed-loop", stream_selected_seed, overwrite=True)


def _workload(r: int, kk: int, d: int, dv: int, seed: int = 17):
    """A DLZS-exact (descending-sorted) gathered stack - the common case."""
    rng = make_rng(seed)
    q = rng.normal(size=(r, d))
    k = rng.normal(size=(r, kk, d))
    v = rng.normal(size=(r, kk, dv))
    idx = np.argsort(-(k * q[:, None, :]).sum(-1), axis=1)
    k = np.take_along_axis(k, idx[:, :, None], axis=1)
    v = np.take_along_axis(v, idx[:, :, None], axis=1)
    return q, k, v


def _best_of_interleaved(fns: dict, repeats: int) -> dict:
    """Best-of timing with the candidates interleaved round-robin.

    Interleaving exposes every implementation to the same allocator and
    cache drift within each round, so slow host phases penalize all of
    them instead of whichever happened to run last.
    """
    best = {name: float("inf") for name in fns}
    for _ in range(repeats):
        for name, fn in fns.items():
            t0 = time.perf_counter()
            fn()
            best[name] = min(best[name], time.perf_counter() - t0)
    return best


def measure_kernels(quick: bool = False) -> list[dict]:
    points = []
    for r, kk, d, dv, tc in GRID[quick]:
        q, k, v = _workload(r, kk, d, dv)
        ref = stream_selected_reference(q, k, v, tile_cols=tc)
        blk = stream_selected_blocked(q, k, v, tile_cols=tc)
        seed_out = stream_selected_seed(q, k, v, tile_cols=tc)
        exact = (
            ref.output.tobytes() == blk.output.tobytes()
            and np.array_equal(ref.trigger_rows, blk.trigger_rows)
            and all(
                np.array_equal(ref.op_rows[op], blk.op_rows[op]) for op in ref.op_rows
            )
        )
        if not exact:
            raise SystemExit(f"kernel parity broken on {(r, kk, d, dv, tc)}")
        if not np.allclose(seed_out.output, blk.output, atol=1e-9):
            raise SystemExit(f"seed-loop output diverged on {(r, kk, d, dv, tc)}")
        times = _best_of_interleaved(
            {
                "seed": lambda: stream_selected_seed(q, k, v, tile_cols=tc),
                "ref": lambda: stream_selected_reference(q, k, v, tile_cols=tc),
                "blk": lambda: stream_selected_blocked(q, k, v, tile_cols=tc),
            },
            REPEATS[quick],
        )
        seed_s, ref_s, blk_s = times["seed"], times["ref"], times["blk"]
        points.append(
            {
                "stack_rows": r,
                "kk": kk,
                "d": d,
                "dv": dv,
                "tile_cols": tc,
                "seed_loop_s": seed_s,
                "reference_s": ref_s,
                "blocked_s": blk_s,
                "blocked_vs_seed_loop": seed_s / blk_s,
                "blocked_vs_reference": ref_s / blk_s,
                "reference_vs_seed_loop": seed_s / ref_s,
                "bit_identical_blocked_vs_reference": exact,
            }
        )
    return points


def measure_fused_kernels(quick: bool = False) -> list[dict]:
    """Fused predict+select vs the unfused reference stages, per head.

    Parity is asserted in-line (selection indices and the comparator/clip
    tallies must match bit for bit) and the kernel's probe must show it
    never held more than one score tile.
    """
    points = []
    for t, s, h, dk, top_k, tc in FUSED_GRID[quick]:
        rng = make_rng(11)
        cfg = SofaConfig(tile_cols=tc, top_k=top_k)
        predictor = DlzsPredictor(rng.normal(size=(h, dk)), cfg.dlzs)
        tokens = rng.integers(-100, 100, size=(s, h)).astype(np.float64)
        q = rng.normal(size=(t, dk))
        k_count = max(1, int(round(top_k * s)))
        sorter = SadsSorter(cfg.sads_for(-(-s // tc)))
        pred = predictor.predict(tokens, q)
        ref = sorter.select_stack(pred.a_hat, k_count)
        _, got = FUSED.run_single(predictor, sorter, tokens, q, k_count)
        probe = FUSED.last_probe
        exact = (
            np.array_equal(ref.indices, got.indices)
            and np.array_equal(ref.compare_rows, got.compare_rows)
            and np.array_equal(ref.clipped_rows, got.clipped_rows)
        )
        if not exact:
            raise SystemExit(f"fused parity broken on {(t, s, h, dk, top_k, tc)}")
        if probe.peak_tile_elems >= probe.full_matrix_elems and probe.rows > 1:
            raise SystemExit(f"fused kernel materialized on {(t, s, h, dk)}")
        times = _best_of_interleaved(
            {
                "unfused": lambda: sorter.select_stack(
                    predictor.predict(tokens, q).a_hat, k_count
                ),
                "fused": lambda: FUSED.run_single(
                    predictor, sorter, tokens, q, k_count
                ),
            },
            REPEATS[quick],
        )
        points.append(
            {
                "t": t,
                "s": s,
                "h": h,
                "dk": dk,
                "top_k": top_k,
                "tile_cols": tc,
                "k_selected": k_count,
                "unfused_s": times["unfused"],
                "fused_s": times["fused"],
                "fused_vs_unfused": times["unfused"] / times["fused"],
                "peak_tile_elems": probe.peak_tile_elems,
                "full_matrix_elems": probe.full_matrix_elems,
                "exact_blas": probe.exact_blas,
                "bit_identical_fused_vs_unfused": exact,
            }
        )
    return points


def measure_fused_engine(quick: bool = False) -> dict:
    """Requests/sec of a long-selection stream: default vs fused kernels.

    The default engine (reference predict/select, blocked stream) is the
    unfused "before"; the fused mapping pins predict and select to the
    fused streaming kernel and must serve bit-identically.  On the full
    workload ``fused_vs_default`` carries the 1.15x acceptance bar.
    """
    w = E2E_FUSED[quick]
    rng = make_rng(29)
    cfg = SofaConfig(tile_cols=w["tile_cols"], top_k=w["top_k"])
    requests = [
        AttentionRequest(
            tokens=rng.integers(-100, 100, size=(w["s"], w["h"])).astype(np.float64),
            q=rng.normal(size=(w["t"], w["dk"])),
            wk=rng.normal(size=(w["h"], w["dk"])),
            wv=rng.normal(size=(w["h"], w["dk"])),
        )
        for _ in range(w["n"])
    ]
    results = {}
    selections = {
        "default": None,
        "fused": {"predict": "fused", "select": "fused"},
    }
    # Both engines stay alive and the timing rounds interleave them, so
    # host-load drift penalizes both sides instead of whichever phase it
    # happened to land on (the same reason _best_of_interleaved exists:
    # a sequential default-then-fused phase split makes the ratio noisy).
    engines = {
        name: SofaEngine(cfg, max_batch_heads=8, kernel=kernel)
        for name, kernel in selections.items()
    }
    try:
        for name, engine in engines.items():
            results[name] = engine.run(requests)  # warm: operators built
        times = _best_of_interleaved(
            {
                name: lambda engine=engine: engine.run(requests)
                for name, engine in engines.items()
            },
            REPEATS[quick],
        )
    finally:
        for engine in engines.values():
            engine.shutdown()
    exact = all(
        a.output.tobytes() == b.output.tobytes()
        and np.array_equal(a.selected, b.selected)
        and a.total_ops.counts == b.total_ops.counts
        for a, b in zip(results["default"], results["fused"])
    )
    if not exact:
        raise SystemExit("fused engine parity broken")
    n = w["n"]
    return {
        "workload": dict(w),
        "k_selected": max(1, int(round(w["top_k"] * w["s"]))),
        "default_requests_per_sec": n / times["default"],
        "fused_requests_per_sec": n / times["fused"],
        "fused_vs_default": times["default"] / times["fused"],
        "bit_identical": exact,
    }


def _e2e_requests(quick: bool, seed: int = 23) -> list[AttentionRequest]:
    rng = make_rng(seed)
    s, h, dk, t = E2E_SEQ_LEN[quick], 32, 32, E2E_QUERIES[quick]
    return [
        AttentionRequest(
            tokens=rng.integers(-100, 100, size=(s, h)).astype(np.float64),
            q=rng.normal(size=(t, dk)),
            wk=rng.normal(size=(h, dk)),
            wv=rng.normal(size=(h, dk)),
        )
        for _ in range(E2E_REQUESTS[quick])
    ]


def measure_engine(quick: bool = False) -> dict:
    """Requests/sec of one stream served under each kernel selection.

    ``seed-loop`` is the pre-PR streaming core served through the same
    engine (via the registry), so ``engine_speedup_vs_seed_loop`` is the
    end-to-end before/after of this PR; ``reference`` vs ``blocked``
    isolates the residual per-key dispatch cost and must stay
    bit-identical (the seed loop predates the tile-synchronized semantics,
    so it is held to float tolerance instead).
    """
    requests = _e2e_requests(quick)
    cfg = E2E_CONFIG[quick]
    results = {}
    times = {}
    for kernel in ("seed-loop", "reference", "blocked"):
        with SofaEngine(cfg, max_batch_heads=8, kernel=kernel) as engine:
            engine.run(requests)  # warm: operators built, caches steady
            best = float("inf")
            for _ in range(REPEATS[quick]):
                t0 = time.perf_counter()
                results[kernel] = engine.run(requests)
                best = min(best, time.perf_counter() - t0)
        times[kernel] = best
    exact = all(
        a.output.tobytes() == b.output.tobytes()
        and np.array_equal(a.selected, b.selected)
        and a.total_ops.counts == b.total_ops.counts
        for a, b in zip(results["reference"], results["blocked"])
    )
    if not exact:
        raise SystemExit("engine kernel parity broken")
    seed_close = all(
        np.allclose(a.output, b.output, atol=1e-9)
        and np.array_equal(a.selected, b.selected)
        for a, b in zip(results["seed-loop"], results["blocked"])
    )
    if not seed_close:
        raise SystemExit("seed-loop engine results diverged beyond tolerance")
    n = len(requests)
    return {
        "n_requests": n,
        "seq_len": E2E_SEQ_LEN[quick],
        "n_queries": E2E_QUERIES[quick],
        "top_k": E2E_CONFIG[quick].top_k,
        "tile_cols": cfg.tile_cols,
        "seed_loop_requests_per_sec": n / times["seed-loop"],
        "reference_requests_per_sec": n / times["reference"],
        "blocked_requests_per_sec": n / times["blocked"],
        "engine_speedup_vs_seed_loop": times["seed-loop"] / times["blocked"],
        "engine_speedup_vs_reference": times["reference"] / times["blocked"],
        "bit_identical": exact,
    }


def measure(quick: bool = False) -> dict:
    kernels = measure_kernels(quick)
    engine = measure_engine(quick)
    fused = measure_fused_kernels(quick)
    fused_engine = measure_fused_engine(quick)
    qualifying = [p for p in kernels if p["kk"] >= 512 and p["stack_rows"] >= 256]
    acceptance = max(
        qualifying, key=lambda p: p["blocked_vs_seed_loop"], default=None
    )
    return {
        "bench": "kernel_sufa",
        "quick": quick,
        "note": (
            "seed_loop is the pre-kernel-layer per-key stream_selected "
            "(det_rowdot gather + per-key P*V accumulate) - the loop this "
            "PR replaces; reference is the shipped per-key golden model, "
            "itself accelerated by the shared tile merges, so "
            "blocked_vs_seed_loop is the end-to-end kernel-layer win and "
            "blocked_vs_reference the residual per-key dispatch gap."
        ),
        "kernels": kernels,
        "acceptance": None
        if acceptance is None
        else {
            "workload": {
                k: acceptance[k] for k in ("stack_rows", "kk", "d", "dv", "tile_cols")
            },
            "speedup_over_per_key_loop": acceptance["blocked_vs_seed_loop"],
            "blocked_vs_reference": acceptance["blocked_vs_reference"],
            "threshold": 5.0,
            "met": acceptance["blocked_vs_seed_loop"] >= 5.0,
        },
        "engine": engine,
        "fused": fused,
        "fused_engine": fused_engine,
        "fused_acceptance": {
            "workload": fused_engine["workload"],
            "fused_vs_default": fused_engine["fused_vs_default"],
            "threshold": FUSED_ACCEPTANCE_SPEEDUP,
            # The bar applies to the full long-selection stream only; the
            # quick shapes sit near the fusion crossover by design.
            "met": quick
            or fused_engine["fused_vs_default"] >= FUSED_ACCEPTANCE_SPEEDUP,
        },
    }


# ------------------------------------------------------------ pytest hooks
def test_kernel_parity_quick():
    """Blocked == reference bit-for-bit on the quick grid (CI smoke)."""
    for point in measure_kernels(quick=True):
        assert point["bit_identical_blocked_vs_reference"]


def test_engine_kernel_parity_quick():
    record = measure_engine(quick=True)
    assert record["bit_identical"]


def test_fused_kernel_parity_quick():
    """Fused predict+select == unfused bit-for-bit on the quick grid."""
    for point in measure_fused_kernels(quick=True):
        assert point["bit_identical_fused_vs_unfused"]
        assert point["peak_tile_elems"] < point["full_matrix_elems"]


def test_fused_engine_parity_quick():
    record = measure_fused_engine(quick=True)
    assert record["bit_identical"]


def test_blocked_beats_seed_loop_locally():
    """A regression tripwire, not the acceptance measurement: the blocked
    kernel must stay well ahead of the per-key seed loop on the
    long-selection workload.  The committed ``BENCH_sufa.json`` (recorded
    by an uncontended ``main()`` run at best-of-7) is the >= 5x acceptance
    evidence; this in-suite gate asserts a conservative 2x at interleaved
    best-of-5 (observed: 4.5-6.5x) so shared-host scheduling noise cannot
    flake the tier-1 suite, and is skipped on CI runners entirely."""
    if os.environ.get("CI"):
        return
    r, kk, d, dv, tc = GRID[False][0]
    q, k, v = _workload(r, kk, d, dv)
    times = _best_of_interleaved(
        {
            "seed": lambda: stream_selected_seed(q, k, v, tile_cols=tc),
            "blk": lambda: stream_selected_blocked(q, k, v, tile_cols=tc),
        },
        5,
    )
    ratio = times["seed"] / times["blk"]
    assert ratio >= 2.0, f"only {ratio:.2f}x over the seed loop"


def main() -> None:
    quick = "--quick" in sys.argv[1:] or os.environ.get("SOFA_BENCH_QUICK") == "1"
    record = measure(quick=quick)
    here = pathlib.Path(__file__).resolve().parent
    out = here / ("BENCH_sufa_quick.json" if quick else "BENCH_sufa.json")
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    if record["acceptance"] is not None and not record["acceptance"]["met"]:
        raise SystemExit("blocked kernel below the 5x acceptance bar")
    if not record["fused_acceptance"]["met"]:
        raise SystemExit(
            "fused predict+select below the 1.15x end-to-end acceptance bar"
        )
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
