"""Gateway overload bench: graceful shedding + autoscale vs naive queueing.

The gateway's whole argument is behavior *past* capacity, so this bench
drives an open-loop arrival stream (posts fire on a timer, not after the
previous reply - real clients do not politely wait) at a multiple of the
measured single-worker service rate, through three phases:

``unloaded``
    Sequential posts against an idle 1-worker cluster: the baseline
    requests/sec and latency distribution (``p99_unloaded`` anchors the
    acceptance bar below).
``overload/unprotected``
    Same cluster, but the gateway's queue bound is effectively removed
    (huge ``max_queue``, no deadlines, no autoscaler) and arrivals run at
    ``OVERLOAD_FACTOR``x the measured capacity.  The admission queue
    grows for as long as the drive lasts (the recorded
    ``queue_depth_samples`` show it), and completed-request p99 degrades
    to queue-wait territory - every client is slow, none are refused.
``overload/protected``
    Same arrival stream, but the full protection stack: a token bucket
    sized to the deployment's measured capacity, deadlines sized to the
    unloaded p99, a bounded queue, a dispatch cap, and the cluster
    autoscaler enabled (fed the admission backlog through the gateway's
    queue-depth hook).  Requests the deployment cannot serve inside the
    latency budget are answered promptly (429/503 + Retry-After)
    instead of queued; served-request p99 must stay under
    ``2 x p99_unloaded`` - the SLO the deadline encodes - at a sustained
    fraction of capacity.

Two numbers are gated in CI (``check_bench_regression.py``):

* ``overload_p99_bound_ratio`` = ``2 * p99_unloaded / p99_protected`` -
  an intra-run *ratio* >= 1.0 when the bound holds;
* ``protected_completed_rps`` - served throughput under protection (a
  *rate*: hardware-class dependent, gated with the wide knob).

Client-side costs share the event loop with the server here, so request
bodies are pre-encoded once and cycled - the drive spends its loop time
on arrivals, not on re-serializing identical tensors.

Run as a script to record ``BENCH_gateway.json``:

    PYTHONPATH=src python benchmarks/bench_gateway.py [--quick]

``--quick`` (or ``SOFA_BENCH_QUICK=1``) shrinks the drive window and
warmup for CI smoke runs and records ``BENCH_gateway_quick.json``.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import sys
import time

import pytest

from repro.cluster import AsyncSofaClient, AutoscalerConfig, EngineCluster
from repro.core.config import SofaConfig
from repro.gateway import (
    GatewayClient,
    GatewayConfig,
    SofaGateway,
    TenantPolicy,
)
from repro.utils.rng import make_rng

#: Shapes chosen compute-heavy and payload-light (tall q, small token
#: grid): engine time dominates JSON codec time, so "capacity" means the
#: worker pool, not the HTTP parser.  quick/full differ only in how long
#: the overload drive runs and how many unloaded samples anchor p99.
WORKLOAD = {
    False: dict(s=2048, t=48, h=8, dk=64, n_unloaded=40, drive_s=6.0),
    True: dict(s=2048, t=48, h=8, dk=64, n_unloaded=12, drive_s=2.0),
}
N_UNIQUE_BODIES = 10
CFG = SofaConfig(tile_cols=32, top_k=0.25)

#: Arrival rate as a multiple of measured single-worker capacity.
OVERLOAD_FACTOR = 1.75

#: A tenant policy that never rate-limits: this bench studies the queue
#: and deadline paths, so the bucket must stay out of the way.
UNLIMITED = TenantPolicy(rate=1e9, burst=1e9)


def _encoded_bodies(w: dict, n: int, seed: int = 23, **extra) -> list[bytes]:
    """``n`` pre-encoded request bodies cycling a small unique set."""
    rng = make_rng(seed)
    unique = []
    for i in range(min(n, N_UNIQUE_BODIES)):
        body = {
            "tokens": rng.integers(-100, 100, size=(w["s"], w["h"]))
            .astype(float).tolist(),
            "q": rng.normal(size=(w["t"], w["dk"])).tolist(),
            "wk": rng.normal(size=(w["h"], w["dk"])).tolist(),
            "wv": rng.normal(size=(w["h"], w["dk"])).tolist(),
            "tag": f"bench-{i}",
            **extra,
        }
        unique.append(json.dumps(body).encode())
    return [unique[i % len(unique)] for i in range(n)]


def _quantile(samples: list[float], q: float) -> float:
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


async def _post(port: int, raw: bytes) -> tuple[int, float]:
    """One request on its own connection; returns (status, latency_s)."""
    t0 = time.perf_counter()
    async with GatewayClient("127.0.0.1", port) as http:
        status, _, _resp = await http.request("POST", "/v1/attention", raw)
    return status, time.perf_counter() - t0


async def _drive_open_loop(
    gateway: SofaGateway, bodies: list[bytes], offered_rps: float
) -> tuple[list[tuple[int, float]], list[int]]:
    """Fire posts on a fixed timer; sample queued work while driving.

    The depth samples count every admitted-but-unanswered request -
    admission queue plus what the dispatcher already pushed into the
    backend - since that is the backlog an unprotected gateway lets
    grow without bound.
    """
    backend = gateway.client.backend

    def backlog() -> int:
        return gateway._admission.depth + backend.pending

    interval = 1.0 / offered_rps
    tasks: list[asyncio.Task] = []
    depth_samples: list[int] = []
    start = time.perf_counter()
    for i, raw in enumerate(bodies):
        due = start + i * interval
        delay = due - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.create_task(_post(gateway.port, raw)))
        if i % max(1, len(bodies) // 24) == 0:
            depth_samples.append(backlog())
    outcomes = await asyncio.gather(*tasks)
    return list(outcomes), depth_samples


async def _measure(quick: bool) -> dict:
    w = WORKLOAD[quick]

    # ------------------------------------------------------------- unloaded
    cluster = EngineCluster(n_workers=1, config=CFG)
    async with AsyncSofaClient(cluster) as client:
        async with SofaGateway(
            client, config=GatewayConfig(default_tenant=UNLIMITED)
        ) as gateway:
            latencies = []
            async with GatewayClient("127.0.0.1", gateway.port) as http:
                for raw in _encoded_bodies(w, w["n_unloaded"]):
                    t0 = time.perf_counter()
                    status, _, _resp = await http.request(
                        "POST", "/v1/attention", raw
                    )
                    assert status == 200
                    latencies.append(time.perf_counter() - t0)
    # Warmup distorts the first request (imports, allocator); drop it.
    latencies = latencies[1:]
    p99_unloaded = _quantile(latencies, 0.99)
    unloaded = {
        "n": len(latencies),
        "requests_per_sec": len(latencies) / sum(latencies),
        "p50_s": _quantile(latencies, 0.50),
        "p99_s": p99_unloaded,
    }
    capacity = unloaded["requests_per_sec"]
    offered = OVERLOAD_FACTOR * capacity
    n_posts = int(offered * w["drive_s"])

    # -------------------------------------------------- overload, unprotected
    # No queue bound, no deadlines, no autoscaler: every arrival queues,
    # and the backlog (depth samples) grows for as long as the drive does.
    cluster = EngineCluster(n_workers=1, config=CFG)
    async with AsyncSofaClient(cluster) as client:
        async with SofaGateway(
            client,
            config=GatewayConfig(
                max_queue=10_000_000, default_tenant=UNLIMITED
            ),
        ) as gateway:
            t0 = time.perf_counter()
            outcomes, depths = await _drive_open_loop(
                gateway, _encoded_bodies(w, n_posts), offered
            )
            elapsed = time.perf_counter() - t0
    done = [lat for status, lat in outcomes if status == 200]
    unprotected = {
        "offered_rps": offered,
        "n_posts": n_posts,
        "completed": len(done),
        "completed_rps": len(done) / elapsed,
        "p50_s": _quantile(done, 0.50),
        "p99_s": _quantile(done, 0.99),
        "queue_depth_samples": depths,
        "peak_queue_depth": max(depths),
        # includes the post-drive drain of everything that queued
        "total_s": elapsed,
    }

    # ---------------------------------------------------- overload, protected
    # Three mechanisms compose, each bounding one latency term.  The
    # token bucket is sized to ~3/4 of measured capacity: a served
    # request then runs on a system with real headroom instead of one
    # pinned at 100% utilization, where service time itself degrades
    # (worker processes timeshare cores with the event loop).  The
    # deadline bounds queue wait for what the bucket admits, and
    # max_inflight=1 bounds dispatch wait to one service time.  The
    # autoscaler sees demand through the admission-backlog hook; on
    # multi-core hosts the extra workers turn refused requests back into
    # served ones, and everywhere the scale event itself is recorded.
    # Half of capacity: steady-state admissions arrive spaced wider than
    # one service time, so a served request rarely queues behind another
    # and the deployment keeps scheduling headroom (on shared cores,
    # service time itself degrades as utilization approaches 1).  The
    # burst of 2 deliberately lets back-to-back pairs through: the
    # second of a pair overruns its deadline waiting and sheds at pop -
    # the deadline converting would-be tail latency into a fast 503.
    admit_rate = 0.5 * capacity
    deadline_ms = 1000.0 * max(0.25 * p99_unloaded, 0.01)
    scaler = AutoscalerConfig(
        min_workers=1,
        max_workers=2 if quick else 3,
        # With max_inflight=1 the cluster's own in-flight count saturates
        # at one: any standing admission backlog at all means demand
        # exceeds what the dispatch cap lets the pool see.  The deadline
        # sheds backlog within ~one service time, so pressure shows up
        # as brief depth spikes - act on the first hot tick (no hold)
        # and let the cooldown do the flap damping.
        queue_high=0.9,
        queue_low=0.2,
        hold_up_s=0.0,
        hold_down_s=30.0,
        cooldown_s=0.25,
    )
    cluster = EngineCluster(
        n_workers=1, config=CFG, supervisor=True, autoscaler=scaler
    )
    async with AsyncSofaClient(cluster) as client:
        async with SofaGateway(
            client,
            config=GatewayConfig(
                max_queue=64,
                default_tenant=TenantPolicy(rate=admit_rate, burst=2.0),
            ),
            max_inflight=1,
        ) as gateway:
            t0 = time.perf_counter()
            outcomes, depths = await _drive_open_loop(
                gateway,
                _encoded_bodies(w, n_posts, deadline_ms=deadline_ms),
                offered,
            )
            elapsed = time.perf_counter() - t0
            stats = cluster.stats
    served = [lat for status, lat in outcomes if status == 200]
    shed = [lat for status, lat in outcomes if status == 503]
    limited = [lat for status, lat in outcomes if status == 429]
    p99_protected = _quantile(served, 0.99)
    protected = {
        "offered_rps": offered,
        "n_posts": n_posts,
        "admit_rate_rps": admit_rate,
        "deadline_ms": deadline_ms,
        "completed": len(served),
        "shed": len(shed),
        "rate_limited": len(limited),
        "completed_rps": len(served) / elapsed,
        "p50_s": _quantile(served, 0.50),
        "p99_s": p99_protected,
        "shed_response_p99_s": _quantile(shed, 0.99) if shed else None,
        "queue_depth_samples": depths,
        "peak_queue_depth": max(depths),
        "scale_ups": stats.n_scale_ups,
        "workers_final": stats.n_workers,
        "total_s": elapsed,
    }

    return {
        "bench": "gateway_overload",
        "quick": quick,
        "workload": {**w, "overload_factor": OVERLOAD_FACTOR},
        "unloaded": unloaded,
        "overload_unprotected": unprotected,
        "overload_protected": protected,
        # The acceptance bar: >= 1.0 when protected p99 holds under
        # 2x the unloaded p99 at an arrival rate where the unprotected
        # queue grows without bound.  Gated as a ratio.
        "overload_p99_bound_ratio": 2.0 * p99_unloaded / p99_protected,
        # Served throughput under protection; gated as a rate.
        "protected_completed_rps": protected["completed_rps"],
    }


def measure_gateway_overload(quick: bool = False) -> dict:
    return asyncio.run(_measure(quick))


@pytest.mark.gateway
def test_gateway_overload_protection_quick():
    """Structural acceptance on the quick drive: the unprotected queue
    visibly builds a backlog, protection sheds instead of queueing, and
    the autoscaler reacts.  Wall-clock ratios are evidence (the BENCH
    artifacts, gated in CI), not test assertions - shared runners jitter
    beyond any honest latency bar."""
    record = measure_gateway_overload(quick=True)
    unprotected = record["overload_unprotected"]
    protected = record["overload_protected"]
    # Every arrival queued - nothing was refused - and the backlog grew
    # well past anything the protected queue would tolerate.
    assert unprotected["completed"] == unprotected["n_posts"]
    assert unprotected["peak_queue_depth"] > 2 * protected["peak_queue_depth"]
    # Protection answered every request - served, refused at the bucket,
    # or shed - and the refusal paths actually engaged.
    answered = (
        protected["completed"] + protected["shed"] + protected["rate_limited"]
    )
    assert answered == protected["n_posts"]
    assert protected["shed"] + protected["rate_limited"] > 0
    assert protected["completed"] > 0
    # The pool grew under pressure (via the admission-backlog hook).
    assert protected["scale_ups"] >= 1


def main() -> None:
    quick = "--quick" in sys.argv[1:] or os.environ.get("SOFA_BENCH_QUICK") == "1"
    record = measure_gateway_overload(quick=quick)
    if not quick and record["overload_p99_bound_ratio"] < 1.0:
        raise SystemExit(
            "protected overload p99 broke the 2x-unloaded bound: ratio "
            f"{record['overload_p99_bound_ratio']:.3f} < 1.0"
        )
    here = pathlib.Path(__file__).resolve().parent
    out = here / ("BENCH_gateway_quick.json" if quick else "BENCH_gateway.json")
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
