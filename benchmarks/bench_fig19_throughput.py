"""Fig. 19 bench: SOFA throughput gain over the A100 baselines.

Shape assertions (paper anchors): speedup grows with the loss budget toward
~9.5x at 2% loss, and SOFA's advantage over GPU LP+FA2 sits near 3x.
"""

from repro.experiments.gains import case_gains
from repro.experiments.suite import measure_case


def _gain_chain():
    m = measure_case("llama-7b/wikitext2", 2.0)
    return case_gains(m, "gpu")


def test_fig19_throughput_gain(benchmark, experiment):
    gains = benchmark(_gain_chain)
    assert gains.total > gains.software > 1.0

    result = experiment("fig19")
    h = result.headline
    assert h["sofa_speedup_loss0"] < h["sofa_speedup_loss2"]
    assert 5.0 < h["sofa_speedup_loss2"] < 14.0
    assert 2.0 < h["sofa_over_lp_fa2"] < 4.5
    assert h["sofa_over_lp_fa1"] > h["sofa_over_lp_fa2"]
