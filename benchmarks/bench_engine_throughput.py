"""Engine bench: requests/sec of batched serving vs the sequential path.

Acceptance anchor: on an 8-head batch the fused engine must at least match a
Python loop of per-head ``SofaAttention`` calls (in practice it wins by
fusing the DLZS matmuls and streaming all rows through SADS/SU-FA at once).

Run as a script to record the measurement in ``BENCH_engine.json``:

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.core.config import SofaConfig
from repro.core.pipeline import SofaAttention
from repro.engine import AttentionRequest, SofaEngine
from repro.utils.rng import make_rng

N_HEADS = 8
SEQ_LEN = 256
N_QUERIES = 16
HIDDEN = 32
HEAD_DIM = 32
CONFIG = SofaConfig(tile_cols=32, top_k=0.15)


def _make_requests(seed: int = 21) -> list[AttentionRequest]:
    rng = make_rng(seed)
    return [
        AttentionRequest(
            tokens=rng.integers(-100, 100, size=(SEQ_LEN, HIDDEN)).astype(np.float64),
            q=rng.normal(size=(N_QUERIES, HEAD_DIM)),
            wk=rng.normal(size=(HIDDEN, HEAD_DIM)),
            wv=rng.normal(size=(HIDDEN, HEAD_DIM)),
        )
        for _ in range(N_HEADS)
    ]


def _run_engine(requests: list[AttentionRequest]):
    engine = SofaEngine(CONFIG, max_batch_heads=N_HEADS)
    return engine.run(requests)


def _run_sequential(requests: list[AttentionRequest]):
    return [SofaAttention(r.wk, r.wv, CONFIG)(r.tokens, r.q) for r in requests]


def _requests_per_sec(fn, requests, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(requests)
        best = min(best, time.perf_counter() - t0)
    return len(requests) / best


def measure() -> dict:
    """One full measurement: both paths plus a parity confirmation."""
    requests = _make_requests()
    engine_results = _run_engine(requests)
    sequential_results = _run_sequential(requests)
    exact = all(
        a.output.tobytes() == b.output.tobytes()
        and np.array_equal(a.selected, b.selected)
        for a, b in zip(sequential_results, engine_results)
    )
    seq_rps = _requests_per_sec(_run_sequential, requests)
    eng_rps = _requests_per_sec(_run_engine, requests)
    return {
        "bench": "engine_throughput",
        "workload": {
            "n_heads": N_HEADS,
            "seq_len": SEQ_LEN,
            "n_queries": N_QUERIES,
            "hidden": HIDDEN,
            "head_dim": HEAD_DIM,
            "tile_cols": CONFIG.tile_cols,
            "top_k": CONFIG.top_k,
        },
        "sequential_requests_per_sec": seq_rps,
        "engine_requests_per_sec": eng_rps,
        "speedup": eng_rps / seq_rps,
        "bit_identical": exact,
    }


def test_engine_throughput(benchmark):
    requests = _make_requests()
    results = benchmark(_run_engine, requests)
    assert len(results) == N_HEADS


def test_engine_at_least_matches_sequential_on_8_heads():
    record = measure()
    assert record["bit_identical"]
    assert record["speedup"] >= 1.0, (
        f"batched path slower than sequential: {record['speedup']:.2f}x"
    )


def main() -> None:
    record = measure()
    out = pathlib.Path(__file__).resolve().parent / "BENCH_engine.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
