"""Engine bench: batched serving, executor backends, caching, clustering.

Three measurements, three artifacts:

* ``BENCH_engine.json`` (PR 1): requests/sec of the fused batched engine vs
  a Python loop of per-head ``SofaAttention`` calls.  Acceptance anchor: on
  an 8-head batch the engine must at least match the loop.  PR 8 added
  per-request latency quantiles (p50/p90/p99) read from the telemetry
  plane's ``sofa_engine_request_latency_seconds`` histogram.
* ``BENCH_engine_continuous.json``: the continuous serving paths - one
  mixed-shape stream through ``backend="sync"`` vs ``backend="threads"``,
  and a growing-sequence decode loop with the decode-step cache cold vs
  warm.  Every path must stay bit-identical; the cached decode loop must
  record a real speedup (it skips re-quantizing the context prefix).
* ``BENCH_cluster.json`` (``--cluster N``): worker-count scaling of the
  sharded :class:`~repro.cluster.EngineCluster` on a decode stream of
  many concurrent sequences under a **fixed per-worker decode-cache
  budget**.  One worker cannot hold the whole working set (its LRU
  thrashes on the round-robin sequence scan: 0% hits), while the sharded
  tier's aggregate cache capacity is the sum of the workers' -
  ``cache_affinity`` routing pins each sequence to one worker, whose
  shard then fits.  On a single CPU the recorded scaling is therefore the
  *cache-capacity* win alone (every process shares one core); on
  multi-core hosts the worker processes additionally run their CPU-bound
  engines in parallel, compounding the ratio.  Every worker count must
  stay bit-identical to single-engine serving.

Run as a script to record them:

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py \
        [--quick] [--cluster N]

``--quick`` (or ``SOFA_BENCH_QUICK=1``) shrinks shapes for CI smoke runs;
``--cluster N`` measures worker counts (1, 2, 4) up to ``N``.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

import numpy as np
import pytest

import repro.obs as obs
from repro.cluster import EngineCluster
from repro.core.config import SofaConfig
from repro.core.pipeline import SofaAttention
from repro.engine import AttentionRequest, SofaEngine
from repro.utils.rng import make_rng

N_HEADS = 8
SEQ_LEN = 256
N_QUERIES = 16
HIDDEN = 32
HEAD_DIM = 32
CONFIG = SofaConfig(tile_cols=32, top_k=0.15)

#: Continuous-serving workload (full / --quick).
STREAM_SHAPES = {False: (256, 128), True: (96, 64)}  # two S classes
STREAM_REQUESTS = {False: 32, True: 8}
DECODE_CONTEXT = {False: 512, True: 64}
DECODE_STEPS = {False: 16, True: 4}
DECODE_HIDDEN = {False: 128, True: 24}
CONTINUOUS_CONFIG = SofaConfig(tile_cols=64, top_k=0.1)


def _make_requests(seed: int = 21) -> list[AttentionRequest]:
    rng = make_rng(seed)
    return [
        AttentionRequest(
            tokens=rng.integers(-100, 100, size=(SEQ_LEN, HIDDEN)).astype(np.float64),
            q=rng.normal(size=(N_QUERIES, HEAD_DIM)),
            wk=rng.normal(size=(HIDDEN, HEAD_DIM)),
            wv=rng.normal(size=(HIDDEN, HEAD_DIM)),
        )
        for _ in range(N_HEADS)
    ]


def _run_engine(requests: list[AttentionRequest]):
    engine = SofaEngine(CONFIG, max_batch_heads=N_HEADS)
    return engine.run(requests)


def _run_sequential(requests: list[AttentionRequest]):
    return [SofaAttention(r.wk, r.wv, CONFIG)(r.tokens, r.q) for r in requests]


def _requests_per_sec(fn, requests, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(requests)
        best = min(best, time.perf_counter() - t0)
    return len(requests) / best


def _bit_identical(a_results, b_results) -> bool:
    """The parity predicate every path must satisfy: same output bits, same
    selected indices, request by request."""
    return all(
        a.output.tobytes() == b.output.tobytes()
        and np.array_equal(a.selected, b.selected)
        for a, b in zip(a_results, b_results)
    )


def _engine_request_latency() -> dict:
    """Per-request latency quantiles of one engine pass over the workload,
    read from the telemetry plane's latency histogram (submit to resolve,
    queueing included - what a caller actually waits)."""
    obs.reset_telemetry(enabled=True)
    try:
        _run_engine(_make_requests())
        snap = obs.get_telemetry().registry.snapshot()
        hist = snap["histograms"]["sofa_engine_request_latency_seconds"]
    finally:
        obs.reset_telemetry()  # back to the environment's verdict
    return {
        "p50_s": hist["p50"],
        "p90_s": hist["p90"],
        "p99_s": hist["p99"],
        "count": hist["count"],
    }


def measure() -> dict:
    """One full measurement: both paths plus a parity confirmation."""
    requests = _make_requests()
    engine_results = _run_engine(requests)
    sequential_results = _run_sequential(requests)
    exact = _bit_identical(sequential_results, engine_results)
    seq_rps = _requests_per_sec(_run_sequential, requests)
    eng_rps = _requests_per_sec(_run_engine, requests)
    return {
        "bench": "engine_throughput",
        "workload": {
            "n_heads": N_HEADS,
            "seq_len": SEQ_LEN,
            "n_queries": N_QUERIES,
            "hidden": HIDDEN,
            "head_dim": HEAD_DIM,
            "tile_cols": CONFIG.tile_cols,
            "top_k": CONFIG.top_k,
        },
        "sequential_requests_per_sec": seq_rps,
        "engine_requests_per_sec": eng_rps,
        "speedup": eng_rps / seq_rps,
        "engine_request_latency": _engine_request_latency(),
        "bit_identical": exact,
    }


# --------------------------------------------------- continuous serving bench
def _make_stream(quick: bool, seed: int = 31) -> list[AttentionRequest]:
    rng = make_rng(seed)
    shapes = STREAM_SHAPES[quick]
    h, d, t = 32, 32, 8
    return [
        AttentionRequest(
            tokens=rng.integers(-100, 100, size=(shapes[i % 2], h)).astype(np.float64),
            q=rng.normal(size=(t, d)),
            wk=rng.normal(size=(h, d)),
            wv=rng.normal(size=(h, d)),
        )
        for i in range(STREAM_REQUESTS[quick])
    ]


def _stream_through(backend: str, requests: list[AttentionRequest]):
    with SofaEngine(
        CONTINUOUS_CONFIG, max_batch_heads=8, backend=backend
    ) as engine:
        # Warm-up pass outside the timed region: spawns the thread pool and
        # builds the per-weight operators, so both backends are measured at
        # steady state rather than on first-call setup cost.
        engine.run(requests)
        t0 = time.perf_counter()
        results = engine.run(requests)
        spent = time.perf_counter() - t0
    return results, len(requests) / spent


def _decode_loop(quick: bool, use_cache: bool, seed: int = 41):
    rng = make_rng(seed)
    h = DECODE_HIDDEN[quick]
    steps = DECODE_STEPS[quick]
    context = rng.integers(-100, 100, size=(DECODE_CONTEXT[quick], h)).astype(
        np.float64
    )
    news = [rng.integers(-100, 100, size=(1, h)).astype(np.float64) for _ in range(steps)]
    queries = [rng.normal(size=(1, h)) for _ in range(steps)]
    wk = rng.normal(size=(h, h))
    wv = rng.normal(size=(h, h))
    engine = SofaEngine(CONTINUOUS_CONFIG)
    tokens = context
    outputs = []
    t0 = time.perf_counter()
    for i in range(steps):
        tokens = np.concatenate([tokens, news[i]])
        future = engine.submit(
            AttentionRequest(
                tokens=tokens,
                q=queries[i],
                wk=wk,
                wv=wv,
                cache_key="decode-seq" if use_cache else None,
            )
        )
        engine.flush()
        outputs.append(future.result())
    return time.perf_counter() - t0, outputs, engine


def measure_continuous(quick: bool = False) -> dict:
    """Sync vs threads on one stream, plus cold vs warm decode caching."""
    requests = _make_stream(quick)
    sync_results, sync_rps = _stream_through("sync", requests)
    threads_results, threads_rps = _stream_through("threads", requests)
    stream_exact = _bit_identical(sync_results, threads_results)

    cold_s, cold_out, _ = _decode_loop(quick, use_cache=False)
    warm_s, warm_out, engine = _decode_loop(quick, use_cache=True)
    decode_exact = _bit_identical(cold_out, warm_out)
    cache = engine.stats.cache
    return {
        "bench": "engine_continuous",
        "quick": quick,
        "stream": {
            "n_requests": len(requests),
            "seq_lens": sorted(set(STREAM_SHAPES[quick])),
            "sync_requests_per_sec": sync_rps,
            "threads_requests_per_sec": threads_rps,
            "threads_vs_sync": threads_rps / sync_rps,
            "bit_identical": stream_exact,
        },
        "decode": {
            "context_len": DECODE_CONTEXT[quick],
            "steps": DECODE_STEPS[quick],
            "hidden": DECODE_HIDDEN[quick],
            "uncached_s": cold_s,
            "cached_s": warm_s,
            "cached_speedup": cold_s / warm_s,
            "cache_hits": cache.hits,
            "cache_misses": cache.misses,
            "cache_invalidations": cache.invalidations,
            "rows_reused": cache.rows_reused,
            "bit_identical": decode_exact,
        },
    }


# ------------------------------------------------------------- cluster bench
#: Cluster decode-stream workload (full / --quick): N_SEQ concurrent decode
#: sequences scanned round-robin, each worker capped at CLUSTER_CACHE
#: decode-cache entries (the fixed per-process memory budget that makes
#: aggregate capacity scale with workers).
CLUSTER_N_SEQ = {False: 48, True: 8}
CLUSTER_STEPS = {False: 6, True: 3}
CLUSTER_CONTEXT = {False: 512, True: 48}
CLUSTER_HIDDEN = {False: 192, True: 24}
CLUSTER_DK = {False: 64, True: 16}
CLUSTER_CACHE = {False: 24, True: 5}
CLUSTER_WORKER_COUNTS = (1, 2, 4)
CLUSTER_REPEATS = 3
CLUSTER_CONFIG = SofaConfig(tile_cols=64, top_k=0.05)


def _cluster_workload(quick: bool, seed: int = 61):
    rng = make_rng(seed)
    h, dk = CLUSTER_HIDDEN[quick], CLUSTER_DK[quick]
    wk = rng.normal(size=(h, dk)).astype(np.float32)
    wv = rng.normal(size=(h, dk)).astype(np.float32)
    tokens = [
        rng.integers(-100, 100, size=(CLUSTER_CONTEXT[quick], h)).astype(np.float32)
        for _ in range(CLUSTER_N_SEQ[quick])
    ]
    return wk, wv, tokens


def _cluster_stream(
    frontend, quick: bool, tokens, wk, wv, n_steps: int, seed_base: int
):
    """Drive ``n_steps`` decode rounds over every sequence; returns results.

    ``frontend`` is anything with the engine call surface (a
    ``SofaEngine`` or an ``EngineCluster``) - the same stream drives both,
    which is what makes the parity comparison meaningful.  ``tokens`` is
    mutated (sequences grow), so callers pass per-run copies.
    """
    h, dk = CLUSTER_HIDDEN[quick], CLUSTER_DK[quick]
    results = []
    for step in range(n_steps):
        futures = []
        for i in range(len(tokens)):
            step_rng = make_rng(seed_base + step * len(tokens) + i)
            tokens[i] = np.concatenate(
                [tokens[i], step_rng.integers(-100, 100, size=(1, h)).astype(np.float32)]
            )
            futures.append(
                frontend.submit(
                    AttentionRequest(
                        tokens=tokens[i],
                        q=step_rng.normal(size=(1, dk)),
                        wk=wk,
                        wv=wv,
                        cache_key=f"seq-{i}",
                    )
                )
            )
        frontend.flush()
        results.extend(f.result() for f in futures)
    return results


def measure_cluster(quick: bool = False, max_workers: int = 4) -> dict:
    """Worker-count scaling of the sharded tier on the decode stream.

    Every worker count serves the *same* request stream; outputs must be
    bit-identical to a single engine serving it (the parity predicate of
    every other path in this file).  Timing is best-of-``CLUSTER_REPEATS``
    steady-state passes (operators built, caches in steady state).
    """
    wk, wv, base_tokens = _cluster_workload(quick)
    n_seq, steps = CLUSTER_N_SEQ[quick], CLUSTER_STEPS[quick]
    counts = [w for w in CLUSTER_WORKER_COUNTS if w <= max_workers]

    # Parity reference: one engine, same per-process cache budget.
    ref_engine = SofaEngine(
        CLUSTER_CONFIG, max_batch_heads=16, cache_entries=CLUSTER_CACHE[quick]
    )
    ref = _cluster_stream(
        ref_engine, quick, [t.copy() for t in base_tokens], wk, wv, steps, 10_000
    )

    points = []
    exact = True
    for n_workers in counts:
        with EngineCluster(
            n_workers=n_workers,
            config=CLUSTER_CONFIG,
            routing="cache_affinity",
            cache_entries=CLUSTER_CACHE[quick],
            max_batch_heads=16,
            dedup=False,  # growing sequences never repeat bit-identically
        ) as cluster:
            got = _cluster_stream(
                cluster, quick, [t.copy() for t in base_tokens], wk, wv, steps, 10_000
            )
            exact = exact and _bit_identical(ref, got)
            # Steady-state timing: sequences keep growing across repeats
            # (a handful of appended rows against a long context), so every
            # pass runs the warm cache-affinity regime; best-of damps the
            # scheduler noise of shared hosts.
            tokens = [t.copy() for t in base_tokens]
            _cluster_stream(cluster, quick, tokens, wk, wv, steps, 20_000)  # warm
            hits0 = cluster.stats.cache.hits
            best = float("inf")
            for repeat in range(CLUSTER_REPEATS):
                t0 = time.perf_counter()
                _cluster_stream(
                    cluster, quick, tokens, wk, wv, steps, 30_000 + repeat * 10_000
                )
                best = min(best, time.perf_counter() - t0)
            cache = cluster.stats.cache
            lookups = n_seq * steps * CLUSTER_REPEATS
            points.append(
                {
                    "workers": n_workers,
                    "requests_per_sec": n_seq * steps / best,
                    "steady_hit_rate": (cache.hits - hits0) / lookups,
                    "evictions": cache.evictions,
                }
            )
    ref_engine.shutdown()

    by_workers = {p["workers"]: p["requests_per_sec"] for p in points}
    top = max(counts)
    return {
        "bench": "engine_cluster",
        "quick": quick,
        "mechanism": (
            "fixed per-worker decode-cache budget; cache_affinity sharding "
            "multiplies aggregate cache capacity (single-CPU hosts measure "
            "this alone; multi-core hosts add process parallelism of the "
            "workers' CPU-bound engines)"
        ),
        "workload": {
            "n_sequences": n_seq,
            "steps_per_pass": steps,
            "context_len": CLUSTER_CONTEXT[quick],
            "hidden": CLUSTER_HIDDEN[quick],
            "head_dim": CLUSTER_DK[quick],
            "cache_entries_per_worker": CLUSTER_CACHE[quick],
            "routing": "cache_affinity",
        },
        "points": points,
        "scaling_vs_single_worker": {
            str(w): by_workers[w] / by_workers[1] for w in counts
        },
        "speedup_max_workers_vs_1": by_workers[top] / by_workers[1],
        "bit_identical": exact,
    }


def test_engine_throughput(benchmark):
    requests = _make_requests()
    results = benchmark(_run_engine, requests)
    assert len(results) == N_HEADS


def test_engine_at_least_matches_sequential_on_8_heads():
    requests = _make_requests()
    assert _bit_identical(_run_sequential(requests), _run_engine(requests))
    # The wall-clock anchor (engine >= sequential loop) only gates
    # uncontended local runs, at best-of-5 to ride out scheduler noise.
    # Shared CI runners jitter far beyond any honest headroom, so there the
    # recorded measurement (BENCH_engine.json, bench-smoke artifact) is the
    # evidence and bit parity above is the hard assertion.
    if not os.environ.get("CI"):
        seq_rps = _requests_per_sec(_run_sequential, requests, repeats=5)
        eng_rps = _requests_per_sec(_run_engine, requests, repeats=5)
        assert eng_rps >= seq_rps, (
            f"batched path slower than sequential: {eng_rps / seq_rps:.2f}x"
        )


def test_continuous_paths_stay_bit_identical_quick():
    """Threads backend and cached decode must not move a single bit."""
    record = measure_continuous(quick=True)
    assert record["stream"]["bit_identical"]
    assert record["decode"]["bit_identical"]
    # every step after the first extends the cached prefix
    assert record["decode"]["cache_hits"] == DECODE_STEPS[True] - 1
    assert record["decode"]["cache_misses"] == 1


@pytest.mark.cluster
def test_cluster_scaling_stays_bit_identical_quick():
    """Every worker count serves the stream bit-identically to one engine."""
    record = measure_cluster(quick=True, max_workers=2)
    assert record["bit_identical"]
    assert [p["workers"] for p in record["points"]] == [1, 2]
    # the fixed per-worker budget must actually bind on one worker
    # (otherwise the scaling mechanism being measured is absent)
    assert record["points"][0]["steady_hit_rate"] < 0.5
    assert record["points"][1]["steady_hit_rate"] > record["points"][0]["steady_hit_rate"]


def main() -> None:
    args = sys.argv[1:]
    quick = "--quick" in args or os.environ.get("SOFA_BENCH_QUICK") == "1"
    cluster_workers = 0
    if "--cluster" in args:
        at = args.index("--cluster")
        if at + 1 >= len(args) or not args[at + 1].isdigit():
            raise SystemExit("usage: --cluster N  (max worker count, e.g. 4)")
        cluster_workers = int(args[at + 1])
    here = pathlib.Path(__file__).resolve().parent
    if not quick:
        # The PR-1 measurement has no tiny-shape mode; quick runs (CI smoke)
        # skip it and keep the committed BENCH_engine.json untouched.
        record = measure()
        (here / "BENCH_engine.json").write_text(json.dumps(record, indent=2) + "\n")
        print(json.dumps(record, indent=2))
    continuous = measure_continuous(quick=quick)
    if not continuous["decode"]["bit_identical"] or not continuous["stream"]["bit_identical"]:
        raise SystemExit("continuous serving paths diverged from the sequential engine")
    # Quick runs (CI smoke, local sanity) must not clobber the committed
    # full-shape evidence - they record to a _quick sibling instead.
    continuous_out = here / (
        "BENCH_engine_continuous_quick.json" if quick else "BENCH_engine_continuous.json"
    )
    continuous_out.write_text(json.dumps(continuous, indent=2) + "\n")
    print(json.dumps(continuous, indent=2))
    cluster_out = None
    if cluster_workers:
        record = measure_cluster(quick=quick, max_workers=cluster_workers)
        if not record["bit_identical"]:
            raise SystemExit("cluster serving diverged from the single engine")
        cluster_out = here / (
            "BENCH_cluster_quick.json" if quick else "BENCH_cluster.json"
        )
        cluster_out.write_text(json.dumps(record, indent=2) + "\n")
        print(json.dumps(record, indent=2))
    if not quick:
        print(f"\nwrote {here / 'BENCH_engine.json'}")
    print(f"wrote {continuous_out}")
    if cluster_out:
        print(f"wrote {cluster_out}")


if __name__ == "__main__":
    main()
