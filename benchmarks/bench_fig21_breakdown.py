"""Fig. 21 bench: per-engine gain breakdown on GPU and TPU.

Shape assertions: every engine contributes >1x on both devices, the TPU
benefits more from DLZS/SADS/RASS (its control weaknesses) while the GPU
benefits more from SU-FA - the asymmetry the paper reports.
"""

from repro.experiments.gains import case_gains
from repro.experiments.suite import measure_case


def _both_devices():
    m = measure_case("bloom-1b7/wikitext2", 2.0)
    return case_gains(m, "gpu"), case_gains(m, "tpu")


def test_fig21_breakdown(benchmark, experiment):
    gpu, tpu = benchmark(_both_devices)
    assert gpu.hardware > 1.0 and tpu.hardware > 1.0

    result = experiment("fig21")
    h = result.headline
    assert h["tpu_dlzs_gain"] > h["gpu_dlzs_gain"]
    assert h["tpu_sads_gain"] > h["gpu_sads_gain"]
    assert h["gpu_sufa_gain"] > h["tpu_sufa_gain"]
    assert h["tpu_rass_gain"] > h["gpu_rass_gain"]
    assert h["gpu_total_gain"] > 4.0
