"""Fig. 15 bench: RASS scheduling vs naive KV execution.

Benchmarks the greedy scheduler on a realistic requirement set; asserts the
paper's worked example (24 -> 16 vectors, 33% reduction) exactly and that
RASS never loads more than naive on workload-derived requirements.
"""

from repro.attention.topk import exact_topk_indices
from repro.hw.scheduler.rass import (
    FIG15_BUFFER_CAPACITY,
    FIG15_REQUIREMENTS,
    naive_schedule,
    rass_schedule,
    schedule_is_valid,
)
from repro.model.workloads import make_workload


def _workload_requirements():
    wl = make_workload("llama-7b/wikitext2", n_queries=64, head_dim=64,
                       seq_len=512, seed=15)
    sel = exact_topk_indices(wl.scores(), 48)
    return [set(map(int, row)) for row in sel]


def test_fig15_rass_schedule(benchmark, experiment):
    reqs = _workload_requirements()
    report = benchmark(rass_schedule, reqs, 64)
    assert schedule_is_valid(reqs, report)
    assert report.vector_loads <= naive_schedule(reqs, 64).vector_loads

    naive = naive_schedule(FIG15_REQUIREMENTS, FIG15_BUFFER_CAPACITY)
    rass = rass_schedule(FIG15_REQUIREMENTS, FIG15_BUFFER_CAPACITY)
    assert naive.vector_loads == 24
    assert rass.vector_loads == 16

    result = experiment("fig15")
    assert abs(result.headline["paper_example_reduction_pct"] - 33.33) < 0.1
