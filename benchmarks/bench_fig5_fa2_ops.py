"""Fig. 5 bench: FlashAttention-2 op growth vs vanilla attention.

Benchmarks the executed FA-2 simulator; shape assertions mirror the paper's
panel claims: exp/rescale work grows with tile count, and finer tiling costs
strictly more normalized complexity at every sequence length.
"""

import numpy as np

from repro.attention.flash import flash_attention, vanilla_attention_ops
from repro.utils.rng import make_rng


def _run_fa2(q, k, v):
    return flash_attention(q, k, v, tile_cols=16)


def test_fig5_fa2_kernel(benchmark, experiment):
    rng = make_rng(5)
    q = rng.normal(size=(64, 64))
    k = rng.normal(size=(1024, 64))
    v = rng.normal(size=(1024, 64))
    res = benchmark(_run_fa2, q, k, v)

    vanilla = vanilla_attention_ops(64, 1024, 64)
    assert res.ops["exp"] > vanilla["exp"]
    np.testing.assert_allclose(
        res.output, flash_attention(q, k, v, tile_cols=256).output, atol=1e-9
    )

    result = experiment("fig5")
    by_key = {(r[0], r[1]): r[5] for r in result.rows}
    for s in sorted({r[0] for r in result.rows}):
        assert by_key[(s, 4)] > by_key[(s, 16)] > by_key[(s, 64)]
