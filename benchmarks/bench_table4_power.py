"""Table IV bench: core / interface / DRAM power split at 59.8 GB/s.

Asserts the published split: 0.95 W core, 0.53 W interface, 1.92 W DRAM,
3.40 W overall.
"""

from repro.hw.area_power import table_iv_power_breakdown


def test_table4_power_split(benchmark, experiment):
    split = benchmark(table_iv_power_breakdown)
    assert abs(split["core_w"] - 0.95) < 0.01
    assert abs(split["interface_w"] - 0.53) < 0.01
    assert abs(split["dram_w"] - 1.92) < 0.01
    assert abs(split["overall_w"] - 3.40) < 0.02

    result = experiment("table4")
    assert abs(result.headline["overall_power_w"] - 3.40) < 0.02
