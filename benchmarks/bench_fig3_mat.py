"""Fig. 3 bench: FACT/Energon memory-access-time shares under parallelism.

Shape assertions: the MAT share rises with parallelism on every panel and is
substantial (the paper reports ~72% average; our analytic model lands above
35% at scale - see EXPERIMENTS.md for the deviation note).
"""

from repro.baselines.accel_models import FIG3_PANELS, fig3_series, mat_breakdown


def test_fig3_mat_series(benchmark, experiment):
    rows = benchmark(fig3_series, "fact")
    assert len(rows) == 2 * len(FIG3_PANELS)

    for model, seq_len, t_max in FIG3_PANELS:
        low = mat_breakdown("fact", model, seq_len, 1).mat_share
        high = mat_breakdown("fact", model, seq_len, t_max).mat_share
        assert high > low

    result = experiment("fig3")
    assert result.headline["average_mat_share_at_scale_pct"] > 35.0
