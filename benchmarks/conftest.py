"""Shared benchmark fixtures: experiment results cached per session.

Suite-backed experiments reuse the lru-cached :func:`measure_case`, so each
is computed once per pytest session regardless of how many benchmarks read
its rows.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import get_experiment


@pytest.fixture(scope="session")
def experiment():
    """Factory returning (and caching) quick-mode experiment results."""
    cache: dict[str, object] = {}

    def run(experiment_id: str):
        if experiment_id not in cache:
            cache[experiment_id] = get_experiment(experiment_id)(quick=True)
        return cache[experiment_id]

    return run
