"""Fig. 1 bench: memory/compute breakdown profiles across sequence lengths.

Regenerates the Fig. 1 rows and times the analytic profiler over the full
Llama-7B sweep.  Shape assertions: attention's compute share crosses 50%
past ~32k tokens and dominates at 128k.
"""

from repro.model.config import get_model
from repro.model.profiler import breakdown_shares


def _sweep():
    cfg = get_model("llama-7b")
    return [breakdown_shares(cfg, s) for s in (4096, 16384, 32768, 65536, 131072)]


def test_fig1_profile_sweep(benchmark, experiment):
    shares = benchmark(_sweep)
    assert shares[0]["attention"]["compute_share"] < 0.5
    assert shares[-1]["attention"]["compute_share"] > 0.75

    result = experiment("fig1")
    assert result.headline["llama7b_attention_compute_share_at_128k"] > 75.0
