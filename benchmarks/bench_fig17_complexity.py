"""Fig. 17 bench: the DLZS/SADS/SU-FA complexity-reduction ablation.

Benchmarks one full case measurement (the unit of work behind the figure);
asserts the stacked reductions are ordered and in the paper's neighbourhood
(paper: -18% / -25% / -28%).
"""

from repro.experiments.suite import measure_case


def _measure_uncached():
    measure_case.cache_clear()
    return measure_case("bert-b/sst2", 2.0)


def test_fig17_complexity_ablation(benchmark, experiment):
    m = benchmark.pedantic(_measure_uncached, rounds=3, iterations=1)
    c = m.complexity
    assert c["sofa"] < c["dlzs"] < c["baseline"]

    result = experiment("fig17")
    h = result.headline
    assert h["dlzs_reduction_pct"] < h["dlzs_sads_reduction_pct"]
    assert h["dlzs_sads_reduction_pct"] <= h["sofa_reduction_pct"]
    assert 10 < h["sofa_reduction_pct"] < 55
