"""Telemetry-overhead bench: the obs plane must be nearly free when on.

The ``repro.obs`` plane compiles to no-ops when disabled, but the honest
question is what it costs when **enabled**: every request on the hot path
then pays counters, latency histograms, and span starts/ends across the
engine's submit/batch/stage layers.  This bench serves the PR-7
long-selection stream (the fused predict+select workload of
``bench_kernel_sufa.measure_fused_engine`` - the heaviest per-request
path in the repo) through one ``SofaEngine`` twice per round, toggling
the global telemetry switch between the passes, and records

    ``obs_overhead_ratio`` = enabled requests/sec / disabled requests/sec

an intra-run *ratio* (hardware-class independent, like the kernel
speedups).  The acceptance bar on the full workload is >= 0.97 - i.e.
under 3% overhead with the full plane live.  Timing interleaves the two
switch states round-robin (same reason ``_best_of_interleaved`` exists in
the kernel bench: host-load drift then penalizes both sides).  Outputs
must be bit-identical across the toggle - the standing parity contract -
and a full run aborts if they are not.

Run as a script to record ``BENCH_obs.json``:

    PYTHONPATH=src python benchmarks/bench_obs.py [--quick]

``--quick`` (or ``SOFA_BENCH_QUICK=1``) shrinks shapes for CI smoke runs
and records to ``BENCH_obs_quick.json`` so the committed full-shape
evidence stays untouched.  The quick artifact's ratio is gated by
``check_bench_regression.py``.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

import numpy as np

import repro.obs as obs
from repro.core.config import SofaConfig
from repro.engine import AttentionRequest, SofaEngine
from repro.utils.rng import make_rng

#: The PR-7 long-selection stream (full / --quick): kk = top_k * s = 512
#: selected keys per query row on the full shapes, served under the fused
#: predict+select kernel mapping - the configuration whose throughput the
#: fused-engine acceptance bar guards, and therefore the stream where
#: telemetry overhead would hurt most visibly.
WORKLOAD = {
    False: dict(s=4096, t=128, n=4, h=64, dk=64, top_k=0.125, tile_cols=64),
    True: dict(s=1024, t=32, n=4, h=64, dk=64, top_k=0.125, tile_cols=64),
}
REPEATS = {False: 7, True: 2}

#: Full-run acceptance floor for ``obs_overhead_ratio`` (< 3% overhead).
OVERHEAD_FLOOR = 0.97


def _make_requests(w: dict, seed: int = 47) -> list[AttentionRequest]:
    rng = make_rng(seed)
    return [
        AttentionRequest(
            tokens=rng.integers(-100, 100, size=(w["s"], w["h"])).astype(np.float64),
            q=rng.normal(size=(w["t"], w["dk"])),
            wk=rng.normal(size=(w["h"], w["dk"])),
            wv=rng.normal(size=(w["h"], w["dk"])),
        )
        for _ in range(w["n"])
    ]


def _best_of_interleaved(fns: dict, repeats: int) -> dict:
    """Best-of timing with the candidates interleaved round-robin (the
    kernel bench's idiom): slow host phases penalize every candidate in
    the round instead of whichever happened to run last."""
    best = {name: float("inf") for name in fns}
    for _ in range(repeats):
        for name, fn in fns.items():
            t0 = time.perf_counter()
            fn()
            best[name] = min(best[name], time.perf_counter() - t0)
    return best


def _fingerprints(results):
    return [
        (
            r.output.tobytes(),
            r.selected.tobytes(),
            tuple(sorted(r.total_ops.counts.items())),
        )
        for r in results
    ]


def measure_obs_overhead(quick: bool = False) -> dict:
    """Enabled vs disabled serving rate on the long-selection stream.

    One engine serves both switch states, so the only difference between
    the timed passes is the telemetry flag itself.  The plane is reset
    *before* the engine is built (operators capture the singleton at
    build time) and restored to the environment's verdict afterwards.
    """
    w = WORKLOAD[quick]
    requests = _make_requests(w)
    telemetry = obs.reset_telemetry(enabled=False)
    engine = SofaEngine(
        SofaConfig(tile_cols=w["tile_cols"], top_k=w["top_k"]),
        max_batch_heads=8,
        kernel={"predict": "fused", "select": "fused"},
    )
    try:
        # Parity across the toggle, measured before any timing: the plane
        # must not move a single output bit, selection index, or op count.
        ref = _fingerprints(engine.run(requests))  # also warms the operators
        obs.enable()
        got = _fingerprints(engine.run(requests))
        obs.disable()
        exact = ref == got

        def run_disabled():
            obs.disable()
            engine.run(requests)

        def run_enabled():
            obs.enable()
            engine.run(requests)

        times = _best_of_interleaved(
            {"disabled": run_disabled, "enabled": run_enabled}, REPEATS[quick]
        )
        snapshot = telemetry.registry.snapshot()
        n_spans = len(telemetry.tracer.spans())
    finally:
        engine.shutdown()
        obs.reset_telemetry()  # back to the environment's verdict

    latency = snapshot["histograms"]["sofa_engine_request_latency_seconds"]
    n = w["n"]
    return {
        "bench": "obs_overhead",
        "quick": quick,
        "workload": {**w, "kernel": "fused predict+select", "repeats": REPEATS[quick]},
        "disabled_requests_per_sec": n / times["disabled"],
        "enabled_requests_per_sec": n / times["enabled"],
        # rps ratio == time ratio inverted: intra-run, hardware-independent
        "obs_overhead_ratio": times["disabled"] / times["enabled"],
        "bit_identical": exact,
        # proof the enabled passes exercised the full plane, not a stub
        "enabled_plane_observed": {
            "requests_total": snapshot["counters"]["sofa_engine_requests_total"],
            "request_latency_p50_s": latency["p50"],
            "request_latency_p99_s": latency["p99"],
            "stage_histograms": sorted(
                name
                for name in snapshot["histograms"]
                if name.startswith("sofa_stage_")
            ),
            "spans_recorded": n_spans,
        },
    }


def test_obs_overhead_parity_and_coverage_quick():
    """The toggle must not move a bit, and the enabled plane must have
    genuinely observed the stream it did not perturb.  Wall-clock ratios
    are evidence (BENCH artifacts, gated in CI), not test assertions -
    shared runners jitter beyond any honest overhead bar."""
    record = measure_obs_overhead(quick=True)
    assert record["bit_identical"]
    seen = record["enabled_plane_observed"]
    # the enabled passes ran the stream at least twice (parity + repeats)
    assert seen["requests_total"] >= 2 * WORKLOAD[True]["n"]
    assert seen["request_latency_p99_s"] >= seen["request_latency_p50_s"] > 0.0
    assert "sofa_stage_predict_select_fused_seconds" in seen["stage_histograms"]
    assert "sofa_stage_stream_seconds" in seen["stage_histograms"]
    assert seen["spans_recorded"] > 0


def main() -> None:
    quick = "--quick" in sys.argv[1:] or os.environ.get("SOFA_BENCH_QUICK") == "1"
    record = measure_obs_overhead(quick=quick)
    if not record["bit_identical"]:
        raise SystemExit("telemetry toggle changed served outputs")
    if not quick and record["obs_overhead_ratio"] < OVERHEAD_FLOOR:
        raise SystemExit(
            f"telemetry overhead above the bar: ratio "
            f"{record['obs_overhead_ratio']:.3f} < {OVERHEAD_FLOOR}"
        )
    here = pathlib.Path(__file__).resolve().parent
    out = here / ("BENCH_obs_quick.json" if quick else "BENCH_obs.json")
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
