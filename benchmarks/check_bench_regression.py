"""Bench regression gate: fresh quick-bench JSON vs committed baselines.

CI's bench-smoke job re-records the ``*_quick`` benchmark artifacts on
every push; recording alone only proves the benches *run*.  This script
makes them a **regression gate**: it compares the freshly produced
``BENCH_*_quick.json`` files against the committed baselines (snapshotted
before the benches overwrite them) and fails when a tracked throughput or
speedup metric dropped by more than the tolerance.

Tracked metrics (higher is better for all of them):

====================================  =======================================
file                                  metric
====================================  =======================================
``BENCH_engine_continuous_quick``     ``stream.sync_requests_per_sec`` - the
                                      continuous-batching engine's serving
                                      rate on the mixed-shape stream.
``BENCH_cluster_quick``               best ``requests_per_sec`` across the
                                      recorded worker counts - the sharded
                                      tier's decode-stream rate.
``BENCH_sufa_quick``                  worst ``blocked_vs_seed_loop`` across
                                      the kernel grid - the tile-blocked
                                      SU-FA kernel's speedup over the seed
                                      per-key loop (a *ratio*, so it is
                                      hardware-class independent).
``BENCH_sufa_quick``                  ``engine.blocked_requests_per_sec`` -
                                      end-to-end engine rate on the blocked
                                      kernel.
``BENCH_sufa_quick``                  worst ``fused_vs_unfused`` across the
                                      fused predict+select grid - the fused
                                      kernel's speedup over the unfused
                                      reference stages (intra-run *ratio*).
``BENCH_sufa_quick``                  ``fused_engine.fused_requests_per_sec``
                                      - end-to-end engine rate under the
                                      fused predict+select mapping on the
                                      long-selection stream.
``BENCH_cache_quick``                 ``paged.steady_hit_rate`` - the paged
                                      store's hit rate on the shared-prefix
                                      stream under byte pressure (the flat
                                      LRU scores ~0 there; a drop means
                                      sharing or spill broke).
``BENCH_obs_quick``                   ``obs_overhead_ratio`` - telemetry-
                                      enabled vs -disabled serving rate on
                                      the long-selection stream (a *ratio*
                                      near 1.0; a drop means the obs plane
                                      grew a hot-path cost).
``BENCH_cache_quick``                 ``paged_vs_flat_requests_per_sec`` -
                                      the paged store's serving-rate win
                                      over the flat LRU on that stream.
                                      Nominally a ratio, but the two
                                      stores are timed in *separate*
                                      phases, so runner contention can
                                      skew it asymmetrically - gated with
                                      the wider rate knob.
``BENCH_gateway_quick``               ``overload_p99_bound_ratio`` - how far
                                      the gateway's served-request p99
                                      under overload protection sits below
                                      2x the unloaded p99 (>= 1.0 = bound
                                      held).  Unloaded and protected
                                      phases are timed separately, so it
                                      gets the wider rate knob.
``BENCH_gateway_quick``               ``protected_completed_rps`` - served
                                      throughput the protected gateway
                                      sustains during the overload drive.
====================================  =======================================

Tolerances: a metric regresses when ``fresh < (1 - tolerance) * baseline``.
Metrics come in two kinds with separate knobs:

* **ratio** metrics (the kernel speedups) are intra-run comparisons, so
  they are hardware-class independent; the default ``--tolerance 0.2``
  (20%) sits far above honest run-to-run jitter and far below the 4.5-7.6x
  wins being guarded.
* **rate** metrics (raw requests/sec) carry the baseline machine's speed
  in their units.  On the recording machine 20% is the right bar; on a
  *different* hardware class (committed dev-box baselines vs shared CI
  runners) an honest run can sit well below the baseline, so CI passes a
  wider ``--rate-tolerance`` (documented in the workflow) that still
  catches order-of-magnitude collapses (a lost kernel default, an
  accidentally quadratic path) without flaking on runner drift.
  Re-record the committed ``*_quick`` baselines (run the benches with
  ``--quick`` and commit the JSON) whenever the reference machine
  changes, then tighten.

Improvements never fail the gate; the baselines are a floor, not a pin.

Usage (what CI's bench-smoke job does):

    cp benchmarks/BENCH_*_quick.json /tmp/bench-baseline/   # before benches
    python benchmarks/bench_engine_throughput.py --quick --cluster 2
    python benchmarks/bench_kernel_sufa.py --quick
    python benchmarks/check_bench_regression.py \
        --baseline /tmp/bench-baseline --fresh benchmarks

Exit status 0 = no regression; 1 = at least one tracked metric regressed
(or a tracked file/metric is missing - schema drift must be explicit, not
silently ungated).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Callable


def _stream_sync_rps(record: dict[str, Any]) -> float:
    return float(record["stream"]["sync_requests_per_sec"])


def _cluster_best_rps(record: dict[str, Any]) -> float:
    return max(float(p["requests_per_sec"]) for p in record["points"])


def _sufa_min_kernel_speedup(record: dict[str, Any]) -> float:
    return min(float(k["blocked_vs_seed_loop"]) for k in record["kernels"])


def _sufa_engine_rps(record: dict[str, Any]) -> float:
    return float(record["engine"]["blocked_requests_per_sec"])


def _sufa_min_fused_speedup(record: dict[str, Any]) -> float:
    return min(float(k["fused_vs_unfused"]) for k in record["fused"])


def _sufa_fused_engine_rps(record: dict[str, Any]) -> float:
    return float(record["fused_engine"]["fused_requests_per_sec"])


def _obs_overhead_ratio(record: dict[str, Any]) -> float:
    return float(record["obs_overhead_ratio"])


def _cache_paged_hit_rate(record: dict[str, Any]) -> float:
    return float(record["paged"]["steady_hit_rate"])


def _cache_paged_vs_flat_rps(record: dict[str, Any]) -> float:
    return float(record["paged_vs_flat_requests_per_sec"])


def _gateway_p99_bound_ratio(record: dict[str, Any]) -> float:
    return float(record["overload_p99_bound_ratio"])


def _gateway_protected_rps(record: dict[str, Any]) -> float:
    return float(record["protected_completed_rps"])


#: (file name, human metric name, extractor, kind).  All metrics are
#: higher-is-better; "ratio" metrics are intra-run speedups (hardware-class
#: independent, tight tolerance), "rate" metrics are raw requests/sec
#: (honest only against a same-class baseline - see module docstring).
#: Extractors raise KeyError/ValueError on schema drift.
METRICS: list[tuple[str, str, Callable[[dict[str, Any]], float], str]] = [
    (
        "BENCH_engine_continuous_quick.json",
        "stream.sync_requests_per_sec",
        _stream_sync_rps,
        "rate",
    ),
    (
        "BENCH_cluster_quick.json",
        "max(points[].requests_per_sec)",
        _cluster_best_rps,
        "rate",
    ),
    (
        "BENCH_sufa_quick.json",
        "min(kernels[].blocked_vs_seed_loop)",
        _sufa_min_kernel_speedup,
        "ratio",
    ),
    (
        "BENCH_sufa_quick.json",
        "engine.blocked_requests_per_sec",
        _sufa_engine_rps,
        "rate",
    ),
    (
        "BENCH_sufa_quick.json",
        "min(fused[].fused_vs_unfused)",
        _sufa_min_fused_speedup,
        "ratio",
    ),
    (
        "BENCH_sufa_quick.json",
        "fused_engine.fused_requests_per_sec",
        _sufa_fused_engine_rps,
        "rate",
    ),
    (
        "BENCH_obs_quick.json",
        "obs_overhead_ratio",
        _obs_overhead_ratio,
        "ratio",
    ),
    (
        "BENCH_cache_quick.json",
        "paged.steady_hit_rate",
        _cache_paged_hit_rate,
        "ratio",
    ),
    # Separate-phase timing: contention skews it like a raw rate does.
    (
        "BENCH_cache_quick.json",
        "paged_vs_flat_requests_per_sec",
        _cache_paged_vs_flat_rps,
        "rate",
    ),
    # Also separate-phase (quiet unloaded run vs loaded protected run).
    (
        "BENCH_gateway_quick.json",
        "overload_p99_bound_ratio",
        _gateway_p99_bound_ratio,
        "rate",
    ),
    (
        "BENCH_gateway_quick.json",
        "protected_completed_rps",
        _gateway_protected_rps,
        "rate",
    ),
]

#: Default allowed drop before the gate fails (0.2 = 20%).
DEFAULT_TOLERANCE = 0.2


def compare(
    baseline_dir: pathlib.Path,
    fresh_dir: pathlib.Path,
    tolerance: float = DEFAULT_TOLERANCE,
    rate_tolerance: float | None = None,
) -> tuple[list[str], list[str]]:
    """Evaluate every tracked metric; returns (report lines, failures).

    ``tolerance`` applies to ratio metrics; ``rate_tolerance`` (default:
    same as ``tolerance``) to raw requests/sec metrics.
    """
    if rate_tolerance is None:
        rate_tolerance = tolerance
    lines: list[str] = []
    failures: list[str] = []
    cache: dict[pathlib.Path, dict[str, Any]] = {}

    def load(path: pathlib.Path) -> dict[str, Any] | None:
        if path not in cache:
            if not path.is_file():
                return None
            cache[path] = json.loads(path.read_text())
        return cache[path]

    for file_name, metric_name, extract, kind in METRICS:
        label = f"{file_name}: {metric_name}"
        allowed = rate_tolerance if kind == "rate" else tolerance
        base_record = load(baseline_dir / file_name)
        fresh_record = load(fresh_dir / file_name)
        if base_record is None or fresh_record is None:
            missing = baseline_dir if base_record is None else fresh_dir
            failures.append(f"{label}: missing {missing / file_name}")
            continue
        try:
            base = extract(base_record)
            fresh = extract(fresh_record)
        except (KeyError, IndexError, TypeError, ValueError) as error:
            failures.append(f"{label}: schema drift ({error!r})")
            continue
        if base <= 0:
            failures.append(f"{label}: non-positive baseline {base!r}")
            continue
        ratio = fresh / base
        verdict = "ok" if ratio >= 1.0 - allowed else "REGRESSED"
        lines.append(
            f"{verdict:>9}  {label} [{kind}]: baseline {base:.4g} -> "
            f"fresh {fresh:.4g} ({ratio:.2f}x, floor {1.0 - allowed:.2f}x)"
        )
        if verdict != "ok":
            failures.append(
                f"{label}: dropped to {ratio:.2f}x of baseline "
                f"(tolerance allows >= {1.0 - allowed:.2f}x)"
            )
    return lines, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    here = pathlib.Path(__file__).resolve().parent
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=here,
        help="directory holding the baseline BENCH_*_quick.json (default: "
        "this benchmarks/ directory, i.e. the committed files)",
    )
    parser.add_argument(
        "--fresh",
        type=pathlib.Path,
        default=here,
        help="directory holding the freshly recorded BENCH_*_quick.json",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional drop for ratio (speedup) metrics "
        "(default 0.2 = 20%%)",
    )
    parser.add_argument(
        "--rate-tolerance",
        type=float,
        default=None,
        help="allowed fractional drop for raw requests/sec metrics "
        "(default: same as --tolerance; widen when baseline and fresh "
        "runs come from different hardware classes)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")
    if args.rate_tolerance is not None and not 0.0 <= args.rate_tolerance < 1.0:
        parser.error("--rate-tolerance must be in [0, 1)")
    lines, failures = compare(
        args.baseline, args.fresh, args.tolerance, args.rate_tolerance
    )
    for line in lines:
        print(line)
    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nbench regression gate passed ({len(lines)} metric(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
