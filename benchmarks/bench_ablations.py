"""Ablation benches for the design choices DESIGN.md calls out.

* SU-FA descending vs ascending update order (paper: descending ~11% cheaper
  than ascending, ~25% cheaper than classic FA).
* SADS segment count vs recall and comparator work.
* Sphere-search radius and adjustive-exchange rounds vs recall.
* DLZS differential vs vanilla two-operand leading-zero conversion.
* RASS on/off KV loads.
* Tiled pipeline on/off latency.
"""

import numpy as np

from repro.attention.flash import flash_attention
from repro.attention.topk import exact_topk_indices, topk_recall
from repro.core.config import SadsConfig
from repro.core.dlzs import dlzs_matmul, dlzs_relative_error, vanilla_lz_matmul
from repro.core.sads import SadsSorter
from repro.core.sufa import UpdateOrder, sorted_updating_attention
from repro.hw.scheduler.controller import StageLatencies, TiledPipelineController
from repro.hw.scheduler.rass import naive_schedule, rass_schedule
from repro.model.workloads import make_workload, synthetic_scores
from repro.utils.rng import make_rng


def _sufa_setup(seed=61, t=16, s=128, d=32, k=24):
    rng = make_rng(seed)
    q = rng.normal(size=(t, d))
    kmat = rng.normal(size=(s, d))
    v = rng.normal(size=(s, d))
    sel = exact_topk_indices(q @ kmat.T / np.sqrt(d), k)
    return q, kmat, v, sel


def test_ablation_sufa_update_order(benchmark):
    """Descending order must beat ascending and classic FA on complexity."""
    q, k, v, sel = _sufa_setup()
    down = benchmark(
        sorted_updating_attention, q, k, v, sel, UpdateOrder.DESCENDING
    )
    up = sorted_updating_attention(q, k, v, sel, order=UpdateOrder.ASCENDING)
    assert down.ops.normalized() < up.ops.normalized()

    q2, k2, v2, sel_all = _sufa_setup(k=128)  # keep-all: same math as FA
    sufa_full = sorted_updating_attention(q2, k2, v2, sel_all)
    fa2 = flash_attention(q2, k2, v2, tile_cols=16)
    assert sufa_full.ops["exp"] < fa2.ops["exp"]


def test_ablation_sads_segments(benchmark):
    """More segments cut comparator work; recall degrades gracefully."""
    rng = make_rng(62)
    scores = synthetic_scores(rng, 16, 256, "nlp-encoder")
    k = 32

    def run_n4():
        return SadsSorter(SadsConfig(n_segments=4)).select(scores, k)

    res4 = benchmark(run_n4)
    res1 = SadsSorter(SadsConfig(n_segments=1)).select(scores, k)
    res16 = SadsSorter(SadsConfig(n_segments=16)).select(scores, k)
    r1 = topk_recall(res1.indices, scores, k)
    r4 = topk_recall(res4.indices, scores, k)
    r16 = topk_recall(res16.indices, scores, k)
    assert r1 >= r4 >= r16 - 0.05
    assert r16 > 0.6
    assert res16.ops["compare"] < res1.ops["compare"] * 2


def test_ablation_sphere_radius():
    """A tighter radius clips more candidates at bounded recall cost."""
    rng = make_rng(63)
    scores = synthetic_scores(rng, 8, 256, "nlp-decoder")
    k = 24
    tight = SadsSorter(SadsConfig(n_segments=4, radius=1.5)).select(scores, k)
    loose = SadsSorter(SadsConfig(n_segments=4, radius=20.0)).select(scores, k)
    assert tight.clipped_fraction >= loose.clipped_fraction
    r_tight = topk_recall(tight.indices, scores, k)
    r_loose = topk_recall(loose.indices, scores, k)
    assert r_tight > r_loose - 0.15


def test_ablation_exchange_rounds():
    """Adjustive exchange repairs distributed-quota misses."""
    rng = make_rng(64)
    row = rng.normal(size=256)
    row[60:80] += 9.0  # concentrated dominants
    truth = set(map(int, exact_topk_indices(row[None, :], 12)[0]))
    hits = []
    for rounds in (0, 4, 12):
        sel = SadsSorter(
            SadsConfig(n_segments=8, adjust_rounds=rounds)
        ).select_row(row, 12)
        hits.append(len(truth & set(map(int, sel.indices))))
    assert hits[0] <= hits[1] <= hits[2]


def test_ablation_dlzs_vs_vanilla_lz(benchmark):
    """Differential conversion must halve converters and cut error."""
    rng = make_rng(65)
    a = rng.integers(-127, 128, size=(48, 64))
    b = rng.integers(-127, 128, size=(64, 48))
    exact = (a @ b).astype(np.float64)

    res = benchmark(dlzs_matmul, a, b, 8)
    vanilla = vanilla_lz_matmul(a, b, 8)
    assert res.ops["lzc"] * 2 <= vanilla.ops["lzc"] + a.size
    err_d = dlzs_relative_error(res.values.astype(float), exact)
    err_v = dlzs_relative_error(vanilla.values.astype(float), exact)
    assert err_d < err_v


def test_ablation_rass_on_off(benchmark):
    wl = make_workload("bloom-1b7/wikitext2", n_queries=48, head_dim=64,
                       seq_len=384, seed=66)
    sel = exact_topk_indices(wl.scores(), 40)
    reqs = [set(map(int, row)) for row in sel]
    rass = benchmark(rass_schedule, reqs, 64)
    naive = naive_schedule(reqs, 64)
    assert rass.vector_loads < naive.vector_loads


def test_ablation_tiled_pipeline_on_off(benchmark):
    """Cross-stage tiling vs stage-serial execution of the same tile work."""
    ctl = TiledPipelineController()
    per_tile = StageLatencies(predict=40, sort=25, formal=60)

    timing = benchmark(ctl.uniform_timing, per_tile, 32)
    assert timing.speedup > 1.6  # bounded by the formal-stage bottleneck
    assert timing.pipelined_cycles < timing.serial_cycles
