"""Fig. 20 bench: memory-access reduction and energy-efficiency gain.

Shape assertions: RASS alone reduces traffic, the full tiled stack reduces
much more (paper: -23% and -79%), and the energy-efficiency gain over the
A100 grows with the loss budget toward ~71.5x.
"""

from repro.experiments.gains import energy_efficiency_gain
from repro.experiments.suite import measure_case


def _energy_gain():
    return energy_efficiency_gain(measure_case("llama-7b/wikitext2", 2.0), "gpu")


def test_fig20_memory_energy(benchmark, experiment):
    gain = benchmark(_energy_gain)
    assert gain > 10.0

    result = experiment("fig20")
    h = result.headline
    assert h["rass_memory_reduction_pct"] > 15.0
    assert h["sofa_memory_reduction_pct"] > h["rass_memory_reduction_pct"]
    assert h["energy_gain_loss0"] < h["energy_gain_loss2"]
    assert 35 < h["energy_gain_loss2"] < 110
