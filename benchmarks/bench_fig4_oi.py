"""Fig. 4 bench: operational intensity per part and vs token parallelism.

Shape assertions: MHA's OI is a small fraction of FFN's (paper: ~15%), and
attention OI rises monotonically with parallelism (the reuse gain that
motivates LTPP).
"""

from repro.model.config import get_model
from repro.model.profiler import attention_oi_vs_parallelism, profile_parts


def _oi_table():
    rows = []
    for name in ("vit-base", "bert-base", "gpt2-large", "bloom-3b"):
        parts = profile_parts(get_model(name))
        rows.append((name, parts["attention"].operational_intensity,
                     parts["ffn"].operational_intensity))
    return rows


def test_fig4_oi(benchmark, experiment):
    rows = benchmark(_oi_table)
    for _, mha, ffn in rows:
        assert mha < 0.35 * ffn

    ois = [attention_oi_vs_parallelism(get_model("bloom-3b"), t) for t in (1, 8, 64)]
    assert ois[0] < ois[1] < ois[2]

    result = experiment("fig4")
    assert result.headline["bloom3b_oi_gain_t128_over_t1"] > 10.0
