"""Tests for the leading-zero counters and the configurable LZE."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics.leading_zero import (
    ConfigurableLZE,
    leading_zeros,
    lz_decode_magnitude,
    lz_encode,
    lzc8,
    shift_by_exponent,
)


def test_leading_zeros_known_values():
    assert leading_zeros(1, 8) == 7
    assert leading_zeros(0x80, 8) == 0
    assert leading_zeros(0, 8) == 8
    assert leading_zeros(-3, 8) == 6  # magnitude based


def test_leading_zeros_rejects_overflow():
    with pytest.raises(ValueError):
        leading_zeros(256, 8)


@given(st.integers(-0xFFFF, 0xFFFF))
@settings(max_examples=200, deadline=None)
def test_leading_zeros_matches_bit_length(x):
    lz = int(leading_zeros(x, 16))
    assert lz == 16 - abs(x).bit_length()


def test_lz_encode_returns_sign_and_count():
    signs, lz = lz_encode(np.array([-4, 0, 9]), 8)
    np.testing.assert_array_equal(signs, [-1, 0, 1])
    np.testing.assert_array_equal(lz, [5, 8, 4])


@given(st.integers(1, 0xFF))
@settings(max_examples=100, deadline=None)
def test_decode_brackets_magnitude(x):
    """2^(W-LZ) is the power of two in (x, 2x]: the one-hot approximation
    always rounds the magnitude up by strictly less than 2x."""
    mag = int(lz_decode_magnitude(leading_zeros(x, 8), 8))
    assert x < mag <= 2 * x


def test_decode_zero_gives_zero():
    assert lz_decode_magnitude(8, 8) == 0


def test_shift_by_exponent_matches_decode_multiply():
    vals = np.array([3, -5, 7])
    lz = np.array([4, 6, 8])
    shifted = shift_by_exponent(vals, lz, 8)
    expected = vals * lz_decode_magnitude(lz, 8)
    np.testing.assert_array_equal(shifted, expected)


def test_lzc8_all_zero_flag():
    rep = lzc8(np.array([0, 1]))
    np.testing.assert_array_equal(rep.all_zero, [True, False])


def test_lzc8_rejects_wide_input():
    with pytest.raises(ValueError):
        lzc8(np.array([300]))


@given(st.integers(-0xFFFF, 0xFFFF))
@settings(max_examples=200, deadline=None)
def test_lze_16bit_composition_equals_flat_count(x):
    """Two chained 8-bit LZCs must equal a flat 16-bit leading-zero count."""
    lze = ConfigurableLZE(mode_bits=16)
    _, count = lze.encode(x)
    assert int(count) == int(leading_zeros(x, 16))


@given(st.integers(-0xFF, 0xFF))
@settings(max_examples=100, deadline=None)
def test_lze_8bit_mode(x):
    lze = ConfigurableLZE(mode_bits=8)
    signs, count = lze.encode(x)
    assert int(count) == int(leading_zeros(x, 8))
    assert int(signs) == int(np.sign(x))


def test_lze_rejects_other_widths():
    with pytest.raises(ValueError):
        ConfigurableLZE(mode_bits=12)


def test_lze_16bit_rejects_overflow():
    with pytest.raises(ValueError):
        ConfigurableLZE(mode_bits=16).encode(np.array([1 << 16]))
