"""Batch-invariance tests for the deterministic linalg primitives.

Every primitive in ``repro.numerics.linalg`` promises that a row's result
is a pure function of that row's data - independent of how many other rows
share the call and of internal chunking.  The engine's bit-parity
contract (per-head == batched == cluster) and the SU-FA kernel layer's
differential contract both stand on these invariances, so they get their
own direct tests.
"""

import numpy as np
import pytest

from repro.numerics.linalg import (
    det_matmul,
    det_pv_contract,
    det_rowdot,
    det_stack_scores,
    det_tile_mass,
)
from repro.utils.rng import make_rng


def test_det_matmul_rows_independent_of_batch_and_chunking():
    rng = make_rng(1)
    a = rng.normal(size=(37, 16))
    b = rng.normal(size=(16, 9))
    full = det_matmul(a, b)
    assert det_matmul(a, b, chunk_rows=3).tobytes() == full.tobytes()
    for sl in (slice(0, 1), slice(5, 20), slice(36, 37)):
        assert det_matmul(a[sl], b).tobytes() == full[sl].tobytes()


def test_det_stack_scores_matches_rowdot_values_and_is_batch_invariant():
    rng = make_rng(2)
    k_sel = rng.normal(size=(23, 70, 12))
    q = rng.normal(size=(23, 12))
    scores = det_stack_scores(k_sel, q)
    np.testing.assert_allclose(
        scores, det_rowdot(k_sel, q[:, None, :]), rtol=0, atol=1e-12
    )
    for rows in (slice(0, 1), slice(7, 19), np.array([0, 4, 22, 9])):
        sub = det_stack_scores(
            np.ascontiguousarray(k_sel[rows]), np.ascontiguousarray(q[rows])
        )
        assert sub.tobytes() == np.ascontiguousarray(scores[rows]).tobytes()
    with pytest.raises(ValueError):
        det_stack_scores(k_sel, q[:, :5])


def test_det_pv_contract_batch_invariant_on_tile_slices():
    """The SU-FA tile merge: slab slices of a gathered stack, any row set."""
    rng = make_rng(3)
    r, kk, dv = 19, 96, 7
    p = np.exp(rng.normal(size=(r, 32)))
    values = rng.normal(size=(r, kk, dv))
    tile = values[:, 40:72, :]  # strided tile view, per-row slab contiguous
    full = det_pv_contract(p, tile)
    np.testing.assert_allclose(
        full, (p[:, :, None] * tile).sum(axis=1), rtol=0, atol=1e-12
    )
    for rows in (slice(0, 1), slice(3, 11)):
        # row subsets keep the canonical slab layout (see the docstring's
        # layout note): a view-preserving slice, not a re-packed copy
        sub = det_pv_contract(p[rows], tile[rows])
        assert sub.tobytes() == np.ascontiguousarray(full[rows]).tobytes()
    with pytest.raises(ValueError):
        det_pv_contract(p, values)  # tile width mismatch


def test_det_tile_mass_batch_invariant():
    rng = make_rng(4)
    p = np.exp(rng.normal(size=(31, 48)))
    full = det_tile_mass(p)
    for rows in (slice(0, 1), slice(10, 25), np.array([2, 30, 7])):
        assert det_tile_mass(p[rows]).tobytes() == np.ascontiguousarray(
            full[rows]
        ).tobytes()
    with pytest.raises(ValueError):
        det_tile_mass(p[:, :, None])
