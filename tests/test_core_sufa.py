"""Tests for SU-FA sorted-updating FlashAttention."""

import numpy as np
import pytest

from repro.attention.reference import masked_attention
from repro.attention.topk import exact_topk_indices, indices_to_mask
from repro.core.sufa import (
    UpdateOrder,
    sorted_updating_attention,
    sufa_update_ops_per_step,
)
from repro.utils.rng import make_rng


def _setup(seed=50, t=6, s=64, d=16, k=12):
    rng = make_rng(seed)
    q = rng.normal(size=(t, d))
    kmat = rng.normal(size=(s, d))
    v = rng.normal(size=(s, d))
    scores = q @ kmat.T / np.sqrt(d)
    sel = exact_topk_indices(scores, k)
    return q, kmat, v, sel


def test_descending_exact_vs_masked_reference():
    q, k, v, sel = _setup()
    res = sorted_updating_attention(q, k, v, sel, order=UpdateOrder.DESCENDING)
    expected = masked_attention(q, k, v, indices_to_mask(sel, k.shape[0]))
    np.testing.assert_allclose(res.output, expected, atol=1e-10)


def test_ascending_exact_too():
    q, k, v, sel = _setup()
    res = sorted_updating_attention(q, k, v, sel, order=UpdateOrder.ASCENDING)
    expected = masked_attention(q, k, v, indices_to_mask(sel, k.shape[0]))
    np.testing.assert_allclose(res.output, expected, atol=1e-10)


def test_no_assurance_triggers_with_exact_ordering():
    """Exact descending order never violates the running max."""
    q, k, v, sel = _setup()
    res = sorted_updating_attention(q, k, v, sel, order=UpdateOrder.DESCENDING)
    assert res.assurance_triggers == 0


def test_descending_cheaper_than_ascending():
    """Fig. 10: descending saves the per-step l rescale multiply."""
    q, k, v, sel = _setup()
    down = sorted_updating_attention(q, k, v, sel, order=UpdateOrder.DESCENDING)
    up = sorted_updating_attention(q, k, v, sel, order=UpdateOrder.ASCENDING)
    assert down.ops["mul"] < up.ops["mul"]
    assert down.ops.normalized() < up.ops.normalized()


def test_sufa_cheaper_than_flash_attention():
    """The headline: sorting info removes FA's rescale exp/compare work."""
    from repro.attention.flash import flash_attention

    q, k, v, sel = _setup(t=8, s=64, d=16, k=64)  # keep all -> same math
    sufa = sorted_updating_attention(q, k, v, sel, tile_cols=16)
    fa2 = flash_attention(q, k, v, tile_cols=16)
    assert sufa.ops["exp"] < fa2.ops["exp"]
    np.testing.assert_allclose(sufa.output, fa2.output, atol=1e-9)


def test_misordered_indices_trigger_assurance():
    """Corrupt the predicted ordering: the Max-Ensuring circuit must fire
    and the result must stay exact."""
    q, k, v, sel = _setup()
    corrupted = sel[:, ::-1].copy()  # ascending scores fed as 'descending'
    res = sorted_updating_attention(
        q, k, v, corrupted, order=UpdateOrder.DESCENDING, max_assurance=True
    )
    expected = masked_attention(q, k, v, indices_to_mask(sel, k.shape[0]))
    np.testing.assert_allclose(res.output, expected, atol=1e-10)
    assert res.assurance_triggers > 0


def test_misordered_without_assurance_raises():
    q, k, v, sel = _setup()
    corrupted = sel[:, ::-1].copy()
    with pytest.raises(RuntimeError):
        sorted_updating_attention(
            q, k, v, corrupted, order=UpdateOrder.DESCENDING, max_assurance=False
        )


def test_assurance_costs_extra_ops():
    q, k, v, sel = _setup()
    clean = sorted_updating_attention(q, k, v, sel)
    dirty = sorted_updating_attention(q, k, v, sel[:, ::-1].copy())
    assert dirty.ops.normalized() > clean.ops.normalized()


def test_tile_cols_only_affects_sync_ops():
    q, k, v, sel = _setup()
    a = sorted_updating_attention(q, k, v, sel, tile_cols=4)
    b = sorted_updating_attention(q, k, v, sel, tile_cols=64)
    np.testing.assert_allclose(a.output, b.output, atol=1e-12)
    assert a.ops["compare"] > b.ops["compare"]  # more tile boundaries
    assert a.ops["exp"] == b.ops["exp"]


def test_shape_validation():
    q, k, v, sel = _setup()
    with pytest.raises(ValueError):
        sorted_updating_attention(q, k, v, sel[:3])


def test_per_step_cost_model():
    down = sufa_update_ops_per_step(UpdateOrder.DESCENDING, d=16)
    up = sufa_update_ops_per_step(UpdateOrder.ASCENDING, d=16)
    assert "mul" not in down
    assert up["mul"] == 1.0
    assert down["exp"] == up["exp"] == 1.0


def test_single_selected_key_returns_value():
    rng = make_rng(51)
    q = rng.normal(size=(2, 8))
    k = rng.normal(size=(10, 8))
    v = rng.normal(size=(10, 4))
    sel = np.array([[3], [7]])
    res = sorted_updating_attention(q, k, v, sel)
    np.testing.assert_allclose(res.output[0], v[3])
    np.testing.assert_allclose(res.output[1], v[7])
